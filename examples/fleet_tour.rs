//! Fleet serving scenario: many scenes, one bounded machine.
//!
//! A [`ServerFleet`] extends the single-scene [`RenderServer`] to
//! production-shaped traffic: sessions name a *scene* (by spec, routed
//! on a stable content-derived [`SceneKey`] hashed with FNV-1a — never
//! pointer identity), the fleet bakes scenes on demand behind a
//! capacity-bounded scene cache, and every shard is a full
//! `RenderServer` with its own accelerator, policy, and accounting.
//!
//! The tour serves three users across two scenes, then:
//!
//! - **migrates** alice from the plaza to the atrium *mid-serve* — her
//!   stream drains on the source shard at the deterministic churn slot
//!   and the remaining path suffix re-admits on the target shard, one
//!   uninterrupted `path_index` space;
//! - admits a user on a **third** scene, which busts the 2-scene cache
//!   budget and **evicts** the least-recently-delivered resident (a
//!   schedule fact, never a wall clock);
//! - re-admits a user on the evicted scene, paying a **rebake** — baking
//!   is seeded purely from the spec, so the rebaked scene is
//!   bit-identical to the original residency.
//!
//! Everything — routing, interleaving, eviction, the migration
//! hand-off — is deterministic at any `UNI_RENDER_THREADS`.
//!
//! ```sh
//! cargo run --release --example fleet_tour
//! ```

use uni_render::prelude::*;

const FRAMES: usize = 6;
const RESOLUTION: (u32, u32) = (160, 120);

fn scenes() -> [(&'static str, SceneSpec); 3] {
    [
        (
            "plaza",
            SceneSpec::demo("fleet-plaza", 41).with_detail(0.06),
        ),
        (
            "atrium",
            SceneSpec::demo("fleet-atrium", 42).with_detail(0.06),
        ),
        (
            "gallery",
            SceneSpec::demo("fleet-gallery", 43).with_detail(0.06),
        ),
    ]
}

fn request(pipeline: usize, spec: &SceneSpec, start: f32, label: &str) -> FleetSessionRequest {
    let path = CameraPath::orbit_arc(spec.orbit(RESOLUTION.0, RESOLUTION.1), start, 2.0, FRAMES);
    FleetSessionRequest::new(
        move || match pipeline {
            0 => Box::new(GaussianPipeline::default()),
            1 => Box::new(MeshPipeline::default()),
            _ => Box::new(HashGridPipeline::default()),
        },
        path,
    )
    .label(label)
}

fn drain(fleet: &mut ServerFleet, names: &[&str], scene_names: &[&str]) {
    while let Some(frame) = fleet.next_frame() {
        println!(
            "  {:<6} frame {} (scene '{}', shard {})",
            names[frame.handle.id()],
            frame.path_index,
            scene_names[frame.shard],
            frame.shard,
        );
        fleet.recycle(frame.handle, frame.frame.report.image);
    }
}

fn main() {
    let roster = scenes();
    let mut fleet = ServerFleet::new(SceneCacheConfig {
        max_resident: 2,
        max_bytes: None,
    })
    .with_accelerator_config(AcceleratorConfig::paper())
    .with_lanes(2)
    .with_lookahead(2);

    println!("Scene routing (content-derived keys, FNV-1a route hashes):");
    for (name, spec) in &roster {
        let key = fleet.register(spec);
        println!(
            "  '{name}' -> shard {} (hash {:#018x})",
            fleet.shard_of(&key).expect("registered"),
            key.route_hash()
        );
    }

    // Wave 1: alice + bob on the plaza, carol in the atrium. The two
    // scenes bake on first use; the cache (capacity 2) is now full.
    println!("\nWave 1: alice (gaussian) + bob (mesh) on 'plaza', carol (hash-grid) in 'atrium'");
    let alice = fleet.admit(&roster[0].1, request(0, &roster[0].1, 0.0, "alice"));
    let _bob = fleet.admit(&roster[0].1, request(1, &roster[0].1, 1.3, "bob"));
    let _carol = fleet.admit(&roster[1].1, request(2, &roster[1].1, 2.6, "carol"));
    let names = ["alice", "bob", "carol", "dave", "erin"];
    let scene_names: Vec<&str> = roster.iter().map(|(n, _)| *n).collect();

    // Serve a few frames, then migrate alice to the atrium mid-serve:
    // her plaza stream drains at the deterministic churn slot and the
    // remaining suffix re-admits on the atrium shard through its
    // admission control — path_index continues uninterrupted.
    for _ in 0..4 {
        let frame = fleet.next_frame().expect("frames remain");
        println!(
            "  {:<6} frame {} (scene '{}', shard {})",
            names[frame.handle.id()],
            frame.path_index,
            scene_names[frame.shard],
            frame.shard,
        );
        fleet.recycle(frame.handle, frame.frame.report.image);
    }
    assert!(
        fleet.migrate(alice, &roster[1].1),
        "alice's migration stages"
    );
    println!(
        "  >> migrating alice: 'plaza' -> 'atrium' (drains at the churn slot, then re-admits)"
    );
    drain(&mut fleet, &names, &scene_names);

    // Wave 2: dave opens the third scene. Capacity is 2, every session
    // above has drained — the least-recently-delivered resident is
    // evicted to make room (a pure function of the delivered schedule).
    println!("\nWave 2: dave (mesh) opens 'gallery' — the cache must evict");
    let _dave = fleet.admit(&roster[2].1, request(1, &roster[2].1, 3.9, "dave"));
    drain(&mut fleet, &names, &scene_names);

    // Wave 3: erin returns to the plaza — evicted above, so it rebakes
    // (bit-identical: baking is seeded purely from the spec).
    println!("\nWave 3: erin (gaussian) returns to 'plaza' — evicted, so it rebakes");
    let _erin = fleet.admit(&roster[0].1, request(0, &roster[0].1, 5.2, "erin"));
    drain(&mut fleet, &names, &scene_names);

    let summary = fleet.summary();
    assert!(summary.is_consistent());
    assert_eq!(summary.migrations, 1);
    assert_eq!(summary.migrations_completed, 1, "alice's hand-off landed");
    assert!(summary.cache.evictions >= 1, "the gallery bake evicted");
    assert!(summary.cache.rebakes >= 1, "the plaza return rebaked");
    assert_eq!(summary.delivered_frames, 5 * FRAMES);

    println!("\nPer-shard accounts (one ServerSummary per residency generation):");
    for (idx, shard) in summary.shards.iter().enumerate() {
        println!(
            "  shard {idx} '{}': {} generation(s), {} frames, {} session record(s)",
            scene_names[idx],
            shard.generations(),
            shard.scheduled_frames(),
            shard.sessions().count(),
        );
    }
    println!(
        "\nCache: {} bakes ({} rebakes, {} evictions, {} hits), {:.1} MB baked total, \
         {} scene(s) / {:.1} MB resident at the end",
        summary.cache.bakes,
        summary.cache.rebakes,
        summary.cache.evictions,
        summary.cache.hits,
        summary.cache.baked_bytes as f64 / 1e6,
        summary.cache.resident_scenes,
        summary.cache.resident_bytes as f64 / 1e6,
    );
    println!(
        "Fleet: {} frames over {} shards, {} session segment(s), {} migration(s) \
         ({} completed), p50/p99 sim latency {:.2}/{:.2} ms",
        summary.delivered_frames,
        summary.shards.len(),
        summary.session_count(),
        summary.migrations,
        summary.migrations_completed,
        1e3 * summary.p50_sim_latency(),
        1e3 * summary.p99_sim_latency(),
    );
}
