//! Device tour: one hash-grid frame executed on every device model in the
//! repository — the Uni-Render accelerator (at three scaling points), the
//! four commercial devices, the three dedicated accelerators of the paper,
//! and the two related-work chips. Prints a Fig. 16-style column.
//!
//! ```sh
//! cargo run --release --example device_tour
//! ```

use uni_render::baselines::{all_baselines, related_accelerators};
use uni_render::prelude::*;

fn main() {
    let scene = SceneSpec::demo("tour", 7).with_detail(0.06).bake();
    let camera = scene.orbit().camera_at(0.9).with_resolution(1280, 720);
    let renderer = HashGridPipeline::default();
    let trace = renderer.trace(&scene, &camera);
    println!(
        "One hash-grid frame: {} invocations, {:.1} G MACs, {:.1} MB unique DRAM\n",
        trace.len(),
        trace.total_cost().total_macs() as f64 / 1e9,
        trace.total_cost().dram_bytes() as f64 / 1e6,
    );

    println!(
        "{:<26} {:>10} {:>10} {:>14}",
        "Device", "FPS", "W", "frames/J"
    );
    for (pe, sram) in [(1u32, 1u32), (2, 2), (4, 4)] {
        let cfg = AcceleratorConfig::paper().scaled(pe, sram);
        let report = Accelerator::new(cfg).simulate(&trace);
        println!(
            "{:<26} {:>10.1} {:>10.2} {:>14.2}",
            format!("Uni-Render {pe}x PE/{sram}x SRAM"),
            report.fps(),
            report.power_w(),
            report.frames_per_joule(),
        );
    }
    for device in all_baselines().iter().chain(related_accelerators().iter()) {
        match device.execute(&trace) {
            Some(r) => println!(
                "{:<26} {:>10.2} {:>10.2} {:>14.4}",
                device.name(),
                r.fps(),
                device.power_w(),
                r.frames_per_joule(),
            ),
            None => println!("{:<26} {:>10}", device.name(), "x (unsupported)"),
        }
    }
    println!("\nDedicated chips print 'x' off their home pipeline — the paper's crossed bars.");
}
