//! AR/VR avatar generation scenario (Fig. 1 motivation): an object-scale
//! "avatar" rendered along a full camera orbit, comparing the two
//! pipelines such applications actually choose between — 3D Gaussians
//! (quality) and mesh (toolchain compatibility) — on the Uni-Render
//! accelerator versus a mobile SoC.
//!
//! ```sh
//! cargo run --release --example avatar_orbit
//! ```

use uni_render::baselines::{snapdragon_8gen2, Device};
use uni_render::prelude::*;
use uni_render::scene::SceneFlavor;

fn main() {
    // An "avatar": a dense object cluster at arm's-length scale.
    let spec = SceneSpec {
        object_count: 10,
        extent: 1.2,
        ..SceneSpec::demo("avatar", 2026)
    }
    .with_flavor(SceneFlavor::Object)
    .with_detail(0.08);
    println!("Baking the avatar scene...");
    let scene = spec.bake();

    let accel = Accelerator::new(AcceleratorConfig::paper());
    let phone = snapdragon_8gen2();
    let orbit = scene.spec().orbit(800, 800);

    for renderer in [
        Box::new(GaussianPipeline::default()) as Box<dyn Renderer>,
        Box::new(MeshPipeline::default()) as Box<dyn Renderer>,
    ] {
        println!(
            "\n=== {} pipeline over a 6-view orbit ===",
            renderer.pipeline()
        );
        let mut ours_fps = Vec::new();
        let mut phone_fps = Vec::new();
        for (i, camera) in orbit.cameras(6).into_iter().enumerate() {
            let trace = renderer.trace(&scene, &camera);
            let report = accel.simulate(&trace);
            let phone_report = phone.execute(&trace).expect("phones run everything");
            println!(
                "  view {i}: ours {:>7.1} FPS ({:>5.2} W) | 8Gen2 {:>7.1} FPS",
                report.fps(),
                report.power_w(),
                phone_report.fps(),
            );
            ours_fps.push(report.fps());
            phone_fps.push(phone_report.fps());
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (o, p) = (mean(&ours_fps), mean(&phone_fps));
        println!(
            "  mean: ours {o:.1} FPS vs phone {p:.1} FPS -> {:.1}x speedup; \
             immersive >30 FPS on-device: {}",
            o / p,
            if o > 30.0 { "yes" } else { "no" },
        );
    }
}
