//! AR/VR avatar generation scenario (Fig. 1 motivation), streamed: an
//! object-scale "avatar" rendered along a full 24-frame camera orbit
//! through a [`RenderSession`] — the frame-stream API that exercises the
//! accelerator's cross-frame reconfiguration amortization.
//!
//! Each session owns a reusable framebuffer pool; recycling every
//! frame's buffer keeps the stream allocation-free after frame 1 (the
//! example asserts it). Per frame it reports the simulated Uni-Render
//! FPS next to a mobile SoC running the same trace; per stream it
//! reports the reconfiguration count amortized across all frames.
//!
//! ```sh
//! cargo run --release --example avatar_orbit
//! ```

use uni_render::baselines::{snapdragon_8gen2, Device};
use uni_render::prelude::*;
use uni_render::scene::SceneFlavor;

const FRAMES: usize = 24;

fn main() {
    // An "avatar": a dense object cluster at arm's-length scale.
    let spec = SceneSpec {
        object_count: 10,
        extent: 1.2,
        ..SceneSpec::demo("avatar", 2026)
    }
    .with_flavor(SceneFlavor::Object)
    .with_detail(0.08);
    println!("Baking the avatar scene...");
    let scene = spec.bake();
    let phone = snapdragon_8gen2();

    // The two pipelines AR/VR avatar applications actually choose
    // between: 3D Gaussians (quality) and mesh (toolchain compatibility).
    for renderer in [
        Box::new(GaussianPipeline::default()) as Box<dyn Renderer>,
        Box::new(MeshPipeline::default()) as Box<dyn Renderer>,
    ] {
        println!(
            "\n=== {} pipeline, {FRAMES}-frame streamed orbit @512x512 ===",
            renderer.pipeline()
        );
        let path = CameraPath::orbit(spec.orbit(512, 512), FRAMES);
        let mut session = RenderSession::new(scene.clone(), renderer, path)
            .with_accelerator(Accelerator::new(AcceleratorConfig::paper()));

        let mut phone_seconds = 0.0;
        let mut framebuffer = None;
        while let Some(frame) = session.next_frame() {
            let sim = frame.sim.as_ref().expect("session simulates");
            let trace = frame.trace.as_ref().expect("session traces");
            let phone_report = phone.execute(trace).expect("phones run everything");
            phone_seconds += phone_report.seconds;
            println!(
                "  frame {:>2}: ours {:>8.1} FPS ({:>5.2} W) | 8Gen2 {:>7.1} FPS | \
                 reconfigs {} (boundary switch: {})",
                frame.index,
                sim.fps(),
                sim.power_w(),
                phone_report.fps(),
                sim.reconfigurations,
                if frame.boundary_reconfiguration {
                    "yes"
                } else {
                    "no"
                },
            );
            // Steady-state reuse proof: the pool hands the same buffer back
            // every frame once it has been recycled.
            let ptr = frame.image.pixels().as_ptr();
            if let Some(prev) = framebuffer {
                assert_eq!(ptr, prev, "framebuffer must be reused across frames");
            }
            framebuffer = Some(ptr);
            session.recycle(frame.image);
        }

        let summary = session.summary();
        assert_eq!(summary.frames, FRAMES);
        assert_eq!(
            summary.framebuffer_allocations, 1,
            "zero steady-state framebuffer allocations after frame 1"
        );
        // Both sides are frames / total-seconds, so the ratio compares
        // like with like.
        let (ours, theirs) = (summary.mean_fps(), FRAMES as f64 / phone_seconds);
        println!(
            "  stream: {} frames, mean {ours:.1} FPS vs phone {theirs:.1} FPS \
             -> {:.1}x speedup; immersive >30 FPS on-device: {}",
            summary.frames,
            ours / theirs,
            if ours > 30.0 { "yes" } else { "no" },
        );
        println!(
            "  reconfiguration: {} total ({} in-frame + {} at boundaries), \
             {:.2}/frame amortized; {} boundary switches avoided by streaming",
            summary.total_reconfigurations(),
            summary.in_frame_reconfigurations,
            summary.boundary_reconfigurations,
            summary.reconfigurations_per_frame(),
            summary.boundary_switches_avoided,
        );
        println!(
            "  framebuffer: 1 allocation for {} frames (pool reuse)",
            summary.frames
        );
    }
}
