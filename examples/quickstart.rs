//! Quickstart: bake one procedural scene, render it with all five typical
//! pipelines plus the hybrid, score each against the ground-truth
//! reference, and simulate every frame on the Uni-Render accelerator.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```
//! Images are written as PPM files under `target/quickstart/`.

use std::fs;
use uni_render::prelude::*;
use uni_render::renderers::{all_renderers, render_reference};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Bake a small scene into all five representations (mesh+texture,
    // KiloNeRF MLP grid, tri-plane, hash grid, 3D Gaussians). The detail
    // factor keeps baking fast for a demo.
    println!("Baking the demo scene (tessellation, SH projection, grid fills, Adam training)...");
    let scene = SceneSpec::demo("quickstart", 42).with_detail(0.08).bake();
    println!(
        "  mesh: {} triangles | gaussians: {} | kilonerf: {} occupied cells | hash: {} levels",
        scene.mesh().triangle_count(),
        scene.gaussians().len(),
        scene.kilonerf().occupied_cells(),
        scene.hashgrid().config().levels,
    );

    let out_dir = std::path::Path::new("target/quickstart");
    fs::create_dir_all(out_dir)?;

    // One test view; small resolution so the software renderers are quick.
    let camera = scene.orbit().camera_at(0.8).with_resolution(160, 120);
    let reference = render_reference(scene.field(), &camera, 96);
    fs::write(out_dir.join("reference.ppm"), reference.to_ppm())?;

    let accel = Accelerator::new(AcceleratorConfig::paper());
    println!(
        "\n{:<28} {:>9} {:>12} {:>10} {:>9}",
        "Pipeline", "PSNR", "sim FPS", "power W", "real-time"
    );
    // One reusable render target serves every pipeline (`render_into`
    // overwrites it in place).
    let mut image = Image::empty();
    for renderer in all_renderers() {
        renderer.render_into(&scene, &camera, &mut image);
        let psnr = image.psnr(&reference);
        let name = renderer
            .pipeline()
            .to_string()
            .to_lowercase()
            .replace(' ', "_");
        fs::write(out_dir.join(format!("{name}.ppm")), image.to_ppm())?;

        // Decompose the frame into micro-operators and simulate it at the
        // benchmark resolution of the paper.
        let bench_camera = camera.with_resolution(800, 800);
        let trace = renderer.trace(&scene, &bench_camera);
        let report = accel.simulate(&trace);
        println!(
            "{:<28} {:>7.1}dB {:>12.1} {:>10.2} {:>9}",
            renderer.pipeline().to_string(),
            psnr,
            report.fps(),
            report.power_w(),
            if report.is_real_time() { "yes" } else { "no" },
        );
    }
    println!("\nImages written to target/quickstart/*.ppm");
    Ok(())
}
