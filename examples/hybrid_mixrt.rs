//! The MixRT hybrid pipeline end to end (Sec. VII-C): mesh rasterization
//! resolves geometry, a hash-grid field shades the surfaces. Shows the
//! micro-operator families the frame crosses, the reconfigurations the
//! accelerator performs, and the speedup over every commercial device.
//!
//! ```sh
//! cargo run --release --example hybrid_mixrt
//! ```

use uni_render::baselines::commercial_devices;
use uni_render::microops::MicroOp;
use uni_render::prelude::*;
use uni_render::scene::SceneFlavor;

fn main() {
    let spec = SceneSpec::demo("hybrid-room", 360_006)
        .with_flavor(SceneFlavor::Indoor)
        .with_detail(0.08);
    println!("Baking an indoor scene for the hybrid pipeline...");
    let scene = spec.bake();

    let renderer = MixRtPipeline::default();
    let camera = scene.spec().orbit(1280, 720).camera_at(0.9);
    let trace = renderer.trace(&scene, &camera);

    println!("\nMicro-operator decomposition of one MixRT frame:");
    let stats = trace.stats();
    for op in MicroOp::ALL {
        let c = stats.cost_of(op);
        if c.total_ops() == 0 {
            continue;
        }
        println!(
            "  {:<26} {:>6} invocations, {:>13} MACs, {:>8.1} MB DRAM",
            op.to_string(),
            stats.invocations_of(op),
            c.total_macs(),
            c.dram_bytes() as f64 / 1e6,
        );
    }
    println!(
        "  -> {} micro-op family switches (reconfigurations) per frame",
        trace.reconfiguration_count()
    );

    let report = Accelerator::new(AcceleratorConfig::paper()).simulate(&trace);
    println!("\nUni-Render: {report}");

    println!("\nSpeedup over the commercial devices (Fig. 17's comparison):");
    for device in commercial_devices() {
        let r = device
            .execute(&trace)
            .expect("commercial devices run everything");
        println!(
            "  vs {:<10} {:>6.1} FPS -> {:>5.2}x",
            device.name(),
            r.fps(),
            report.fps() / r.fps()
        );
    }
}
