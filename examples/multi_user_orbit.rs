//! Multi-user serving scenario: one Uni-Render accelerator, one baked
//! scene, four concurrent "users" — each its own camera orbit,
//! resolution, pipeline choice, and fair-share weight — served through a
//! [`RenderServer`] under the [`WeightedFair`] scheduling policy, with
//! session churn mid-serve: a fifth user is **admitted** while frames
//! are streaming and one of the original users is **closed** early.
//!
//! The server shares the scene behind an `Arc` (no per-user copies) and
//! schedules whichever backlogged user has consumed the least simulated
//! accelerator time per unit weight — so sim-time shares track weights
//! while users stay backlogged. Crossing renderers at a schedule
//! boundary charges a PE-array reconfiguration; admission and close take
//! effect at deterministic tick boundaries, so the whole served stream
//! is bit-reproducible at any `UNI_RENDER_THREADS`.
//!
//! Carol additionally streams under a **sim-time deadline**
//! (`SessionRequest::deadline_hz`): every frame of hers is due on a
//! fixed period of the accelerator's simulated clock, and the server
//! counts misses and worst slack per session regardless of the policy —
//! the example prints her deadline report at the end.
//!
//! Delivery is deterministic: the example proves it by re-rendering one
//! user's stream with a standalone [`RenderSession`] and asserting every
//! frame is bit-identical.
//!
//! ```sh
//! cargo run --release --example multi_user_orbit
//! ```

use std::sync::Arc;
use uni_render::prelude::*;
use uni_render::scene::SceneFlavor;

const FRAMES: usize = 6;

/// Carol's per-frame deadline rate on the *simulated* clock (frames per
/// sim-second): a 30 FPS latency budget for her hash-grid stream.
const CAROL_DEADLINE_HZ: f64 = 30.0;

/// Display name, pipeline, resolution, orbit start angle, and
/// fair-share weight of a user.
type User = (&'static str, Box<dyn Renderer + Send>, (u32, u32), f32, u32);

/// The four initial users. Bob carries twice alice's weight, dave four
/// times — the fair-share policy will mirror those ratios in sim-time.
fn users() -> Vec<User> {
    vec![
        (
            "alice (gaussian)",
            Box::new(GaussianPipeline::default()),
            (256, 192),
            0.0,
            1,
        ),
        (
            "bob (mesh)",
            Box::new(MeshPipeline::default()),
            (320, 240),
            1.3,
            2,
        ),
        (
            "carol (hash-grid)",
            Box::new(HashGridPipeline::default()),
            (192, 144),
            2.6,
            1,
        ),
        (
            "dave (mlp)",
            Box::new(MlpPipeline::default()),
            (128, 96),
            3.9,
            4,
        ),
    ]
}

/// The late joiner, admitted mid-serve.
fn late_user() -> User {
    (
        "erin (low-rank)",
        Box::new(LowRankPipeline::default()),
        (160, 120),
        5.2,
        2,
    )
}

fn path_for(spec: &SceneSpec, resolution: (u32, u32), start: f32) -> CameraPath {
    CameraPath::orbit_arc(spec.orbit(resolution.0, resolution.1), start, 2.0, FRAMES)
}

fn main() {
    let spec = SceneSpec {
        object_count: 10,
        extent: 1.2,
        ..SceneSpec::demo("multi-user", 2026)
    }
    .with_flavor(SceneFlavor::Object)
    .with_detail(0.08);
    println!("Baking the shared scene once...");
    let scene = Arc::new(spec.bake());

    let mut server = RenderServer::new(Arc::clone(&scene))
        .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
        .with_policy(WeightedFair::new());
    let mut names = Vec::new();
    let mut handles = Vec::new();
    for (name, renderer, resolution, start, weight) in users() {
        let mut request = SessionRequest::new(renderer, path_for(&spec, resolution, start))
            .weight(weight)
            .label(name);
        let deadline_bound = name.starts_with("carol");
        if deadline_bound {
            request = request.deadline_hz(CAROL_DEADLINE_HZ);
        }
        let handle = server.admit(request);
        names.push(name);
        handles.push(handle);
        println!(
            "  {handle}: {name} @{}x{} (weight {weight}){}",
            resolution.0,
            resolution.1,
            if deadline_bound {
                format!(" [deadline {CAROL_DEADLINE_HZ} Hz sim]")
            } else {
                String::new()
            }
        );
    }

    // Determinism proof runs alongside serving: alice's served frames
    // must be bit-identical to a standalone session on the same path.
    let (_, alice_renderer, alice_res, alice_start, _) = users().remove(0);
    let mut solo = RenderSession::new(
        Arc::clone(&scene),
        alice_renderer,
        path_for(&spec, alice_res, alice_start),
    );
    let mut checked = 0;

    println!(
        "\nServing {} frames under '{}' with mid-serve churn...",
        server.remaining(),
        server.policy_name()
    );
    let mut delivered = 0usize;
    while let Some(frame) = server.next_frame() {
        delivered += 1;
        let sim = frame.report.sim.as_ref().expect("server simulates");
        println!(
            "  {:<18} frame {}: {:>8.1} FPS ({:>5.2} W){}",
            names[frame.session],
            frame.report.index,
            sim.fps(),
            sim.power_w(),
            if frame.report.boundary_reconfiguration {
                "  [reconfigured]"
            } else {
                ""
            },
        );
        if frame.session == 0 {
            let reference = solo.next_frame().expect("same path length");
            assert_eq!(
                frame.report.image.pixels(),
                reference.image.pixels(),
                "served frame {} must be bit-identical to the standalone session",
                frame.report.index
            );
            solo.recycle(reference.image);
            checked += 1;
        }
        server.recycle(frame.session, frame.report.image);

        // Churn, keyed to delivered-frame counts (deterministic at any
        // thread count): erin joins after 4 frames, bob leaves after 8.
        if delivered == 4 {
            let (name, renderer, resolution, start, weight) = late_user();
            let handle = server.admit(
                SessionRequest::new(renderer, path_for(&spec, resolution, start))
                    .weight(weight)
                    .label(name),
            );
            names.push(name);
            handles.push(handle);
            println!("  >> admitted {handle}: {name} (weight {weight}) mid-serve");
        }
        if delivered == 8 {
            assert!(server.close(handles[1]), "bob's session accepts the close");
            println!("  >> closed {}: {} leaves early", handles[1], names[1]);
        }
    }

    let summary = server.summary();
    assert!(summary.is_consistent());
    assert_eq!(summary.policy, "weighted_fair");
    assert_eq!(summary.admissions, 1);
    assert_eq!(summary.closes, 1);
    println!("\nPer-user streams (weighted fair shares of accelerator sim-time):");
    for stats in &summary.per_session {
        assert_eq!(
            stats.framebuffer_allocations, 1,
            "each user keeps one framebuffer for its whole stream"
        );
        println!(
            "  {:<18} weight {} | {} frames | sim-time share {:>5.1}% | {} boundary reconfigs{}",
            names[stats.session],
            stats.weight,
            stats.frames,
            100.0 * summary.sim_time_share(stats.session),
            stats.boundary_reconfigurations,
            if stats.closed_early {
                " | closed early"
            } else {
                ""
            },
        );
    }
    let bob = summary.session(handles[1].id()).expect("bob served");
    assert!(bob.closed_early, "bob's tail was cancelled");
    assert!(bob.frames < FRAMES, "bob left before his path finished");
    let erin = summary
        .session(handles[4].id())
        .expect("erin admitted mid-serve");
    assert_eq!(erin.frames, FRAMES, "the late joiner is served fully");
    let carol = summary.session(handles[2].id()).expect("carol served");
    assert_eq!(carol.deadline_hz, Some(CAROL_DEADLINE_HZ));
    let carol_worst = carol
        .worst_slack
        .expect("deadline accounting engaged for carol");
    assert_eq!(
        summary.deadline_misses, carol.deadline_misses,
        "carol is the only deadline-bound user"
    );
    println!(
        "\nDeadline report ({}): {} of {} frames missed ({:.0}% miss rate), \
         worst slack {:+.2} ms sim, p50/p99 frame latency {:.2}/{:.2} ms sim",
        names[carol.session],
        carol.deadline_misses,
        carol.frames,
        100.0 * summary.deadline_miss_rate(),
        1e3 * carol_worst,
        1e3 * carol.latency_p50,
        1e3 * carol.latency_p99,
    );
    println!(
        "\nSchedule: {} frames, sim {:.1} FPS aggregate, {:.2} reconfigs/frame \
         ({} at boundaries, {} avoided), {} admission / {} close mid-serve",
        summary.scheduled_frames,
        summary.mean_fps(),
        summary.reconfigurations_per_frame(),
        summary.boundary_reconfigurations,
        summary.boundary_switches_avoided,
        summary.admissions,
        summary.closes,
    );

    assert_eq!(checked, FRAMES);
    println!(
        "\nDeterminism check: {checked}/{FRAMES} served frames bit-identical to a \
         standalone session."
    );
}
