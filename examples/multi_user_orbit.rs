//! Multi-user serving scenario: one Uni-Render accelerator, one baked
//! scene, four concurrent "users" — each its own camera orbit,
//! resolution, and pipeline choice — served through a [`RenderServer`].
//!
//! The server shares the scene behind an `Arc` (no per-user copies),
//! schedules user frames round-robin across persistent worker lanes, and
//! charges a PE-array reconfiguration whenever consecutively scheduled
//! frames switch renderer families — the cross-renderer cost a unified
//! accelerator pays for serving a *mixed* population, amortized wherever
//! neighbouring frames happen to agree.
//!
//! Delivery is deterministic: the example proves it by re-rendering one
//! user's stream with a standalone [`RenderSession`] and asserting every
//! frame is bit-identical.
//!
//! ```sh
//! cargo run --release --example multi_user_orbit
//! ```

use std::sync::Arc;
use uni_render::prelude::*;
use uni_render::scene::SceneFlavor;

const FRAMES: usize = 6;

/// Display name, pipeline, resolution, and orbit start angle of a user.
type User = (&'static str, Box<dyn Renderer + Send>, (u32, u32), f32);

/// The four users: pipeline, resolution, orbit start angle.
fn users() -> Vec<User> {
    vec![
        (
            "alice (gaussian)",
            Box::new(GaussianPipeline::default()),
            (256, 192),
            0.0,
        ),
        (
            "bob (mesh)",
            Box::new(MeshPipeline::default()),
            (320, 240),
            1.3,
        ),
        (
            "carol (hash-grid)",
            Box::new(HashGridPipeline::default()),
            (192, 144),
            2.6,
        ),
        (
            "dave (mlp)",
            Box::new(MlpPipeline::default()),
            (128, 96),
            3.9,
        ),
    ]
}

fn path_for(spec: &SceneSpec, resolution: (u32, u32), start: f32) -> CameraPath {
    CameraPath::orbit_arc(spec.orbit(resolution.0, resolution.1), start, 2.0, FRAMES)
}

fn main() {
    let spec = SceneSpec {
        object_count: 10,
        extent: 1.2,
        ..SceneSpec::demo("multi-user", 2026)
    }
    .with_flavor(SceneFlavor::Object)
    .with_detail(0.08);
    println!("Baking the shared scene once...");
    let scene = Arc::new(spec.bake());

    let mut server = RenderServer::new(Arc::clone(&scene))
        .with_accelerator(Accelerator::new(AcceleratorConfig::paper()));
    let mut names = Vec::new();
    for (name, renderer, resolution, start) in users() {
        let id = server.add_session(SessionRequest::new(
            renderer,
            path_for(&spec, resolution, start),
        ));
        names.push(name);
        println!("  session {id}: {name} @{}x{}", resolution.0, resolution.1);
    }

    println!("\nServing {} frames round-robin...", server.remaining());
    while let Some(frame) = server.next_frame() {
        let sim = frame.report.sim.as_ref().expect("server simulates");
        println!(
            "  {:<18} frame {}: {:>8.1} FPS ({:>5.2} W){}",
            names[frame.session],
            frame.report.index,
            sim.fps(),
            sim.power_w(),
            if frame.report.boundary_reconfiguration {
                "  [reconfigured]"
            } else {
                ""
            },
        );
        server.recycle(frame.session, frame.report.image);
    }

    let summary = server.summary();
    assert!(summary.is_consistent());
    println!("\nPer-user streams:");
    for stats in &summary.per_session {
        assert_eq!(stats.frames, FRAMES);
        assert_eq!(
            stats.framebuffer_allocations, 1,
            "each user keeps one framebuffer for its whole stream"
        );
        println!(
            "  {:<18} {} frames, sim {:>7.1} FPS, {} boundary reconfigs \
             ({} avoided), 1 framebuffer",
            names[stats.session],
            stats.frames,
            stats.mean_fps(),
            stats.boundary_reconfigurations,
            stats.boundary_switches_avoided,
        );
    }
    println!(
        "\nSchedule: {} frames, sim {:.1} FPS aggregate, {:.2} reconfigs/frame \
         ({} at boundaries, {} avoided)",
        summary.scheduled_frames,
        summary.mean_fps(),
        summary.reconfigurations_per_frame(),
        summary.boundary_reconfigurations,
        summary.boundary_switches_avoided,
    );

    // Determinism proof: alice's served frames are bit-identical to a
    // standalone session rendering the same path alone.
    let (_, renderer, resolution, start) = users().remove(0);
    let mut solo = RenderSession::new(
        Arc::clone(&scene),
        renderer,
        path_for(&spec, resolution, start),
    );
    let mut served =
        RenderServer::new(scene).with_accelerator(Accelerator::new(AcceleratorConfig::paper()));
    for (_, renderer, resolution, start) in users() {
        served.add_session(SessionRequest::new(
            renderer,
            path_for(&spec, resolution, start),
        ));
    }
    let mut checked = 0;
    while let Some(frame) = served.next_frame() {
        if frame.session == 0 {
            let reference = solo.next_frame().expect("same path length");
            assert_eq!(
                frame.report.image.pixels(),
                reference.image.pixels(),
                "served frame {} must be bit-identical to the standalone session",
                frame.report.index
            );
            solo.recycle(reference.image);
            checked += 1;
        }
        served.recycle(frame.session, frame.report.image);
    }
    assert_eq!(checked, FRAMES);
    println!("\nDeterminism check: {checked}/{FRAMES} served frames bit-identical to a standalone session.");
}
