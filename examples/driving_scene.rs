//! Autonomous-driving scenario (Fig. 1 motivation): a large unbounded
//! outdoor scene rendered with the two storage-efficient volume pipelines
//! (low-rank decomposed grid and hash grid), sweeping rendering resolution
//! to find the largest real-time operating point on the accelerator.
//!
//! ```sh
//! cargo run --release --example driving_scene
//! ```

use uni_render::prelude::*;
use uni_render::scene::storage::representation_megabytes;
use uni_render::scene::{ReprParams, SceneFlavor};

fn main() {
    let spec = SceneSpec {
        name: "driving".into(),
        seed: 77,
        flavor: SceneFlavor::Outdoor,
        object_count: 14,
        extent: 12.0,
        detail: 1.0,
        repr: ReprParams::unbounded_scale(),
    }
    .with_detail(0.08);
    println!("Baking the street scene (unbounded flavor, 14 objects)...");
    let scene = spec.bake();
    let accel = Accelerator::new(AcceleratorConfig::paper());

    for renderer in [
        Box::new(LowRankPipeline::default()) as Box<dyn Renderer>,
        Box::new(HashGridPipeline::default()) as Box<dyn Renderer>,
    ] {
        let pipeline = renderer.pipeline();
        let storage = representation_megabytes(&spec, pipeline);
        println!("\n=== {pipeline} pipeline ({storage:.0} MB on-vehicle model) ===");
        for (w, h) in [(640u32, 360u32), (1280, 720), (1920, 1080)] {
            let camera = scene.spec().orbit(w, h).camera_at(0.35);
            let trace = renderer.trace(&scene, &camera);
            let report = accel.simulate(&trace);
            println!(
                "  {w:>4}x{h:<4} {:>7.1} FPS, {:>5.2} W, {:>6.1} MB DRAM/frame -> {}",
                report.fps(),
                report.power_w(),
                report.dram_bytes as f64 / 1e6,
                if report.is_real_time() {
                    "real-time"
                } else {
                    "below 30 FPS"
                },
            );
        }
    }
    println!(
        "\nThe sweep shows where each pipeline's real-time envelope ends on a 5 W edge budget."
    );
}
