//! # Uni-Render
//!
//! A from-scratch reproduction of **"Uni-Render: A Unified Accelerator for
//! Real-Time Rendering Across Diverse Neural Renderers"** (HPCA 2025).
//!
//! The workspace implements, in pure Rust:
//!
//! - the five typical neural rendering pipelines the paper unifies (mesh,
//!   MLP, low-rank-decomposed-grid, hash-grid, 3D-Gaussian) plus the MixRT
//!   hybrid, as reference software renderers ([`renderers`]);
//! - the micro-operator abstraction of Sec. IV — five common micro-operators,
//!   each an indexing task plus a reduction task ([`microops`]);
//! - the Uni-Render accelerator itself as a cycle-level simulator with the
//!   reconfigurable PE array, Mode 1/Mode 2 data networks, per-micro-operator
//!   dataflows, and a 28 nm energy/area model ([`accel`]);
//! - calibrated models of every baseline device and accelerator the paper
//!   benchmarks against ([`baselines`]);
//! - scene representations, procedural scene baking, and dataset catalogs
//!   ([`scene`], [`geometry`]).
//!
//! This facade crate re-exports the member crates and offers a [`prelude`].
//!
//! # Quickstart
//!
//! ```
//! use uni_render::prelude::*;
//!
//! // Bake a small procedural scene into all five representations.
//! let spec = SceneSpec::demo("quickstart", 42).with_detail(0.25);
//! let scene = spec.bake();
//!
//! // Render one frame with the hash-grid pipeline and trace its micro-ops.
//! let camera = scene.orbit().camera_at(0.8).with_resolution(64, 48);
//! let renderer = HashGridPipeline::default();
//! let image = renderer.render(&scene, &camera);
//! assert_eq!(image.width(), 64);
//!
//! // Simulate the frame on the Uni-Render accelerator.
//! let trace = renderer.trace(&scene, &camera);
//! let accel = Accelerator::new(AcceleratorConfig::paper());
//! let report = accel.simulate(&trace);
//! assert!(report.fps() > 0.0);
//! ```

pub use uni_baselines as baselines;
pub use uni_core as accel;
pub use uni_geometry as geometry;
pub use uni_microops as microops;
pub use uni_renderers as renderers;
pub use uni_scene as scene;

/// Commonly used items across the workspace.
pub mod prelude {
    pub use uni_baselines::{all_baselines, commercial_devices, dedicated_accelerators, Device};
    pub use uni_core::{Accelerator, AcceleratorConfig, SimReport};
    pub use uni_geometry::{Aabb, Camera, Image, Mat4, Ray, Rgb, Vec2, Vec3, Vec4};
    pub use uni_microops::{MicroOp, Pipeline, Trace};
    pub use uni_renderers::{
        GaussianPipeline, HashGridPipeline, LowRankPipeline, MeshPipeline, MixRtPipeline,
        MlpPipeline, Renderer,
    };
    pub use uni_scene::{BakedScene, SceneSpec};
}
