//! # Uni-Render
//!
//! A from-scratch reproduction of **"Uni-Render: A Unified Accelerator for
//! Real-Time Rendering Across Diverse Neural Renderers"** (HPCA 2025).
//!
//! The workspace implements, in pure Rust:
//!
//! - the five typical neural rendering pipelines the paper unifies (mesh,
//!   MLP, low-rank-decomposed-grid, hash-grid, 3D-Gaussian) plus the MixRT
//!   hybrid, as reference software renderers ([`renderers`]);
//! - the micro-operator abstraction of Sec. IV — five common micro-operators,
//!   each an indexing task plus a reduction task ([`microops`]);
//! - the Uni-Render accelerator itself as a cycle-level simulator with the
//!   reconfigurable PE array, Mode 1/Mode 2 data networks, per-micro-operator
//!   dataflows, and a 28 nm energy/area model ([`accel`]);
//! - calibrated models of every baseline device and accelerator the paper
//!   benchmarks against ([`baselines`]);
//! - scene representations, procedural scene baking, and dataset catalogs
//!   ([`scene`], [`geometry`]).
//!
//! This facade crate re-exports the member crates and offers a [`prelude`].
//!
//! # Quickstart: stream a camera path
//!
//! Rendering is frame-stream-first: a [`engine::RenderSession`] owns a
//! baked scene, a renderer, a reusable framebuffer pool, and a camera
//! path, and yields one [`engine::FrameReport`] per frame — the rendered
//! image plus the frame's micro-operator trace and simulated accelerator
//! report. Recycling each frame's buffer keeps the stream allocation-free
//! after the first frame; the end-of-stream summary reports throughput
//! and the reconfigurations amortized across frame boundaries. With an
//! accelerator attached the session pipelines by default — frame `N+1`
//! renders while frame `N`'s dataflow replay simulates — which double
//! buffers (two framebuffer allocations, not one) without changing a
//! single delivered bit.
//!
//! ```
//! use uni_render::prelude::*;
//!
//! // Bake a small procedural scene into all five representations.
//! let spec = SceneSpec::demo("quickstart", 42).with_detail(0.25);
//! let scene = spec.bake();
//!
//! // Stream a 4-frame orbit through the hash-grid pipeline, simulating
//! // every frame on the Uni-Render accelerator.
//! let path = CameraPath::orbit(spec.orbit(64, 48), 4);
//! let mut session = RenderSession::new(scene, Box::new(HashGridPipeline::default()), path)
//!     .with_accelerator(Accelerator::new(AcceleratorConfig::paper()));
//! while let Some(frame) = session.next_frame() {
//!     assert_eq!(frame.image.width(), 64);
//!     assert!(frame.sim.as_ref().expect("simulated").fps() > 0.0);
//!     session.recycle(frame.image); // reuse the framebuffer
//! }
//! let summary = session.summary();
//! assert_eq!(summary.frames, 4);
//! // Render/replay pipelining double-buffers; `with_overlap(false)`
//! // (or UNI_RENDER_OVERLAP=0) restores the single-buffer stream.
//! assert_eq!(summary.framebuffer_allocations, 2);
//! assert!(summary.mean_fps() > 0.0);
//! ```
//!
//! One-shot rendering is still available: `renderer.render(&scene,
//! &camera)` allocates a frame, and `renderer.render_into(&scene,
//! &camera, &mut image)` writes into a caller-owned target.

pub use uni_baselines as baselines;
pub use uni_core as accel;
pub use uni_engine as engine;
pub use uni_geometry as geometry;
pub use uni_microops as microops;
pub use uni_parallel as parallel;
pub use uni_renderers as renderers;
pub use uni_scene as scene;

/// Commonly used items across the workspace.
pub mod prelude {
    pub use uni_baselines::{all_baselines, commercial_devices, dedicated_accelerators, Device};
    pub use uni_core::{Accelerator, AcceleratorConfig, ReplayScratch, SimReport};
    pub use uni_engine::{
        AdmissionControl, AdmitDecision, CameraPath, CostAware, DegradePolicy, EarliestDeadline,
        FleetAdmitDecision, FleetCacheStats, FleetFrame, FleetHandle, FleetSessionRequest,
        FleetSummary, FramePool, FrameReport, LoadView, PolicyContext, Priority, RenderServer,
        RenderSession, RoundRobin, SceneCache, SceneCacheConfig, SceneKey, ScheduleContext,
        SchedulePolicy, ServedFrame, ServerFleet, ServerSummary, SessionHandle, SessionRequest,
        SessionStats, SessionView, ShardSummary, StreamSummary, SwitchCostModel, WeightedFair,
    };
    pub use uni_geometry::{Aabb, Camera, Image, Mat4, Orbit, Ray, Rgb, Vec2, Vec3, Vec4};
    pub use uni_microops::{MicroOp, Pipeline, Trace};
    pub use uni_renderers::{
        GaussianPipeline, HashGridPipeline, LowRankPipeline, MeshPipeline, MixRtPipeline,
        MlpPipeline, Renderer,
    };
    pub use uni_scene::{BakedScene, SceneSpec};
}
