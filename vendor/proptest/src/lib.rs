//! Offline mini re-implementation of the slice of `proptest` this
//! workspace uses.
//!
//! The build environment has no crates.io access, so the real crate cannot
//! be fetched. This crate covers exactly the API surface the tests rely
//! on:
//!
//! - `proptest! { ... }` blocks (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`);
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assume!`;
//! - range strategies (`0f32..=1.0`, `1u64..4_000_000`, ...), tuple
//!   strategies, `.prop_map`, and `proptest::collection::vec`.
//!
//! Unlike the real crate it does **not** shrink failures; it reports the
//! failing assertion message and the deterministic per-test seed instead.
//! Generation is deterministic per test name, so failures reproduce.

pub mod test_runner {
    /// Per-test configuration (only `cases` is honored).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Why one generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was vetoed by `prop_assume!` — try another.
        Reject(String),
        /// A `prop_assert!` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }
    }

    /// Result of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic xorshift64* RNG seeded from the test's path.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test name (FNV-1a over the bytes).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                state: if h == 0 { 0x9E37_79B9_7F4A_7C15 } else { h },
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `f64` in `[0, 1]`.
        pub fn unit_f64_inclusive(&mut self) -> f64 {
            self.next_u64() as f64 / u64::MAX as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A value generator. `generate` replaces the real crate's value-tree
    /// machinery; there is no shrinking.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = u128::from(rng.next_u64()) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = u128::from(rng.next_u64()) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                    // Guard against rounding up to the excluded endpoint.
                    if v >= self.end { self.start } else { v }
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (hi - lo) * rng.unit_f64_inclusive() as $t
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with element strategy `S` and a half-open
    /// length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    ///
    /// The concrete `Range<usize>` parameter (instead of a generic length
    /// strategy) lets bare literals like `1..200` infer `usize`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The items tests import with `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests. Mirrors `proptest::proptest!` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$attr:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(100).saturating_add(1000),
                        "proptest {}: too many rejected cases",
                        stringify!($name),
                    );
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let result: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    match result {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest {} failed (case {accepted}): {msg}", stringify!($name));
                        }
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        // Bind first so negation applies to a `bool`, not to a possibly
        // partially-ordered comparison expression (clippy::neg_cmp_op_...).
        let holds: bool = $cond;
        if !holds {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond),
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        let holds: bool = $cond;
        if !holds {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(left, right)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right,
            )));
        }
    }};
}

/// `prop_assume!(cond)` — rejects the case (retries) when false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        let holds: bool = $cond;
        if !holds {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = (1u32..10).generate(&mut rng);
            assert!((1..10).contains(&v));
            let f = (-2f32..=2.0).generate(&mut rng);
            assert!((-2.0..=2.0).contains(&f));
            let n = (3usize..4).generate(&mut rng);
            assert_eq!(n, 3);
        }
    }

    #[test]
    fn vec_strategy_honors_length_range() {
        let mut rng = crate::test_runner::TestRng::from_name("vec");
        for _ in 0..100 {
            let v = crate::collection::vec(0u32..5, 1usize..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_and_maps(x in 0u64..100, (a, b) in (0f32..1.0, 0f32..1.0)) {
            prop_assume!(x != 55);
            prop_assert!(x < 100);
            prop_assert_eq!(x, x);
            prop_assert!(a + b < 2.0, "sum {} out of range", a + b);
        }

        #[test]
        fn prop_map_applies(v in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0);
        }
    }
}
