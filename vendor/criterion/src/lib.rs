//! Offline mini re-implementation of the slice of `criterion` this
//! workspace uses.
//!
//! The build environment has no crates.io access. This harness keeps the
//! same bench-source syntax (`Criterion`, groups, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`) and measures with plain
//! `std::time::Instant`: a warm-up call, an iteration count sized to a
//! fixed target wall-time, then mean time per iteration printed one line
//! per benchmark. No statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement wall-time per benchmark.
const TARGET_MEASURE: Duration = Duration::from_millis(800);

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/name` identifier.
    pub id: String,
    /// Iterations measured.
    pub iters: u64,
    /// Mean seconds per iteration.
    pub secs_per_iter: f64,
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    measurements: Vec<Measurement>,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(self, None, name, f);
        self
    }

    /// All measurements recorded so far (used by harness mains that emit
    /// machine-readable results).
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-targeted here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let name = id.to_string();
        run_one(self.criterion, Some(&self.name), &name, f);
        self
    }

    /// Benchmarks `f` with an input reference under `id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = id.0;
        run_one(self.criterion, Some(&self.name), &name, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }
}

/// Passed to bench closures; `iter` performs the measurement.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `f`: one warm-up call, then a time-targeted batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_start = Instant::now();
        black_box(f());
        let once = warm_start.elapsed().max(Duration::from_nanos(20));
        let iters = (TARGET_MEASURE.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    criterion: &mut Criterion,
    group: Option<&str>,
    name: &str,
    mut f: F,
) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    let id = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    let iters = bencher.iters.max(1);
    let secs = bencher.elapsed.as_secs_f64() / iters as f64;
    println!(
        "bench {id:<50} {:>12.3} µs/iter ({iters} iters)",
        secs * 1e6
    );
    criterion.measurements.push(Measurement {
        id,
        iters,
        secs_per_iter: secs,
    });
}

/// Declares a function running the given benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_records() {
        let mut criterion = Criterion::default();
        criterion
            .benchmark_group("g")
            .bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        let m = &criterion.measurements()[0];
        assert_eq!(m.id, "g/add");
        assert!(m.secs_per_iter >= 0.0);
        assert!(m.iters >= 1);
    }
}
