//! Offline stand-in for the `serde` facade.
//!
//! Exposes `Serialize` / `Deserialize` in both the trait and derive-macro
//! namespaces, exactly like `serde` with the `derive` feature, so
//! `use serde::{Deserialize, Serialize};` plus `#[derive(...)]` compiles
//! unchanged. No serialization machinery is provided — nothing in this
//! workspace serializes through serde (JSON output is hand-rolled).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
