//! No-op derive macros mirroring `serde_derive`'s surface.
//!
//! The workspace builds in a hermetic environment with no crates.io
//! access, and nothing in the repo actually serializes through serde (the
//! harness binaries hand-roll their JSON). These derives accept the same
//! syntax as the real crate and expand to nothing, so the annotations stay
//! in place for a future swap to the real dependency.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
