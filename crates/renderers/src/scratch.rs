//! Per-thread scratch arenas for the scanline pipelines.
//!
//! Every volume/raster pipeline needs the same small set of per-ray
//! buffers: stratified sample distances, a fetched-feature vector, MLP
//! forward activations, and (for KiloNeRF) an encoding buffer. Band
//! workers borrow them from a thread-local arena, so the steady-state
//! per-pixel loops never touch the allocator and parallel bands get
//! disjoint buffers for free.
//!
//! The thread-local is consulted only at the *band boundary* (one
//! [`with_ray_scratch`] call per band closure); everything below it —
//! `render_rows` / `shade_rows` and the per-ray loops — takes the
//! [`RayScratch`] as an explicit `&mut` parameter, so the data path is
//! visible in the signatures and callers with their own arenas (tests,
//! future batching layers) can bypass the thread-local entirely.

use std::cell::RefCell;
use uni_scene::{KiloNerfScratch, MlpScratch};

/// Number of image rows a parallel band covers in the scanline pipelines.
/// 16 matches the PE pixel-region tiling of the Geometric Processing
/// dataflow (Fig. 10) and the 3DGS patch height.
pub(crate) const BAND_ROWS: u32 = 16;

/// Reusable per-ray buffers.
#[derive(Debug, Default)]
pub(crate) struct RayScratch {
    /// Stratified sample distances along the current ray.
    pub ts: Vec<f32>,
    /// Fetched feature vector (hash grid, tri-plane, texture).
    pub feats: Vec<f32>,
    /// Decoder / deferred MLP activations.
    pub mlp: MlpScratch,
    /// KiloNeRF query buffers.
    pub kilo: KiloNerfScratch,
}

/// Reusable whole-frame rasterization buffers (mesh + hybrid pipelines).
///
/// Consulted once per frame on the orchestrating thread (not per band),
/// so the Z-buffer and the projected-vertex cache stop being per-frame
/// allocations once their capacities settle.
#[derive(Debug, Default)]
pub(crate) struct RasterScratch {
    /// Per-pixel nearest-hit buffer, row-major.
    pub zbuf: Vec<Option<crate::mesh_pipeline::PixelHitPublic>>,
    /// Per-vertex projected screen position + depth.
    pub projected: Vec<Option<(uni_geometry::Vec2, f32)>>,
}

thread_local! {
    static RAY: RefCell<RayScratch> = RefCell::new(RayScratch::default());
    static RASTER: RefCell<RasterScratch> = RefCell::new(RasterScratch::default());
    static PROBE_TARGET: RefCell<uni_geometry::Image> =
        RefCell::new(uni_geometry::Image::empty());
}

/// Runs `f` with this thread's ray scratch.
pub(crate) fn with_ray_scratch<R>(f: impl FnOnce(&mut RayScratch) -> R) -> R {
    RAY.with(|cell| f(&mut cell.borrow_mut()))
}

/// Runs `f` with this thread's rasterization scratch.
pub(crate) fn with_raster_scratch<R>(f: impl FnOnce(&mut RasterScratch) -> R) -> R {
    RASTER.with(|cell| f(&mut cell.borrow_mut()))
}

/// Runs `f` with this thread's reusable probe render target. `trace`
/// implementations render their workload probe into it, so per-frame
/// tracing (frame streams trace every frame) allocates no framebuffer
/// in steady state.
pub(crate) fn with_probe_target<R>(f: impl FnOnce(&mut uni_geometry::Image) -> R) -> R {
    PROBE_TARGET.with(|cell| f(&mut cell.borrow_mut()))
}
