//! The hybrid MixRT-style pipeline (Sec. VII-C): mesh rasterization for
//! geometry + a hash-grid color field for appearance.
//!
//! MixRT [51] combines the mesh pipeline's fast geometry resolution with
//! the hash-grid pipeline's compact view-dependent appearance: the
//! rasterizer finds the surface point per pixel, then a single hash-grid
//! fetch + decoder MLP evaluation shades it (no per-ray marching). This is
//! the pipeline that crosses the most micro-operator families per frame —
//! the stress test for the accelerator's reconfigurability.

use crate::mesh_pipeline::{rasterize, rasterize_scalar, PixelHitPublic};
use crate::probe::Probe;
use crate::Renderer;
use uni_geometry::{Camera, Image, Rgb};
use uni_microops::{Dims, IndexFunction, Invocation, Pipeline, PrimitiveKind, Trace, Workload};
use uni_scene::{BakedScene, TriangleMesh, PEAK_DENSITY};

/// The hybrid mesh + hash-grid pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MixRtPipeline {}

impl MixRtPipeline {
    /// Surface-shades rows `[y0, y0 + rows)` from the hit buffer: one
    /// hash fetch + decoder evaluation per covered pixel, using the
    /// caller's ray scratch arena.
    fn shade_rows(
        &self,
        scene: &BakedScene,
        camera: &Camera,
        hits: &[Option<PixelHitPublic>],
        y0: u32,
        chunk: &mut [Rgb],
        rs: &mut crate::scratch::RayScratch,
    ) {
        let bg = scene.field().background();
        let grid = scene.hashgrid();
        let decoder = scene.hash_decoder();
        let mesh = scene.mesh();
        let width = camera.width as usize;
        let rows = chunk.len() / width.max(1);
        {
            let crate::scratch::RayScratch { feats, mlp, .. } = rs;
            feats.clear();
            feats.resize(grid.config().feature_dim() as usize, 0.0);
            for dy in 0..rows {
                let y = y0 + dy as u32;
                let row = &mut chunk[dy * width..(dy + 1) * width];
                for x in 0..camera.width {
                    let Some(hit) = hits[(y * camera.width + x) as usize] else {
                        continue;
                    };
                    // Surface point from the rasterizer's barycentrics.
                    let [a, b, c] = mesh.triangle(hit.triangle as usize);
                    let (w0, w1, w2) = hit.bary;
                    let p = a * w0 + b * w1 + c * w2;
                    grid.fetch(p, feats);
                    let out = decoder.forward_scratch(feats, mlp);
                    // The decoded density gates surface confidence; color
                    // comes from the field decode.
                    let density = out[0].max(0.0) * PEAK_DENSITY;
                    let color = Rgb::new(
                        out[1].clamp(0.0, 1.0),
                        out[2].clamp(0.0, 1.0),
                        out[3].clamp(0.0, 1.0),
                    );
                    let confidence = (density / 8.0).clamp(0.0, 1.0);
                    row[x as usize] = bg.lerp(color, confidence);
                }
            }
        }
    }

    /// Single-threaded whole-frame reference path (parity/bench baseline).
    pub fn render_scalar(&self, scene: &BakedScene, camera: &Camera) -> Image {
        let (hits, _) = rasterize_scalar(scene.mesh(), camera);
        let mut img = Image::new(camera.width, camera.height, scene.field().background());
        crate::scratch::with_ray_scratch(|rs| {
            self.shade_rows(scene, camera, &hits, 0, img.pixels_mut(), rs);
        });
        img
    }
}

impl Renderer for MixRtPipeline {
    fn pipeline(&self) -> Pipeline {
        Pipeline::HybridMixRt
    }

    fn render_into(&self, scene: &BakedScene, camera: &Camera, target: &mut Image) {
        let bg = scene.field().background();
        target.resize(camera.width, camera.height, bg);
        let width = camera.width as usize;
        let band_rows = crate::scratch::BAND_ROWS;
        crate::scratch::with_raster_scratch(|raster| {
            crate::mesh_pipeline::rasterize_into(scene.mesh(), camera, raster);
            let hits = &raster.zbuf;
            uni_parallel::par_bands(
                target.pixels_mut(),
                band_rows as usize * width,
                |band, chunk| {
                    crate::scratch::with_ray_scratch(|rs| {
                        self.shade_rows(scene, camera, hits, band as u32 * band_rows, chunk, rs);
                    });
                },
            );
        });
    }

    fn trace(&self, scene: &BakedScene, camera: &Camera) -> Trace {
        let probe = Probe::plan(camera);
        let (_, stats) = {
            let (hits, stats) = rasterize(scene.mesh(), &probe.camera);
            (hits, stats)
        };
        let mut trace = Trace::new(Pipeline::HybridMixRt, camera.width, camera.height);

        let repr = &scene.spec().repr;
        let full_tris = u64::from(repr.target_triangles);
        let baked_tris = scene.mesh().triangle_count().max(1) as u64;
        let tri_ratio = full_tris as f64 / baked_tris as f64;
        let verts = (stats.vertices_projected as f64 * tri_ratio) as u64;
        let streamed = (stats.triangles_streamed as f64 * tri_ratio) as u64;
        let covered = probe.scale(stats.covered_pixels);

        // (1) Space conversion.
        trace.push(Invocation::new(
            "space conversion",
            Workload::Gemm {
                batch: verts,
                in_dim: 4,
                out_dim: 4,
                weight_bytes: 32,
            },
        ));

        // (2) Rasterization.
        trace.push(Invocation::new(
            "rasterization",
            Workload::Geometric {
                kind: PrimitiveKind::Triangle,
                primitives: streamed,
                candidate_pairs: probe.scale(stats.candidate_pairs),
                hits: probe.scale(stats.zbuffer_updates),
                prim_bytes: TriangleMesh::BYTES_PER_TRIANGLE,
                output_pixels: camera.pixel_count(),
            },
        ));

        // (3) One hash fetch per covered pixel (MixRT stores a reduced
        // color field — half the full hash budget, since surface shading
        // needs appearance only).
        trace.push(Invocation::new(
            "surface hash indexing",
            Workload::GridIndex {
                points: covered.max(1),
                levels: repr.hash.levels,
                corners: 8,
                feature_dim: repr.hash.features_per_entry,
                table_bytes: repr.hash.storage_bytes() / 2,
                function: IndexFunction::RandomHash,
                dims: Dims::D3,
                decomposed: false,
            },
        ));

        // (4) Decoder MLP per covered pixel.
        let in_dim = repr.hash.feature_dim();
        let layer_dims: [(u32, u32); 3] = [(in_dim, 64), (64, 64), (64, 4)];
        for (i, (ind, outd)) in layer_dims.into_iter().enumerate() {
            let params = u64::from(ind) * u64::from(outd) + u64::from(outd);
            trace.push(Invocation::new(
                format!("surface decoder layer {i}"),
                Workload::Gemm {
                    batch: covered.max(1),
                    in_dim: ind,
                    out_dim: outd,
                    weight_bytes: params * 2,
                },
            ));
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use uni_microops::MicroOp;

    #[test]
    fn renders_content() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 64, 48);
        let img = MixRtPipeline::default().render(scene, &camera);
        let bg = scene.field().background();
        let non_bg = img
            .pixels()
            .iter()
            .filter(|p| (p.r - bg.r).abs() + (p.g - bg.g).abs() + (p.b - bg.b).abs() > 0.05)
            .count();
        assert!(non_bg > 100, "{non_bg} non-background pixels");
    }

    #[test]
    fn hybrid_trace_crosses_three_op_families() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 640, 480);
        let trace = MixRtPipeline::default().trace(scene, &camera);
        let ops = trace.micro_ops_used();
        assert!(ops.contains(&MicroOp::Gemm));
        assert!(ops.contains(&MicroOp::GeometricProcessing));
        assert!(ops.contains(&MicroOp::CombinedGridIndexing));
        assert!(trace.reconfiguration_count() >= 3);
    }

    #[test]
    fn no_per_ray_marching_single_fetch_per_pixel() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 640, 480);
        let hybrid = MixRtPipeline::default().trace(scene, &camera);
        let hash_points = hybrid
            .iter()
            .find(|i| i.stage() == "surface hash indexing")
            .map(|i| match i.workload() {
                Workload::GridIndex { points, .. } => *points,
                _ => panic!(),
            })
            .expect("hash stage");
        // At most one fetch per pixel — versus samples-per-ray fetches in
        // the pure hash-grid pipeline.
        assert!(hash_points <= camera.pixel_count());
    }

    #[test]
    fn hybrid_is_cheaper_than_pure_hash_grid() {
        use crate::hashgrid_pipeline::HashGridPipeline;
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 640, 480);
        let hybrid = MixRtPipeline::default().trace(scene, &camera).total_cost();
        let hash = HashGridPipeline::default()
            .trace(scene, &camera)
            .total_cost();
        assert!(
            hybrid.fp_macs < hash.fp_macs,
            "one fetch/pixel beats marching: {} vs {}",
            hybrid.fp_macs,
            hash.fp_macs
        );
    }
}
