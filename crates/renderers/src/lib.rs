//! Reference software implementations of the neural rendering pipelines.
//!
//! Each pipeline of Sec. II is implemented end to end over the baked scene
//! representations of [`uni_scene`], following the steps of Figs. 2-6:
//!
//! | Pipeline | Steps (paper figure) |
//! |---|---|
//! | [`MeshPipeline`] | space conversion → rasterization → texture indexing → MLP (Fig. 2) |
//! | [`MlpPipeline`] | ray casting → MLP → blending (Fig. 3) |
//! | [`LowRankPipeline`] | ray casting → low-rank decomposed indexing → MLP → blending (Fig. 4) |
//! | [`HashGridPipeline`] | ray casting → hash indexing → MLP → blending (Fig. 5) |
//! | [`GaussianPipeline`] | space conversion → splatting → sorting → MLP → blending (Fig. 6) |
//! | [`MixRtPipeline`] | mesh rasterization + hash-grid color field (Sec. VII-C, MixRT) |
//!
//! Every pipeline implements [`Renderer`]: it can `render` an image *and*
//! `trace` the frame's decomposition into the five common micro-operators of
//! Sec. IV — the trace drives the Uni-Render accelerator simulator and
//! every baseline device model.

pub mod blending;
pub mod gaussian_pipeline;
pub mod hashgrid_pipeline;
pub mod hybrid_pipeline;
pub mod lowrank_pipeline;
pub mod mesh_pipeline;
pub mod mlp_pipeline;
pub mod probe;
pub mod reference;
pub(crate) mod scratch;

pub use gaussian_pipeline::GaussianPipeline;
pub use hashgrid_pipeline::HashGridPipeline;
pub use hybrid_pipeline::MixRtPipeline;
pub use lowrank_pipeline::LowRankPipeline;
pub use mesh_pipeline::MeshPipeline;
pub use mlp_pipeline::MlpPipeline;
pub use reference::render_reference;

use uni_geometry::{Camera, Image};
use uni_microops::{Pipeline, Trace};
use uni_scene::BakedScene;

/// A neural rendering pipeline: renders images and decomposes frames into
/// micro-operator traces.
///
/// The rendering entry point is [`Renderer::render_into`]: it writes one
/// frame into a *caller-owned* target, resizing it to the camera's
/// resolution while reusing its allocation. Frame loops (the
/// `uni-engine` sessions, the benches) therefore allocate one framebuffer
/// up front and render every subsequent frame allocation-free.
/// [`Renderer::render`] is a convenience wrapper for one-shot callers.
pub trait Renderer {
    /// Which pipeline family this renderer implements.
    fn pipeline(&self) -> Pipeline;

    /// Renders one frame into `target`, resizing it to `camera.width ×
    /// camera.height` (reusing its allocation) and overwriting every
    /// pixel. Steady-state frame loops allocate nothing once the target's
    /// capacity has grown to the frame size.
    fn render_into(&self, scene: &BakedScene, camera: &Camera, target: &mut Image);

    /// Renders one frame into a freshly allocated image. Convenience
    /// wrapper over [`Renderer::render_into`].
    fn render(&self, scene: &BakedScene, camera: &Camera) -> Image {
        let mut img = Image::empty();
        self.render_into(scene, camera, &mut img);
        img
    }

    /// Decomposes one frame into its micro-operator trace (Sec. IV).
    ///
    /// Workload counts are gathered by rendering at a capped probe
    /// resolution and scaling resolution-dependent quantities — see
    /// [`probe`].
    fn trace(&self, scene: &BakedScene, camera: &Camera) -> Trace;
}

/// Constructs every typical pipeline (Tab. I order) with default settings.
pub fn typical_renderers() -> Vec<Box<dyn Renderer>> {
    vec![
        Box::new(MeshPipeline::default()),
        Box::new(MlpPipeline::default()),
        Box::new(LowRankPipeline::default()),
        Box::new(HashGridPipeline::default()),
        Box::new(GaussianPipeline::default()),
    ]
}

/// Constructs all six pipelines including the MixRT hybrid.
pub fn all_renderers() -> Vec<Box<dyn Renderer>> {
    let mut v = typical_renderers();
    v.push(Box::new(MixRtPipeline::default()));
    v
}

/// Emits one GEMM invocation per MLP layer, attaching `sfu_per_row` special
/// function ops (activations / encodings) to each row of the first layer.
pub(crate) fn emit_mlp_layers(
    trace: &mut Trace,
    stage: &str,
    mlp: &uni_scene::Mlp,
    batch: u64,
    sfu_per_row: u64,
) {
    use uni_microops::{Invocation, Workload};
    for (i, layer) in mlp.layers().iter().enumerate() {
        let weight_bytes = layer.param_count() as u64 * 2;
        let mut inv = Invocation::new(
            format!("{stage} layer {i}"),
            Workload::Gemm {
                batch,
                in_dim: layer.in_dim() as u32,
                out_dim: layer.out_dim() as u32,
                weight_bytes,
            },
        );
        let mut sfu = if i == 0 { sfu_per_row * batch } else { 0 };
        if layer.activation().uses_sfu() {
            sfu += batch * layer.out_dim() as u64;
        }
        if sfu > 0 {
            inv = inv.with_sfu_ops(sfu);
        }
        trace.push(inv);
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::OnceLock;
    use uni_scene::{BakedScene, SceneSpec};

    /// A shared tiny baked scene for renderer tests.
    pub fn scene() -> &'static BakedScene {
        static SCENE: OnceLock<BakedScene> = OnceLock::new();
        SCENE.get_or_init(|| {
            SceneSpec::demo("renderer-test", 21)
                .with_detail(0.03)
                .bake()
        })
    }

    /// A default test camera on the scene's orbit.
    pub fn camera(scene: &BakedScene, width: u32, height: u32) -> uni_geometry::Camera {
        scene.spec().orbit(width, height).camera_at(0.7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_functions_cover_all_pipelines() {
        let typical = typical_renderers();
        assert_eq!(typical.len(), 5);
        let pipelines: Vec<Pipeline> = typical.iter().map(|r| r.pipeline()).collect();
        assert_eq!(pipelines, Pipeline::TYPICAL.to_vec());
        let all = all_renderers();
        assert_eq!(all.len(), 6);
        assert_eq!(all[5].pipeline(), Pipeline::HybridMixRt);
    }
}
