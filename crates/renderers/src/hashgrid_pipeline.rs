//! The hash-grid-based rendering pipeline (Sec. II-D, Fig. 5): ray casting
//! → hash indexing → MLP → blending.
//!
//! Follows Instant-NGP's structure: multi-level hash features fetched per
//! sample, a small decoder MLP producing density and color, and an
//! occupancy-style skip (samples whose fetched density channels are empty
//! never reach the decoder).

use crate::blending::RayAccumulator;
use crate::probe::Probe;
use crate::Renderer;
use uni_geometry::sampling::XorShift64;
use uni_geometry::{Camera, Image, Rgb, StratifiedSampler};
use uni_microops::{Dims, IndexFunction, Invocation, Pipeline, Trace, Workload};
use uni_scene::{BakedScene, PEAK_DENSITY};

/// The hash-grid (volume rendering) pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HashGridPipeline {}

#[derive(Debug, Clone, Copy, Default)]
struct HashStats {
    rays: u64,
    rays_in_bounds: u64,
    /// Samples tested against the occupancy proxy (cheap dense-level read).
    samples_marched: u64,
    /// Samples surviving the occupancy gate (full hash fetch + decoder).
    samples_fetched: u64,
}

impl HashStats {
    fn merge(&mut self, o: HashStats) {
        self.rays += o.rays;
        self.rays_in_bounds += o.rays_in_bounds;
        self.samples_marched += o.samples_marched;
        self.samples_fetched += o.samples_fetched;
    }
}

impl HashGridPipeline {
    /// Renders the scanlines starting at row `y0` into `chunk` (whole
    /// rows, row-major), using the caller's ray scratch arena.
    // uni-lint: hot
    fn render_rows(
        &self,
        scene: &BakedScene,
        camera: &Camera,
        y0: u32,
        chunk: &mut [Rgb],
        rs: &mut crate::scratch::RayScratch,
    ) -> HashStats {
        let bg = scene.field().background();
        let grid = scene.hashgrid();
        let decoder = scene.hash_decoder();
        let bounds = grid.bounds();
        let cfg = *grid.config();
        let samples_per_ray = scene.spec().scaled_repr().samples_per_ray as usize;
        let sampler = StratifiedSampler::new(samples_per_ray);
        let mut rng = XorShift64::new(0xFEED);
        let width = camera.width as usize;
        let rows = chunk.len() / width.max(1);
        let mut stats = HashStats::default();
        {
            let crate::scratch::RayScratch { ts, feats, mlp, .. } = rs;
            feats.clear();
            feats.resize(cfg.feature_dim() as usize, 0.0);
            for dy in 0..rows {
                let y = y0 + dy as u32;
                let row = &mut chunk[dy * width..(dy + 1) * width];
                for x in 0..camera.width {
                    stats.rays += 1;
                    let ray = camera.primary_ray(x as f32 + 0.5, y as f32 + 0.5);
                    let Some((t0, t1)) = bounds.intersect_ray(&ray, camera.near, camera.far) else {
                        continue;
                    };
                    stats.rays_in_bounds += 1;
                    let mut acc = RayAccumulator::new();
                    sampler.sample_into(t0, t1, &mut rng, ts);
                    let dt = (t1 - t0) / samples_per_ray.max(1) as f32;
                    for &t in ts.iter() {
                        if acc.saturated() {
                            break;
                        }
                        stats.samples_marched += 1;
                        // Occupancy gate *before* the hash fetch (Instant-NGP
                        // consults its occupancy grid first): the finest dense
                        // (collision-free) level is the proxy — where it reads
                        // ~zero density, neither the fetch nor the decoder run.
                        if grid.density_probe(ray.at(t)) < 2e-2 {
                            continue;
                        }
                        stats.samples_fetched += 1;
                        grid.fetch(ray.at(t), feats);
                        let out = decoder.forward_scratch(feats, mlp);
                        let density = out[0].max(0.0) * PEAK_DENSITY;
                        if density < 1e-2 {
                            continue;
                        }
                        let color = Rgb::new(
                            out[1].clamp(0.0, 1.0),
                            out[2].clamp(0.0, 1.0),
                            out[3].clamp(0.0, 1.0),
                        );
                        acc.add_density_sample(color, density, dt);
                    }
                    row[x as usize] = acc.finish(bg);
                }
            }
        }
        stats
    }

    fn render_internal(
        &self,
        scene: &BakedScene,
        camera: &Camera,
        target: &mut Image,
    ) -> HashStats {
        let bg = scene.field().background();
        target.resize(camera.width, camera.height, bg);
        let width = camera.width as usize;
        let band_len = crate::scratch::BAND_ROWS as usize * width;
        uni_parallel::par_bands_fold(
            target.pixels_mut(),
            band_len,
            HashStats::default(),
            |band, chunk| {
                crate::scratch::with_ray_scratch(|rs| {
                    self.render_rows(
                        scene,
                        camera,
                        band as u32 * crate::scratch::BAND_ROWS,
                        chunk,
                        rs,
                    )
                })
            },
            |mut acc, s| {
                acc.merge(s);
                acc
            },
        )
    }

    /// The seed-era scalar reference path: single-threaded, allocating a
    /// fresh sample vector per ray and fresh decoder activations per
    /// sample, probing and fetching through the uncached per-call
    /// `ln`/`exp` grid math and the scalar row-dot decoder kernel.
    /// Parity baseline and the "before" side of `benches/render_hot.rs`.
    pub fn render_scalar(&self, scene: &BakedScene, camera: &Camera) -> Image {
        let bg = scene.field().background();
        let mut img = Image::new(camera.width, camera.height, bg);
        let grid = scene.hashgrid();
        let decoder = scene.hash_decoder();
        let bounds = grid.bounds();
        let cfg = *grid.config();
        let samples_per_ray = scene.spec().scaled_repr().samples_per_ray as usize;
        let sampler = StratifiedSampler::new(samples_per_ray);
        let mut rng = XorShift64::new(0xFEED);
        let mut feats = vec![0f32; cfg.feature_dim() as usize];
        for y in 0..camera.height {
            for x in 0..camera.width {
                let ray = camera.primary_ray(x as f32 + 0.5, y as f32 + 0.5);
                let Some((t0, t1)) = bounds.intersect_ray(&ray, camera.near, camera.far) else {
                    continue;
                };
                let mut acc = RayAccumulator::new();
                let ts = sampler.sample(t0, t1, &mut rng);
                let dt = (t1 - t0) / samples_per_ray.max(1) as f32;
                for &t in &ts {
                    if acc.saturated() {
                        break;
                    }
                    if grid.density_probe_scalar(ray.at(t)) < 2e-2 {
                        continue;
                    }
                    grid.fetch_scalar(ray.at(t), &mut feats);
                    let out = decoder.forward_scalar(&feats);
                    let density = out[0].max(0.0) * PEAK_DENSITY;
                    if density < 1e-2 {
                        continue;
                    }
                    let color = Rgb::new(
                        out[1].clamp(0.0, 1.0),
                        out[2].clamp(0.0, 1.0),
                        out[3].clamp(0.0, 1.0),
                    );
                    acc.add_density_sample(color, density, dt);
                }
                img.set(x, y, acc.finish(bg));
            }
        }
        img
    }
}

impl Renderer for HashGridPipeline {
    fn pipeline(&self) -> Pipeline {
        Pipeline::HashGrid
    }

    fn render_into(&self, scene: &BakedScene, camera: &Camera, target: &mut Image) {
        self.render_internal(scene, camera, target);
    }

    fn trace(&self, scene: &BakedScene, camera: &Camera) -> Trace {
        let probe = Probe::plan(camera);
        let stats = crate::scratch::with_probe_target(|img| {
            self.render_internal(scene, &probe.camera, img)
        });
        let mut trace = Trace::new(Pipeline::HashGrid, camera.width, camera.height);

        let repr = &scene.spec().repr;
        let scaled = scene.spec().scaled_repr();
        let sample_ratio =
            f64::from(repr.samples_per_ray) / f64::from(scaled.samples_per_ray.max(1));
        let marched = (probe.scale(stats.samples_marched) as f64 * sample_ratio) as u64;
        let fetched = (probe.scale(stats.samples_fetched) as f64 * sample_ratio) as u64;

        // (1) Occupancy probe on the finest dense level (one level, one
        // channel) for every marched sample.
        let dense_res = u64::from(
            repr.hash
                .level_resolution(repr.hash.levels.saturating_sub(4))
                + 1,
        );
        trace.push(Invocation::new(
            "occupancy probe",
            Workload::GridIndex {
                points: marched.max(1),
                levels: 1,
                corners: 8,
                feature_dim: 1,
                table_bytes: (dense_res.pow(3) * 2).min(repr.hash.table_size() * 2),
                function: IndexFunction::LinearIndexing,
                dims: Dims::D3,
                decomposed: false,
            },
        ));

        // (2) Hash indexing over the full-scale multi-level grid, only for
        // samples surviving the occupancy gate.
        trace.push(Invocation::new(
            "hash indexing",
            Workload::GridIndex {
                points: fetched.max(1),
                levels: repr.hash.levels,
                corners: 8,
                feature_dim: repr.hash.features_per_entry,
                table_bytes: repr.hash.storage_bytes(),
                function: IndexFunction::RandomHash,
                dims: Dims::D3,
                decomposed: false,
            },
        ));

        // (3) Decoder MLP at full feature width on the same samples.
        let in_dim = repr.hash.feature_dim();
        let layer_dims: [(u32, u32); 3] = [(in_dim, 64), (64, 64), (64, 4)];
        for (i, (ind, outd)) in layer_dims.into_iter().enumerate() {
            let params = u64::from(ind) * u64::from(outd) + u64::from(outd);
            trace.push(Invocation::new(
                format!("decoder layer {i}"),
                Workload::Gemm {
                    batch: fetched.max(1),
                    in_dim: ind,
                    out_dim: outd,
                    weight_bytes: params * 2,
                },
            ));
        }

        // (4) Blending.
        trace.push(
            Invocation::new(
                "blending",
                Workload::Gemm {
                    batch: fetched.max(1),
                    in_dim: 1,
                    out_dim: 4,
                    weight_bytes: 0,
                },
            )
            .with_sfu_ops(fetched.max(1)),
        );
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use uni_microops::MicroOp;

    #[test]
    fn renders_content() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 48, 36);
        let img = HashGridPipeline::default().render(scene, &camera);
        let bg = scene.field().background();
        let non_bg = img
            .pixels()
            .iter()
            .filter(|p| (p.r - bg.r).abs() + (p.g - bg.g).abs() + (p.b - bg.b).abs() > 0.05)
            .count();
        assert!(non_bg > 30, "{non_bg} non-background pixels");
    }

    #[test]
    fn trace_uses_random_hash_combined_indexing() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 640, 480);
        let trace = HashGridPipeline::default().trace(scene, &camera);
        let hash = trace
            .iter()
            .find(|i| i.stage() == "hash indexing")
            .expect("hash stage");
        assert_eq!(hash.op(), MicroOp::CombinedGridIndexing);
        if let Workload::GridIndex {
            function,
            corners,
            levels,
            dims,
            ..
        } = hash.workload()
        {
            assert_eq!(*function, IndexFunction::RandomHash);
            assert_eq!(*corners, 8, "trilinear over nearest vertices");
            assert_eq!(*levels, scene.spec().repr.hash.levels);
            assert_eq!(*dims, Dims::D3);
        } else {
            panic!("expected grid index");
        }
    }

    #[test]
    fn occupancy_skip_gates_the_fetch() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 64, 48);
        let stats =
            HashGridPipeline::default().render_internal(scene, &camera, &mut Image::empty());
        assert!(stats.samples_marched > 0);
        assert!(stats.samples_fetched > 0, "some samples survive the gate");
        assert!(
            stats.samples_fetched < stats.samples_marched,
            "fetch only on occupied samples: {} of {}",
            stats.samples_fetched,
            stats.samples_marched
        );
    }

    #[test]
    fn trace_micro_op_sequence() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 640, 480);
        let trace = HashGridPipeline::default().trace(scene, &camera);
        assert_eq!(
            trace.micro_ops_used(),
            vec![MicroOp::CombinedGridIndexing, MicroOp::Gemm]
        );
        assert_eq!(trace.reconfiguration_count(), 1);
    }

    #[test]
    fn hash_table_traffic_is_bounded_by_table_size() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 1280, 720);
        let trace = HashGridPipeline::default().trace(scene, &camera);
        let cost = trace
            .iter()
            .find(|i| i.stage() == "hash indexing")
            .expect("hash stage")
            .cost();
        let table = scene.spec().repr.hash.storage_bytes();
        assert!(
            cost.dram_read_bytes <= table + cost.items * 12 + 1,
            "unique-byte bound holds"
        );
    }
}
