//! Probe-resolution workload estimation.
//!
//! Frame traces must describe the full benchmark resolution (1280×720 for
//! Unbounded-360), but gathering counts by rendering every pixel would make
//! trace generation as expensive as rendering. Instead each pipeline
//! renders at a capped *probe* resolution, counts its work exactly, and
//! scales the resolution-proportional quantities by the pixel ratio —
//! per-primitive quantities (vertex projection, splat setup) stay exact.

use uni_geometry::Camera;

/// Maximum probe pixels along the longer image axis.
pub const MAX_PROBE_AXIS: u32 = 192;

/// A probe plan: the reduced camera plus the pixel scale factor back to the
/// full frame.
#[derive(Debug, Clone, Copy)]
pub struct Probe {
    /// Camera at probe resolution (same pose and field of view).
    pub camera: Camera,
    /// `full_pixels / probe_pixels` — the factor for resolution-
    /// proportional counts.
    pub pixel_scale: f64,
}

impl Probe {
    /// Plans a probe for `camera`, preserving aspect ratio.
    pub fn plan(camera: &Camera) -> Self {
        let long_axis = camera.width.max(camera.height);
        if long_axis <= MAX_PROBE_AXIS {
            return Self {
                camera: *camera,
                pixel_scale: 1.0,
            };
        }
        let shrink = long_axis as f64 / MAX_PROBE_AXIS as f64;
        let w = ((camera.width as f64 / shrink).round() as u32).max(8);
        let h = ((camera.height as f64 / shrink).round() as u32).max(8);
        let probe_cam = camera.with_resolution(w, h);
        let full_px = camera.pixel_count() as f64;
        let probe_px = probe_cam.pixel_count() as f64;
        Self {
            camera: probe_cam,
            pixel_scale: full_px / probe_px,
        }
    }

    /// Scales a resolution-proportional count up to the full frame.
    #[inline]
    pub fn scale(&self, probe_count: u64) -> u64 {
        (probe_count as f64 * self.pixel_scale).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uni_geometry::Vec3;

    fn cam(w: u32, h: u32) -> Camera {
        Camera::look_at(Vec3::new(0.0, 0.0, 3.0), Vec3::ZERO, Vec3::Y, 1.0, w, h)
    }

    #[test]
    fn small_cameras_pass_through() {
        let p = Probe::plan(&cam(160, 120));
        assert_eq!(p.camera.width, 160);
        assert_eq!(p.pixel_scale, 1.0);
        assert_eq!(p.scale(1000), 1000);
    }

    #[test]
    fn large_cameras_shrink_preserving_aspect() {
        let p = Probe::plan(&cam(1280, 720));
        assert_eq!(p.camera.width, MAX_PROBE_AXIS);
        let aspect_full = 1280.0 / 720.0;
        let aspect_probe = p.camera.width as f64 / p.camera.height as f64;
        assert!((aspect_full - aspect_probe).abs() < 0.05);
        // Scale factor recovers full pixel count.
        let recovered = p.scale(p.camera.pixel_count());
        let full = 1280 * 720;
        let full_f = f64::from(full);
        assert!((recovered as f64 - full_f).abs() / full_f < 0.01);
    }

    #[test]
    fn probe_camera_keeps_pose() {
        let original = cam(1920, 1080);
        let p = Probe::plan(&original);
        assert_eq!(p.camera.eye, original.eye);
        assert!((p.camera.fov_y - original.fov_y).abs() < 1e-6);
    }
}
