//! Ground-truth reference renderer: fine ray marching of the analytic
//! field. Used as the PSNR reference every baked pipeline is scored
//! against (the role the captured test photos play in the paper).

use crate::blending::RayAccumulator;
use uni_geometry::{Camera, Image};
use uni_scene::AnalyticField;

/// Renders the analytic field directly with dense ray marching.
///
/// `samples_per_ray` controls quality; 96+ gives an essentially converged
/// reference for the procedural scenes.
pub fn render_reference(field: &AnalyticField, camera: &Camera, samples_per_ray: u32) -> Image {
    let bounds = field.content_bounds().padded(0.3);
    let mut img = Image::new(camera.width, camera.height, field.background());
    for y in 0..camera.height {
        for x in 0..camera.width {
            let ray = camera.primary_ray(x as f32 + 0.5, y as f32 + 0.5);
            let Some((t0, t1)) = bounds.intersect_ray(&ray, camera.near, camera.far) else {
                continue;
            };
            let mut acc = RayAccumulator::new();
            let n = samples_per_ray.max(2);
            let dt = (t1 - t0) / n as f32;
            for i in 0..n {
                if acc.saturated() {
                    break;
                }
                let t = t0 + (i as f32 + 0.5) * dt;
                let p = ray.at(t);
                let s = field.sample(p, ray.direction);
                if s.density > 1e-3 {
                    acc.add_density_sample(s.color, s.density, dt);
                }
            }
            img.set(x, y, acc.finish(field.background()));
        }
    }
    img
}

/// Mean PSNR of `render` against the reference over a set of test cameras.
pub fn mean_psnr<F>(field: &AnalyticField, cameras: &[Camera], mut render: F) -> f64
where
    F: FnMut(&Camera) -> Image,
{
    assert!(!cameras.is_empty(), "need at least one test view");
    let mut total = 0.0;
    for cam in cameras {
        let reference = render_reference(field, cam, 96);
        let image = render(cam);
        total += image.psnr(&reference).min(60.0);
    }
    total / cameras.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use uni_geometry::{Rgb, Vec3};
    use uni_scene::{AnalyticField, FieldPrimitive, Shape};

    fn red_sphere() -> AnalyticField {
        AnalyticField::new(vec![FieldPrimitive {
            shape: Shape::Sphere {
                center: Vec3::ZERO,
                radius: 0.8,
            },
            albedo: Rgb::new(0.9, 0.1, 0.1),
            specular: 0.2,
        }])
    }

    fn camera() -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 0.5, 3.0),
            Vec3::ZERO,
            Vec3::Y,
            60f32.to_radians(),
            48,
            36,
        )
    }

    #[test]
    fn center_pixel_sees_the_sphere() {
        let img = render_reference(&red_sphere(), &camera(), 64);
        let c = img.get(24, 18);
        assert!(c.r > c.b, "sphere is red: {c:?}");
        // Corner pixel sees background (sky blue).
        let corner = img.get(0, 0);
        assert!(corner.b > corner.r, "background is blue: {corner:?}");
    }

    #[test]
    fn more_samples_converge() {
        let field = red_sphere();
        let cam = camera();
        let coarse = render_reference(&field, &cam, 16);
        let fine = render_reference(&field, &cam, 128);
        let finer = render_reference(&field, &cam, 256);
        // Finer sampling approaches the converged image monotonically.
        let err_coarse = coarse.mse(&finer);
        let err_fine = fine.mse(&finer);
        assert!(err_fine < err_coarse, "{err_fine} < {err_coarse}");
    }

    #[test]
    fn psnr_of_reference_against_itself_is_maximal() {
        let field = red_sphere();
        let cams = vec![camera()];
        let psnr = mean_psnr(&field, &cams, |c| render_reference(&field, c, 96));
        assert!(psnr >= 59.9, "self-PSNR capped at 60: {psnr}");
    }
}
