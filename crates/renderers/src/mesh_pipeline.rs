//! The mesh-based rendering pipeline (Sec. II-A, Fig. 2): space conversion →
//! rasterization → texture indexing → MLP.
//!
//! Follows MobileNeRF's structure: a baked triangle mesh with a feature
//! texture atlas, rasterized with a Z-buffer, shaded by a small deferred
//! MLP for view-dependent color.

use crate::probe::Probe;
use crate::{emit_mlp_layers, Renderer};
use uni_geometry::{Camera, Image, Rgb, Vec2, Vec3};
use uni_microops::{Dims, IndexFunction, Invocation, Pipeline, PrimitiveKind, Trace, Workload};
use uni_scene::{BakedScene, TriangleMesh};

/// The mesh-based (rasterization) pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshPipeline {
    /// Rasterizer processing tile size in pixels (PE pixel-region size in
    /// the Geometric Processing dataflow, Fig. 10).
    pub tile_size: u32,
}

impl Default for MeshPipeline {
    fn default() -> Self {
        Self { tile_size: 16 }
    }
}

/// Exact work counts from one rasterization pass.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RasterStats {
    pub vertices_projected: u64,
    pub triangles_streamed: u64,
    pub candidate_pairs: u64,
    pub zbuffer_updates: u64,
    pub covered_pixels: u64,
}

impl RasterStats {
    fn merge(&mut self, o: RasterStats) {
        self.vertices_projected += o.vertices_projected;
        self.triangles_streamed += o.triangles_streamed;
        self.candidate_pairs += o.candidate_pairs;
        self.zbuffer_updates += o.zbuffer_updates;
        self.covered_pixels += o.covered_pixels;
    }
}

/// Rasterizes the triangles overlapping rows `[y0, y0 + rows)` into a
/// Z-buffer band (`rows × width` slots).
///
/// Every triangle is tested against the band's row range; per-pixel
/// results and counts are identical to a whole-frame pass because each
/// pixel sees triangles in the same (index) order regardless of banding.
/// `triangles_streamed` is attributed to the band owning the triangle's
/// clamped top row so the banded counts sum to the scalar pass exactly.
fn rasterize_rows(
    mesh: &TriangleMesh,
    projected: &[Option<(Vec2, f32)>],
    w: usize,
    h: usize,
    y0: usize,
    band: &mut [Option<PixelHitPublic>],
) -> RasterStats {
    let rows = band.len() / w.max(1);
    let band_end = y0 + rows; // exclusive
    let mut stats = RasterStats::default();
    for t in 0..mesh.triangle_count() {
        let i = t * 3;
        let (Some(a), Some(b), Some(c)) = (
            projected[mesh.indices[i] as usize],
            projected[mesh.indices[i + 1] as usize],
            projected[mesh.indices[i + 2] as usize],
        ) else {
            continue; // Clipped by the near plane.
        };
        // Screen bounding box (the PE pre-load region of Fig. 10).
        let min_x = a.0.x.min(b.0.x).min(c.0.x).floor().max(0.0) as usize;
        let max_x = (a.0.x.max(b.0.x).max(c.0.x).ceil() as usize).min(w.saturating_sub(1));
        let min_y = a.0.y.min(b.0.y).min(c.0.y).floor().max(0.0) as usize;
        let max_y = (a.0.y.max(b.0.y).max(c.0.y).ceil() as usize).min(h.saturating_sub(1));
        if min_x > max_x || min_y > max_y {
            continue;
        }
        if (y0..band_end).contains(&min_y) {
            stats.triangles_streamed += 1;
        }
        if min_y >= band_end || max_y < y0 {
            continue; // No overlap with this band.
        }
        let ab = b.0 - a.0;
        let ac = c.0 - a.0;
        let area = ab.cross(ac);
        if area.abs() < 1e-9 {
            continue;
        }
        let inv_area = 1.0 / area;
        for py in min_y.max(y0)..=max_y.min(band_end - 1) {
            for px in min_x..=max_x {
                stats.candidate_pairs += 1;
                let p = Vec2::new(px as f32 + 0.5, py as f32 + 0.5);
                let ap = p - a.0;
                // Edge functions via 2D cross products (Fig. 10's ALU
                // vector mode).
                let w1 = ap.cross(ac) * inv_area;
                let w2 = ab.cross(ap) * inv_area;
                let w0 = 1.0 - w1 - w2;
                if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
                    continue;
                }
                let depth = w0 * a.1 + w1 * b.1 + w2 * c.1;
                let slot = &mut band[(py - y0) * w + px];
                // Min. Hold: keep the nearest primitive.
                if slot.is_none_or(|hit| depth < hit.depth) {
                    *slot = Some(PixelHitPublic {
                        triangle: t as u32,
                        bary: (w0, w1, w2),
                        depth,
                    });
                    stats.zbuffer_updates += 1;
                }
            }
        }
    }
    stats.covered_pixels = band.iter().filter(|s| s.is_some()).count() as u64;
    stats
}

/// Rasterizes the mesh into a per-pixel hit buffer with exact work
/// counts, processing bands of rows in parallel. Allocates fresh
/// buffers; the frame paths reuse a [`crate::scratch::RasterScratch`]
/// through [`rasterize_into`] instead.
pub(crate) fn rasterize(
    mesh: &TriangleMesh,
    camera: &Camera,
) -> (Vec<Option<PixelHitPublic>>, RasterStats) {
    let mut rs = crate::scratch::RasterScratch::default();
    let stats = rasterize_into(mesh, camera, &mut rs);
    (rs.zbuf, stats)
}

/// [`rasterize`] into caller-owned buffers: `rs.zbuf` holds the hit
/// buffer on return, and both it and the projected-vertex cache reuse
/// their capacity across frames.
pub(crate) fn rasterize_into(
    mesh: &TriangleMesh,
    camera: &Camera,
    rs: &mut crate::scratch::RasterScratch,
) -> RasterStats {
    let (w, h) = (camera.width as usize, camera.height as usize);
    let crate::scratch::RasterScratch { zbuf, projected } = rs;
    zbuf.clear();
    zbuf.resize(w * h, None);

    // Space conversion: project every vertex once, shared by all bands.
    projected.clear();
    projected.extend(
        mesh.positions
            .iter()
            .map(|&p| camera.project_to_screen(p).map(|(s, _, d)| (s, d))),
    );

    let band_rows = crate::scratch::BAND_ROWS as usize;
    let projected = &*projected;
    uni_parallel::par_bands_fold(
        zbuf,
        band_rows * w,
        RasterStats {
            vertices_projected: mesh.vertex_count() as u64,
            ..RasterStats::default()
        },
        |band, chunk| rasterize_rows(mesh, projected, w, h, band * band_rows, chunk),
        |mut acc, s| {
            acc.merge(s);
            acc
        },
    )
}

/// Single-threaded whole-frame rasterization (parity/bench baseline for
/// the banded pass above).
pub(crate) fn rasterize_scalar(
    mesh: &TriangleMesh,
    camera: &Camera,
) -> (Vec<Option<PixelHitPublic>>, RasterStats) {
    let (w, h) = (camera.width as usize, camera.height as usize);
    let mut zbuf: Vec<Option<PixelHitPublic>> = vec![None; w * h];
    let projected: Vec<Option<(Vec2, f32)>> = mesh
        .positions
        .iter()
        .map(|&p| camera.project_to_screen(p).map(|(s, _, d)| (s, d)))
        .collect();
    let mut stats = rasterize_rows(mesh, &projected, w, h, 0, &mut zbuf);
    stats.vertices_projected = mesh.vertex_count() as u64;
    (zbuf, stats)
}

/// A rasterization hit exposed to sibling pipelines (the hybrid pipeline
/// reuses the rasterizer).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PixelHitPublic {
    pub triangle: u32,
    pub bary: (f32, f32, f32),
    pub depth: f32,
}

impl MeshPipeline {
    /// Deferred-shades rows `[y0, y0 + rows)` from the hit buffer, using
    /// the caller's ray scratch arena.
    fn shade_rows(
        &self,
        scene: &BakedScene,
        camera: &Camera,
        hits: &[Option<PixelHitPublic>],
        y0: u32,
        chunk: &mut [Rgb],
        rs: &mut crate::scratch::RayScratch,
    ) {
        let tex = scene.texture();
        let mesh = scene.mesh();
        let width = camera.width as usize;
        let rows = chunk.len() / width.max(1);
        {
            let crate::scratch::RayScratch { feats, mlp, .. } = rs;
            feats.clear();
            feats.resize(tex.channels() as usize, 0.0);
            for dy in 0..rows {
                let y = y0 + dy as u32;
                let row = &mut chunk[dy * width..(dy + 1) * width];
                for x in 0..camera.width {
                    let Some(hit) = hits[(y * camera.width + x) as usize] else {
                        continue;
                    };
                    let [ua, ub, uc] = mesh.triangle_uvs(hit.triangle as usize);
                    let (w0, w1, w2) = hit.bary;
                    let uv = ua * w0 + ub * w1 + uc * w2;
                    tex.sample_bilinear(uv, feats);
                    let diffuse = Rgb::new(feats[0], feats[1], feats[2]);
                    let s = feats[3];
                    let n = Vec3::new(feats[4], feats[5], feats[6]);
                    let view = camera.primary_ray(x as f32 + 0.5, y as f32 + 0.5).direction;
                    let spec = scene.deferred_mlp().forward_scratch(
                        &[s * n.x, s * n.y, s * n.z, s, view.x, view.y, view.z],
                        mlp,
                    );
                    row[x as usize] = Rgb::new(
                        diffuse.r + spec[0],
                        diffuse.g + spec[1],
                        diffuse.b + spec[2],
                    )
                    .saturate();
                }
            }
        }
    }

    fn shade_into(
        &self,
        scene: &BakedScene,
        camera: &Camera,
        hits: &[Option<PixelHitPublic>],
        target: &mut Image,
    ) {
        let bg = scene.field().background();
        target.resize(camera.width, camera.height, bg);
        let width = camera.width as usize;
        let band_rows = crate::scratch::BAND_ROWS;
        uni_parallel::par_bands(
            target.pixels_mut(),
            band_rows as usize * width,
            |band, chunk| {
                crate::scratch::with_ray_scratch(|rs| {
                    self.shade_rows(scene, camera, hits, band as u32 * band_rows, chunk, rs);
                });
            },
        );
    }

    /// Single-threaded whole-frame reference path (parity/bench baseline).
    pub fn render_scalar(&self, scene: &BakedScene, camera: &Camera) -> Image {
        let (hits, _) = rasterize_scalar(scene.mesh(), camera);
        let mut img = Image::new(camera.width, camera.height, scene.field().background());
        crate::scratch::with_ray_scratch(|rs| {
            self.shade_rows(scene, camera, &hits, 0, img.pixels_mut(), rs);
        });
        img
    }
}

impl Renderer for MeshPipeline {
    fn pipeline(&self) -> Pipeline {
        Pipeline::Mesh
    }

    fn render_into(&self, scene: &BakedScene, camera: &Camera, target: &mut Image) {
        crate::scratch::with_raster_scratch(|rs| {
            rasterize_into(scene.mesh(), camera, rs);
            self.shade_into(scene, camera, &rs.zbuf, target);
        });
    }

    fn trace(&self, scene: &BakedScene, camera: &Camera) -> Trace {
        let probe = Probe::plan(camera);
        let (_, stats) = rasterize(scene.mesh(), &probe.camera);
        let mut trace = Trace::new(Pipeline::Mesh, camera.width, camera.height);

        // Full-scale workload constants come from the spec (the baked
        // representation may be detail-scaled for tests); coverage ratios
        // come from the probe rasterization.
        let repr = &scene.spec().repr;
        let full_tris = u64::from(repr.target_triangles);
        let baked_tris = scene.mesh().triangle_count().max(1) as u64;
        let tri_ratio = full_tris as f64 / baked_tris as f64;
        let verts = (stats.vertices_projected as f64 * tri_ratio) as u64;
        let streamed = (stats.triangles_streamed as f64 * tri_ratio) as u64;

        // (1) Space conversion: 4×4 view-projection per vertex (GEMM).
        trace.push(Invocation::new(
            "space conversion",
            Workload::Gemm {
                batch: verts,
                in_dim: 4,
                out_dim: 4,
                weight_bytes: 32,
            },
        ));

        // (2) Rasterization (Geometric Processing). Candidate pairs are
        // resolution-driven (bounding-box coverage), not triangle-count
        // driven, so the probe measurement scales by pixels only.
        trace.push(Invocation::new(
            "rasterization",
            Workload::Geometric {
                kind: PrimitiveKind::Triangle,
                primitives: streamed,
                candidate_pairs: probe.scale(stats.candidate_pairs),
                hits: probe.scale(stats.zbuffer_updates),
                prim_bytes: TriangleMesh::BYTES_PER_TRIANGLE,
                output_pixels: camera.pixel_count(),
            },
        ));

        // (3) Texture indexing (Combined Grid Indexing, bilinear).
        // MobileNeRF-style bakes fetch *two* deferred-feature textures per
        // pixel from a multi-slab atlas (3 slabs counted in the table).
        let covered = probe.scale(stats.covered_pixels);
        let texture_bytes =
            u64::from(repr.texture_resolution).pow(2) * u64::from(repr.texture_channels) * 3;
        trace.push(Invocation::new(
            "texture indexing",
            Workload::GridIndex {
                points: covered * 2,
                levels: 1,
                corners: 4,
                feature_dim: repr.texture_channels,
                table_bytes: texture_bytes,
                function: IndexFunction::LinearIndexing,
                dims: Dims::D2,
                decomposed: false,
            },
        ));

        // (4) Deferred shading MLP per covered pixel.
        emit_mlp_layers(&mut trace, "shading mlp", scene.deferred_mlp(), covered, 0);
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use uni_microops::MicroOp;

    #[test]
    fn renders_content_against_background() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 64, 48);
        let img = MeshPipeline::default().render(scene, &camera);
        // The orbit looks at the object cluster: some pixels differ from
        // the background.
        let bg = scene.field().background();
        let non_bg = img
            .pixels()
            .iter()
            .filter(|p| (p.r - bg.r).abs() + (p.g - bg.g).abs() + (p.b - bg.b).abs() > 0.05)
            .count();
        assert!(non_bg > 100, "{non_bg} non-background pixels");
    }

    #[test]
    fn raster_stats_count_consistently() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 96, 64);
        let (hits, stats) = rasterize(scene.mesh(), &camera);
        assert_eq!(
            stats.covered_pixels,
            hits.iter().filter(|h| h.is_some()).count() as u64
        );
        assert!(stats.candidate_pairs >= stats.zbuffer_updates);
        assert!(stats.zbuffer_updates >= stats.covered_pixels);
        assert!(stats.triangles_streamed > 0);
    }

    #[test]
    fn zbuffer_keeps_nearest_surface() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 64, 48);
        let (hits, _) = rasterize(scene.mesh(), &camera);
        for hit in hits.into_iter().flatten() {
            assert!(hit.depth > 0.0, "depths are positive view distances");
        }
    }

    #[test]
    fn trace_contains_the_four_steps_in_order() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 640, 480);
        let trace = MeshPipeline::default().trace(scene, &camera);
        let ops = trace.micro_ops_used();
        assert_eq!(
            ops,
            vec![
                MicroOp::Gemm,
                MicroOp::GeometricProcessing,
                MicroOp::CombinedGridIndexing,
            ]
        );
        assert_eq!(trace.pipeline(), Pipeline::Mesh);
        assert_eq!(trace.width(), 640);
        // No sorting in mesh pipelines.
        assert_eq!(trace.stats().invocations_of(MicroOp::Sorting), 0);
    }

    #[test]
    fn trace_scales_with_resolution() {
        let scene = testutil::scene();
        let small = MeshPipeline::default().trace(scene, &testutil::camera(scene, 320, 240));
        let large = MeshPipeline::default().trace(scene, &testutil::camera(scene, 1280, 960));
        let s = small.stats().cost_of(MicroOp::GeometricProcessing);
        let l = large.stats().cost_of(MicroOp::GeometricProcessing);
        let ratio = l.int_macs as f64 / s.int_macs.max(1) as f64;
        assert!(
            ratio > 4.0 && ratio < 40.0,
            "16x pixels -> more raster work (got {ratio:.1}x)"
        );
    }

    #[test]
    fn trace_uses_full_scale_triangle_counts() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 640, 480);
        let trace = MeshPipeline::default().trace(scene, &camera);
        let raster = trace
            .iter()
            .find(|i| i.stage() == "rasterization")
            .expect("raster stage");
        if let Workload::Geometric { primitives, .. } = raster.workload() {
            // The spec's full-scale triangle count is 150k; the baked test
            // scene has far fewer, but the trace reports full scale.
            assert!(
                *primitives > 10_000,
                "full-scale primitives, got {primitives}"
            );
        } else {
            panic!("expected geometric workload");
        }
    }
}
