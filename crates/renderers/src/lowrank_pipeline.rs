//! The low-rank-decomposed-grid-based rendering pipeline (Sec. II-C,
//! Fig. 4): ray casting → low-rank decomposed indexing → MLP → blending.
//!
//! Follows MeRF's structure: tri-plane + low-res-grid features are
//! aggregated per sample, diffuse color and density are decoded directly,
//! and a small *deferred* MLP adds view-dependent color once per pixel.

use crate::blending::RayAccumulator;
use crate::probe::Probe;
use crate::{emit_mlp_layers, Renderer};
use uni_geometry::sampling::XorShift64;
use uni_geometry::{Camera, Image, Rgb, StratifiedSampler};
use uni_microops::{Dims, IndexFunction, Invocation, Pipeline, Trace, Workload};
use uni_scene::{BakedScene, PEAK_DENSITY};

/// The low-rank-decomposed-grid (volume rendering) pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LowRankPipeline {}

#[derive(Debug, Clone, Copy, Default)]
struct LowRankStats {
    rays: u64,
    rays_in_bounds: u64,
    samples_tested: u64,
    samples_contributing: u64,
    pixels_deferred: u64,
}

impl LowRankStats {
    fn merge(&mut self, o: LowRankStats) {
        self.rays += o.rays;
        self.rays_in_bounds += o.rays_in_bounds;
        self.samples_tested += o.samples_tested;
        self.samples_contributing += o.samples_contributing;
        self.pixels_deferred += o.pixels_deferred;
    }
}

impl LowRankPipeline {
    /// Renders the scanlines starting at row `y0` into `chunk` (whole
    /// rows, row-major), using the caller's ray scratch arena.
    // uni-lint: hot
    fn render_rows(
        &self,
        scene: &BakedScene,
        camera: &Camera,
        y0: u32,
        chunk: &mut [Rgb],
        rs: &mut crate::scratch::RayScratch,
    ) -> LowRankStats {
        let bg = scene.field().background();
        let tp = scene.triplane();
        let bounds = tp.bounds();
        let channels = tp.config().channels as usize;
        let samples_per_ray = scene.spec().scaled_repr().samples_per_ray as usize;
        let sampler = StratifiedSampler::new(samples_per_ray);
        let mut rng = XorShift64::new(0xDECAF);
        let width = camera.width as usize;
        let rows = chunk.len() / width.max(1);
        let mut stats = LowRankStats::default();
        {
            let crate::scratch::RayScratch { ts, feats, mlp, .. } = rs;
            feats.clear();
            feats.resize(channels, 0.0);
            for dy in 0..rows {
                let y = y0 + dy as u32;
                let row = &mut chunk[dy * width..(dy + 1) * width];
                for x in 0..camera.width {
                    stats.rays += 1;
                    let ray = camera.primary_ray(x as f32 + 0.5, y as f32 + 0.5);
                    let Some((t0, t1)) = bounds.intersect_ray(&ray, camera.near, camera.far) else {
                        continue;
                    };
                    stats.rays_in_bounds += 1;
                    let mut acc = RayAccumulator::new();
                    // Deferred view-dependence features accumulate alongside
                    // color, weighted by the same compositing weights.
                    let mut spec_feats = [0f32; 4];
                    sampler.sample_into(t0, t1, &mut rng, ts);
                    let dt = (t1 - t0) / samples_per_ray.max(1) as f32;
                    for &t in ts.iter() {
                        if acc.saturated() {
                            break;
                        }
                        stats.samples_tested += 1;
                        tp.fetch(ray.at(t), feats);
                        let density = feats[0].max(0.0) * PEAK_DENSITY;
                        if density < 1e-2 {
                            continue;
                        }
                        stats.samples_contributing += 1;
                        let diffuse = Rgb::new(
                            feats[1].clamp(0.0, 1.0),
                            feats[2].clamp(0.0, 1.0),
                            feats[3].clamp(0.0, 1.0),
                        );
                        let t_before = acc.transmittance();
                        acc.add_density_sample(diffuse, density, dt);
                        let weight = t_before - acc.transmittance();
                        for (sf, &f) in spec_feats.iter_mut().zip(&feats[4..8]) {
                            *sf += weight * f;
                        }
                    }
                    let mut color = acc.finish_premultiplied().0;
                    let alpha = 1.0 - acc.transmittance();
                    if alpha > 1e-3 {
                        stats.pixels_deferred += 1;
                        let spec = scene.deferred_mlp().forward_scratch(
                            &[
                                spec_feats[0],
                                spec_feats[1],
                                spec_feats[2],
                                spec_feats[3],
                                ray.direction.x,
                                ray.direction.y,
                                ray.direction.z,
                            ],
                            mlp,
                        );
                        color = Rgb::new(color.r + spec[0], color.g + spec[1], color.b + spec[2]);
                    }
                    row[x as usize] = (color + bg * acc.transmittance()).saturate();
                }
            }
        }
        stats
    }

    fn render_internal(
        &self,
        scene: &BakedScene,
        camera: &Camera,
        target: &mut Image,
    ) -> LowRankStats {
        let bg = scene.field().background();
        target.resize(camera.width, camera.height, bg);
        let width = camera.width as usize;
        let band_len = crate::scratch::BAND_ROWS as usize * width;
        uni_parallel::par_bands_fold(
            target.pixels_mut(),
            band_len,
            LowRankStats::default(),
            |band, chunk| {
                crate::scratch::with_ray_scratch(|rs| {
                    self.render_rows(
                        scene,
                        camera,
                        band as u32 * crate::scratch::BAND_ROWS,
                        chunk,
                        rs,
                    )
                })
            },
            |mut acc, s| {
                acc.merge(s);
                acc
            },
        )
    }

    /// The seed-era scalar reference path: single-threaded, allocating a
    /// fresh sample vector per ray and fresh deferred-MLP activations per
    /// covered pixel, decoded with the scalar row-dot kernel. Parity
    /// baseline and the "before" side of `benches/render_hot.rs`.
    pub fn render_scalar(&self, scene: &BakedScene, camera: &Camera) -> Image {
        let bg = scene.field().background();
        let mut img = Image::new(camera.width, camera.height, bg);
        let tp = scene.triplane();
        let bounds = tp.bounds();
        let channels = tp.config().channels as usize;
        let samples_per_ray = scene.spec().scaled_repr().samples_per_ray as usize;
        let sampler = StratifiedSampler::new(samples_per_ray);
        let mut rng = XorShift64::new(0xDECAF);
        let mut feats = vec![0f32; channels];
        for y in 0..camera.height {
            for x in 0..camera.width {
                let ray = camera.primary_ray(x as f32 + 0.5, y as f32 + 0.5);
                let Some((t0, t1)) = bounds.intersect_ray(&ray, camera.near, camera.far) else {
                    continue;
                };
                let mut acc = RayAccumulator::new();
                let mut spec_feats = [0f32; 4];
                let ts = sampler.sample(t0, t1, &mut rng);
                let dt = (t1 - t0) / samples_per_ray.max(1) as f32;
                for &t in &ts {
                    if acc.saturated() {
                        break;
                    }
                    tp.fetch(ray.at(t), &mut feats);
                    let density = feats[0].max(0.0) * PEAK_DENSITY;
                    if density < 1e-2 {
                        continue;
                    }
                    let diffuse = Rgb::new(
                        feats[1].clamp(0.0, 1.0),
                        feats[2].clamp(0.0, 1.0),
                        feats[3].clamp(0.0, 1.0),
                    );
                    let t_before = acc.transmittance();
                    acc.add_density_sample(diffuse, density, dt);
                    let weight = t_before - acc.transmittance();
                    for (sf, &f) in spec_feats.iter_mut().zip(&feats[4..8]) {
                        *sf += weight * f;
                    }
                }
                let mut color = acc.finish_premultiplied().0;
                let alpha = 1.0 - acc.transmittance();
                if alpha > 1e-3 {
                    let spec = scene.deferred_mlp().forward_scalar(&[
                        spec_feats[0],
                        spec_feats[1],
                        spec_feats[2],
                        spec_feats[3],
                        ray.direction.x,
                        ray.direction.y,
                        ray.direction.z,
                    ]);
                    color = Rgb::new(color.r + spec[0], color.g + spec[1], color.b + spec[2]);
                }
                img.set(x, y, (color + bg * acc.transmittance()).saturate());
            }
        }
        img
    }
}

impl Renderer for LowRankPipeline {
    fn pipeline(&self) -> Pipeline {
        Pipeline::LowRankGrid
    }

    fn render_into(&self, scene: &BakedScene, camera: &Camera, target: &mut Image) {
        self.render_internal(scene, camera, target);
    }

    fn trace(&self, scene: &BakedScene, camera: &Camera) -> Trace {
        let probe = Probe::plan(camera);
        let stats = crate::scratch::with_probe_target(|img| {
            self.render_internal(scene, &probe.camera, img)
        });
        let mut trace = Trace::new(Pipeline::LowRankGrid, camera.width, camera.height);

        let repr = &scene.spec().repr;
        let scaled = scene.spec().scaled_repr();
        let sample_ratio =
            f64::from(repr.samples_per_ray) / f64::from(scaled.samples_per_ray.max(1));
        let points = (probe.scale(stats.samples_tested) as f64 * sample_ratio) as u64;
        let contributing = (probe.scale(stats.samples_contributing) as f64 * sample_ratio) as u64;
        let channels = repr.triplane.channels;
        let plane_bytes =
            3 * u64::from(repr.triplane.plane_resolution).pow(2) * u64::from(channels);
        let grid_bytes = u64::from(repr.triplane.grid_resolution).pow(3) * u64::from(channels);

        // (1) Per-plane bilinear indexing: 3 planes per sample (the
        // per-PE-line interpolation of Fig. 12).
        trace.push(Invocation::new(
            "plane indexing",
            Workload::GridIndex {
                points: points.max(1),
                levels: 3,
                corners: 4,
                feature_dim: channels,
                table_bytes: plane_bytes,
                function: IndexFunction::LinearIndexing,
                dims: Dims::D2,
                decomposed: true,
            },
        ));

        // (2) Low-res 3D grid, trilinear, aggregated across PE lines.
        trace.push(Invocation::new(
            "grid indexing",
            Workload::GridIndex {
                points: points.max(1),
                levels: 1,
                corners: 8,
                feature_dim: channels,
                table_bytes: grid_bytes,
                function: IndexFunction::LinearIndexing,
                dims: Dims::D3,
                decomposed: true,
            },
        ));

        // (3) Deferred view-dependence MLP, once per covered pixel.
        let deferred = probe.scale(stats.pixels_deferred).max(1);
        emit_mlp_layers(
            &mut trace,
            "deferred mlp",
            scene.deferred_mlp(),
            deferred,
            0,
        );

        // (4) Blending with one exp per contributing sample.
        trace.push(
            Invocation::new(
                "blending",
                Workload::Gemm {
                    batch: contributing.max(1),
                    in_dim: 1,
                    out_dim: 8, // RGB + the 4 deferred features + alpha.
                    weight_bytes: 0,
                },
            )
            .with_sfu_ops(contributing.max(1)),
        );
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use uni_microops::MicroOp;

    #[test]
    fn renders_content() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 48, 36);
        let img = LowRankPipeline::default().render(scene, &camera);
        let bg = scene.field().background();
        let non_bg = img
            .pixels()
            .iter()
            .filter(|p| (p.r - bg.r).abs() + (p.g - bg.g).abs() + (p.b - bg.b).abs() > 0.05)
            .count();
        assert!(non_bg > 30, "{non_bg} non-background pixels");
    }

    #[test]
    fn trace_uses_decomposed_grid_indexing() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 640, 480);
        let trace = LowRankPipeline::default().trace(scene, &camera);
        let stats = trace.stats();
        assert!(stats.invocations_of(MicroOp::DecomposedGridIndexing) >= 2);
        assert!(stats.invocations_of(MicroOp::Gemm) >= 3);
        assert_eq!(stats.invocations_of(MicroOp::CombinedGridIndexing), 0);
        assert_eq!(stats.invocations_of(MicroOp::Sorting), 0);
    }

    #[test]
    fn plane_and_grid_indexing_have_correct_shapes() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 320, 240);
        let trace = LowRankPipeline::default().trace(scene, &camera);
        let plane = trace
            .iter()
            .find(|i| i.stage() == "plane indexing")
            .expect("plane stage");
        if let Workload::GridIndex {
            levels,
            corners,
            dims,
            decomposed,
            ..
        } = plane.workload()
        {
            assert_eq!(*levels, 3, "three projection planes");
            assert_eq!(*corners, 4, "bilinear");
            assert_eq!(*dims, Dims::D2);
            assert!(decomposed);
        } else {
            panic!("expected grid index");
        }
        let grid = trace
            .iter()
            .find(|i| i.stage() == "grid indexing")
            .expect("grid stage");
        if let Workload::GridIndex { corners, dims, .. } = grid.workload() {
            assert_eq!(*corners, 8, "trilinear");
            assert_eq!(*dims, Dims::D3);
        } else {
            panic!("expected grid index");
        }
    }

    #[test]
    fn deferred_mlp_runs_per_pixel_not_per_sample() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 640, 480);
        let trace = LowRankPipeline::default().trace(scene, &camera);
        let plane_points = match trace.invocations()[0].workload() {
            Workload::GridIndex { points, .. } => *points,
            _ => panic!(),
        };
        let deferred_batch = trace
            .iter()
            .find(|i| i.stage().starts_with("deferred mlp"))
            .map(|i| match i.workload() {
                Workload::Gemm { batch, .. } => *batch,
                _ => panic!(),
            })
            .expect("deferred stage");
        assert!(
            deferred_batch * 4 < plane_points,
            "deferred ({deferred_batch}) runs far less often than sampling ({plane_points})"
        );
    }
}
