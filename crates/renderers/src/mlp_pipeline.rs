//! The MLP-based rendering pipeline (Sec. II-B, Fig. 3): ray casting → MLP
//! → blending.
//!
//! Follows KiloNeRF's structure (the accuracy/efficiency representative the
//! paper benchmarks): a coarse cell grid of tiny MLPs with occupancy
//! skipping, composited by volume rendering. The optional *Pixel-Reuse*
//! mode models MetaVRain's ~20× computation cut from reusing pixels across
//! nearby frames (Tab. IV's extra row); the paper does not enable it by
//! default because it assumes slow camera motion.

use crate::blending::RayAccumulator;
use crate::probe::Probe;
use crate::Renderer;
use uni_geometry::sampling::XorShift64;
use uni_geometry::{Camera, Image, Rgb, StratifiedSampler};
use uni_microops::{Invocation, Pipeline, Trace, Workload};
use uni_scene::BakedScene;

/// Compute reduction factor of MetaVRain-style Pixel-Reuse (Sec. VII-B:
/// "reducing the computation by ∼20×").
pub const PIXEL_REUSE_FACTOR: u64 = 20;

/// The MLP-based (volume rendering) pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MlpPipeline {
    /// Enables MetaVRain-style Pixel-Reuse in the emitted workload.
    pub pixel_reuse: bool,
}

impl MlpPipeline {
    /// Enables Pixel-Reuse (Tab. IV's "w/ Pixel-Reuse" row).
    pub fn with_pixel_reuse(mut self) -> Self {
        self.pixel_reuse = true;
        self
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct VolumeStats {
    rays: u64,
    rays_in_bounds: u64,
    samples_tested: u64,
    samples_occupied: u64,
}

impl VolumeStats {
    fn merge(&mut self, o: VolumeStats) {
        self.rays += o.rays;
        self.rays_in_bounds += o.rays_in_bounds;
        self.samples_tested += o.samples_tested;
        self.samples_occupied += o.samples_occupied;
    }
}

impl MlpPipeline {
    /// Renders the scanlines starting at row `y0` into `chunk` (whole
    /// rows, row-major), using the caller's ray scratch arena. The band
    /// loop for the parallel path and, over the full image, the scalar
    /// reference.
    // uni-lint: hot
    fn render_rows(
        &self,
        scene: &BakedScene,
        camera: &Camera,
        y0: u32,
        chunk: &mut [Rgb],
        rs: &mut crate::scratch::RayScratch,
    ) -> VolumeStats {
        let field_bg = scene.field().background();
        let bounds = scene.kilonerf().bounds();
        let samples_per_ray = scene.spec().scaled_repr().mlp_samples_per_ray as usize;
        let sampler = StratifiedSampler::new(samples_per_ray);
        let mut rng = XorShift64::new(0xC0FFEE);
        let width = camera.width as usize;
        let rows = chunk.len() / width.max(1);
        let mut stats = VolumeStats::default();
        let crate::scratch::RayScratch { ts, kilo, .. } = rs;
        for dy in 0..rows {
            let y = y0 + dy as u32;
            let row = &mut chunk[dy * width..(dy + 1) * width];
            for x in 0..camera.width {
                stats.rays += 1;
                let ray = camera.primary_ray(x as f32 + 0.5, y as f32 + 0.5);
                let Some((t0, t1)) = bounds.intersect_ray(&ray, camera.near, camera.far) else {
                    continue;
                };
                stats.rays_in_bounds += 1;
                let mut acc = RayAccumulator::new();
                sampler.sample_into(t0, t1, &mut rng, ts);
                let dt = (t1 - t0) / samples_per_ray.max(1) as f32;
                for &t in ts.iter() {
                    if acc.saturated() {
                        break;
                    }
                    stats.samples_tested += 1;
                    // Occupancy skip: empty cells never reach an MLP.
                    if let Some(s) = scene.kilonerf().query_scratch(ray.at(t), kilo) {
                        stats.samples_occupied += 1;
                        if s.density > 1e-3 {
                            acc.add_density_sample(s.color, s.density, dt);
                        }
                    }
                }
                row[x as usize] = acc.finish(field_bg);
            }
        }
        stats
    }

    fn render_internal(
        &self,
        scene: &BakedScene,
        camera: &Camera,
        target: &mut Image,
    ) -> VolumeStats {
        let field_bg = scene.field().background();
        target.resize(camera.width, camera.height, field_bg);
        let width = camera.width as usize;
        let band_len = crate::scratch::BAND_ROWS as usize * width;
        uni_parallel::par_bands_fold(
            target.pixels_mut(),
            band_len,
            VolumeStats::default(),
            |band, chunk| {
                crate::scratch::with_ray_scratch(|rs| {
                    self.render_rows(
                        scene,
                        camera,
                        band as u32 * crate::scratch::BAND_ROWS,
                        chunk,
                        rs,
                    )
                })
            },
            |mut acc, s| {
                acc.merge(s);
                acc
            },
        )
    }

    /// The seed-era scalar reference path: single-threaded, allocating a
    /// fresh sample vector per ray and fresh MLP activations per query.
    /// Parity baseline and the "before" side of `benches/render_hot.rs`.
    pub fn render_scalar(&self, scene: &BakedScene, camera: &Camera) -> Image {
        let field_bg = scene.field().background();
        let mut img = Image::new(camera.width, camera.height, field_bg);
        let bounds = scene.kilonerf().bounds();
        let samples_per_ray = scene.spec().scaled_repr().mlp_samples_per_ray as usize;
        let sampler = StratifiedSampler::new(samples_per_ray);
        let mut rng = XorShift64::new(0xC0FFEE);
        for y in 0..camera.height {
            for x in 0..camera.width {
                let ray = camera.primary_ray(x as f32 + 0.5, y as f32 + 0.5);
                let Some((t0, t1)) = bounds.intersect_ray(&ray, camera.near, camera.far) else {
                    continue;
                };
                let mut acc = RayAccumulator::new();
                let ts = sampler.sample(t0, t1, &mut rng);
                let dt = (t1 - t0) / samples_per_ray.max(1) as f32;
                for &t in &ts {
                    if acc.saturated() {
                        break;
                    }
                    if let Some(s) = scene.kilonerf().query(ray.at(t)) {
                        if s.density > 1e-3 {
                            acc.add_density_sample(s.color, s.density, dt);
                        }
                    }
                }
                img.set(x, y, acc.finish(field_bg));
            }
        }
        img
    }
}

impl Renderer for MlpPipeline {
    fn pipeline(&self) -> Pipeline {
        Pipeline::Mlp
    }

    fn render_into(&self, scene: &BakedScene, camera: &Camera, target: &mut Image) {
        self.render_internal(scene, camera, target);
    }

    fn trace(&self, scene: &BakedScene, camera: &Camera) -> Trace {
        let probe = Probe::plan(camera);
        let stats = crate::scratch::with_probe_target(|img| {
            self.render_internal(scene, &probe.camera, img)
        });
        let mut trace = Trace::new(Pipeline::Mlp, camera.width, camera.height);

        let repr = &scene.spec().repr; // Full-scale constants.
        let scaled = scene.spec().scaled_repr();
        let reuse = if self.pixel_reuse {
            PIXEL_REUSE_FACTOR
        } else {
            1
        };

        // Occupancy fraction measured on the probe transfers to full scale
        // (same field content); sample counts rescale from the probe's
        // (possibly detail-reduced) samples-per-ray to the full value.
        let sample_ratio =
            f64::from(repr.mlp_samples_per_ray) / f64::from(scaled.mlp_samples_per_ray.max(1));
        let occupied = (probe.scale(stats.samples_occupied) as f64 * sample_ratio) as u64 / reuse;

        // The tiny-MLP complement at full scale: every occupied cell owns a
        // network whose weights stream through the FF scratchpads.
        let occupancy = scene.kilonerf().occupancy();
        let full_cells = u64::from(repr.kilonerf_grid).pow(3);
        let occupied_cells = (occupancy * full_cells as f64).ceil() as u64;
        let encoding = scene.kilonerf().encoding();

        // Layer shapes come from the baked tiny MLPs so render and trace
        // describe the same networks.
        let layers = scene.kilonerf().mlps()[0].layers();
        for (i, layer) in layers.iter().enumerate() {
            let mut inv = Invocation::new(
                format!("tiny-mlp layer {i}"),
                Workload::Gemm {
                    batch: occupied.max(1),
                    in_dim: layer.in_dim() as u32,
                    out_dim: layer.out_dim() as u32,
                    weight_bytes: layer.param_count() as u64 * 2 * occupied_cells,
                },
            );
            if i == 0 {
                // Positional encoding: sin/cos SFU ops per sample.
                inv = inv.with_sfu_ops(encoding.sfu_ops_per_point() * occupied.max(1));
            }
            trace.push(inv);
        }

        // Blending: one exp + weighted accumulate per composited sample.
        trace.push(
            Invocation::new(
                "blending",
                Workload::Gemm {
                    batch: occupied.max(1),
                    in_dim: 1,
                    out_dim: 4,
                    weight_bytes: 0,
                },
            )
            .with_sfu_ops(occupied.max(1)),
        );
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use uni_microops::MicroOp;

    #[test]
    fn renders_the_trained_content() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 48, 36);
        let img = MlpPipeline::default().render(scene, &camera);
        let bg = scene.field().background();
        let non_bg = img
            .pixels()
            .iter()
            .filter(|p| (p.r - bg.r).abs() + (p.g - bg.g).abs() + (p.b - bg.b).abs() > 0.05)
            .count();
        assert!(non_bg > 30, "{non_bg} non-background pixels");
    }

    #[test]
    fn trace_is_gemm_only() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 640, 480);
        let trace = MlpPipeline::default().trace(scene, &camera);
        assert_eq!(trace.micro_ops_used(), vec![MicroOp::Gemm]);
        // No reconfiguration needed within a pure-GEMM pipeline.
        assert_eq!(trace.reconfiguration_count(), 0);
    }

    #[test]
    fn positional_encoding_contributes_sfu_ops() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 320, 240);
        let trace = MlpPipeline::default().trace(scene, &camera);
        let total = trace.total_cost();
        assert!(total.sfu_ops > 0, "PE + blending exp are SFU work");
    }

    #[test]
    fn pixel_reuse_cuts_compute_about_twenty_fold() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 640, 480);
        let base = MlpPipeline::default().trace(scene, &camera).total_cost();
        let reuse = MlpPipeline::default()
            .with_pixel_reuse()
            .trace(scene, &camera)
            .total_cost();
        let ratio = base.fp_macs as f64 / reuse.fp_macs.max(1) as f64;
        assert!(
            (10.0..=25.0).contains(&ratio),
            "~20x compute reduction, got {ratio:.1}x"
        );
    }

    #[test]
    fn occupancy_skip_reduces_mlp_evaluations() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 64, 48);
        let stats = MlpPipeline::default().render_internal(scene, &camera, &mut Image::empty());
        assert!(stats.samples_tested > 0);
        assert!(
            stats.samples_occupied < stats.samples_tested,
            "empty space must be skipped: {} occupied of {}",
            stats.samples_occupied,
            stats.samples_tested
        );
        assert!(stats.rays_in_bounds <= stats.rays);
    }

    #[test]
    fn trace_weight_traffic_covers_occupied_cells() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 320, 240);
        let trace = MlpPipeline::default().trace(scene, &camera);
        let first = &trace.invocations()[0];
        if let Workload::Gemm { weight_bytes, .. } = first.workload() {
            assert!(*weight_bytes > 0, "weights stream per occupied cell");
        } else {
            panic!("expected GEMM");
        }
    }
}
