//! The 3D-Gaussian-based rendering pipeline (Sec. II-E, Fig. 6): space
//! conversion → splatting → sorting → MLP → blending.
//!
//! Follows 3DGS: Gaussians are projected to screen-space conics
//! (splatting), assigned to 16×16-pixel patches, depth-sorted *per patch*
//! (so the sorting cost is amortized across the patch's pixels — the
//! observation the paper's Sorting dataflow exploits), colored by SH
//! evaluation (the "MLP" step: a vector-matrix product), and alpha-blended
//! front to back.
//!
//! # Hot-path layout
//!
//! The production path ([`Renderer::render`]) is SoA and allocation-free in
//! steady state:
//!
//! 1. projection + SH evaluation run band-parallel across splats
//!    (`uni_parallel::par_indices` over [`PROJ_BAND_SPLATS`]-sized bands,
//!    each compacting into per-band columns reused across frames), then
//!    concatenate in band order into the frame's visible-splat columns
//!    (centers, depths, conics, radii, opacities, SH colors) — bit-
//!    identical to a serial pass;
//! 2. tile binning counts (splat, tile) pairs per tile, prefix-sums the
//!    histogram into per-tile segments, and scatters pair keys
//!    `(tile << 32) | depth_key(depth)` — one **global counting (LSD
//!    radix) sort** then orders every tile's work list by depth in linear
//!    passes, replacing the seed's per-patch comparison sorts
//!    ([`sort_pairs_by_tile_and_depth`]);
//! 3. blending gathers each tile's sorted splats contiguously and walks
//!    them per pixel, processing whole rows of tiles as parallel bands
//!    (`uni_parallel::par_bands`; bands write disjoint image rows).
//!
//! All buffers live in per-thread scratch arenas reused across frames.
//! The seed-era scalar path is kept as [`GaussianPipeline::render_scalar`]
//! — the parity baseline for tests and the speedup baseline for
//! `benches/render_hot.rs`. The two paths make bit-identical per-sample
//! decisions: the SoA path's log-space early-out
//! (`power < ln(1/255 / opacity) - margin`) only skips pairs the scalar
//! `alpha < 1/255` test would also reject after the `exp`.

use crate::blending::RayAccumulator;
use crate::probe::Probe;
use crate::Renderer;
use std::cell::RefCell;
use uni_geometry::{Camera, Image, Rgb};
use uni_microops::{Invocation, Pipeline, PrimitiveKind, Trace, Workload};
use uni_scene::{BakedScene, GaussianCloud, ProjectedSplat};

/// Alpha below which a (splat, pixel) contribution is discarded (the 3DGS
/// 1/255 threshold).
const MIN_ALPHA: f32 = 1.0 / 255.0;

/// Log-space safety margin for the pre-`exp` alpha cutoff. `f32::exp`'s
/// relative error is ~1e-7, so 0.01 in log space conservatively covers
/// it: every pair skipped by the log-space test would also fail the
/// seed's post-`exp` `alpha < 1/255` test.
const LN_ALPHA_MARGIN: f32 = 0.01;

/// The 3D-Gaussian (splat rasterization) pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianPipeline {
    /// Patch size in pixels (16 in 3DGS).
    pub patch_size: u32,
    /// Opacity threshold below which splats are bypassed.
    pub alpha_threshold: f32,
}

impl Default for GaussianPipeline {
    fn default() -> Self {
        Self {
            patch_size: 16,
            alpha_threshold: 1.0 / 255.0,
        }
    }
}

/// Maps a depth to a `u32` key whose unsigned order equals
/// [`f32::total_cmp`] order — the key the global counting sort runs on.
#[inline]
pub fn depth_key(depth: f32) -> u32 {
    let b = depth.to_bits();
    if b & 0x8000_0000 != 0 {
        !b
    } else {
        b | 0x8000_0000
    }
}

/// Stable LSD counting sort of `(key, id)` pairs by the 64-bit key
/// `(tile << 32) | depth_key`, in 16-bit digits.
///
/// Three passes cover up to 65 536 tiles; a fourth runs only beyond that.
/// Passes whose digit is constant across all keys skip their permute.
/// `keys_tmp`, `ids_tmp`, and `hist` are caller-owned scratch so frame
/// loops reuse their capacity.
///
/// Being a stable sort on a key that orders depths exactly like
/// [`f32::total_cmp`], the result matches a per-tile
/// `sort_by(total_cmp)` over pairs scattered in splat order — the
/// property `tests/render_parity.rs` checks.
///
/// # Panics
///
/// Panics if `keys` and `ids` lengths differ.
pub fn sort_pairs_by_tile_and_depth(
    keys: &mut Vec<u64>,
    ids: &mut Vec<u32>,
    keys_tmp: &mut Vec<u64>,
    ids_tmp: &mut Vec<u32>,
    hist: &mut Vec<u32>,
    n_tiles: u32,
) {
    assert_eq!(keys.len(), ids.len(), "one id per key");
    if keys.len() <= 1 {
        return;
    }
    const DIGITS: usize = 1 << 16;
    hist.clear();
    hist.resize(DIGITS, 0);
    keys_tmp.clear();
    keys_tmp.resize(keys.len(), 0);
    ids_tmp.clear();
    ids_tmp.resize(ids.len(), 0);

    let passes: u32 = if n_tiles as usize > DIGITS { 4 } else { 3 };
    for pass in 0..passes {
        let shift = 16 * pass;
        hist.fill(0);
        for &k in keys.iter() {
            hist[((k >> shift) & 0xFFFF) as usize] += 1;
        }
        // A constant digit leaves the order unchanged; skip the permute.
        if hist.iter().any(|&c| c as usize == keys.len()) {
            continue;
        }
        // Exclusive prefix sum -> first slot per digit.
        let mut running = 0u32;
        for c in hist.iter_mut() {
            let count = *c;
            *c = running;
            running += count;
        }
        for (&k, &id) in keys.iter().zip(ids.iter()) {
            let slot = &mut hist[((k >> shift) & 0xFFFF) as usize];
            keys_tmp[*slot as usize] = k;
            ids_tmp[*slot as usize] = id;
            *slot += 1;
        }
        std::mem::swap(keys, keys_tmp);
        std::mem::swap(ids, ids_tmp);
    }
}

/// The tile span a splat footprint covers, mirroring the seed binning
/// rules exactly (floor/ceil clamps, off-screen rejection). `None` when
/// the splat lands on no tile.
#[inline]
fn tile_range(
    cx: f32,
    cy: f32,
    radius: f32,
    ps: u32,
    tiles_x: u32,
    tiles_y: u32,
) -> Option<(u32, u32, u32, u32)> {
    if cx + radius < 0.0 || cy + radius < 0.0 {
        return None;
    }
    let x0 = ((cx - radius).floor().max(0.0) as u32) / ps;
    let x1 = (((cx + radius).ceil().max(0.0) as u32) / ps).min(tiles_x - 1);
    let y0 = ((cy - radius).floor().max(0.0) as u32) / ps;
    let y1 = (((cy + radius).ceil().max(0.0) as u32) / ps).min(tiles_y - 1);
    if x0 > x1 || y0 > y1 {
        return None;
    }
    Some((x0, x1, y0, y1))
}

#[derive(Debug, Clone, Copy, Default)]
struct SplatStats {
    gaussians_streamed: u64,
    visible_splats: u64,
    patch_pairs: u64,
    patches_nonempty: u64,
    candidate_pairs: u64,
    blended_pairs: u64,
}

/// Number of Gaussians one projection band covers. Projection + SH
/// evaluation parallelize across bands of splats
/// (`uni_parallel::par_indices`); band results concatenate in band order,
/// so the global column layout is identical to a serial pass.
const PROJ_BAND_SPLATS: usize = 2048;

/// Projected-splat SoA columns, one column per field. Used both for the
/// per-band projection scratch and for the frame's concatenated columns.
#[derive(Debug, Default)]
struct ProjCols {
    cx: Vec<f32>,
    cy: Vec<f32>,
    depth: Vec<f32>,
    conic_a: Vec<f32>,
    conic_b: Vec<f32>,
    conic_c: Vec<f32>,
    radius: Vec<f32>,
    opacity: Vec<f32>,
    /// Per-splat log-space alpha cutoff: `ln(MIN_ALPHA / opacity) - margin`.
    ln_cut: Vec<f32>,
    /// Reciprocal of `conic_a` (hoists the per-row division).
    inv_a: Vec<f32>,
    /// Vertical half-extent of the `{ power >= ln_cut }` ellipse.
    dy_max: Vec<f32>,
    col_r: Vec<f32>,
    col_g: Vec<f32>,
    col_b: Vec<f32>,
}

impl ProjCols {
    fn clear(&mut self) {
        self.cx.clear();
        self.cy.clear();
        self.depth.clear();
        self.conic_a.clear();
        self.conic_b.clear();
        self.conic_c.clear();
        self.radius.clear();
        self.opacity.clear();
        self.ln_cut.clear();
        self.inv_a.clear();
        self.dy_max.clear();
        self.col_r.clear();
        self.col_g.clear();
        self.col_b.clear();
    }

    fn len(&self) -> usize {
        self.cx.len()
    }

    /// Appends one projected splat, deriving the blending-loop
    /// precomputations (log-space cutoff, reciprocal, vertical reach).
    fn push(&mut self, s: &ProjectedSplat, color: Rgb) {
        self.cx.push(s.center.x);
        self.cy.push(s.center.y);
        self.depth.push(s.depth);
        self.conic_a.push(s.conic.0);
        self.conic_b.push(s.conic.1);
        self.conic_c.push(s.conic.2);
        self.radius.push(s.radius);
        self.opacity.push(s.opacity);
        let cut = (MIN_ALPHA / s.opacity).ln() - LN_ALPHA_MARGIN;
        self.ln_cut.push(cut);
        self.inv_a.push(1.0 / s.conic.0);
        // The set { power >= cut } is an ellipse; its vertical
        // half-extent is sqrt(-2·a·cut / (a·c - b²)) (the conic is
        // positive definite, so a·c - b² > 0).
        let det = s.conic.0 * s.conic.2 - s.conic.1 * s.conic.1;
        self.dy_max
            .push(((-2.0 * s.conic.0 * cut / det.max(1e-12)).max(0.0)).sqrt());
        self.col_r.push(color.r);
        self.col_g.push(color.g);
        self.col_b.push(color.b);
    }

    /// Concatenates `other`'s columns onto `self` (band-order gather).
    fn append(&mut self, other: &ProjCols) {
        self.cx.extend_from_slice(&other.cx);
        self.cy.extend_from_slice(&other.cy);
        self.depth.extend_from_slice(&other.depth);
        self.conic_a.extend_from_slice(&other.conic_a);
        self.conic_b.extend_from_slice(&other.conic_b);
        self.conic_c.extend_from_slice(&other.conic_c);
        self.radius.extend_from_slice(&other.radius);
        self.opacity.extend_from_slice(&other.opacity);
        self.ln_cut.extend_from_slice(&other.ln_cut);
        self.inv_a.extend_from_slice(&other.inv_a);
        self.dy_max.extend_from_slice(&other.dy_max);
        self.col_r.extend_from_slice(&other.col_r);
        self.col_g.extend_from_slice(&other.col_g);
        self.col_b.extend_from_slice(&other.col_b);
    }
}

/// Frame-lifetime SoA buffers, kept in a per-thread scratch arena so
/// steady-state rendering never touches the allocator.
#[derive(Debug, Default)]
struct FrameScratch {
    /// Concatenated projected-splat columns for the frame.
    cols: ProjCols,
    /// Per-band projection scratch (each projection worker locks its own
    /// band slot; bands are claimed exclusively, so locks never contend).
    proj: Vec<std::sync::Mutex<ProjCols>>,
    // Tile binning + global counting sort.
    counts: Vec<u32>,
    offsets: Vec<u32>,
    keys: Vec<u64>,
    keys_tmp: Vec<u64>,
    ids: Vec<u32>,
    ids_tmp: Vec<u32>,
    hist: Vec<u32>,
    // Per-band tile gather scratch (each band worker locks its own slot;
    // bands are claimed exclusively, so locks never contend).
    bands: Vec<std::sync::Mutex<TileScratch>>,
}

/// One splat gathered into a tile's work list: everything the blending
/// loop needs, packed so a splat is one sequential record instead of
/// eleven strided column reads.
#[derive(Debug, Clone, Copy, Default)]
struct GatheredSplat {
    x: f32,
    y: f32,
    conic_a: f32,
    conic_b: f32,
    conic_c: f32,
    /// Reciprocal of `conic_a` (hoists the per-row division).
    inv_a: f32,
    /// Log-space alpha cutoff: `ln(MIN_ALPHA / opacity) - margin`.
    ln_cut: f32,
    opacity: f32,
    r: f32,
    g: f32,
    b: f32,
    /// Scanline span within the band (`row_lo > row_hi`: reaches none).
    row_lo: u32,
    row_hi: u32,
}

/// Depth-sorted splat data gathered contiguously for one tile, so the
/// blending loop streams it cache-linearly — what the seed's per-patch
/// `Vec` copies bought, without the allocations.
#[derive(Debug, Default)]
struct TileScratch {
    splats: Vec<GatheredSplat>,
    /// Per-scanline buckets over the tile's splats: `row_lists` holds the
    /// (depth-ordered) tile-local indices of splats whose vertical extent
    /// reaches each row, with `row_offsets` delimiting rows. Built once
    /// per tile so a scanline only ever touches splats that can reach it.
    row_counts: Vec<u32>,
    row_offsets: Vec<u32>,
    row_lists: Vec<u32>,
    /// Per-pixel compositing state for the scanline being blended.
    accs: Vec<RayAccumulator>,
    last_blend: Vec<u32>,
}

/// `exp(x)` for `x <= 0` via Cephes-style range reduction and a degree-5
/// polynomial (~2 ulp). The blending loop calls this once per surviving
/// (splat, pixel) pair; callers guard the `alpha < 1/255` *decision* by
/// recomputing with [`f32::exp`] inside a band around the threshold, so
/// inclusion decisions are identical to the libm path.
#[inline]
fn fast_exp_neg(x: f32) -> f32 {
    const LOG2EF: f32 = std::f32::consts::LOG2_E;
    const LN2_HI: f32 = 0.693_359_4;
    const LN2_LO: f32 = -2.121_944_4e-4;
    let z = (LOG2EF * x + 0.5).floor();
    let r = (x - z * LN2_HI) - z * LN2_LO;
    let mut p = 1.987_569_1e-4;
    p = p * r + 1.398_199_9e-3;
    p = p * r + 8.333_452e-3;
    p = p * r + 4.166_579_6e-2;
    p = p * r + 1.666_666_5e-1;
    p = p * r + 5.000_000_3e-1;
    let y = p * r * r + r + 1.0;
    // 2^z by exponent stuffing; z >= -126 for every power above the
    // alpha cutoff (the cutoff floor is ln(1/255) - margin ≈ -5.6).
    let scale = f32::from_bits(((z as i32 + 127) << 23) as u32);
    y * scale
}

thread_local! {
    static SCRATCH: RefCell<FrameScratch> = RefCell::new(FrameScratch::default());
}

impl GaussianPipeline {
    fn render_internal(
        &self,
        scene: &BakedScene,
        camera: &Camera,
        target: &mut Image,
    ) -> SplatStats {
        SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            self.render_soa(scene, camera, &mut scratch, target)
        })
    }

    // uni-lint: hot
    #[allow(clippy::too_many_lines)]
    fn render_soa(
        &self,
        scene: &BakedScene,
        camera: &Camera,
        scratch: &mut FrameScratch,
        target: &mut Image,
    ) -> SplatStats {
        let bg = scene.field().background();
        target.resize(camera.width, camera.height, bg);
        let cloud = scene.gaussians();
        let mut stats = SplatStats {
            gaussians_streamed: cloud.len() as u64,
            ..SplatStats::default()
        };

        let FrameScratch {
            cols,
            proj,
            counts,
            offsets,
            keys,
            keys_tmp,
            ids,
            ids_tmp,
            hist,
            bands,
        } = scratch;

        // (1) Space conversion + splatting: project every Gaussian into
        // the SoA columns, evaluating its SH color once per frame (the
        // "MLP" step). Bands of splats project in parallel into per-band
        // columns; concatenating the bands in order reproduces the serial
        // pass bit for bit (per-splat math is untouched and compaction
        // order is preserved).
        let n_coeffs = cloud.coeffs_per_channel();
        let n_proj_bands = cloud.len().div_ceil(PROJ_BAND_SPLATS);
        if proj.len() < n_proj_bands {
            proj.resize_with(n_proj_bands, Default::default);
        }
        {
            let proj = &*proj;
            uni_parallel::par_indices(n_proj_bands, |b| {
                let mut pb = proj[b].lock().expect("projection band scratch poisoned");
                pb.clear();
                let lo = b * PROJ_BAND_SPLATS;
                let hi = ((b + 1) * PROJ_BAND_SPLATS).min(cloud.len());
                for i in lo..hi {
                    if let Some(s) = cloud.project(i as u32, camera, self.alpha_threshold) {
                        let g = &cloud.gaussians[s.index as usize];
                        let dir = (g.mean - camera.eye).normalized();
                        pb.push(&s, g.color(dir, n_coeffs));
                    }
                }
            });
        }
        cols.clear();
        for cell in proj.iter().take(n_proj_bands) {
            cols.append(&cell.lock().expect("projection band scratch poisoned"));
        }
        let visible = cols.len();
        stats.visible_splats = visible as u64;
        let ProjCols {
            cx,
            cy,
            depth,
            conic_a,
            conic_b,
            conic_c,
            radius,
            opacity,
            ln_cut,
            inv_a,
            dy_max,
            col_r,
            col_g,
            col_b,
        } = cols;

        // (2) Tile binning, pass one: per-tile pair counts.
        let ps = self.patch_size;
        let tiles_x = camera.width.div_ceil(ps);
        let tiles_y = camera.height.div_ceil(ps);
        let n_tiles = (tiles_x * tiles_y) as usize;
        counts.clear();
        counts.resize(n_tiles, 0);
        for i in 0..visible {
            if let Some((x0, x1, y0, y1)) =
                tile_range(cx[i], cy[i], radius[i], ps, tiles_x, tiles_y)
            {
                for ty in y0..=y1 {
                    for tx in x0..=x1 {
                        counts[(ty * tiles_x + tx) as usize] += 1;
                    }
                }
            }
        }
        let pair_total: u64 = counts.iter().map(|&c| u64::from(c)).sum();
        stats.patch_pairs = pair_total;
        stats.patches_nonempty = counts.iter().filter(|&&c| c > 0).count() as u64;

        // Exclusive prefix sum -> per-tile segment offsets.
        offsets.clear();
        offsets.reserve(n_tiles + 1);
        let mut running = 0u32;
        offsets.push(0);
        for &c in counts.iter() {
            running += c;
            offsets.push(running);
        }

        // Pass two: scatter (key, splat-id) pairs in splat order, so the
        // stable sort ties off exactly like the seed's stable per-patch
        // sort over push-ordered bins.
        keys.clear();
        keys.resize(pair_total as usize, 0);
        ids.clear();
        ids.resize(pair_total as usize, 0);
        let mut cursor = 0usize;
        for i in 0..visible {
            if let Some((x0, x1, y0, y1)) =
                tile_range(cx[i], cy[i], radius[i], ps, tiles_x, tiles_y)
            {
                let dkey = u64::from(depth_key(depth[i]));
                for ty in y0..=y1 {
                    for tx in x0..=x1 {
                        let tile = u64::from(ty * tiles_x + tx);
                        keys[cursor] = (tile << 32) | dkey;
                        ids[cursor] = i as u32;
                        cursor += 1;
                    }
                }
            }
        }
        debug_assert_eq!(cursor as u64, pair_total);

        // (3) One global counting sort by (tile, depth-key).
        sort_pairs_by_tile_and_depth(keys, ids, keys_tmp, ids_tmp, hist, tiles_x * tiles_y);

        // (4)+(5) Per-tile gather + front-to-back blending, a row of
        // tiles per band. Bands own disjoint row ranges of the image.
        if bands.len() < tiles_y as usize {
            bands.resize_with(tiles_y as usize, Default::default);
        }
        let width = camera.width as usize;
        let band_len = (ps as usize) * width;
        // Reborrow the destructured columns as shared so the band
        // closures (which run on worker threads) can read them.
        let (cx, cy, conic_a, conic_b, conic_c, opacity) =
            (&*cx, &*cy, &*conic_a, &*conic_b, &*conic_c, &*opacity);
        let (ln_cut, inv_a, dy_max) = (&*ln_cut, &*inv_a, &*dy_max);
        let (col_r, col_g, col_b) = (&*col_r, &*col_g, &*col_b);
        let (offsets, ids, bands) = (&*offsets, &*ids, &*bands);

        let (candidate_pairs, blended_pairs) = uni_parallel::par_bands_fold(
            target.pixels_mut(),
            band_len,
            (0u64, 0u64),
            |band_ty, chunk| {
                let rows_in_band = chunk.len() / width;
                let y_base = band_ty * ps as usize;
                let mut candidate = 0u64;
                let mut blended = 0u64;
                let mut tile_scratch = bands[band_ty].lock().expect("band scratch poisoned");
                let ts = &mut *tile_scratch;
                for tx in 0..tiles_x {
                    let tile = band_ty * tiles_x as usize + tx as usize;
                    let seg = offsets[tile] as usize..offsets[tile + 1] as usize;
                    if seg.is_empty() {
                        continue;
                    }
                    // Gather the tile's depth-sorted splats contiguously, and
                    // bucket them by the scanlines their alpha-threshold
                    // ellipse can reach (a small counting sort by row that
                    // keeps depth order within each row). Each scanline then
                    // only ever touches splats that can contribute to it.
                    ts.splats.clear();
                    ts.row_counts.clear();
                    ts.row_counts.resize(rows_in_band, 0);
                    for &id in &ids[seg.clone()] {
                        let id = id as usize;
                        // Scanline span: rows whose center is within the
                        // splat's vertical reach (widened 1e-3 px for float
                        // safety; the exact per-pair tests below still run).
                        let reach = dy_max[id] + 1e-3;
                        let lo = (cy[id] - reach - 0.5 - y_base as f32).ceil().max(0.0);
                        let hi = (cy[id] + reach - 0.5 - y_base as f32).floor();
                        let (row_lo, row_hi) = if hi < lo || lo >= rows_in_band as f32 {
                            (1, 0) // Empty span.
                        } else {
                            let r0 = lo as u32;
                            let r1 = (hi as u32).min(rows_in_band as u32 - 1);
                            for r in r0..=r1 {
                                ts.row_counts[r as usize] += 1;
                            }
                            (r0, r1)
                        };
                        ts.splats.push(GatheredSplat {
                            x: cx[id],
                            y: cy[id],
                            conic_a: conic_a[id],
                            conic_b: conic_b[id],
                            conic_c: conic_c[id],
                            inv_a: inv_a[id],
                            ln_cut: ln_cut[id],
                            opacity: opacity[id],
                            r: col_r[id],
                            g: col_g[id],
                            b: col_b[id],
                            row_lo,
                            row_hi,
                        });
                    }
                    let n = ts.splats.len();
                    ts.row_offsets.clear();
                    ts.row_offsets.push(0);
                    let mut run = 0u32;
                    for &c in &ts.row_counts {
                        run += c;
                        ts.row_offsets.push(run);
                    }
                    ts.row_lists.clear();
                    ts.row_lists.resize(run as usize, 0);
                    ts.row_counts.fill(0);
                    for (k, s) in ts.splats.iter().enumerate() {
                        if s.row_lo > s.row_hi {
                            continue;
                        }
                        for r in s.row_lo..=s.row_hi {
                            let slot = ts.row_offsets[r as usize] + ts.row_counts[r as usize];
                            ts.row_lists[slot as usize] = k as u32;
                            ts.row_counts[r as usize] += 1;
                        }
                    }

                    let px0 = tx * ps;
                    let px1 = ((tx + 1) * ps).min(camera.width);
                    let px_count = (px1 - px0) as usize;
                    for row_local in 0..rows_in_band {
                        let py = (y_base + row_local) as f32 + 0.5;
                        let row = &mut chunk[row_local * width..(row_local + 1) * width];

                        // Fresh per-pixel compositing state for this scanline
                        // segment. Splat-major traversal below feeds each
                        // pixel its samples in depth order (the outer loop is
                        // depth-ordered), so compositing semantics — including
                        // early saturation — match the seed's pixel-major
                        // walk exactly.
                        ts.accs.clear();
                        ts.accs.resize(px_count, RayAccumulator::new());
                        ts.last_blend.clear();
                        ts.last_blend.resize(px_count, 0);

                        let row_seg = ts.row_offsets[row_local] as usize
                            ..ts.row_offsets[row_local + 1] as usize;
                        let (accs, last_blend) =
                            (&mut ts.accs[..px_count], &mut ts.last_blend[..px_count]);
                        for li in row_seg {
                            let j = ts.row_lists[li] as usize;
                            let s = ts.splats[j];
                            let dy = py - s.y;
                            // X interval where `power >= ln_cut` can hold
                            // (roots of 0.5·a·dx² + b·dy·dx + 0.5·c·dy² + cut
                            // ≤ 0, widened by 1e-3 px). Pixels outside it are
                            // provably below the alpha threshold.
                            let bb = s.conic_b * dy;
                            let c0 = 0.5 * s.conic_c * dy * dy + s.ln_cut;
                            let disc = bb * bb - 2.0 * s.conic_a * c0;
                            if disc <= 0.0 {
                                continue; // Below threshold across the row.
                            }
                            let sq = disc.sqrt();
                            let xlo = s.x + (-bb - sq) * s.inv_a - 1e-3;
                            let xhi = s.x + (-bb + sq) * s.inv_a + 1e-3;
                            // Pixel centers sit at px + 0.5 (float casts
                            // saturate, so negative bounds clamp to zero).
                            let lo = ((xlo - 0.5).ceil().max(px0 as f32) as u32).max(px0);
                            let hi_f = (xhi - 0.5).floor();
                            if hi_f < lo as f32 {
                                continue;
                            }
                            let hi = (hi_f as u32).min(px1 - 1);
                            let color = Rgb::new(s.r, s.g, s.b);
                            // `c·dy·dy` keeps the seed's left-to-right product
                            // order, and the `b·dx·dy` pairing stays inside
                            // the loop, so `power` is bit-identical to
                            // ProjectedSplat::falloff's.
                            let c_dyy = s.conic_c * dy * dy;
                            for px in lo..=hi {
                                let pi = (px - px0) as usize;
                                let acc = &mut accs[pi];
                                if acc.saturated() {
                                    continue;
                                }
                                let pxf = px as f32 + 0.5;
                                let dx = pxf - s.x;
                                // Same expression as ProjectedSplat::falloff,
                                // with the exp elided for pairs provably below
                                // the alpha threshold.
                                let power =
                                    -0.5 * (s.conic_a * dx * dx + c_dyy) - s.conic_b * dx * dy;
                                if power > 0.0 || power < s.ln_cut {
                                    continue;
                                }
                                let mut alpha = s.opacity * fast_exp_neg(power);
                                // Near the 1/255 cutoff, fall back to libm exp
                                // for both the decision and the value: inclusion
                                // then matches the scalar reference exactly (the
                                // polynomial's ~2 ulp error is far inside the
                                // 1e-3 guard band).
                                if (alpha - MIN_ALPHA).abs() <= MIN_ALPHA * 1e-3 {
                                    alpha = s.opacity * power.exp();
                                }
                                if alpha < MIN_ALPHA {
                                    continue;
                                }
                                blended += 1;
                                acc.add_alpha_sample(color, alpha);
                                last_blend[pi] = j as u32;
                            }
                        }

                        // Candidate-pair accounting matches the seed loop: it
                        // examined every splat up to (and including) the one
                        // that saturated the ray, or all of them. Skipped
                        // pairs never blend, so the saturation point is
                        // unchanged by the interval culling.
                        for pi in 0..px_count {
                            let acc = ts.accs[pi];
                            candidate += if acc.saturated() {
                                u64::from(ts.last_blend[pi]) + 1
                            } else {
                                n as u64
                            };
                            row[px0 as usize + pi] = acc.finish(bg);
                        }
                    }
                }
                (candidate, blended)
            },
            |acc, (c, b)| (acc.0 + c, acc.1 + b),
        );
        stats.candidate_pairs += candidate_pairs;
        stats.blended_pairs += blended_pairs;
        stats
    }

    /// The seed-era scalar reference path: AoS splats, per-patch `Vec`
    /// bins, and per-patch stable comparison sorts (by
    /// [`f32::total_cmp`]).
    ///
    /// Kept as the parity baseline for the SoA + counting-sort + parallel
    /// path and as the "before" side of `benches/render_hot.rs`. Produces
    /// the same image as [`Renderer::render`] (within 1e-5 per channel;
    /// see `tests/render_parity.rs`).
    pub fn render_scalar(&self, scene: &BakedScene, camera: &Camera) -> Image {
        let bg = scene.field().background();
        let mut img = Image::new(camera.width, camera.height, bg);
        let cloud = scene.gaussians();

        // (1) Space conversion + splatting: project every Gaussian.
        let mut splats: Vec<ProjectedSplat> = Vec::new();
        for i in 0..cloud.len() {
            if let Some(s) = cloud.project(i as u32, camera, self.alpha_threshold) {
                splats.push(s);
            }
        }

        // SH color per visible splat, once per frame (the "MLP" step).
        let n_coeffs = cloud.coeffs_per_channel();
        let colors: Vec<Rgb> = splats
            .iter()
            .map(|s| {
                let g = &cloud.gaussians[s.index as usize];
                let dir = (g.mean - camera.eye).normalized();
                g.color(dir, n_coeffs)
            })
            .collect();

        // (2) Patch assignment.
        let ps = self.patch_size;
        let tiles_x = camera.width.div_ceil(ps);
        let tiles_y = camera.height.div_ceil(ps);
        // uni-lint: allow(R1, seed-faithful scalar baseline — keeps the seed's nested-bin allocation pattern so BENCH_render speedups measure against the real seed cost)
        let mut bins: Vec<Vec<u32>> = vec![Vec::new(); (tiles_x * tiles_y) as usize];
        for (si, s) in splats.iter().enumerate() {
            let Some((x0, x1, y0, y1)) =
                tile_range(s.center.x, s.center.y, s.radius, ps, tiles_x, tiles_y)
            else {
                continue;
            };
            for ty in y0..=y1 {
                for tx in x0..=x1 {
                    bins[(ty * tiles_x + tx) as usize].push(si as u32);
                }
            }
        }

        // (3) Per-patch sort + (5) per-pixel front-to-back blending.
        for ty in 0..tiles_y {
            for tx in 0..tiles_x {
                let bin = &bins[(ty * tiles_x + tx) as usize];
                if bin.is_empty() {
                    continue;
                }
                let mut patch_splats: Vec<ProjectedSplat> =
                    bin.iter().map(|&i| splats[i as usize]).collect();
                let color_of: Vec<Rgb> = bin.iter().map(|&i| colors[i as usize]).collect();
                // Stable sort by depth (matching the hardware's merge-sort
                // dataflow of Fig. 13).
                let mut order: Vec<usize> = (0..patch_splats.len()).collect();
                order.sort_by(|&a, &b| patch_splats[a].depth.total_cmp(&patch_splats[b].depth));
                patch_splats = order.iter().map(|&i| patch_splats[i]).collect();
                let sorted_colors: Vec<Rgb> = order.iter().map(|&i| color_of[i]).collect();

                for py in (ty * ps)..((ty + 1) * ps).min(camera.height) {
                    for px in (tx * ps)..((tx + 1) * ps).min(camera.width) {
                        let mut acc = RayAccumulator::new();
                        for (s, &c) in patch_splats.iter().zip(&sorted_colors) {
                            if acc.saturated() {
                                break;
                            }
                            let dx = px as f32 + 0.5 - s.center.x;
                            let dy = py as f32 + 0.5 - s.center.y;
                            let alpha = s.opacity * s.falloff(dx, dy);
                            if alpha < MIN_ALPHA {
                                continue;
                            }
                            acc.add_alpha_sample(c, alpha);
                        }
                        img.set(px, py, acc.finish(bg));
                    }
                }
            }
        }
        img
    }
}

impl Renderer for GaussianPipeline {
    fn pipeline(&self) -> Pipeline {
        Pipeline::Gaussian3d
    }

    fn render_into(&self, scene: &BakedScene, camera: &Camera, target: &mut Image) {
        self.render_internal(scene, camera, target);
    }

    fn trace(&self, scene: &BakedScene, camera: &Camera) -> Trace {
        let probe = Probe::plan(camera);
        let stats = crate::scratch::with_probe_target(|img| {
            self.render_internal(scene, &probe.camera, img)
        });
        let mut trace = Trace::new(Pipeline::Gaussian3d, camera.width, camera.height);

        let repr = &scene.spec().repr;
        let full_count = u64::from(repr.gaussian_count);
        debug_assert_eq!(stats.gaussians_streamed as usize, scene.gaussians().len());
        let baked_count = stats.gaussians_streamed.max(1);
        let count_ratio = full_count as f64 / baked_count as f64;
        let visible = (stats.visible_splats as f64 * count_ratio) as u64;

        // (1)+(2) Space conversion & splatting (Geometric Processing).
        // Candidate pairs are resolution-driven (patch lists × pixels);
        // per-splat footprints shrink as counts grow, so the probe's
        // pair count scales by pixels only.
        trace.push(Invocation::new(
            "space conversion & splatting",
            Workload::Geometric {
                kind: PrimitiveKind::GaussianSplat,
                primitives: full_count,
                candidate_pairs: probe.scale(stats.candidate_pairs),
                hits: probe.scale(stats.blended_pairs),
                prim_bytes: GaussianCloud::BYTES_PER_GAUSSIAN,
                output_pixels: camera.pixel_count(),
            },
        ));

        // (3) Per-patch depth sorting. Total (splat, patch) pairs are
        // resolution-driven like candidate pairs (footprint area × count is
        // conserved as counts grow), so the probe's pair total scales by
        // pixels; keys-per-patch follows from the scaled patch count.
        let total_keys = probe.scale(stats.patch_pairs).max(1);
        let patches = probe.scale(stats.patches_nonempty).max(1);
        trace.push(Invocation::new(
            "depth sorting",
            Workload::Sort {
                patches,
                keys_per_patch: (total_keys as f64 / patches as f64).max(1.0),
                entry_bytes: 8, // Depth key + splat id.
            },
        ));

        // (4) SH color evaluation as a vector-matrix product per visible
        // splat (the paper's "MLP" step for 3DGS).
        trace.push(Invocation::new(
            "sh color (mlp)",
            Workload::Gemm {
                batch: visible.max(1),
                in_dim: 16,
                out_dim: 3,
                weight_bytes: 0, // SH coefficients stream with the splats.
            },
        ));

        // (5) Blending of surviving (splat, pixel) pairs.
        trace.push(Invocation::new(
            "blending",
            Workload::Gemm {
                batch: probe.scale(stats.blended_pairs).max(1),
                in_dim: 1,
                out_dim: 4,
                weight_bytes: 0,
            },
        ));
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use uni_microops::MicroOp;

    #[test]
    fn renders_content() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 64, 48);
        let img = GaussianPipeline::default().render(scene, &camera);
        let bg = scene.field().background();
        let non_bg = img
            .pixels()
            .iter()
            .filter(|p| (p.r - bg.r).abs() + (p.g - bg.g).abs() + (p.b - bg.b).abs() > 0.05)
            .count();
        assert!(non_bg > 100, "{non_bg} non-background pixels");
    }

    #[test]
    fn soa_path_matches_scalar_reference() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 96, 72);
        let pipeline = GaussianPipeline::default();
        let soa = pipeline.render(scene, &camera);
        let scalar = pipeline.render_scalar(scene, &camera);
        for (a, b) in soa.pixels().iter().zip(scalar.pixels()) {
            assert!(
                (a.r - b.r).abs() < 1e-5 && (a.g - b.g).abs() < 1e-5 && (a.b - b.b).abs() < 1e-5,
                "SoA {a} vs scalar {b}"
            );
        }
    }

    #[test]
    fn depth_key_orders_like_total_cmp() {
        let depths = [
            0.0f32,
            -0.0,
            1.5,
            1.5000001,
            1e-30,
            3e4,
            f32::MIN_POSITIVE,
            -2.5,
        ];
        for &a in &depths {
            for &b in &depths {
                assert_eq!(
                    depth_key(a).cmp(&depth_key(b)),
                    a.total_cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn trace_contains_all_five_steps() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 640, 480);
        let trace = GaussianPipeline::default().trace(scene, &camera);
        assert_eq!(
            trace.micro_ops_used(),
            vec![
                MicroOp::GeometricProcessing,
                MicroOp::Sorting,
                MicroOp::Gemm,
            ]
        );
        // Splatting -> sorting -> SH -> blending crosses op families twice.
        assert_eq!(trace.reconfiguration_count(), 2);
    }

    #[test]
    fn splat_stats_are_consistent() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 96, 64);
        let stats =
            GaussianPipeline::default().render_internal(scene, &camera, &mut Image::empty());
        assert!(stats.visible_splats > 0);
        assert!(stats.visible_splats <= stats.gaussians_streamed);
        assert!(stats.blended_pairs <= stats.candidate_pairs);
        assert!(stats.patches_nonempty > 0);
    }

    #[test]
    fn sorting_keys_scale_with_gaussian_count() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 640, 480);
        let trace = GaussianPipeline::default().trace(scene, &camera);
        let sort = trace
            .iter()
            .find(|i| i.stage() == "depth sorting")
            .expect("sorting stage");
        if let Workload::Sort { keys_per_patch, .. } = sort.workload() {
            // Full-scale count is 300k vs a tiny baked cloud, so per-patch
            // lists must be large.
            assert!(*keys_per_patch > 10.0, "got {keys_per_patch}");
        } else {
            panic!("expected sort workload");
        }
    }

    #[test]
    fn patch_amortization_keeps_sort_cost_below_per_pixel_sorting() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 640, 480);
        let trace = GaussianPipeline::default().trace(scene, &camera);
        let stats = trace.stats();
        let sort_cost = stats.cost_of(MicroOp::Sorting);
        // Patch-based sorting touches far fewer keys than per-pixel
        // sorting would (256 pixels share one sort).
        let per_pixel_keys = camera.pixel_count() * 100;
        assert!(sort_cost.items < per_pixel_keys);
    }

    #[test]
    fn front_splats_occlude_back_splats() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 64, 48);
        // Rendering twice is deterministic.
        let a = GaussianPipeline::default().render(scene, &camera);
        let b = GaussianPipeline::default().render(scene, &camera);
        assert_eq!(a, b);
    }
}
