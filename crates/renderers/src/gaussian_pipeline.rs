//! The 3D-Gaussian-based rendering pipeline (Sec. II-E, Fig. 6): space
//! conversion → splatting → sorting → MLP → blending.
//!
//! Follows 3DGS: Gaussians are projected to screen-space conics
//! (splatting), assigned to 16×16-pixel patches, depth-sorted *per patch*
//! (so the sorting cost is amortized across the patch's pixels — the
//! observation the paper's Sorting dataflow exploits), colored by SH
//! evaluation (the "MLP" step: a vector-matrix product), and alpha-blended
//! front to back.

use crate::blending::RayAccumulator;
use crate::probe::Probe;
use crate::Renderer;
use uni_geometry::{Camera, Image, Rgb};
use uni_microops::{Invocation, Pipeline, PrimitiveKind, Trace, Workload};
use uni_scene::{BakedScene, GaussianCloud, ProjectedSplat};

/// The 3D-Gaussian (splat rasterization) pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianPipeline {
    /// Patch size in pixels (16 in 3DGS).
    pub patch_size: u32,
    /// Opacity threshold below which splats are bypassed.
    pub alpha_threshold: f32,
}

impl Default for GaussianPipeline {
    fn default() -> Self {
        Self {
            patch_size: 16,
            alpha_threshold: 1.0 / 255.0,
        }
    }
}

// f32 comparison helper for depth sorting (depths are finite by
// construction).
fn by_depth(a: &ProjectedSplat, b: &ProjectedSplat) -> std::cmp::Ordering {
    a.depth.partial_cmp(&b.depth).expect("finite depths")
}

#[derive(Debug, Clone, Copy, Default)]
struct SplatStats {
    gaussians_streamed: u64,
    visible_splats: u64,
    patch_pairs: u64,
    patches_nonempty: u64,
    candidate_pairs: u64,
    blended_pairs: u64,
}

impl GaussianPipeline {
    fn render_internal(&self, scene: &BakedScene, camera: &Camera) -> (Image, SplatStats) {
        let bg = scene.field().background();
        let mut img = Image::new(camera.width, camera.height, bg);
        let cloud = scene.gaussians();
        let mut stats = SplatStats {
            gaussians_streamed: cloud.len() as u64,
            ..SplatStats::default()
        };

        // (1) Space conversion + splatting: project every Gaussian.
        let mut splats: Vec<ProjectedSplat> = Vec::new();
        for i in 0..cloud.len() {
            if let Some(s) = cloud.project(i as u32, camera, self.alpha_threshold) {
                splats.push(s);
            }
        }
        stats.visible_splats = splats.len() as u64;

        // SH color per visible splat, once per frame (the "MLP" step).
        let n_coeffs = cloud.coeffs_per_channel();
        let colors: Vec<Rgb> = splats
            .iter()
            .map(|s| {
                let g = &cloud.gaussians[s.index as usize];
                let dir = (g.mean - camera.eye).normalized();
                g.color(dir, n_coeffs)
            })
            .collect();

        // (2) Patch assignment.
        let ps = self.patch_size;
        let tiles_x = camera.width.div_ceil(ps);
        let tiles_y = camera.height.div_ceil(ps);
        let mut bins: Vec<Vec<u32>> = vec![Vec::new(); (tiles_x * tiles_y) as usize];
        for (si, s) in splats.iter().enumerate() {
            let x0 = ((s.center.x - s.radius).floor().max(0.0) as u32) / ps;
            let x1 = (((s.center.x + s.radius).ceil().max(0.0) as u32) / ps).min(tiles_x - 1);
            let y0 = ((s.center.y - s.radius).floor().max(0.0) as u32) / ps;
            let y1 = (((s.center.y + s.radius).ceil().max(0.0) as u32) / ps).min(tiles_y - 1);
            if s.center.x + s.radius < 0.0 || s.center.y + s.radius < 0.0 {
                continue;
            }
            for ty in y0..=y1 {
                for tx in x0..=x1 {
                    bins[(ty * tiles_x + tx) as usize].push(si as u32);
                    stats.patch_pairs += 1;
                }
            }
        }

        // (3) Per-patch sort + (5) per-pixel front-to-back blending.
        for ty in 0..tiles_y {
            for tx in 0..tiles_x {
                let bin = &mut bins[(ty * tiles_x + tx) as usize];
                if bin.is_empty() {
                    continue;
                }
                stats.patches_nonempty += 1;
                let mut patch_splats: Vec<ProjectedSplat> =
                    bin.iter().map(|&i| splats[i as usize]).collect();
                let color_of: Vec<Rgb> = bin.iter().map(|&i| colors[i as usize]).collect();
                // Merge sort by depth (stable, matching the hardware's
                // merge-sort dataflow of Fig. 13).
                let mut order: Vec<usize> = (0..patch_splats.len()).collect();
                order.sort_by(|&a, &b| by_depth(&patch_splats[a], &patch_splats[b]));
                patch_splats = order.iter().map(|&i| patch_splats[i]).collect();
                let sorted_colors: Vec<Rgb> = order.iter().map(|&i| color_of[i]).collect();

                for py in (ty * ps)..((ty + 1) * ps).min(camera.height) {
                    for px in (tx * ps)..((tx + 1) * ps).min(camera.width) {
                        let mut acc = RayAccumulator::new();
                        for (s, &c) in patch_splats.iter().zip(&sorted_colors) {
                            if acc.saturated() {
                                break;
                            }
                            stats.candidate_pairs += 1;
                            let dx = px as f32 + 0.5 - s.center.x;
                            let dy = py as f32 + 0.5 - s.center.y;
                            let alpha = s.opacity * s.falloff(dx, dy);
                            if alpha < 1.0 / 255.0 {
                                continue;
                            }
                            stats.blended_pairs += 1;
                            acc.add_alpha_sample(c, alpha);
                        }
                        img.set(px, py, acc.finish(bg));
                    }
                }
            }
        }
        (img, stats)
    }
}

impl Renderer for GaussianPipeline {
    fn pipeline(&self) -> Pipeline {
        Pipeline::Gaussian3d
    }

    fn render(&self, scene: &BakedScene, camera: &Camera) -> Image {
        self.render_internal(scene, camera).0
    }

    fn trace(&self, scene: &BakedScene, camera: &Camera) -> Trace {
        let probe = Probe::plan(camera);
        let (_, stats) = self.render_internal(scene, &probe.camera);
        let mut trace = Trace::new(Pipeline::Gaussian3d, camera.width, camera.height);

        let repr = &scene.spec().repr;
        let full_count = u64::from(repr.gaussian_count);
        debug_assert_eq!(stats.gaussians_streamed as usize, scene.gaussians().len());
        let baked_count = stats.gaussians_streamed.max(1);
        let count_ratio = full_count as f64 / baked_count as f64;
        let visible = (stats.visible_splats as f64 * count_ratio) as u64;

        // (1)+(2) Space conversion & splatting (Geometric Processing).
        // Candidate pairs are resolution-driven (patch lists × pixels);
        // per-splat footprints shrink as counts grow, so the probe's
        // pair count scales by pixels only.
        trace.push(Invocation::new(
            "space conversion & splatting",
            Workload::Geometric {
                kind: PrimitiveKind::GaussianSplat,
                primitives: full_count,
                candidate_pairs: probe.scale(stats.candidate_pairs),
                hits: probe.scale(stats.blended_pairs),
                prim_bytes: GaussianCloud::BYTES_PER_GAUSSIAN,
                output_pixels: camera.pixel_count(),
            },
        ));

        // (3) Per-patch depth sorting. Total (splat, patch) pairs are
        // resolution-driven like candidate pairs (footprint area × count is
        // conserved as counts grow), so the probe's pair total scales by
        // pixels; keys-per-patch follows from the scaled patch count.
        let total_keys = probe.scale(stats.patch_pairs).max(1);
        let patches = probe.scale(stats.patches_nonempty).max(1);
        trace.push(Invocation::new(
            "depth sorting",
            Workload::Sort {
                patches,
                keys_per_patch: (total_keys as f64 / patches as f64).max(1.0),
                entry_bytes: 8, // Depth key + splat id.
            },
        ));

        // (4) SH color evaluation as a vector-matrix product per visible
        // splat (the paper's "MLP" step for 3DGS).
        trace.push(Invocation::new(
            "sh color (mlp)",
            Workload::Gemm {
                batch: visible.max(1),
                in_dim: 16,
                out_dim: 3,
                weight_bytes: 0, // SH coefficients stream with the splats.
            },
        ));

        // (5) Blending of surviving (splat, pixel) pairs.
        trace.push(Invocation::new(
            "blending",
            Workload::Gemm {
                batch: probe.scale(stats.blended_pairs).max(1),
                in_dim: 1,
                out_dim: 4,
                weight_bytes: 0,
            },
        ));
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use uni_microops::MicroOp;

    #[test]
    fn renders_content() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 64, 48);
        let img = GaussianPipeline::default().render(scene, &camera);
        let bg = scene.field().background();
        let non_bg = img
            .pixels()
            .iter()
            .filter(|p| (p.r - bg.r).abs() + (p.g - bg.g).abs() + (p.b - bg.b).abs() > 0.05)
            .count();
        assert!(non_bg > 100, "{non_bg} non-background pixels");
    }

    #[test]
    fn trace_contains_all_five_steps() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 640, 480);
        let trace = GaussianPipeline::default().trace(scene, &camera);
        assert_eq!(
            trace.micro_ops_used(),
            vec![
                MicroOp::GeometricProcessing,
                MicroOp::Sorting,
                MicroOp::Gemm,
            ]
        );
        // Splatting -> sorting -> SH -> blending crosses op families twice.
        assert_eq!(trace.reconfiguration_count(), 2);
    }

    #[test]
    fn splat_stats_are_consistent() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 96, 64);
        let (_, stats) = GaussianPipeline::default().render_internal(scene, &camera);
        assert!(stats.visible_splats > 0);
        assert!(stats.visible_splats <= stats.gaussians_streamed);
        assert!(stats.blended_pairs <= stats.candidate_pairs);
        assert!(stats.patches_nonempty > 0);
    }

    #[test]
    fn sorting_keys_scale_with_gaussian_count() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 640, 480);
        let trace = GaussianPipeline::default().trace(scene, &camera);
        let sort = trace
            .iter()
            .find(|i| i.stage() == "depth sorting")
            .expect("sorting stage");
        if let Workload::Sort { keys_per_patch, .. } = sort.workload() {
            // Full-scale count is 300k vs a tiny baked cloud, so per-patch
            // lists must be large.
            assert!(*keys_per_patch > 10.0, "got {keys_per_patch}");
        } else {
            panic!("expected sort workload");
        }
    }

    #[test]
    fn patch_amortization_keeps_sort_cost_below_per_pixel_sorting() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 640, 480);
        let trace = GaussianPipeline::default().trace(scene, &camera);
        let stats = trace.stats();
        let sort_cost = stats.cost_of(MicroOp::Sorting);
        // Patch-based sorting touches far fewer keys than per-pixel
        // sorting would (256 pixels share one sort).
        let per_pixel_keys = camera.pixel_count() * 100;
        assert!(sort_cost.items < per_pixel_keys);
    }

    #[test]
    fn front_splats_occlude_back_splats() {
        let scene = testutil::scene();
        let camera = testutil::camera(scene, 64, 48);
        // Rendering twice is deterministic.
        let a = GaussianPipeline::default().render(scene, &camera);
        let b = GaussianPipeline::default().render(scene, &camera);
        assert_eq!(a, b);
    }
}
