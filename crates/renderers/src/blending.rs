//! Volume-rendering blending (Sec. II-B, "Blending").
//!
//! Front-to-back alpha compositing with transmittance tracking, shared by
//! every volume-rendering pipeline and by the 3DGS splat compositor. The
//! per-sample `exp` is an SFU op on the accelerator; the accumulate is the
//! Continuous-pattern reduction of Tab. II.

use uni_geometry::Rgb;

/// Transmittance below which a ray terminates early (the 1/255 threshold
/// used by 3DGS and fast NeRF implementations).
pub const EARLY_STOP_TRANSMITTANCE: f32 = 0.004;

/// Front-to-back compositing state for one ray.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RayAccumulator {
    color: Rgb,
    transmittance: f32,
    samples: u32,
}

impl Default for RayAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl RayAccumulator {
    /// A fresh ray with full transmittance.
    pub fn new() -> Self {
        Self {
            color: Rgb::BLACK,
            transmittance: 1.0,
            samples: 0,
        }
    }

    /// Remaining transmittance.
    #[inline]
    pub fn transmittance(&self) -> f32 {
        self.transmittance
    }

    /// Number of samples composited so far.
    #[inline]
    pub fn samples(&self) -> u32 {
        self.samples
    }

    /// Whether further samples can no longer change the result.
    #[inline]
    pub fn saturated(&self) -> bool {
        self.transmittance < EARLY_STOP_TRANSMITTANCE
    }

    /// Composites a volumetric sample with `density` over segment length
    /// `dt`: `alpha = 1 - exp(-density · dt)`.
    #[inline]
    pub fn add_density_sample(&mut self, color: Rgb, density: f32, dt: f32) {
        let alpha = 1.0 - (-density.max(0.0) * dt.max(0.0)).exp();
        self.add_alpha_sample(color, alpha);
    }

    /// Composites a sample with explicit alpha (splat compositing).
    #[inline]
    pub fn add_alpha_sample(&mut self, color: Rgb, alpha: f32) {
        let a = alpha.clamp(0.0, 0.999);
        self.color += color * (self.transmittance * a);
        self.transmittance *= 1.0 - a;
        self.samples += 1;
    }

    /// Finishes the ray, compositing the remaining transmittance against
    /// `background`.
    #[inline]
    pub fn finish(self, background: Rgb) -> Rgb {
        (self.color + background * self.transmittance).saturate()
    }

    /// Finishes without a background (returns premultiplied color and
    /// final alpha).
    #[inline]
    pub fn finish_premultiplied(self) -> (Rgb, f32) {
        (self.color, 1.0 - self.transmittance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ray_shows_background() {
        let acc = RayAccumulator::new();
        let bg = Rgb::new(0.1, 0.2, 0.3);
        assert_eq!(acc.finish(bg), bg);
    }

    #[test]
    fn opaque_sample_hides_background() {
        let mut acc = RayAccumulator::new();
        acc.add_density_sample(Rgb::new(1.0, 0.0, 0.0), 1e6, 1.0);
        let out = acc.finish(Rgb::WHITE);
        assert!((out.r - 1.0).abs() < 1e-3);
        assert!(out.g < 1e-2 && out.b < 1e-2);
    }

    #[test]
    fn zero_density_is_transparent() {
        let mut acc = RayAccumulator::new();
        acc.add_density_sample(Rgb::WHITE, 0.0, 1.0);
        assert_eq!(acc.transmittance(), 1.0);
        assert_eq!(acc.finish(Rgb::BLACK), Rgb::BLACK);
    }

    #[test]
    fn compositing_order_matters() {
        let red = Rgb::new(1.0, 0.0, 0.0);
        let blue = Rgb::new(0.0, 0.0, 1.0);
        let mut front_red = RayAccumulator::new();
        front_red.add_alpha_sample(red, 0.6);
        front_red.add_alpha_sample(blue, 0.6);
        let mut front_blue = RayAccumulator::new();
        front_blue.add_alpha_sample(blue, 0.6);
        front_blue.add_alpha_sample(red, 0.6);
        let a = front_red.finish(Rgb::BLACK);
        let b = front_blue.finish(Rgb::BLACK);
        assert!(a.r > a.b, "red-first keeps red dominant");
        assert!(b.b > b.r, "blue-first keeps blue dominant");
    }

    #[test]
    fn saturation_flag_triggers_after_opaque_samples() {
        let mut acc = RayAccumulator::new();
        assert!(!acc.saturated());
        for _ in 0..10 {
            acc.add_alpha_sample(Rgb::WHITE, 0.6);
        }
        assert!(acc.saturated());
        assert_eq!(acc.samples(), 10);
    }

    /// Splitting one segment into two half-segments composites to the same
    /// result (Beer-Lambert consistency).
    #[test]
    fn density_compositing_is_segment_additive() {
        let c = Rgb::new(0.4, 0.5, 0.6);
        let mut whole = RayAccumulator::new();
        whole.add_density_sample(c, 2.0, 1.0);
        let mut halves = RayAccumulator::new();
        halves.add_density_sample(c, 2.0, 0.5);
        halves.add_density_sample(c, 2.0, 0.5);
        let a = whole.finish(Rgb::BLACK);
        let b = halves.finish(Rgb::BLACK);
        assert!((a.r - b.r).abs() < 1e-5, "{} vs {}", a.r, b.r);
        assert!((whole.transmittance() - halves.transmittance()).abs() < 1e-6);
    }

    #[test]
    fn premultiplied_finish_reports_alpha() {
        let mut acc = RayAccumulator::new();
        acc.add_alpha_sample(Rgb::WHITE, 0.5);
        let (_, alpha) = acc.finish_premultiplied();
        assert!((alpha - 0.5).abs() < 1e-6);
    }
}
