//! Criterion microbenchmarks of the simulator substrate: the cycle-exact
//! engines that validate the dataflow formulas, the dataflow mappers, the
//! reference rasterizer/renderers, and representation fetch paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uni_core::{cyclesim, Accelerator, AcceleratorConfig};
use uni_geometry::{Aabb, Vec3};
use uni_microops::{Dims, IndexFunction, Invocation, Pipeline, Trace, Workload};
use uni_scene::{HashGrid, HashGridConfig};

fn bench_cyclesim(c: &mut Criterion) {
    let mut group = c.benchmark_group("cyclesim");
    for batch in [16usize, 64, 256] {
        group.bench_with_input(
            BenchmarkId::new("systolic_gemm_8x8", batch),
            &batch,
            |b, &batch| {
                let weights = uni_geometry::FlatMat::from_fn(8, 8, |_, _| 0.5);
                let inputs = uni_geometry::FlatMat::from_fn(batch, 8, |_, _| 1.0);
                b.iter(|| cyclesim::systolic_gemm(black_box(&weights), black_box(&inputs)));
            },
        );
    }
    group.bench_function("merge_sort_1024_keys", |b| {
        let keys: Vec<u32> = (0..1024u32).rev().collect();
        b.iter(|| cyclesim::merge_sort(black_box(&keys), 4));
    });
    group.bench_function("adder_tree_16", |b| {
        let values = [1.0f32; 16];
        let weights = [0.25f32; 16];
        b.iter(|| cyclesim::adder_tree(black_box(&values), black_box(&weights)));
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    let accel = Accelerator::new(AcceleratorConfig::paper());
    let trace = {
        let mut t = Trace::new(Pipeline::HashGrid, 1280, 720);
        t.push(Invocation::new(
            "hash",
            Workload::GridIndex {
                points: 4 << 20,
                levels: 16,
                corners: 8,
                feature_dim: 4,
                table_bytes: 64 << 20,
                function: IndexFunction::RandomHash,
                dims: Dims::D3,
                decomposed: false,
            },
        ));
        for i in 0..3 {
            t.push(Invocation::new(
                format!("decoder {i}"),
                Workload::Gemm {
                    batch: 4 << 20,
                    in_dim: 64,
                    out_dim: 64,
                    weight_bytes: 8320,
                },
            ));
        }
        t
    };
    group.bench_function("simulate_hash_frame", |b| {
        b.iter(|| accel.simulate(black_box(&trace)));
    });
    group.bench_function("simulate_many_8_frames", |b| {
        let traces: Vec<Trace> = (0..8).map(|_| trace.clone()).collect();
        b.iter(|| accel.simulate_many(black_box(&traces)));
    });
    group.finish();
}

fn bench_representations(c: &mut Criterion) {
    let mut group = c.benchmark_group("representations");
    let mut grid = HashGrid::new(HashGridConfig::tiny(), Aabb::cube(1.0));
    for l in 0..grid.config().levels {
        let res = grid.config().level_resolution(l) + 1;
        for z in (0..res).step_by(3) {
            for y in (0..res).step_by(3) {
                for x in (0..res).step_by(3) {
                    grid.write_vertex(l, x, y, z, &[0.5, 0.2, 0.3, 0.4]);
                }
            }
        }
    }
    group.bench_function("hashgrid_fetch", |b| {
        let mut out = vec![0f32; grid.config().feature_dim() as usize];
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let p = Vec3::new(
                (i % 97) as f32 / 97.0 * 2.0 - 1.0,
                (i % 89) as f32 / 89.0 * 2.0 - 1.0,
                (i % 83) as f32 / 83.0 * 2.0 - 1.0,
            );
            grid.fetch(black_box(p), &mut out);
            black_box(&out);
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cyclesim,
    bench_simulator,
    bench_representations
);
criterion_main!(benches);
