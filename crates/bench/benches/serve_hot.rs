//! Multi-session serving benchmark: one `RenderServer` sharding mixed-
//! pipeline camera streams over a single shared baked scene, swept across
//! session counts *and scheduling policies*.
//!
//! Runs as a criterion harness (`cargo bench --bench serve_hot`; pass
//! `-- --quick` for a single-shot smoke that still refreshes the JSON)
//! and emits machine-readable results to `BENCH_serve.json` at the
//! workspace root so the serving trajectory is tracked PR-over-PR:
//!
//! ```json
//! { "configs": [ { "policy": "round_robin", "sessions": 4, "frames": 16,
//!   "wall_fps": ..., "sim_fps": ..., "reconfigs_per_frame": ...,
//!   "boundary_reconfigs": ... }, ... ] }
//! ```
//!
//! Sessions cycle through the pipeline mix below (so neighbouring
//! schedule slots usually switch renderer families — the worst case for
//! reconfiguration amortization) and carry staggered weights/priorities
//! so the fair-share and priority policies have real decisions to make.
//! The policy sweep covers `round_robin` (1/4/16 sessions, the
//! interleaved baseline), `weighted_fair`, `priority`, and
//! `round_robin_coalesced` (4/16 sessions). The harness asserts — and
//! the committed JSON records — that the coalesced schedule pays
//! *strictly fewer* reconfigurations per frame than interleaved
//! round-robin on the mixed 4-session workload. `wall_fps` is host
//! wall-clock frames per second across the whole schedule; `sim_fps` and
//! the reconfiguration counters come from the deterministic
//! `ServerSummary`, so they are host-independent.

use criterion::{black_box, Criterion};
use std::sync::Arc;
use uni_bench::HARNESS_DETAIL;
use uni_core::{Accelerator, AcceleratorConfig};
use uni_engine::{
    CameraPath, Priority, RenderServer, RoundRobin, SchedulePolicy, ServerSummary, SessionRequest,
    WeightedFair,
};
use uni_renderers::{GaussianPipeline, HashGridPipeline, MeshPipeline, MlpPipeline, Renderer};
use uni_scene::{BakedScene, SceneSpec};

const FRAMES_PER_SESSION: usize = 4;
const RESOLUTION: (u32, u32) = (96, 96);

/// `(policy name, session count)` sweep, round-robin baselines first.
const SWEEP: [(&str, usize); 9] = [
    ("round_robin", 1),
    ("round_robin", 4),
    ("round_robin", 16),
    ("weighted_fair", 4),
    ("weighted_fair", 16),
    ("priority", 4),
    ("priority", 16),
    ("round_robin_coalesced", 4),
    ("round_robin_coalesced", 16),
];

fn policy(name: &str) -> Box<dyn SchedulePolicy> {
    match name {
        "round_robin" => Box::new(RoundRobin::new()),
        "round_robin_coalesced" => Box::new(RoundRobin::new().coalesce_switches(true)),
        "weighted_fair" => Box::new(WeightedFair::new()),
        "priority" => Box::new(Priority::new()),
        other => panic!("unknown policy {other}"),
    }
}

fn renderer(slot: usize) -> Box<dyn Renderer + Send> {
    match slot % 4 {
        0 => Box::new(GaussianPipeline::default()),
        1 => Box::new(MeshPipeline::default()),
        2 => Box::new(HashGridPipeline::default()),
        _ => Box::new(MlpPipeline::default()),
    }
}

fn serve(
    scene: &Arc<BakedScene>,
    spec: &SceneSpec,
    policy_name: &str,
    sessions: usize,
) -> ServerSummary {
    let mut server = RenderServer::new(Arc::clone(scene))
        .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
        .with_policy(policy(policy_name));
    for s in 0..sessions {
        let orbit = spec.orbit(RESOLUTION.0, RESOLUTION.1);
        server.admit(
            SessionRequest::new(
                renderer(s),
                CameraPath::orbit_arc(orbit, 0.4 * s as f32, 1.6, FRAMES_PER_SESSION),
            )
            .weight(1 + (s % 3) as u32)
            .priority((s % 3) as u8),
        );
    }
    server.run()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let spec = SceneSpec::demo("serve-hot", 2025).with_detail(HARNESS_DETAIL);
    let scene = Arc::new(spec.bake());
    let threads = uni_parallel::worker_count();

    // Serving is deterministic, so the summary of the last timed
    // iteration doubles as the reported one — no untimed re-run needed.
    let mut results: Vec<(f64, ServerSummary)> = Vec::new();
    if quick {
        for &(policy_name, sessions) in &SWEEP {
            let start = std::time::Instant::now();
            let summary = serve(&scene, &spec, policy_name, sessions);
            let ms = start.elapsed().as_secs_f64() * 1e3;
            println!("bench serve_hot/{policy_name}/{sessions} {ms:>12.3} ms (quick)");
            results.push((ms, summary));
        }
    } else {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("serve_hot");
        let mut summaries = Vec::new();
        for &(policy_name, sessions) in &SWEEP {
            let mut last = None;
            group.bench_function(format!("{policy_name}/{sessions}"), |b| {
                b.iter(|| {
                    last = Some(serve(
                        black_box(&scene),
                        black_box(&spec),
                        policy_name,
                        sessions,
                    ))
                });
            });
            summaries.push(last.expect("bench ran at least once"));
        }
        group.finish();
        for (&(policy_name, sessions), summary) in SWEEP.iter().zip(summaries) {
            let id = format!("serve_hot/{policy_name}/{sessions}");
            let ms = criterion
                .measurements()
                .iter()
                .find(|m| m.id == id)
                .map(|m| m.secs_per_iter * 1e3)
                .expect("benchmark ran");
            results.push((ms, summary));
        }
    }

    // The reconfiguration-aware schedule must beat interleaved
    // round-robin on the mixed 4-session workload — the whole point of
    // the coalesce_switches knob. Committed to the JSON below.
    let find = |p: &str, n: usize| {
        let at = SWEEP
            .iter()
            .position(|&(sp, sn)| sp == p && sn == n)
            .expect("config in sweep");
        &results[at].1
    };
    let rr4 = find("round_robin", 4);
    let co4 = find("round_robin_coalesced", 4);
    assert_eq!(
        rr4.scheduled_frames, co4.scheduled_frames,
        "same workload either way"
    );
    assert!(
        co4.boundary_reconfigurations < rr4.boundary_reconfigurations,
        "coalesced schedule must pay strictly fewer boundary reconfigs \
         ({} vs {})",
        co4.boundary_reconfigurations,
        rr4.boundary_reconfigurations
    );
    assert!(co4.reconfigurations_per_frame() < rr4.reconfigurations_per_frame());

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"serve_hot\",\n");
    json.push_str(&format!(
        "  \"resolution\": [{}, {}],\n",
        RESOLUTION.0, RESOLUTION.1
    ));
    json.push_str(&format!(
        "  \"frames_per_session\": {FRAMES_PER_SESSION},\n"
    ));
    json.push_str(&format!("  \"scene_detail\": {HARNESS_DETAIL},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(
        "  \"note\": \"one RenderServer, mixed gaussian/mesh/hashgrid/mlp sessions (staggered \
         weights/priorities) sharing one Arc'd baked scene, swept across scheduling policies; \
         wall_fps is host wall-clock over the whole schedule, sim_fps and reconfiguration \
         counters come from the deterministic ServerSummary; round_robin_coalesced at 4 \
         sessions is asserted strictly below round_robin in reconfigs_per_frame\",\n",
    );
    json.push_str("  \"configs\": [\n");
    for (i, (&(policy_name, sessions), (ms, summary))) in SWEEP.iter().zip(&results).enumerate() {
        let frames = summary.scheduled_frames;
        let wall_fps = frames as f64 / (ms / 1e3);
        assert!(summary.is_consistent(), "server accounting must sum");
        assert_eq!(summary.policy, policy_name);
        println!(
            "serve_hot/{policy_name}/{sessions}: {frames} frames, wall {wall_fps:.1} FPS, \
             sim {:.1} FPS, {:.2} reconfigs/frame",
            summary.mean_fps(),
            summary.reconfigurations_per_frame()
        );
        json.push_str(&format!(
            "    {{ \"policy\": \"{policy_name}\", \"sessions\": {sessions}, \
             \"frames\": {frames}, \"wall_ms\": {ms:.2}, \
             \"wall_fps\": {wall_fps:.2}, \"sim_fps\": {:.2}, \
             \"reconfigs_per_frame\": {:.4}, \"boundary_reconfigs\": {}, \
             \"boundary_avoided\": {} }}{}\n",
            summary.mean_fps(),
            summary.reconfigurations_per_frame(),
            summary.boundary_reconfigurations,
            summary.boundary_switches_avoided,
            if i + 1 == SWEEP.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(out, &json).expect("write BENCH_serve.json");
    println!("wrote {out}");
}
