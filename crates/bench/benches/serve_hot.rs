//! Multi-session serving benchmark: one `RenderServer` sharding mixed-
//! pipeline camera streams over a single shared baked scene, swept across
//! session counts *and scheduling policies*, with a **deadline
//! dimension**: part of the mix is deadline-bound, and every row reports
//! miss rate, worst slack, and tail sim-latency alongside throughput.
//! A **fleet dimension** extends the sweep across scenes: a `ServerFleet`
//! serves three scenes in drain-separated waves at cache capacities
//! `scenes` and `scenes - 1`, so one row pays eviction + rebake and must
//! still keep the admitted sessions' deadline miss rate under the
//! committed limit.
//!
//! Runs as a criterion harness (`cargo bench --bench serve_hot`; pass
//! `-- --quick` for a single-shot smoke that still refreshes the JSON)
//! and emits machine-readable results to `BENCH_serve.json` at the
//! workspace root so the serving trajectory is tracked PR-over-PR:
//!
//! ```json
//! { "configs": [ { "policy": "round_robin", "sessions": 4, "frames": 16,
//!   "wall_fps": ..., "sim_fps": ..., "reconfigs_per_frame": ...,
//!   "deadline_miss_rate": ..., "p99_latency_s": ... }, ... ] }
//! ```
//!
//! Sessions cycle through the pipeline mix below (so neighbouring
//! schedule slots usually switch renderer families — the worst case for
//! reconfiguration amortization) and carry staggered weights/priorities;
//! every `s % 4 == 2` session (the hash-grid ones) additionally carries
//! a sim-time deadline whose period is derived from a calibration serve
//! (two mean frame times per frame), so deadline-aware policies have a
//! real latency budget to defend. The policy sweep covers `round_robin`
//! (1/4/16 sessions, the interleaved baseline), `weighted_fair`,
//! `priority`, `round_robin_coalesced`, `earliest_deadline`, and
//! `cost_aware` (4/16 sessions). The harness asserts — and the committed
//! JSON records — that on the mixed 4-session workload the coalesced
//! schedule pays *strictly fewer* reconfigurations per frame than
//! interleaved round-robin, and that `cost_aware` pays **no more** than
//! the fixed coalescer while suffering **strictly less worst slack
//! loss** on the deadline-bound sessions (it orders batches by urgency
//! and only extends them while the learned switch saving covers the
//! induced slack loss). `wall_fps` is host wall-clock frames per second
//! across the whole schedule; `sim_fps`, the reconfiguration counters,
//! and all deadline metrics come from the deterministic `ServerSummary`,
//! so they are host-independent.

use criterion::{black_box, Criterion};
use std::sync::Arc;
use uni_bench::HARNESS_DETAIL;
use uni_core::{Accelerator, AcceleratorConfig};
use uni_engine::{
    AdmissionControl, CameraPath, CostAware, DegradePolicy, EarliestDeadline, FleetSessionRequest,
    FleetSummary, Priority, RenderServer, RoundRobin, SceneCacheConfig, SchedulePolicy,
    ServerFleet, ServerSummary, SessionRequest, WeightedFair,
};
use uni_renderers::{GaussianPipeline, HashGridPipeline, MeshPipeline, MlpPipeline, Renderer};
use uni_scene::{BakedScene, SceneSpec};

const FRAMES_PER_SESSION: usize = 4;
const RESOLUTION: (u32, u32) = (96, 96);
/// Deadline-bound sessions get one frame period of this many mean frame
/// times (from the calibration serve): tight enough that *when* a
/// session is served decides its slack, loose enough that an
/// urgency-ordered schedule can meet it.
const DEADLINE_PERIOD_FRAMES: f64 = 2.0;

/// The overload row: this many sessions *offered* through
/// [`RenderServer::try_admit`], every one deadline-bound at
/// [`OVERLOAD_PERIOD_FRAMES`] calibrated mean frame times per frame —
/// far more load than the budget fits, so the admission controller must
/// refuse or queue most of it. The committed contract: the sessions it
/// *does* admit miss fewer than [`OVERLOAD_MISS_RATE_LIMIT`] of their
/// deadlines.
const OVERLOAD_OFFERED: usize = 16;
const OVERLOAD_FRAMES: usize = 8;
const OVERLOAD_PERIOD_FRAMES: f64 = 6.0;
const OVERLOAD_MISS_RATE_LIMIT: f64 = 0.05;

/// The fleet dimension: [`FLEET_SCENES`] distinct scenes served through
/// a [`ServerFleet`] in waves (two deadline-bound sessions per wave,
/// offered through `try_admit`; the final wave revisits scene 0), at
/// two scene-cache capacities — `scenes` (everything stays resident)
/// and `scenes - 1` (the last scene's bake evicts the least-recently-
/// delivered resident and the revisit rebakes it). The committed
/// contract: even with `max_resident < scenes`, the admitted sessions'
/// deadline miss rate stays under [`OVERLOAD_MISS_RATE_LIMIT`].
const FLEET_SCENES: usize = 3;
const FLEET_SESSIONS_PER_WAVE: usize = 2;
const FLEET_FRAMES: usize = 4;
const FLEET_CAPACITIES: [usize; 2] = [FLEET_SCENES, FLEET_SCENES - 1];
const FLEET_PERIOD_FRAMES: f64 = 4.0;

/// `(policy name, session count)` sweep, round-robin baselines first.
const SWEEP: [(&str, usize); 13] = [
    ("round_robin", 1),
    ("round_robin", 4),
    ("round_robin", 16),
    ("weighted_fair", 4),
    ("weighted_fair", 16),
    ("priority", 4),
    ("priority", 16),
    ("round_robin_coalesced", 4),
    ("round_robin_coalesced", 16),
    ("earliest_deadline", 4),
    ("earliest_deadline", 16),
    ("cost_aware", 4),
    ("cost_aware", 16),
];

fn policy(name: &str) -> Box<dyn SchedulePolicy> {
    match name {
        "round_robin" => Box::new(RoundRobin::new()),
        "round_robin_coalesced" => Box::new(RoundRobin::new().coalesce_switches(true)),
        "weighted_fair" => Box::new(WeightedFair::new()),
        "priority" => Box::new(Priority::new()),
        "earliest_deadline" => Box::new(EarliestDeadline::new()),
        "cost_aware" => Box::new(CostAware::new()),
        other => panic!("unknown policy {other}"),
    }
}

fn renderer(slot: usize) -> Box<dyn Renderer + Send> {
    match slot % 4 {
        0 => Box::new(GaussianPipeline::default()),
        1 => Box::new(MeshPipeline::default()),
        2 => Box::new(HashGridPipeline::default()),
        _ => Box::new(MlpPipeline::default()),
    }
}

fn serve(
    scene: &Arc<BakedScene>,
    spec: &SceneSpec,
    policy_name: &str,
    sessions: usize,
    deadline_hz: Option<f64>,
) -> ServerSummary {
    let mut server = RenderServer::new(Arc::clone(scene))
        .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
        .with_policy(policy(policy_name));
    for s in 0..sessions {
        let orbit = spec.orbit(RESOLUTION.0, RESOLUTION.1);
        let mut request = SessionRequest::new(
            renderer(s),
            CameraPath::orbit_arc(orbit, 0.4 * s as f32, 1.6, FRAMES_PER_SESSION),
        )
        .weight(1 + (s % 3) as u32)
        .priority((s % 3) as u8);
        // The deadline dimension: every hash-grid session is
        // deadline-bound (skipped while the mix is too small to have
        // one). Identical across policies, so rows compare fairly.
        if s % 4 == 2 {
            if let Some(hz) = deadline_hz {
                request = request.deadline_hz(hz);
            }
        }
        server.admit(request);
    }
    server.run()
}

/// Per-frame deadline rate for an `n`-session mix: the calibration
/// serve's mean frame sim-time, stretched to [`DEADLINE_PERIOD_FRAMES`].
/// Deterministic — derived from the simulated summary, not wall-clock.
fn deadline_hz_for(scene: &Arc<BakedScene>, spec: &SceneSpec, sessions: usize) -> Option<f64> {
    if sessions < 3 {
        return None;
    }
    let calibration = serve(scene, spec, "round_robin", sessions, None);
    let frames = calibration.scheduled_frames.max(1) as f64;
    let mean_frame_seconds = calibration.total_seconds / frames;
    Some(1.0 / (DEADLINE_PERIOD_FRAMES * mean_frame_seconds))
}

fn overload_request(spec: &SceneSpec, s: usize, deadline_hz: Option<f64>) -> SessionRequest {
    let orbit = spec.orbit(RESOLUTION.0, RESOLUTION.1);
    let mut request = SessionRequest::new(
        renderer(s),
        CameraPath::orbit_arc(orbit, 0.4 * s as f32, 1.6, OVERLOAD_FRAMES),
    )
    .weight(1 + (s % 3) as u32)
    .priority((s % 3) as u8);
    if let Some(hz) = deadline_hz {
        request = request.deadline_hz(hz);
    }
    request
}

/// Mean frame sim-time of the overload mix, from a deadline-free
/// calibration serve over a feasible-sized slice of it — the admission
/// controller's `frame_cost_prior` and the source of the deadline rate.
fn overload_frame_seconds(scene: &Arc<BakedScene>, spec: &SceneSpec) -> f64 {
    let mut server = RenderServer::new(Arc::clone(scene))
        .with_accelerator(Accelerator::new(AcceleratorConfig::paper()));
    for s in 0..4 {
        server.admit(overload_request(spec, s, None));
    }
    let summary = server.run();
    summary.total_seconds / summary.scheduled_frames.max(1) as f64
}

/// The overload row: offers [`OVERLOAD_OFFERED`] deadline-bound sessions
/// through `try_admit` against a calibrated admission controller, serves
/// the admitted/queued survivors under EDF with graceful degradation
/// armed, and returns the summary (which carries the refusal, queueing,
/// skip, degradation, and shed accounting).
fn serve_overload(scene: &Arc<BakedScene>, spec: &SceneSpec, frame_seconds: f64) -> ServerSummary {
    let hz = 1.0 / (OVERLOAD_PERIOD_FRAMES * frame_seconds);
    let mut server = RenderServer::new(Arc::clone(scene))
        .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
        .with_policy(EarliestDeadline::new())
        .with_admission_control(
            AdmissionControl::new()
                .frame_cost_prior(frame_seconds)
                .headroom(1.1)
                .max_queued(2),
        )
        .with_degradation(DegradePolicy::new());
    for s in 0..OVERLOAD_OFFERED {
        let _ = server.try_admit(overload_request(spec, s, Some(hz)));
    }
    server.run()
}

fn fleet_spec(scene: usize) -> SceneSpec {
    SceneSpec::demo(format!("serve-hot-fleet-{scene}"), 3025 + scene as u64)
        .with_detail(HARNESS_DETAIL)
}

fn fleet_request(scene: usize, s: usize, deadline_hz: Option<f64>) -> FleetSessionRequest {
    let spec = fleet_spec(scene);
    let orbit = spec.orbit(RESOLUTION.0, RESOLUTION.1);
    let mut request = FleetSessionRequest::new(
        move || renderer(s),
        CameraPath::orbit_arc(orbit, 0.4 * s as f32, 1.6, FLEET_FRAMES),
    );
    if let Some(hz) = deadline_hz {
        request = request.deadline_hz(hz);
    }
    request
}

/// Serves the fleet workload: `FLEET_SCENES + 1` waves (the last
/// revisits scene 0), each admitting [`FLEET_SESSIONS_PER_WAVE`]
/// sessions on one scene through `try_admit` and draining before the
/// next — so at `capacity < FLEET_SCENES` the wave on the last scene
/// must evict and the revisit must rebake.
fn serve_fleet(
    capacity: usize,
    deadline_hz: Option<f64>,
    frame_cost_prior: Option<f64>,
) -> FleetSummary {
    let mut fleet = ServerFleet::new(SceneCacheConfig {
        max_resident: capacity,
        max_bytes: None,
    })
    .with_accelerator_config(AcceleratorConfig::paper())
    .with_policy_factory(|| Box::new(EarliestDeadline::new()));
    if let Some(prior) = frame_cost_prior {
        fleet = fleet.with_admission_control(AdmissionControl::new().frame_cost_prior(prior));
    }
    for wave in 0..=FLEET_SCENES {
        let scene = wave % FLEET_SCENES;
        for s in 0..FLEET_SESSIONS_PER_WAVE {
            let _ = fleet.try_admit(
                &fleet_spec(scene),
                fleet_request(scene, wave * FLEET_SESSIONS_PER_WAVE + s, deadline_hz),
            );
        }
        while let Some(frame) = fleet.next_frame() {
            let handle = frame.handle;
            fleet.recycle(handle, frame.frame.report.image);
        }
    }
    fleet.summary()
}

/// Mean frame sim-time across the whole fleet schedule — the fleet
/// rows' deadline calibration and admission prior.
fn fleet_mean_frame_seconds(summary: &FleetSummary) -> f64 {
    let seconds: f64 = summary
        .shards
        .iter()
        .flat_map(|shard| shard.servers.iter())
        .map(|s| s.total_seconds)
        .sum();
    seconds / summary.delivered_frames.max(1) as f64
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let spec = SceneSpec::demo("serve-hot", 2025).with_detail(HARNESS_DETAIL);
    let scene = Arc::new(spec.bake());
    let threads = uni_parallel::worker_count();

    // One calibration serve per session count pins the deadline rates
    // the whole sweep shares.
    let mut session_counts: Vec<usize> = SWEEP.iter().map(|&(_, n)| n).collect();
    session_counts.sort_unstable();
    session_counts.dedup();
    let deadline_hz: Vec<(usize, Option<f64>)> = session_counts
        .iter()
        .map(|&n| (n, deadline_hz_for(&scene, &spec, n)))
        .collect();
    let hz_for = |sessions: usize| -> Option<f64> {
        deadline_hz
            .iter()
            .find(|&&(n, _)| n == sessions)
            .and_then(|&(_, hz)| hz)
    };

    let overload_prior = overload_frame_seconds(&scene, &spec);

    // Serving is deterministic, so the summary of the last timed
    // iteration doubles as the reported one — no untimed re-run needed.
    let mut results: Vec<(f64, ServerSummary)> = Vec::new();
    let overload: (f64, ServerSummary);
    if quick {
        for &(policy_name, sessions) in &SWEEP {
            let start = std::time::Instant::now();
            let summary = serve(&scene, &spec, policy_name, sessions, hz_for(sessions));
            let ms = start.elapsed().as_secs_f64() * 1e3;
            println!("bench serve_hot/{policy_name}/{sessions} {ms:>12.3} ms (quick)");
            results.push((ms, summary));
        }
        let start = std::time::Instant::now();
        let summary = serve_overload(&scene, &spec, overload_prior);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        println!("bench serve_hot/admission/{OVERLOAD_OFFERED} {ms:>12.3} ms (quick)");
        overload = (ms, summary);
    } else {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("serve_hot");
        let mut summaries = Vec::new();
        for &(policy_name, sessions) in &SWEEP {
            let mut last = None;
            group.bench_function(format!("{policy_name}/{sessions}"), |b| {
                b.iter(|| {
                    last = Some(serve(
                        black_box(&scene),
                        black_box(&spec),
                        policy_name,
                        sessions,
                        hz_for(sessions),
                    ))
                });
            });
            summaries.push(last.expect("bench ran at least once"));
        }
        let mut last_overload = None;
        group.bench_function(format!("admission/{OVERLOAD_OFFERED}"), |b| {
            b.iter(|| {
                last_overload = Some(serve_overload(
                    black_box(&scene),
                    black_box(&spec),
                    overload_prior,
                ))
            });
        });
        group.finish();
        let ms_of = |id: &str| {
            criterion
                .measurements()
                .iter()
                .find(|m| m.id == id)
                .map(|m| m.secs_per_iter * 1e3)
                .expect("benchmark ran")
        };
        for (&(policy_name, sessions), summary) in SWEEP.iter().zip(summaries) {
            let ms = ms_of(&format!("serve_hot/{policy_name}/{sessions}"));
            results.push((ms, summary));
        }
        overload = (
            ms_of(&format!("serve_hot/admission/{OVERLOAD_OFFERED}")),
            last_overload.expect("bench ran at least once"),
        );
    }

    // The fleet dimension runs single-shot in both modes: its rows are
    // serving-quality contracts (eviction, rebake, admitted deadline
    // misses), and every run re-bakes scenes — too heavy to iterate
    // under criterion. Calibration: a deadline-free fleet pass at full
    // capacity pins the deadline rate and the admission prior.
    let fleet_calibration = serve_fleet(FLEET_SCENES, None, None);
    let fleet_frame_seconds = fleet_mean_frame_seconds(&fleet_calibration);
    let fleet_hz = 1.0 / (FLEET_PERIOD_FRAMES * fleet_frame_seconds);
    let fleet_rows: Vec<(usize, f64, FleetSummary)> = FLEET_CAPACITIES
        .iter()
        .map(|&capacity| {
            let start = std::time::Instant::now();
            let summary = serve_fleet(capacity, Some(fleet_hz), Some(fleet_frame_seconds));
            let ms = start.elapsed().as_secs_f64() * 1e3;
            println!("bench serve_hot/fleet/{FLEET_SCENES}x{capacity} {ms:>12.3} ms (single-shot)");
            (capacity, ms, summary)
        })
        .collect();

    // The reconfiguration-aware schedules must hold their contracts on
    // the mixed 4-session workload: the fixed coalescer beats interleaved
    // round-robin on reconfigs/frame, and cost_aware pays no more than
    // the fixed coalescer while losing strictly less worst slack on the
    // deadline-bound session. Committed to the JSON below.
    let find = |p: &str, n: usize| {
        let at = SWEEP
            .iter()
            .position(|&(sp, sn)| sp == p && sn == n)
            .expect("config in sweep");
        &results[at].1
    };
    let rr4 = find("round_robin", 4);
    let co4 = find("round_robin_coalesced", 4);
    let ca4 = find("cost_aware", 4);
    assert_eq!(
        rr4.scheduled_frames, co4.scheduled_frames,
        "same workload either way"
    );
    assert!(
        co4.boundary_reconfigurations < rr4.boundary_reconfigurations,
        "coalesced schedule must pay strictly fewer boundary reconfigs \
         ({} vs {})",
        co4.boundary_reconfigurations,
        rr4.boundary_reconfigurations
    );
    assert!(co4.reconfigurations_per_frame() < rr4.reconfigurations_per_frame());
    assert!(
        ca4.reconfigurations_per_frame() <= co4.reconfigurations_per_frame(),
        "cost_aware must not pay more reconfigs/frame than the fixed \
         coalescer ({} vs {})",
        ca4.reconfigurations_per_frame(),
        co4.reconfigurations_per_frame()
    );
    let slack_loss = |s: &ServerSummary| -> f64 { (-s.worst_slack().unwrap_or(0.0)).max(0.0) };
    assert!(
        slack_loss(ca4) < slack_loss(co4),
        "cost_aware must lose strictly less worst slack than the fixed \
         coalescer ({:.3e}s vs {:.3e}s)",
        slack_loss(ca4),
        slack_loss(co4)
    );

    // The overload contract: the admission controller turned away real
    // load (refusals and/or queueing happened), and what it admitted it
    // served — the admitted sessions' deadline miss rate stays under the
    // committed limit.
    let ov = &overload.1;
    assert!(ov.is_consistent(), "overload accounting must sum");
    assert!(
        ov.refusals > 0,
        "{OVERLOAD_OFFERED} hopeless offered sessions must produce refusals"
    );
    assert!(
        ov.queued_admissions > 0,
        "the drain queue must absorb part of the overload"
    );
    assert!(
        ov.per_session.len() < OVERLOAD_OFFERED,
        "admission control admitted the whole overload"
    );
    assert!(
        ov.deadline_miss_rate() < OVERLOAD_MISS_RATE_LIMIT,
        "admitted sessions must miss < {:.0}% of deadlines (got {:.2}% over {} frames)",
        100.0 * OVERLOAD_MISS_RATE_LIMIT,
        100.0 * ov.deadline_miss_rate(),
        ov.scheduled_frames
    );

    // The fleet contract: full capacity never evicts; one scene short
    // of capacity must evict and rebake — and either way the admitted
    // sessions' deadline miss rate stays under the committed limit.
    for (capacity, _, summary) in &fleet_rows {
        assert!(summary.is_consistent(), "fleet accounting must sum");
        if *capacity < FLEET_SCENES {
            assert!(
                summary.cache.evictions > 0,
                "capacity {capacity} < {FLEET_SCENES} scenes must evict"
            );
            assert!(
                summary.cache.rebakes > 0,
                "revisiting the evicted scene must rebake"
            );
        } else {
            assert_eq!(summary.cache.evictions, 0, "full capacity never evicts");
        }
        assert!(
            summary.deadline_miss_rate() < OVERLOAD_MISS_RATE_LIMIT,
            "fleet (capacity {capacity}) admitted sessions must miss < {:.0}% of deadlines \
             (got {:.2}% over {} frames)",
            100.0 * OVERLOAD_MISS_RATE_LIMIT,
            100.0 * summary.deadline_miss_rate(),
            summary.delivered_frames
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"serve_hot\",\n");
    json.push_str(&format!(
        "  \"resolution\": [{}, {}],\n",
        RESOLUTION.0, RESOLUTION.1
    ));
    json.push_str(&format!(
        "  \"frames_per_session\": {FRAMES_PER_SESSION},\n"
    ));
    json.push_str(&format!("  \"scene_detail\": {HARNESS_DETAIL},\n"));
    json.push_str(&format!(
        "  \"deadline_period_frames\": {DEADLINE_PERIOD_FRAMES},\n"
    ));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(
        "  \"note\": \"one RenderServer, mixed gaussian/mesh/hashgrid/mlp sessions (staggered \
         weights/priorities; every hash-grid session deadline-bound at two calibrated mean frame \
         times per frame) sharing one Arc'd baked scene, swept across scheduling policies; \
         wall_fps is host wall-clock over the whole schedule, sim_fps / reconfiguration / \
         deadline metrics come from the deterministic ServerSummary; asserted at 4 sessions: \
         round_robin_coalesced < round_robin in reconfigs_per_frame, cost_aware <= \
         round_robin_coalesced in reconfigs_per_frame with strictly lower worst slack loss; the \
         admission row offers 16 all-deadline-bound sessions through try_admit (headroom 1.1, \
         calibrated frame-cost prior, queue depth 2) with graceful degradation armed, and asserts \
         refusals > 0, queueing > 0, and admitted deadline_miss_rate < 0.05; the fleet rows serve \
         3 scenes through a ServerFleet in drain-separated waves (two deadline-bound sessions per \
         wave via try_admit, final wave revisits scene 0) at cache capacities 3 and 2 — asserted: \
         capacity 2 evicts and rebakes, capacity 3 never evicts, both keep admitted \
         deadline_miss_rate < 0.05; fleet rows are single-shot timed\",\n",
    );
    json.push_str("  \"configs\": [\n");
    for (&(policy_name, sessions), (ms, summary)) in SWEEP.iter().zip(&results) {
        let frames = summary.scheduled_frames;
        let wall_fps = frames as f64 / (ms / 1e3);
        assert!(summary.is_consistent(), "server accounting must sum");
        assert_eq!(summary.policy, policy_name);
        println!(
            "serve_hot/{policy_name}/{sessions}: {frames} frames, wall {wall_fps:.1} FPS, \
             sim {:.1} FPS, {:.2} reconfigs/frame, {:.1}% deadline misses, p50 {:.3} ms, \
             p99 {:.3} ms",
            summary.mean_fps(),
            summary.reconfigurations_per_frame(),
            100.0 * summary.deadline_miss_rate(),
            summary.p50_sim_latency() * 1e3,
            summary.p99_sim_latency() * 1e3,
        );
        let worst_slack = summary
            .worst_slack()
            .map_or("null".to_string(), |s| format!("{s:.6}"));
        json.push_str(&format!(
            "    {{ \"policy\": \"{policy_name}\", \"sessions\": {sessions}, \
             \"frames\": {frames}, \"wall_ms\": {ms:.2}, \
             \"wall_fps\": {wall_fps:.2}, \"sim_fps\": {:.2}, \
             \"reconfigs_per_frame\": {:.4}, \"boundary_reconfigs\": {}, \
             \"boundary_avoided\": {}, \"deadline_miss_rate\": {:.4}, \
             \"worst_slack_s\": {worst_slack}, \"p50_latency_s\": {:.6}, \
             \"p99_latency_s\": {:.6} }},\n",
            summary.mean_fps(),
            summary.reconfigurations_per_frame(),
            summary.boundary_reconfigurations,
            summary.boundary_switches_avoided,
            summary.deadline_miss_rate(),
            summary.p50_sim_latency(),
            summary.p99_sim_latency(),
        ));
    }
    {
        let (ms, summary) = &overload;
        let frames = summary.scheduled_frames;
        let wall_fps = frames as f64 / (ms / 1e3);
        println!(
            "serve_hot/admission/{OVERLOAD_OFFERED}: {} admitted ({} queued, {} refused), \
             {frames} frames ({} skipped, {} degraded, {} shed), wall {wall_fps:.1} FPS, \
             sim {:.1} FPS, {:.1}% deadline misses, p50 {:.3} ms, p99 {:.3} ms",
            summary.per_session.len(),
            summary.queued_admissions,
            summary.refusals,
            summary.frames_skipped,
            summary.degraded_frames,
            summary.shed_sessions,
            summary.mean_fps(),
            100.0 * summary.deadline_miss_rate(),
            summary.p50_sim_latency() * 1e3,
            summary.p99_sim_latency() * 1e3,
        );
        let worst_slack = summary
            .worst_slack()
            .map_or("null".to_string(), |s| format!("{s:.6}"));
        json.push_str(&format!(
            "    {{ \"policy\": \"admission_earliest_deadline\", \
             \"sessions\": {}, \"offered_sessions\": {OVERLOAD_OFFERED}, \
             \"refused_sessions\": {}, \"queued_sessions\": {}, \
             \"frames\": {frames}, \"frames_skipped\": {}, \
             \"degraded_frames\": {}, \"shed_sessions\": {}, \
             \"wall_ms\": {ms:.2}, \"wall_fps\": {wall_fps:.2}, \
             \"sim_fps\": {:.2}, \"reconfigs_per_frame\": {:.4}, \
             \"deadline_miss_rate\": {:.4}, \"worst_slack_s\": {worst_slack}, \
             \"p50_latency_s\": {:.6}, \"p99_latency_s\": {:.6} }},\n",
            summary.per_session.len(),
            summary.refusals,
            summary.queued_admissions,
            summary.frames_skipped,
            summary.degraded_frames,
            summary.shed_sessions,
            summary.mean_fps(),
            summary.reconfigurations_per_frame(),
            summary.deadline_miss_rate(),
            summary.p50_sim_latency(),
            summary.p99_sim_latency(),
        ));
    }
    for (row, (capacity, ms, summary)) in fleet_rows.iter().enumerate() {
        let frames = summary.delivered_frames;
        let wall_fps = frames as f64 / (ms / 1e3);
        println!(
            "serve_hot/fleet/{FLEET_SCENES}x{capacity}: {} sessions over {FLEET_SCENES} scenes \
             (cache {capacity}), {frames} frames, {} bakes ({} rebakes, {} evictions, {} hits), \
             {:.1}% deadline misses, p50 {:.3} ms, p99 {:.3} ms",
            summary.session_count(),
            summary.cache.bakes,
            summary.cache.rebakes,
            summary.cache.evictions,
            summary.cache.hits,
            100.0 * summary.deadline_miss_rate(),
            summary.p50_sim_latency() * 1e3,
            summary.p99_sim_latency() * 1e3,
        );
        let worst_slack = summary
            .worst_slack()
            .map_or("null".to_string(), |s| format!("{s:.6}"));
        let comma = if row + 1 < fleet_rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{ \"policy\": \"fleet_earliest_deadline\", \
             \"scenes\": {FLEET_SCENES}, \"cache_capacity\": {capacity}, \
             \"sessions\": {}, \"frames\": {frames}, \
             \"bakes\": {}, \"rebakes\": {}, \"evictions\": {}, \
             \"cache_hits\": {}, \"wall_ms\": {ms:.2}, \
             \"wall_fps\": {wall_fps:.2}, \"deadline_miss_rate\": {:.4}, \
             \"worst_slack_s\": {worst_slack}, \"p50_latency_s\": {:.6}, \
             \"p99_latency_s\": {:.6} }}{comma}\n",
            summary.session_count(),
            summary.cache.bakes,
            summary.cache.rebakes,
            summary.cache.evictions,
            summary.cache.hits,
            summary.deadline_miss_rate(),
            summary.p50_sim_latency(),
            summary.p99_sim_latency(),
        ));
    }
    json.push_str("  ]\n}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(out, &json).expect("write BENCH_serve.json");
    println!("wrote {out}");
}
