//! Multi-session serving benchmark: one `RenderServer` sharding 1 / 4 /
//! 16 mixed-pipeline camera streams over a single shared baked scene.
//!
//! Runs as a criterion harness (`cargo bench --bench serve_hot`) and
//! emits machine-readable results to `BENCH_serve.json` at the workspace
//! root so the serving trajectory is tracked PR-over-PR:
//!
//! ```json
//! { "configs": [ { "sessions": 4, "frames": 16, "wall_fps": ...,
//!   "sim_fps": ..., "reconfigs_per_frame": ..., "boundary_reconfigs": ... }, ... ] }
//! ```
//!
//! Sessions cycle through the pipeline mix below (so neighbouring
//! schedule slots usually switch renderer families — the worst case for
//! reconfiguration amortization); every session renders its own orbit
//! arc at the same resolution. `wall_fps` is host wall-clock frames per
//! second across the whole schedule; `sim_fps` and the reconfiguration
//! counters come from the deterministic `ServerSummary`, so they are
//! host-independent.

use criterion::{black_box, Criterion};
use std::sync::Arc;
use uni_bench::HARNESS_DETAIL;
use uni_core::{Accelerator, AcceleratorConfig};
use uni_engine::{CameraPath, RenderServer, ServerSummary, SessionRequest};
use uni_renderers::{GaussianPipeline, HashGridPipeline, MeshPipeline, MlpPipeline, Renderer};
use uni_scene::{BakedScene, SceneSpec};

const SESSION_COUNTS: [usize; 3] = [1, 4, 16];
const FRAMES_PER_SESSION: usize = 4;
const RESOLUTION: (u32, u32) = (96, 96);

fn renderer(slot: usize) -> Box<dyn Renderer + Send> {
    match slot % 4 {
        0 => Box::new(GaussianPipeline::default()),
        1 => Box::new(MeshPipeline::default()),
        2 => Box::new(HashGridPipeline::default()),
        _ => Box::new(MlpPipeline::default()),
    }
}

fn serve(scene: &Arc<BakedScene>, spec: &SceneSpec, sessions: usize) -> ServerSummary {
    let mut server = RenderServer::new(Arc::clone(scene))
        .with_accelerator(Accelerator::new(AcceleratorConfig::paper()));
    for s in 0..sessions {
        let orbit = spec.orbit(RESOLUTION.0, RESOLUTION.1);
        server.add_session(SessionRequest::new(
            renderer(s),
            CameraPath::orbit_arc(orbit, 0.4 * s as f32, 1.6, FRAMES_PER_SESSION),
        ));
    }
    server.run()
}

fn main() {
    let spec = SceneSpec::demo("serve-hot", 2025).with_detail(HARNESS_DETAIL);
    let scene = Arc::new(spec.bake());
    let threads = uni_parallel::worker_count();

    let mut criterion = Criterion::default();
    let mut group = criterion.benchmark_group("serve_hot");
    // Serving is deterministic, so the summary of the last timed
    // iteration doubles as the reported one — no untimed re-run needed.
    let mut summaries = Vec::new();
    for &sessions in &SESSION_COUNTS {
        let mut last = None;
        group.bench_function(format!("sessions/{sessions}"), |b| {
            b.iter(|| last = Some(serve(black_box(&scene), black_box(&spec), sessions)));
        });
        summaries.push(last.expect("bench ran at least once"));
    }
    group.finish();

    let ms_of = |id: String| -> f64 {
        criterion
            .measurements()
            .iter()
            .find(|m| m.id == id)
            .map(|m| m.secs_per_iter * 1e3)
            .expect("benchmark ran")
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"serve_hot\",\n");
    json.push_str(&format!(
        "  \"resolution\": [{}, {}],\n",
        RESOLUTION.0, RESOLUTION.1
    ));
    json.push_str(&format!(
        "  \"frames_per_session\": {FRAMES_PER_SESSION},\n"
    ));
    json.push_str(&format!("  \"scene_detail\": {HARNESS_DETAIL},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(
        "  \"note\": \"one RenderServer, mixed gaussian/mesh/hashgrid/mlp sessions sharing one \
         Arc'd baked scene; wall_fps is host wall-clock over the whole round-robin schedule, \
         sim_fps and reconfiguration counters come from the deterministic ServerSummary\",\n",
    );
    json.push_str("  \"configs\": [\n");
    for (i, &sessions) in SESSION_COUNTS.iter().enumerate() {
        let ms = ms_of(format!("serve_hot/sessions/{sessions}"));
        let summary = &summaries[i];
        let frames = summary.scheduled_frames;
        let wall_fps = frames as f64 / (ms / 1e3);
        assert!(summary.is_consistent(), "server accounting must sum");
        println!(
            "serve_hot/sessions/{sessions}: {frames} frames, wall {wall_fps:.1} FPS, \
             sim {:.1} FPS, {:.2} reconfigs/frame",
            summary.mean_fps(),
            summary.reconfigurations_per_frame()
        );
        json.push_str(&format!(
            "    {{ \"sessions\": {sessions}, \"frames\": {frames}, \"wall_ms\": {ms:.2}, \
             \"wall_fps\": {wall_fps:.2}, \"sim_fps\": {:.2}, \
             \"reconfigs_per_frame\": {:.4}, \"boundary_reconfigs\": {}, \
             \"boundary_avoided\": {} }}{}\n",
            summary.mean_fps(),
            summary.reconfigurations_per_frame(),
            summary.boundary_reconfigurations,
            summary.boundary_switches_avoided,
            if i + 1 == SESSION_COUNTS.len() {
                ""
            } else {
                ","
            }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(out, &json).expect("write BENCH_serve.json");
    println!("wrote {out}");
}
