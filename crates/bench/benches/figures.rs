//! Criterion benchmarks of the figure/table regeneration path: trace
//! generation (probe render + decomposition) and end-to-end simulation per
//! pipeline on one baked scene. These measure the *harness* cost — the
//! simulated FPS numbers themselves come from the `fig*`/`tab*` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;
use uni_baselines::all_baselines;
use uni_core::{Accelerator, AcceleratorConfig};
use uni_microops::Pipeline;
use uni_renderers::all_renderers;
use uni_scene::{BakedScene, SceneSpec};

fn scene() -> &'static BakedScene {
    static SCENE: OnceLock<BakedScene> = OnceLock::new();
    SCENE.get_or_init(|| SceneSpec::demo("bench-scene", 99).with_detail(0.05).bake())
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    let s = scene();
    let camera = s.orbit().camera_at(0.9);
    for renderer in all_renderers() {
        group.bench_with_input(
            BenchmarkId::new("trace", renderer.pipeline().to_string()),
            &renderer,
            |b, r| {
                b.iter(|| r.trace(black_box(s), black_box(&camera)));
            },
        );
    }
    group.finish();
}

fn bench_device_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("device_models");
    let s = scene();
    let camera = s.orbit().camera_at(0.9);
    let renderer = all_renderers()
        .into_iter()
        .find(|r| r.pipeline() == Pipeline::HashGrid)
        .expect("hash renderer");
    let trace = renderer.trace(s, &camera);
    let accel = Accelerator::new(AcceleratorConfig::paper());
    group.bench_function("uni_render_simulate", |b| {
        b.iter(|| accel.simulate(black_box(&trace)));
    });
    group.bench_function("all_seven_baselines", |b| {
        let baselines = all_baselines();
        b.iter(|| {
            for d in &baselines {
                black_box(d.execute(black_box(&trace)));
            }
        });
    });
    group.finish();
}

fn bench_render(c: &mut Criterion) {
    let mut group = c.benchmark_group("reference_render_64x48");
    group.sample_size(10);
    let s = scene();
    let camera = s.orbit().camera_at(0.9).with_resolution(64, 48);
    for renderer in all_renderers() {
        group.bench_with_input(
            BenchmarkId::new("render", renderer.pipeline().to_string()),
            &renderer,
            |b, r| {
                b.iter(|| r.render(black_box(s), black_box(&camera)));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_trace_generation,
    bench_device_models,
    bench_render
);
criterion_main!(benches);
