//! Frame-render hot-path benchmark: scalar seed path vs. the SoA +
//! counting-sort + band-parallel path, per pipeline.
//!
//! Runs as a criterion harness (`cargo bench --bench render_hot`) and
//! emits machine-readable results to `BENCH_render.json` at the
//! workspace root so the perf trajectory is tracked PR-over-PR:
//!
//! ```json
//! { "pipelines": [ { "pipeline": "gaussian", "scalar_ms": ...,
//!   "optimized_ms": ..., "speedup": ... }, ... ] }
//! ```
//!
//! The scene is the default synthetic demo scene at harness detail; the
//! camera renders 256×256 frames. "scalar" is each pipeline's
//! `render_scalar` (the seed-era algorithm kept as the parity baseline);
//! "optimized" is the production `Renderer::render` path.

use criterion::{black_box, Criterion};
use uni_bench::HARNESS_DETAIL;
use uni_scene::SceneSpec;

use uni_renderers::{GaussianPipeline, HashGridPipeline, MlpPipeline, Renderer};

const PIPELINES: [&str; 3] = ["gaussian", "hashgrid", "mlp"];

fn main() {
    let scene = SceneSpec::demo("render-hot", 2024)
        .with_detail(HARNESS_DETAIL)
        .bake();
    let camera = scene.orbit().camera_at(0.8).with_resolution(256, 256);
    let threads = uni_parallel::worker_count();

    let gaussian = GaussianPipeline::default();
    let hashgrid = HashGridPipeline::default();
    let mlp = MlpPipeline::default();

    let mut criterion = Criterion::default();
    let mut group = criterion.benchmark_group("render_hot");
    group
        .bench_function("gaussian/scalar", |b| {
            b.iter(|| gaussian.render_scalar(black_box(&scene), black_box(&camera)));
        })
        .bench_function("gaussian/optimized", |b| {
            b.iter(|| gaussian.render(black_box(&scene), black_box(&camera)));
        })
        .bench_function("hashgrid/scalar", |b| {
            b.iter(|| hashgrid.render_scalar(black_box(&scene), black_box(&camera)));
        })
        .bench_function("hashgrid/optimized", |b| {
            b.iter(|| hashgrid.render(black_box(&scene), black_box(&camera)));
        })
        .bench_function("mlp/scalar", |b| {
            b.iter(|| mlp.render_scalar(black_box(&scene), black_box(&camera)));
        })
        .bench_function("mlp/optimized", |b| {
            b.iter(|| mlp.render(black_box(&scene), black_box(&camera)));
        });
    group.finish();

    // Pair up the harness's measurements into the machine-readable record.
    let ms_of = |id: String| -> f64 {
        criterion
            .measurements()
            .iter()
            .find(|m| m.id == id)
            .map(|m| m.secs_per_iter * 1e3)
            .expect("benchmark ran")
    };
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"render_hot\",\n");
    json.push_str("  \"resolution\": [256, 256],\n");
    json.push_str(&format!("  \"scene_detail\": {HARNESS_DETAIL},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(
        "  \"note\": \"speedup = seed-era scalar path / SoA+counting-sort+band-parallel path, \
         measured back to back on this host; bands scale near-linearly with cores, so \
         multi-core hosts multiply the optimized side by roughly the worker count\",\n",
    );
    json.push_str("  \"pipelines\": [\n");
    for (i, pipeline) in PIPELINES.iter().enumerate() {
        let scalar_ms = ms_of(format!("render_hot/{pipeline}/scalar"));
        let optimized_ms = ms_of(format!("render_hot/{pipeline}/optimized"));
        let speedup = scalar_ms / optimized_ms.max(1e-9);
        println!("render_hot/{pipeline}: speedup {speedup:.2}x");
        assert!(
            speedup >= 1.0,
            "render_hot/{pipeline}: optimized path regressed below the scalar \
             seed ({speedup:.3}x) — the production kernels must never lose to \
             the baseline they are measured against"
        );
        json.push_str(&format!(
            "    {{ \"pipeline\": \"{pipeline}\", \"scalar_ms\": {scalar_ms:.4}, \
             \"optimized_ms\": {optimized_ms:.4}, \"speedup\": {speedup:.3} }}{}\n",
            if i + 1 == PIPELINES.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_render.json");
    std::fs::write(out, &json).expect("write BENCH_render.json");
    println!("wrote {out}");
}
