//! Fig. 7 — motivating benchmark: rendering speed (FPS) of the five
//! typical pipelines across all seven baseline devices/accelerators on
//! Unbounded-360 at 1280×720. Unsupported (pipeline, accelerator) pairs
//! print as "x", matching the figure's crossed-out bars.

use uni_baselines::{all_baselines, calibration::REAL_TIME_FPS};
use uni_bench::{geo_mean, prepare, renderer_for, trace_scene, HARNESS_DETAIL};
use uni_microops::Pipeline;
use uni_scene::datasets::unbounded360;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let mut catalog = unbounded360(HARNESS_DETAIL);
    if !full {
        catalog.truncate(3);
    }
    let prepared = prepare(catalog);
    let baselines = all_baselines();

    println!("Fig. 7 — FPS of typical pipelines across devices (Unbounded-360 @1280x720)\n");
    print!("{:<28}", "Pipeline");
    for d in &baselines {
        print!("{:>12}", d.name());
    }
    println!();

    let mut real_time_count = 0;
    for pipeline in Pipeline::TYPICAL {
        let renderer = renderer_for(pipeline);
        let traces: Vec<_> = prepared
            .iter()
            .map(|s| trace_scene(renderer.as_ref(), s))
            .collect();
        print!("{:<28}", pipeline.to_string());
        for d in &baselines {
            let fps: Vec<f64> = traces
                .iter()
                .filter_map(|t| d.execute(t).map(|r| r.fps()))
                .collect();
            if fps.is_empty() {
                print!("{:>12}", "x");
            } else {
                let g = geo_mean(&fps);
                if g > REAL_TIME_FPS {
                    real_time_count += 1;
                }
                print!("{:>12.2}", g);
            }
        }
        println!();
    }
    println!(
        "\n{real_time_count} (device, pipeline) settings reach the 30 FPS real-time bar \
         (the paper reports only three across the whole figure)."
    );
    println!("Shape check: no single device is real-time on all five pipelines.");
}
