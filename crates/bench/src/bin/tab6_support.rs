//! Tab. VI — supported pipelines: Uni-Render vs other reconfigurable
//! accelerators (NPUs and CGRAs support MLPs but no graphics operators).

use uni_baselines::all_baselines;
use uni_microops::Pipeline;

struct ReconfigurableBaseline {
    name: &'static str,
    class: &'static str,
    supported: [bool; 5], // mesh, mlp, low-rank, hash, 3dgs
}

fn main() {
    // The reconfigurable-architecture rows of Tab. VI (their supported
    // pipelines follow from their operator coverage: NPUs execute GEMM
    // only; Plasticine's parallel patterns additionally cover dense-grid
    // gathers).
    let rows = [
        ReconfigurableBaseline {
            name: "Flexagon",
            class: "NPU",
            supported: [false, true, false, false, false],
        },
        ReconfigurableBaseline {
            name: "STIFT",
            class: "NPU",
            supported: [false, true, false, false, false],
        },
        ReconfigurableBaseline {
            name: "SIGMA",
            class: "NPU",
            supported: [false, true, false, false, false],
        },
        ReconfigurableBaseline {
            name: "Eyeriss",
            class: "NPU",
            supported: [false, true, false, false, false],
        },
        ReconfigurableBaseline {
            name: "Plasticine",
            class: "CGRA",
            supported: [false, true, true, false, false],
        },
    ];

    println!("Tab. VI — supported pipelines per accelerator\n");
    println!(
        "{:<18} {:<8} {:>6} {:>6} {:>10} {:>6} {:>10}",
        "Method", "Class", "Mesh", "MLP", "Low-Rank", "Hash", "3D-Gauss"
    );
    let mark = |b: bool| if b { "  yes" } else { "   no" };
    for r in &rows {
        println!(
            "{:<18} {:<8} {:>6} {:>6} {:>10} {:>6} {:>10}",
            r.name,
            r.class,
            mark(r.supported[0]),
            mark(r.supported[1]),
            mark(r.supported[2]),
            mark(r.supported[3]),
            mark(r.supported[4]),
        );
    }
    println!(
        "{:<18} {:<8} {:>6} {:>6} {:>10} {:>6} {:>10}",
        "Ours (Uni-Render)", "-", "  yes", "  yes", "  yes", "  yes", "  yes"
    );

    println!("\nDedicated neural-rendering accelerators (each supports exactly one):");
    for d in all_baselines().iter().skip(4) {
        let supported: Vec<String> = Pipeline::TYPICAL
            .into_iter()
            .filter(|&p| d.supports(p))
            .map(|p| p.to_string())
            .collect();
        println!("  {:<12} -> {}", d.name(), supported.join(", "));
    }
}
