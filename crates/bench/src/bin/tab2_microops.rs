//! Tab. II — the five common micro-operators with their indexing and
//! reduction task decomposition, plus the measured micro-op mix of each
//! pipeline's trace (which steps cluster into which operator).

use uni_bench::{prepare, renderer_for, trace_scene, HARNESS_DETAIL};
use uni_microops::{MicroOp, Pipeline};
use uni_scene::datasets::unbounded360;

fn main() {
    println!("Tab. II — common micro-operators and their indexing/reduction tasks\n");
    println!(
        "{:<26} {:<30} {:<16} {:<12} {:<34} Reduction pattern",
        "Micro-Operator", "Steps absorbed", "Item", "Dims", "Index function",
    );
    for op in MicroOp::ALL {
        let (idx, red) = op.tasks();
        println!(
            "{:<26} {:<30} {:<16} {:<12} {:<34} {:?}",
            op.to_string(),
            op.absorbed_steps(),
            idx.item,
            format!("{:?}", idx.dims),
            format!("{:?}", idx.functions),
            red.patterns,
        );
    }

    println!("\nMeasured micro-op MAC shares per pipeline (garden @1280x720):");
    let prepared = prepare(vec![unbounded360(HARNESS_DETAIL).remove(2)]);
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "Pipeline", "Geometric", "Combined", "Decomposed", "Sorting", "GEMM"
    );
    for p in Pipeline::ALL {
        let trace = trace_scene(renderer_for(p).as_ref(), &prepared[0]);
        let stats = trace.stats();
        let share = |op| format!("{:>9.1}%", stats.mac_share(op) * 100.0);
        println!(
            "{:<28} {} {} {} {} {}",
            p.to_string(),
            share(MicroOp::GeometricProcessing),
            share(MicroOp::CombinedGridIndexing),
            share(MicroOp::DecomposedGridIndexing),
            share(MicroOp::Sorting),
            share(MicroOp::Gemm),
        );
    }
}
