//! Fig. 16 — (a) speedup and (b) energy-efficiency improvement of
//! Uni-Render over every baseline device/accelerator across the five
//! typical pipelines on Unbounded-360, with geometric means.
//!
//! Paper shape anchors: speedups 0.7×–119× and energy 1.5×–354× vs the
//! commercial devices; mesh is the one pipeline where commercial devices
//! win on FPS (0.7×/0.9×) while Uni-Render still wins on energy; dedicated
//! accelerators show "×" off their home pipeline; MetaVRain beats ours on
//! MLP energy (the flexibility cost of Sec. VII-E).

use uni_baselines::all_baselines;
use uni_bench::{geo_mean, prepare, renderer_for, simulate_paper, trace_scene, HARNESS_DETAIL};
use uni_microops::Pipeline;
use uni_scene::datasets::unbounded360;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let mut catalog = unbounded360(HARNESS_DETAIL);
    if !full {
        catalog.truncate(3);
    }
    let prepared = prepare(catalog);
    let baselines = all_baselines();

    // ours[pipeline] = (fps, frames/J) geo-means.
    let mut rows_speed: Vec<Vec<Option<f64>>> = Vec::new();
    let mut rows_energy: Vec<Vec<Option<f64>>> = Vec::new();

    for pipeline in Pipeline::TYPICAL {
        let renderer = renderer_for(pipeline);
        let traces: Vec<_> = prepared
            .iter()
            .map(|s| trace_scene(renderer.as_ref(), s))
            .collect();
        let ours: Vec<_> = traces.iter().map(simulate_paper).collect();
        let ours_fps = geo_mean(&ours.iter().map(|r| r.fps()).collect::<Vec<_>>());
        let ours_fpj = geo_mean(
            &ours
                .iter()
                .map(|r| r.frames_per_joule())
                .collect::<Vec<_>>(),
        );

        let mut speed_row = Vec::new();
        let mut energy_row = Vec::new();
        for d in &baselines {
            let reports: Vec<_> = traces.iter().filter_map(|t| d.execute(t)).collect();
            if reports.is_empty() {
                speed_row.push(None);
                energy_row.push(None);
            } else {
                let base_fps = geo_mean(&reports.iter().map(|r| r.fps()).collect::<Vec<_>>());
                let base_fpj = geo_mean(
                    &reports
                        .iter()
                        .map(|r| r.frames_per_joule())
                        .collect::<Vec<_>>(),
                );
                speed_row.push(Some(ours_fps / base_fps));
                energy_row.push(Some(ours_fpj / base_fpj));
            }
        }
        rows_speed.push(speed_row);
        rows_energy.push(energy_row);
    }

    for (title, rows) in [
        ("(a) Speedup of Uni-Render over baselines", &rows_speed),
        (
            "(b) Energy-efficiency improvement over baselines",
            &rows_energy,
        ),
    ] {
        println!("Fig. 16 {title} (Unbounded-360 @1280x720)\n");
        print!("{:<28}", "Pipeline");
        for d in &baselines {
            print!("{:>12}", d.name());
        }
        println!();
        for (pi, pipeline) in Pipeline::TYPICAL.into_iter().enumerate() {
            print!("{:<28}", pipeline.to_string());
            for v in &rows[pi] {
                match v {
                    Some(s) => print!("{s:>11.2}x"),
                    None => print!("{:>12}", "x"),
                }
            }
            println!();
        }
        // Geo-mean over supported pipelines per device.
        print!("{:<28}", "Geo. Mean");
        for di in 0..baselines.len() {
            let vals: Vec<f64> = rows.iter().filter_map(|r| r[di]).collect();
            if vals.is_empty() {
                print!("{:>12}", "x");
            } else {
                print!("{:>11.2}x", geo_mean(&vals));
            }
        }
        println!("\n");
    }

    let commercial_speedups: Vec<f64> = rows_speed
        .iter()
        .flat_map(|r| r[..4].iter().flatten().copied())
        .collect();
    let min = commercial_speedups
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let max = commercial_speedups.iter().cloned().fold(0.0f64, f64::max);
    println!("Commercial-device speedup range: {min:.2}x .. {max:.0}x (paper: 0.7x .. 119x)");
    let commercial_energy: Vec<f64> = rows_energy
        .iter()
        .flat_map(|r| r[..4].iter().flatten().copied())
        .collect();
    let emin = commercial_energy
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let emax = commercial_energy.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "Commercial-device energy-efficiency range: {emin:.1}x .. {emax:.0}x (paper: 1.5x .. 354x)"
    );
}
