//! Sec. VII-E ablation — reconfiguration overhead analysis:
//! (1) efficiency impact: the GEMM buffer stage vs a vanilla systolic
//!     array, and MetaVRain's per-pixel energy advantage on pure MLP work;
//! (2) module utilization: gated module groups per micro-operator and the
//!     leakage saved by power/clock gating;
//! (3) sensitivity of each pipeline's FPS to the reconfiguration cost.

use uni_baselines::{metavrain, Device};
use uni_bench::{prepare, renderer_for, simulate_paper, trace_scene, HARNESS_DETAIL};
use uni_core::{Accelerator, AcceleratorConfig, EnergyModel, ModuleStatus, SimReport};
use uni_microops::{MicroOp, Pipeline, Trace};
use uni_scene::datasets::unbounded360;

fn main() {
    let prepared = prepare(vec![unbounded360(HARNESS_DETAIL).remove(2)]);

    // (1) GEMM buffer-stage overhead: rerun the MLP pipeline with the
    // penalty removed (vanilla systolic array).
    let mlp_trace = trace_scene(renderer_for(Pipeline::Mlp).as_ref(), &prepared[0]);
    let with_penalty = simulate_paper(&mlp_trace);
    let mut vanilla_cfg = AcceleratorConfig::paper();
    vanilla_cfg.gemm_buffer_penalty = 1.0;
    let vanilla = Accelerator::new(vanilla_cfg).simulate(&mlp_trace);
    println!("Sec. VII-E (1) — efficiency impact of reconfigurability\n");
    println!(
        "GEMM buffer stage: {:.2} FPS with the extra stage vs {:.2} FPS vanilla ({:.0}% throughput cost)",
        with_penalty.fps(),
        vanilla.fps(),
        (1.0 - with_penalty.fps() / vanilla.fps()) * 100.0
    );
    let mv = metavrain()
        .execute(&mlp_trace)
        .expect("MetaVRain supports MLP");
    let ours_eff = with_penalty.frames_per_joule();
    let mv_eff = mv.frames_per_joule();
    println!(
        "MetaVRain on MLP: {:.1}x more energy-efficient than ours (paper: 2.8x per-pixel energy)",
        mv_eff / ours_eff
    );

    // (2) Module utilization + gating.
    println!("\nSec. VII-E (2) — module utilization and gating\n");
    for op in MicroOp::ALL {
        let s = ModuleStatus::for_op(op);
        println!(
            "  {:<26} gated {} / 6 module groups ({})",
            op.to_string(),
            s.gated_module_count(),
            s
        );
    }
    let no_gating = EnergyModel {
        gating_efficiency: 0.0,
        ..EnergyModel::default()
    };
    let gated = simulate_paper(&mlp_trace);
    let ungated = Accelerator::new(AcceleratorConfig::paper())
        .with_energy_model(no_gating)
        .simulate(&mlp_trace);
    println!(
        "\nLeakage with gating {:.3} mJ/frame vs without {:.3} mJ/frame ({:.0}% saved)",
        gated.energy.leakage_j * 1e3,
        ungated.energy.leakage_j * 1e3,
        (1.0 - gated.energy.leakage_j / ungated.energy.leakage_j) * 100.0
    );

    // (3) Reconfiguration-cost sensitivity per pipeline. Every
    // pipeline's trace is collected once, and each cost setting replays
    // the whole batch through `Accelerator::simulate_many`, whose
    // workers each reuse one `ReplayScratch` across the traces they
    // claim (no per-frame mapping allocations).
    println!("\nSec. VII-E (3) — reconfiguration cost sensitivity\n");
    println!(
        "{:<28} {:>8} {:>14} {:>14} {:>14}",
        "Pipeline", "switches", "FPS @0 cyc", "FPS @2k cyc", "FPS @100k cyc"
    );
    let traces: Vec<Trace> = Pipeline::ALL
        .into_iter()
        .map(|pipeline| trace_scene(renderer_for(pipeline).as_ref(), &prepared[0]))
        .collect();
    let fps_at = |cycles: u64| -> Vec<f64> {
        let mut cfg = AcceleratorConfig::paper();
        cfg.reconfig_cycles = cycles;
        Accelerator::new(cfg)
            .simulate_many(&traces)
            .iter()
            .map(SimReport::fps)
            .collect()
    };
    let (fps_0, fps_2k, fps_100k) = (fps_at(0), fps_at(2_000), fps_at(100_000));
    for (i, pipeline) in Pipeline::ALL.into_iter().enumerate() {
        println!(
            "{:<28} {:>8} {:>14.2} {:>14.2} {:>14.2}",
            pipeline.to_string(),
            traces[i].reconfiguration_count(),
            fps_0[i],
            fps_2k[i],
            fps_100k[i],
        );
    }
    println!("\nShape check: frame-level reconfiguration is cheap (<1% at the 2k-cycle");
    println!("design point); the flexibility cost shows up as dataflow overheads, not");
    println!("switch latency.");
}
