//! Tab. IV — Uni-Render's rendering speed on the NeRF-Synthetic dataset
//! (800×800), paper-reported vs measured, with the real-time verdicts.

use uni_baselines::calibration::{tab4_anchors, REAL_TIME_FPS};
use uni_bench::{geo_mean, prepare, renderer_for, simulate_paper, trace_scene, HARNESS_DETAIL};
use uni_microops::Pipeline;
use uni_renderers::{MlpPipeline, Renderer};
use uni_scene::datasets::nerf_synthetic;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let mut catalog = nerf_synthetic(HARNESS_DETAIL);
    if !full {
        catalog.truncate(3);
    }
    let prepared = prepare(catalog);

    println!("Tab. IV — real-time rendering speeds on NeRF-Synthetic (800x800)\n");
    println!(
        "{:<28} {:<12} {:>12} {:>12} {:>10}",
        "Pipeline", "Reference", "Paper FPS", "Ours FPS", "Real-time"
    );
    for (pipeline, paper_fps, _) in tab4_anchors() {
        let renderer = renderer_for(pipeline);
        let fps: Vec<f64> = prepared
            .iter()
            .map(|s| simulate_paper(&trace_scene(renderer.as_ref(), s)).fps())
            .collect();
        let measured = geo_mean(&fps);
        println!(
            "{:<28} {:<12} {:>12.0} {:>12.1} {:>10}",
            pipeline.to_string(),
            pipeline.representative_work(),
            paper_fps,
            measured,
            if measured > REAL_TIME_FPS {
                "yes"
            } else {
                "no"
            },
        );
        if pipeline == Pipeline::Mlp {
            // The paper's extra row: KiloNeRF with MetaVRain-style
            // Pixel-Reuse (>200 FPS).
            let reuse = MlpPipeline::default().with_pixel_reuse();
            let fps: Vec<f64> = prepared
                .iter()
                .map(|s| {
                    simulate_paper(
                        &reuse.trace(&s.scene, &s.entry.spec.orbit(800, 800).camera_at(0.9)),
                    )
                    .fps()
                })
                .collect();
            let measured = geo_mean(&fps);
            println!(
                "{:<28} {:<12} {:>12} {:>12.1} {:>10}",
                "  w/ Pixel-Reuse",
                "KiloNeRF",
                ">200",
                measured,
                if measured > REAL_TIME_FPS {
                    "yes"
                } else {
                    "no"
                },
            );
        }
    }
    println!("\nShape check: every pipeline (MLP via its Pixel-Reuse row) is real-time.");
}
