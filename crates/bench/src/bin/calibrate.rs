//! Calibration probe: prints per-pipeline FPS for Uni-Render and every
//! baseline on one Unbounded-360 scene and one NeRF-Synthetic scene, plus
//! workload magnitudes. Used while fitting the model constants against the
//! anchors in `uni_baselines::calibration`; the figure harnesses assert the
//! final shapes.

use uni_baselines::all_baselines;
use uni_bench::{prepare, renderer_for, simulate_paper, HARNESS_DETAIL};
use uni_microops::{MicroOp, Pipeline};
use uni_scene::datasets::{nerf_synthetic, unbounded360};

fn main() {
    let detail = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(HARNESS_DETAIL);
    for (label, catalog) in [
        (
            "Unbounded-360 / garden @1280x720",
            vec![unbounded360(detail).remove(2)],
        ),
        (
            "NeRF-Synthetic / lego @800x800",
            vec![nerf_synthetic(detail).remove(4)],
        ),
    ] {
        println!("=== {label} (bake detail {detail}) ===");
        let prepared = prepare(catalog);
        let scene = &prepared[0];
        let baselines = all_baselines();
        for pipeline in Pipeline::ALL {
            let renderer = renderer_for(pipeline);
            let trace = uni_bench::trace_scene(renderer.as_ref(), scene);
            let ours = simulate_paper(&trace);
            let stats = trace.stats();
            println!(
                "\n[{pipeline}] ours: {:.2} FPS, {:.2} W, {:.1} MB dram, util {:.2}",
                ours.fps(),
                ours.power_w(),
                ours.dram_bytes as f64 / 1e6,
                ours.utilization
            );
            for op in MicroOp::ALL {
                let c = stats.cost_of(op);
                if c.total_ops() == 0 && c.dram_bytes() == 0 {
                    continue;
                }
                println!(
                    "    {:<26} int {:>12} fp {:>12} sfu {:>10} dram {:>9.1}MB cyc-share {:>5.1}%",
                    op.to_string(),
                    c.int_macs,
                    c.fp_macs,
                    c.sfu_ops,
                    c.dram_bytes() as f64 / 1e6,
                    ours.op_share(op) * 100.0
                );
            }
            for device in &baselines {
                match device.execute(&trace) {
                    Some(r) => println!(
                        "    {:<12} {:>8.2} FPS   {:>8.4} frames/J",
                        device.name(),
                        r.fps(),
                        r.frames_per_joule()
                    ),
                    None => println!("    {:<12} unsupported", device.name()),
                }
            }
        }
        println!();
    }
}
