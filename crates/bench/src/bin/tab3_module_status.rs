//! Tab. III — the status of every reconfigurable hardware module (data
//! networks, PE controller, FF scratchpad, ALU, PS scratchpad) per
//! micro-operator.

use uni_core::ModuleStatus;
use uni_microops::MicroOp;

fn main() {
    println!("Tab. III — module status per micro-operator\n");
    println!(
        "{:<26} {:<12} {:<12} {:<10} {:<24} {:<24} {:<16} PS Scratch Pad",
        "Micro-Operator",
        "Input Net",
        "Reduce Net",
        "Mode",
        "PE Controller",
        "FF Scratch Pad",
        "ALU",
    );
    for op in MicroOp::ALL {
        let s = ModuleStatus::for_op(op);
        println!(
            "{:<26} {:<12} {:<12} {:<10} {:<24} {:<24} {:<16} {:?}",
            op.to_string(),
            format!("{:?}", s.input_network),
            format!("{:?}", s.reduction_network),
            format!("{:?}", s.mode),
            format!("{:?}", s.controller),
            format!("{:?}", s.ff),
            format!("{:?}", s.alu),
            s.ps,
        );
    }
    println!("\nGated module groups per op (power/clock gating, Sec. VII-E):");
    for op in MicroOp::ALL {
        println!(
            "  {:<26} {} of 6 module groups gated",
            op.to_string(),
            ModuleStatus::for_op(op).gated_module_count()
        );
    }
}
