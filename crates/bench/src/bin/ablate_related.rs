//! Sec. VIII ablation — comparison against the related accelerators
//! GSCore (3DGS) and CICERO (hash grid), plus the Xavier-relative framing
//! the paper uses ("GSCore achieves a 15× speedup over XNX, while we
//! achieve 12×"; "14% slower than CICERO when scaling to the same number
//! of MAC units").

use uni_baselines::{related_accelerators, xavier_nx, Device};
use uni_bench::{prepare, renderer_for, simulate_paper, trace_scene, HARNESS_DETAIL};
use uni_microops::Pipeline;
use uni_scene::datasets::unbounded360;

fn main() {
    let prepared = prepare(vec![unbounded360(HARNESS_DETAIL).remove(2)]);
    let xavier = xavier_nx();

    println!("Sec. VIII — related neural-rendering accelerators\n");
    for related in related_accelerators() {
        let pipeline = Pipeline::TYPICAL
            .into_iter()
            .find(|&p| related.supports(p))
            .expect("dedicated accelerators support one pipeline");
        let trace = trace_scene(renderer_for(pipeline).as_ref(), &prepared[0]);
        let ours = simulate_paper(&trace);
        let theirs = related.execute(&trace).expect("home pipeline");
        let xnx = xavier.execute(&trace).expect("commercial");
        println!("{} ({pipeline}):", related.name());
        println!(
            "  ours vs {}: {:.2}x FPS (paper: GSCore 0.8x / CICERO 0.86x)",
            related.name(),
            ours.fps() / theirs.fps()
        );
        println!(
            "  speedup over Xavier NX — ours {:.1}x vs {} {:.1}x (paper: 12x vs 15x for GSCore)",
            ours.fps() / xnx.fps(),
            related.name(),
            theirs.fps() / xnx.fps()
        );
    }
    println!("\nShape check: the dedicated chips keep a ~15-25% edge on their home");
    println!("pipeline — the price Uni-Render pays for supporting all five.");
}
