//! Fig. 15 — area and power breakdown of the accelerator across the three
//! categories {computing & control logic, SRAM inside the PE array, SRAM
//! outside the PE array}.

use uni_bench::{prepare, renderer_for, simulate_paper, trace_scene, HARNESS_DETAIL};
use uni_core::{area, AcceleratorConfig, EnergyBreakdown};
use uni_microops::Pipeline;
use uni_scene::datasets::unbounded360;

fn main() {
    let cfg = AcceleratorConfig::paper();
    let die = area(&cfg);
    println!("Fig. 15 — area and power breakdown (paper: area 54/31/15 %, power 75/10/15 %)\n");
    println!("Total area: {:.2} mm² (paper: 14.96 mm²)", die.total_mm2());
    let (a_logic, a_array, a_glob) = die.shares();
    println!(
        "Area  — compute+control {a_logic:.1}%  |  SRAM in array {a_array:.1}%  |  SRAM outside {a_glob:.1}%"
    );

    // Power breakdown measured over a representative mix: all five typical
    // pipelines on one Unbounded-360 scene.
    let prepared = prepare(vec![unbounded360(HARNESS_DETAIL).remove(2)]);
    let mut total = EnergyBreakdown::default();
    let mut seconds = 0.0;
    for pipeline in Pipeline::TYPICAL {
        let renderer = renderer_for(pipeline);
        let trace = trace_scene(renderer.as_ref(), &prepared[0]);
        let report = simulate_paper(&trace);
        total.compute_j += report.energy.compute_j;
        total.sram_array_j += report.energy.sram_array_j;
        total.sram_global_j += report.energy.sram_global_j;
        total.leakage_j += report.energy.leakage_j;
        total.dram_j += report.energy.dram_j;
        seconds += report.seconds;
    }
    let (p_logic, p_array, p_glob) = total.shares();
    println!(
        "Power — compute+control {p_logic:.1}%  |  SRAM in array {p_array:.1}%  |  SRAM outside {p_glob:.1}%"
    );
    println!(
        "Mean on-chip power over the five-pipeline mix: {:.2} W (paper: 5.78 W typical)",
        total.on_chip_j() / seconds
    );
    println!(
        "(DRAM energy excluded from power, as in the paper; it would add {:.2} W)",
        total.dram_j / seconds
    );
}
