//! Fig. 17 — speedup of Uni-Render over the commercial devices on the
//! MixRT hybrid pipeline for the four indoor Unbounded-360 scenes (Room,
//! Counter, Kitchen, Bonsai), with per-device geometric means.
//!
//! Paper shape: 2.0×–3.7× across all baselines, consistent across scenes.

use uni_baselines::commercial_devices;
use uni_bench::{geo_mean, prepare, renderer_for, simulate_paper, HARNESS_DETAIL};
use uni_microops::Pipeline;
use uni_scene::datasets::unbounded360_indoor;

fn main() {
    let prepared = prepare(unbounded360_indoor(HARNESS_DETAIL));
    let devices = commercial_devices();
    let renderer = renderer_for(Pipeline::HybridMixRt);

    println!("Fig. 17 — hybrid (MixRT) speedup over commercial devices, indoor scenes\n");
    print!("{:<12}", "Scene");
    for d in &devices {
        print!("{:>12}", d.name());
    }
    println!("{:>12}", "ours FPS");

    let mut per_device: Vec<Vec<f64>> = vec![Vec::new(); devices.len()];
    for (si, scene) in prepared.iter().enumerate() {
        // Each scene uses a different test view along its orbit.
        let (w, h) = scene.entry.resolution;
        let camera = scene
            .scene
            .spec()
            .orbit(w, h)
            .camera_at(0.9 + si as f32 * 0.85);
        let trace = renderer.trace(&scene.scene, &camera);
        let ours = simulate_paper(&trace);
        print!("{:<12}", scene.entry.name());
        for (di, d) in devices.iter().enumerate() {
            let r = d.execute(&trace).expect("commercial devices support all");
            let speedup = ours.fps() / r.fps();
            per_device[di].push(speedup);
            print!("{:>11.2}x", speedup);
        }
        println!("{:>12.1}", ours.fps());
    }
    print!("{:<12}", "Geo. Mean");
    for vals in &per_device {
        print!("{:>11.2}x", geo_mean(vals));
    }
    println!();
    println!("\nPaper band: 2.0x-3.7x overall; 2.0x-2.6x vs Xavier/Orin.");
    println!("Shape checks: ours wins on every (scene, device) pair; per-device");
    println!("speedups are consistent across the four scenes/models.");
}
