//! Tab. V — rendering-speed improvement when scaling the PE array and the
//! SRAM sizes (hash-grid pipeline on Unbounded-360).
//!
//! The paper's finding: balanced 1:1 PE:SRAM scaling maximizes speed;
//! scaling PEs alone saturates at ~1.1× (memory-bound) and scaling SRAM
//! alone does nothing (compute-bound).

use uni_bench::{prepare, renderer_for, trace_scene, HARNESS_DETAIL};
use uni_core::{Accelerator, AcceleratorConfig, ReplayScratch};
use uni_microops::Pipeline;
use uni_scene::datasets::unbounded360;

/// Paper values (relative rendering speed).
const PAPER: [[f64; 3]; 3] = [[1.0, 1.1, 1.1], [1.0, 2.0, 2.2], [1.0, 2.0, 4.0]];

fn main() {
    let prepared = prepare(vec![unbounded360(HARNESS_DETAIL).remove(2)]);
    let renderer = renderer_for(Pipeline::HashGrid);
    let trace = trace_scene(renderer.as_ref(), &prepared[0]);

    // One ReplayScratch serves the whole config sweep: every replay of
    // the trace reuses the same invocation -> dataflow mapping buffer.
    let mut scratch = ReplayScratch::default();
    let base = Accelerator::new(AcceleratorConfig::paper())
        .simulate_with_scratch(&trace, &mut scratch)
        .seconds;

    println!("Tab. V — speed improvement from scaling PE array x SRAM sizes");
    println!("(hash-grid pipeline [Instant-NGP], Unbounded-360 @1280x720)\n");
    println!(
        "{:<16} {:>22} {:>22} {:>22}",
        "", "1x PE Array", "2x PE Array", "4x PE Array"
    );
    for (si, sram_scale) in [1u32, 2, 4].into_iter().enumerate() {
        let mut row = format!("{:<16}", format!("{sram_scale}x SRAM"));
        for (pi, pe_scale) in [1u32, 2, 4].into_iter().enumerate() {
            let cfg = AcceleratorConfig::paper().scaled(pe_scale, sram_scale);
            let report = Accelerator::new(cfg).simulate_with_scratch(&trace, &mut scratch);
            let speedup = base / report.seconds;
            row += &format!("{:>13.2}x (paper {:>3.1}x)", speedup, PAPER[si][pi]);
        }
        println!("{row}");
    }
    println!("\nShape checks:");
    println!("  - Column 1 (PE fixed): SRAM alone buys nothing (compute-bound).");
    println!("  - Row 1 (SRAM fixed): PEs alone saturate near 1.1x (memory-bound).");
    println!("  - The diagonal (1:1 scaling) is optimal, reaching ~4x at 4x/4x.");
}
