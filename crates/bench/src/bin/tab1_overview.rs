//! Tab. I — comparative overview of the five typical rendering pipelines:
//! rendering speed on Orin NX (Unbounded-360 @ 1280×720), storage
//! efficiency, CG toolchain compatibility, and representative works.

use uni_baselines::{orin_nx, Device};
use uni_bench::{prepare, renderer_for, trace_scene, HARNESS_DETAIL};
use uni_microops::Pipeline;
use uni_scene::datasets::unbounded360;
use uni_scene::storage::representation_megabytes;

/// The paper's qualitative compatibility row (Unity/Blender/UE/Maya).
fn compatibility(p: Pipeline) -> &'static str {
    match p {
        Pipeline::Mesh => "Very High (Unity+Blender+UE+Maya)",
        Pipeline::Mlp => "Low (Unity)",
        Pipeline::LowRankGrid => "Low (Unity)",
        Pipeline::HashGrid => "High (Unity+Blender+UE)",
        Pipeline::Gaussian3d => "High (Unity+Blender+UE)",
        Pipeline::HybridMixRt => "High",
    }
}

fn paper_speed(p: Pipeline) -> &'static str {
    match p {
        Pipeline::Mesh => "<=20 FPS",
        Pipeline::Mlp => "<=0.2 FPS",
        Pipeline::LowRankGrid => "<=10 FPS",
        Pipeline::HashGrid => "<=1 FPS",
        Pipeline::Gaussian3d => "<=5 FPS",
        Pipeline::HybridMixRt => "-",
    }
}

fn paper_storage(p: Pipeline) -> &'static str {
    match p {
        Pipeline::Mesh => "<=700 MB",
        Pipeline::Mlp => "<=40 MB",
        Pipeline::LowRankGrid => "<=160 MB",
        Pipeline::HashGrid => "<=110 MB",
        Pipeline::Gaussian3d => "<=600 MB",
        Pipeline::HybridMixRt => "-",
    }
}

fn main() {
    // A representative subset of the seven public Unbounded-360 scenes
    // keeps the harness fast; pass `--full` for all nine.
    let full = std::env::args().any(|a| a == "--full");
    let mut catalog = unbounded360(HARNESS_DETAIL);
    if !full {
        catalog.truncate(2);
    }
    let storage_spec = unbounded360(1.0).remove(0).spec; // Full-scale sizes.
    let prepared = prepare(catalog);
    let orin = orin_nx();

    println!("Tab. I — A comparative overview of typical rendering pipelines");
    println!("(speed measured on the Orin NX model, Unbounded-360 @ 1280x720)\n");
    println!(
        "{:<26} {:<18} {:>22} {:>22} {:<36} Representative",
        "Representation",
        "Technique",
        "Speed (paper | ours)",
        "Storage (paper|ours)",
        "CG Compatibility",
    );
    for p in Pipeline::TYPICAL {
        let renderer = renderer_for(p);
        let mut fps = Vec::new();
        for scene in &prepared {
            let trace = trace_scene(renderer.as_ref(), scene);
            fps.push(orin.execute(&trace).expect("commercial supports all").fps());
        }
        let mean_fps = fps.iter().sum::<f64>() / fps.len() as f64;
        let mb = representation_megabytes(&storage_spec, p);
        println!(
            "{:<26} {:<18} {:>12} | {:>6.1} {:>12} | {:>5.0}MB {:<36} {}",
            p.dominant_representation(),
            p.rendering_technique(),
            paper_speed(p),
            mean_fps,
            paper_storage(p),
            mb,
            compatibility(p),
            p.representative_work(),
        );
    }
    println!("\nShape checks:");
    println!("  - Mesh is the fastest pipeline on the edge GPU; MLP is the slowest.");
    println!("  - Storage: MLP < Hash < Low-Rank < 3DGS <= Mesh.");
}
