//! Shared harness utilities for the table/figure regeneration binaries.

use uni_core::{Accelerator, AcceleratorConfig, SimReport};
use uni_microops::{Pipeline, Trace};
use uni_renderers::{all_renderers, Renderer};
use uni_scene::datasets::DatasetScene;
use uni_scene::BakedScene;

/// Detail factor the harnesses bake scenes at. Traces always describe
/// full-scale workloads (see `uni_renderers::probe`); baking detail only
/// affects content fidelity and harness runtime.
pub const HARNESS_DETAIL: f32 = 0.12;

/// A baked catalog entry ready for tracing.
pub struct PreparedScene {
    /// The catalog entry.
    pub entry: DatasetScene,
    /// The baked scene.
    pub scene: BakedScene,
}

/// Bakes every scene of a catalog (sequentially; baking dominates harness
/// start-up, so harnesses usually restrict the catalog first).
pub fn prepare(catalog: Vec<DatasetScene>) -> Vec<PreparedScene> {
    catalog
        .into_iter()
        .map(|entry| {
            let scene = entry.spec.bake();
            PreparedScene { entry, scene }
        })
        .collect()
}

/// Returns the renderer for a pipeline.
pub fn renderer_for(pipeline: Pipeline) -> Box<dyn Renderer> {
    all_renderers()
        .into_iter()
        .find(|r| r.pipeline() == pipeline)
        .expect("every pipeline has a renderer")
}

/// Traces one scene at its benchmark resolution.
pub fn trace_scene(renderer: &dyn Renderer, prepared: &PreparedScene) -> Trace {
    let (w, h) = prepared.entry.resolution;
    let camera = prepared.scene.spec().orbit(w, h).camera_at(0.9);
    renderer.trace(&prepared.scene, &camera)
}

/// Simulates a trace on the paper-configuration accelerator.
pub fn simulate_paper(trace: &Trace) -> SimReport {
    Accelerator::new(AcceleratorConfig::paper()).simulate(trace)
}

/// Geometric mean of positive values (the paper reports Geo. Mean bars).
pub fn geo_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geo mean of empty set");
    let log_sum: f64 = values
        .iter()
        .map(|v| {
            assert!(*v > 0.0, "geo mean needs positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Formats a speedup for table output (`x` suffix, `—` for unsupported).
pub fn fmt_speedup(v: Option<f64>) -> String {
    match v {
        Some(s) => format!("{s:.2}x"),
        None => "    ×".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_of_identical_values() {
        assert!((geo_mean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn geo_mean_is_between_min_and_max() {
        let g = geo_mean(&[1.0, 100.0]);
        assert!((g - 10.0).abs() < 1e-9);
    }

    #[test]
    fn renderer_for_every_pipeline() {
        for p in Pipeline::ALL {
            assert_eq!(renderer_for(p).pipeline(), p);
        }
    }

    #[test]
    fn fmt_speedup_handles_unsupported() {
        assert_eq!(fmt_speedup(Some(2.0)), "2.00x");
        assert!(fmt_speedup(None).contains('×'));
    }
}
