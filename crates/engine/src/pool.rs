//! A pool of reusable framebuffers.
//!
//! Frame streams hand rendered [`Image`]s to their consumer and take
//! recycled ones back; the pool keeps the returned buffers so
//! steady-state streaming performs **zero framebuffer allocations after
//! the first frame** — the allocation counter makes that property
//! testable.

use uni_geometry::Image;

/// A free-list of render targets with an allocation counter.
#[derive(Debug, Default)]
pub struct FramePool {
    free: Vec<Image>,
    allocations: u64,
}

impl FramePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a reusable render target: a pooled buffer when one is
    /// available, otherwise a fresh (counted) empty image. Contents and
    /// dimensions are *unspecified* — the consumer is expected to hand
    /// the target to `Renderer::render_into`, whose resize-and-fill is
    /// then the only full-frame write (acquiring does not touch pixels,
    /// so frames are never cleared twice).
    pub fn acquire(&mut self) -> Image {
        match self.free.pop() {
            Some(img) => img,
            None => {
                self.allocations += 1;
                Image::empty()
            }
        }
    }

    /// Returns a frame to the pool for reuse.
    pub fn release(&mut self, frame: Image) {
        self.free.push(frame);
    }

    /// Number of *fresh* targets the pool has had to create — stays at
    /// its steady-state value (typically 1) while callers recycle. Each
    /// fresh target grows to frame size once, on its first render.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uni_geometry::Rgb;

    #[test]
    fn recycled_buffers_are_not_reallocated() {
        let mut pool = FramePool::new();
        let mut a = pool.acquire();
        a.resize(8, 8, Rgb::BLACK);
        assert_eq!(pool.allocations(), 1);
        let ptr = a.pixels().as_ptr();
        pool.release(a);
        let b = pool.acquire();
        assert_eq!(pool.allocations(), 1, "reuse, not a new allocation");
        assert_eq!(b.pixels().as_ptr(), ptr, "same buffer back");
        assert_eq!(b.get(7, 7), Rgb::BLACK, "contents untouched by acquire");
    }

    #[test]
    fn unreturned_frames_force_new_acquisitions() {
        let mut pool = FramePool::new();
        let _a = pool.acquire();
        let _b = pool.acquire();
        assert_eq!(pool.allocations(), 2);
        assert_eq!(pool.pooled(), 0);
    }
}
