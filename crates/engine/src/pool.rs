//! A pool of reusable framebuffers.
//!
//! Frame streams hand rendered [`Image`]s to their consumer and take
//! recycled ones back; the pool keeps the returned buffers so
//! steady-state streaming performs **zero framebuffer allocations after
//! the first frame** — the allocation counter makes that property
//! testable.

use uni_geometry::Image;

/// A free-list of render targets with an allocation counter.
#[derive(Debug, Default)]
pub struct FramePool {
    free: Vec<Image>,
    allocations: u64,
    peak_pixels: usize,
}

impl FramePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a reusable render target: a pooled buffer when one is
    /// available, otherwise a fresh (counted) empty image. Contents and
    /// dimensions are *unspecified* — the consumer is expected to hand
    /// the target to `Renderer::render_into`, whose resize-and-fill is
    /// then the only full-frame write (acquiring does not touch pixels,
    /// so frames are never cleared twice).
    ///
    /// When the upcoming frame's resolution is known, prefer
    /// [`FramePool::acquire_for`], which also counts the reallocation a
    /// too-small pooled buffer is about to pay.
    pub fn acquire(&mut self) -> Image {
        match self.free.pop() {
            Some(img) => img,
            None => {
                self.allocations += 1;
                Image::empty()
            }
        }
    }

    /// Takes a reusable render target for a `width × height` frame.
    ///
    /// Identical to [`FramePool::acquire`] except that a pooled buffer
    /// whose capacity cannot hold the frame is *counted as an
    /// allocation*: the subsequent `Image::resize` will reallocate its
    /// pixel buffer exactly once, and that hidden growth used to escape
    /// the counter. A stream that shrinks and then grows back within
    /// capacity still counts nothing; growing past the pooled capacity
    /// mid-stream counts once and the grown buffer serves every later
    /// frame at that size for free.
    pub fn acquire_for(&mut self, width: u32, height: u32) -> Image {
        let needed = (width as usize) * (height as usize);
        self.peak_pixels = self.peak_pixels.max(needed);
        match self.free.pop() {
            Some(img) => {
                if img.capacity() < needed {
                    self.allocations += 1;
                }
                img
            }
            None => {
                self.allocations += 1;
                Image::empty()
            }
        }
    }

    /// Returns a frame to the pool for reuse.
    pub fn release(&mut self, frame: Image) {
        self.free.push(frame);
    }

    /// Number of *fresh* targets the pool has had to create — stays at
    /// its steady-state value (typically 1) while callers recycle. Each
    /// fresh target grows to frame size once, on its first render.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// The largest frame (in pixels) ever requested through
    /// [`FramePool::acquire_for`]. Lets a caller verify that a stream
    /// served under resolution degradation really rendered smaller
    /// frames (a shrunken request leaves the peak untouched; only
    /// native-size frames raise it).
    pub fn peak_pixels(&self) -> usize {
        self.peak_pixels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uni_geometry::Rgb;

    #[test]
    fn recycled_buffers_are_not_reallocated() {
        let mut pool = FramePool::new();
        let mut a = pool.acquire();
        a.resize(8, 8, Rgb::BLACK);
        assert_eq!(pool.allocations(), 1);
        let ptr = a.pixels().as_ptr();
        pool.release(a);
        let b = pool.acquire();
        assert_eq!(pool.allocations(), 1, "reuse, not a new allocation");
        assert_eq!(b.pixels().as_ptr(), ptr, "same buffer back");
        assert_eq!(b.get(7, 7), Rgb::BLACK, "contents untouched by acquire");
    }

    #[test]
    fn unreturned_frames_force_new_acquisitions() {
        let mut pool = FramePool::new();
        let _a = pool.acquire();
        let _b = pool.acquire();
        assert_eq!(pool.allocations(), 2);
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn growing_past_pooled_capacity_counts_exactly_once() {
        let mut pool = FramePool::new();
        let mut img = pool.acquire_for(8, 8);
        img.resize(8, 8, Rgb::BLACK);
        assert_eq!(pool.allocations(), 1, "first frame is the only cold one");
        pool.release(img);

        // Mid-stream growth: the pooled 8x8 buffer cannot hold 16x16, so
        // the resize it is about to pay is counted — once.
        let mut img = pool.acquire_for(16, 16);
        assert_eq!(pool.allocations(), 2, "growth reallocation counted");
        img.resize(16, 16, Rgb::BLACK);
        let cap = img.capacity();
        pool.release(img);

        // Every later frame at the grown size reuses the grown buffer.
        let img = pool.acquire_for(16, 16);
        assert_eq!(pool.allocations(), 2, "steady state after growth");
        assert_eq!(img.capacity(), cap);
    }

    #[test]
    fn shrink_then_grow_within_capacity_is_free() {
        let mut pool = FramePool::new();
        let mut img = pool.acquire_for(12, 12);
        img.resize(12, 12, Rgb::BLACK);
        pool.release(img);

        // Shrink: capacity is retained by Image::resize...
        let mut img = pool.acquire_for(6, 6);
        img.resize(6, 6, Rgb::BLACK);
        let ptr = img.pixels().as_ptr();
        pool.release(img);

        // ...so growing back to the original size stays allocation-free.
        let mut img = pool.acquire_for(12, 12);
        assert_eq!(pool.allocations(), 1, "shrink-then-grow reuses capacity");
        img.resize(12, 12, Rgb::BLACK);
        assert_eq!(img.pixels().as_ptr(), ptr, "same buffer throughout");
    }
}
