//! # uni-engine — frame-stream rendering on top of the pipelines
//!
//! Uni-Render's headline claim is *cross-frame* efficiency: the
//! reconfigurable accelerator amortizes PE-array mode switches across
//! consecutive frames of a camera path. This crate supplies the frame-
//! stream surface that claim needs:
//!
//! - [`CameraPath`] — finite, frame-indexed camera trajectories (orbit
//!   sweeps, pose lerps, explicit waypoints);
//! - [`FramePool`] — reusable render targets with an allocation counter,
//!   so steady-state streaming allocates nothing after the first frame;
//! - [`RenderSession`] — owns a baked scene, a renderer, a framebuffer
//!   pool, and a path; yields a [`FrameReport`] per frame (image +
//!   micro-op trace + simulated [`uni_core::SimReport`]), reusing one
//!   [`uni_core::ReplayScratch`] across the stream and counting the
//!   reconfigurations amortized at frame boundaries
//!   ([`StreamSummary`]).
//!
//! Rendering goes through `Renderer::render_into`, the caller-owned-
//! target entry point of `uni_renderers` — sessions are the canonical
//! consumer of that API.

pub mod path;
pub mod pool;
pub mod session;

pub use path::CameraPath;
pub use pool::FramePool;
pub use session::{FrameReport, RenderSession, StreamSummary};
