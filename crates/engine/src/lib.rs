//! # uni-engine — frame-stream rendering on top of the pipelines
//!
//! Uni-Render's headline claim is *cross-frame* efficiency: the
//! reconfigurable accelerator amortizes PE-array mode switches across
//! consecutive frames of a camera path. This crate supplies the frame-
//! stream surface that claim needs:
//!
//! - [`CameraPath`] — finite, frame-indexed camera trajectories (orbit
//!   sweeps, pose lerps, explicit waypoints);
//! - [`FramePool`] — reusable render targets with an allocation counter,
//!   so steady-state streaming allocates nothing after the first frame;
//! - [`RenderSession`] — owns a baked scene, a renderer, a framebuffer
//!   pool, and a path; yields a [`FrameReport`] per frame (image +
//!   micro-op trace + simulated [`uni_core::SimReport`]), reusing one
//!   [`uni_core::ReplayScratch`] across the stream and counting the
//!   reconfigurations amortized at frame boundaries
//!   ([`StreamSummary`]);
//! - [`RenderServer`] — the multi-session serving layer: one immutable
//!   `Arc`-shared baked scene, N concurrent camera streams
//!   ([`SessionRequest`]s, pipelines mixing freely), frames scheduled
//!   across persistent worker lanes by a pluggable deterministic
//!   [`SchedulePolicy`] ([`RoundRobin`] — the original contract —
//!   [`WeightedFair`], [`Priority`], each with a switch-coalescing
//!   variant). Sessions are addressed by typed [`SessionHandle`]s and
//!   may be [admitted](RenderServer::admit) or
//!   [closed](RenderServer::close) *mid-serve* at deterministic tick
//!   boundaries. Delivery and accounting follow the deterministic
//!   schedule order, so every served frame is bit-identical to the same
//!   frame from a standalone session, while the [`ServerSummary`]
//!   exposes the cross-session reconfigurations the shared accelerator
//!   pays at scheduled-frame boundaries.
//!
//! Rendering goes through `Renderer::render_into`, the caller-owned-
//! target entry point of `uni_renderers` — sessions are the canonical
//! consumer of that API.

pub mod fleet;
pub mod path;
pub mod pool;
pub mod scene_cache;
pub mod sched;
pub mod server;
pub mod session;

pub use fleet::{
    FleetAdmitDecision, FleetFrame, FleetHandle, FleetSessionRequest, PolicyFactory,
    RendererFactory, ServerFleet,
};
pub use path::CameraPath;
pub use pool::FramePool;
pub use scene_cache::{SceneCache, SceneCacheConfig, SceneKey};
pub use sched::{
    CostAware, EarliestDeadline, LoadView, PolicyContext, Priority, RoundRobin, ScheduleContext,
    SchedulePolicy, SessionHandle, SessionView, WeightedFair,
};
pub use server::{
    AdmissionControl, AdmitDecision, DegradePolicy, RenderServer, ServedFrame, SessionRequest,
    DEFAULT_LOOKAHEAD,
};
pub use session::{FrameReport, RenderSession, StreamSummary};
// The serving summaries live in `uni_microops::serve`; re-export them so
// engine consumers get the whole serving surface from one crate.
pub use uni_microops::{
    percentile, FleetCacheStats, FleetSummary, ServerSummary, SessionStats, ShardSummary,
    SwitchCostModel,
};
