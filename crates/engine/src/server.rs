//! Multi-session serving: many camera streams sharing one baked scene
//! and one accelerator, scheduled by a pluggable deterministic policy.
//!
//! A [`RenderServer`] is the serving analogue of the paper's premise —
//! one reconfigurable accelerator in front of *diverse* renderers. It
//! owns a single immutable [`BakedScene`] behind an [`Arc`] (no
//! per-session copies), accepts any number of [`SessionRequest`]s (each
//! its own camera path, resolution, pipeline, fair-share weight, and
//! priority — pipelines mix freely across sessions), and schedules their
//! frames across a persistent pool of worker lanes
//! ([`uni_parallel::LanePool`]) in whatever order its
//! [`SchedulePolicy`] dictates — strict [`RoundRobin`](crate::RoundRobin)
//! by default, [`WeightedFair`](crate::WeightedFair) or
//! [`Priority`](crate::Priority) (or any custom policy) by
//! [`RenderServer::with_policy`]. Each session keeps its own
//! [`FramePool`], [`ReplayScratch`], and share of the reconfiguration
//! accounting.
//!
//! Three properties are part of the public contract:
//!
//! 1. **Deterministic schedule.** The schedule is a pure function of the
//!    session mix, the policy, and the sequence of
//!    [`admit`](RenderServer::admit) / [`close`](RenderServer::close)
//!    calls (keyed to delivered-frame counts). Lanes only overlap
//!    *execution*; delivery and accounting follow the schedule, so
//!    results are independent of lane timing and every served frame is
//!    **bit-identical** to the same frame rendered by a standalone
//!    [`crate::RenderSession`], at any `UNI_RENDER_THREADS`.
//! 2. **Cross-session switching is charged.** The accelerator is one
//!    device: whenever two consecutively *scheduled* frames end and
//!    start in different micro-operator families — typically because
//!    neighbouring sessions run different pipelines — the schedule pays
//!    one reconfiguration ([`BoundaryMeter`]). Policies built with
//!    `coalesce_switches` batch same-pipeline frames to amortize exactly
//!    this cost.
//! 3. **Deterministic churn.** Sessions may be admitted and closed
//!    *mid-serve*. Both take effect at a deterministic schedule slot
//!    derived from the delivered-frame count at the time of the call
//!    plus the server's dispatch window — never from how far worker
//!    lanes happen to have run ahead — so churn keeps the served stream
//!    bit-identical across thread counts.

use crate::path::CameraPath;
use crate::pool::FramePool;
use crate::sched::{
    LoadView, PolicyContext, RoundRobin, SchedulePolicy, SessionHandle, SessionView,
};
use crate::session::FrameReport;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use uni_core::{Accelerator, ReplayScratch, SimReport};
use uni_geometry::{Camera, Image};
use uni_microops::{
    percentile, BoundaryMeter, Pipeline, ServerSummary, SessionStats, SwitchCostModel, Trace,
};
use uni_parallel::{LanePool, Ticket};
use uni_renderers::Renderer;
use uni_scene::BakedScene;

/// Default bound on scheduled-but-undelivered frames.
///
/// The dispatch window is `min(lanes, lookahead, policy.max_in_flight())`
/// but mid-serve admissions and closes activate `min(lookahead,
/// policy.max_in_flight())` *delivered* frames after the call — a bound
/// that deliberately excludes the lane count, so churn timing is
/// identical at any `UNI_RENDER_THREADS`. The default sits above
/// typical lane counts so overlap is not throttled; servers expecting
/// frequent churn under an unbounded policy (e.g. round-robin) should
/// lower it via [`RenderServer::with_lookahead`] to tighten admission /
/// close latency (a staged change waits up to this many delivered
/// frames, or until the schedule drains).
pub const DEFAULT_LOOKAHEAD: usize = 32;

/// One camera stream a [`RenderServer`] should serve: a renderer
/// (pipeline choice), a camera path (trajectory *and* resolution), and
/// the scheduling attributes policies consume.
pub struct SessionRequest {
    /// The pipeline rendering this stream. `Send` because frames execute
    /// on worker lanes.
    pub renderer: Box<dyn Renderer + Send>,
    /// The frames to serve, in order.
    pub path: CameraPath,
    weight: u32,
    priority: u8,
    deadline_hz: Option<f64>,
    label: Option<String>,
}

impl SessionRequest {
    /// Bundles a renderer and a path into a request with default
    /// scheduling attributes (weight 1, priority 0, best-effort — no
    /// deadline — and no label).
    pub fn new(renderer: Box<dyn Renderer + Send>, path: CameraPath) -> Self {
        Self {
            renderer,
            path,
            weight: 1,
            priority: 0,
            deadline_hz: None,
            label: None,
        }
    }

    /// Sets the fair-share weight (clamped to ≥ 1). Under
    /// [`WeightedFair`](crate::WeightedFair) a session with weight `w`
    /// receives `w / Σw` of the accelerator's sim-time while backlogged.
    pub fn weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Sets the priority level (higher wins). Under
    /// [`Priority`](crate::Priority) scheduling, runnable sessions of a
    /// higher level always go first.
    pub fn priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Declares a per-frame deadline rate in frames per *simulated*
    /// second (e.g. `30.0` for a 30 FPS stream): frame `i` of the
    /// session is due `(i + 1) / hz` sim-seconds after the session's
    /// deadline epoch (serve start; for mid-serve admissions, the
    /// delivered sim-time at which the session's first frame starts
    /// service — a delivery-order fact). Consumed by deadline-aware
    /// policies
    /// ([`crate::EarliestDeadline`], [`crate::CostAware`]) and by the
    /// server's miss/slack accounting under *any* policy
    /// ([`SessionStats::deadline_misses`],
    /// [`SessionStats::worst_slack`]). Non-finite or non-positive rates
    /// are ignored (the session stays best-effort).
    ///
    /// Deadlines are **sim-time** facts measured against the schedule's
    /// delivered sim-seconds — never against wall-clock or lane timing —
    /// so miss counts are bit-identical at any `UNI_RENDER_THREADS`.
    pub fn deadline_hz(mut self, hz: f64) -> Self {
        self.deadline_hz = (hz.is_finite() && hz > 0.0).then_some(hz);
        self
    }

    /// Attaches a human-readable label, surfaced in
    /// [`SessionStats::label`].
    pub fn label(mut self, label: &str) -> Self {
        self.label = Some(label.to_string());
        self
    }
}

/// One delivered frame of a served schedule.
#[derive(Debug)]
pub struct ServedFrame {
    /// Which session the frame belongs to (dense id, equal to
    /// [`ServedFrame::handle`]`.id()`).
    pub session: usize,
    /// Typed handle of the owning session — usable with
    /// [`RenderServer::close`] and [`RenderServer::session_stats`].
    pub handle: SessionHandle,
    /// The frame itself. `report.index` is the frame's position on *its
    /// session's* path; `report.boundary_reconfiguration` is true when
    /// the accelerator switched mode entering this frame from the
    /// previously *scheduled* one (possibly another session's). Hand
    /// `report.image` back via [`RenderServer::recycle`].
    pub report: FrameReport,
    /// Sim-time slack this frame was delivered with: its deadline minus
    /// the schedule's cumulative sim-seconds at delivery. Negative means
    /// the deadline was missed (counted in
    /// [`SessionStats::deadline_misses`]). `None` for best-effort
    /// sessions and on accelerator-less servers.
    pub deadline_slack: Option<f64>,
    /// Resolution halvings this frame was rendered at (0 = native; `k`
    /// = each image dimension divided by `2^k`). Non-zero only under an
    /// active [`DegradePolicy`]; such frames count in
    /// [`SessionStats::degraded_frames`].
    pub resolution_shift: u32,
}

/// What a worker lane hands back for one scheduled frame.
struct Rendered {
    camera: Camera,
    image: Image,
    trace: Option<Trace>,
    sim: Option<SimReport>,
}

/// What the render stage hands the replay stage when the server
/// pipelines: the frame is rendered and traced, its simulation still
/// pending on the sim pool.
struct Staged {
    camera: Camera,
    image: Image,
    trace: Trace,
}

/// The per-session state a worker lane mutates while rendering one of
/// the session's frames. Guarded by a mutex, but never contended: the
/// scheduler keeps at most one frame of a session in flight.
struct SessionState {
    renderer: Box<dyn Renderer + Send>,
    path: CameraPath,
    pool: FramePool,
    replay: ReplayScratch,
}

/// Scheduler-side bookkeeping for one session.
struct SessionSlot {
    state: Arc<Mutex<SessionState>>,
    /// Pipeline family (cached from the renderer; policies and the
    /// boundary meter consume it without locking the state).
    pipeline: Pipeline,
    /// Total frames on the session's path.
    len: usize,
    /// Frames dispatched to lanes so far.
    scheduled: usize,
    /// Whether a dispatched frame has not been delivered yet (at most
    /// one — the invariant that keeps per-session pools at 1 buffer).
    in_flight: bool,
    /// First schedule slot at which the session participates (staged
    /// mid-serve admissions activate once the schedule reaches it).
    active_from: usize,
    /// Whether the session has joined the schedule.
    active: bool,
    /// Schedule slot at which a staged close takes effect, if any.
    closed_from: Option<usize>,
    /// Whether the close has been applied (no further frames scheduled).
    closed: bool,
    /// Tick of the session's most recently scheduled frame.
    last_scheduled: Option<u64>,
    /// Per-frame deadline period in sim-seconds (`1 / deadline_hz`);
    /// `None` for best-effort sessions.
    period: Option<f64>,
    /// Sim-time the session's deadline clock started: 0 for sessions
    /// admitted before serving; for mid-serve admissions, the cumulative
    /// delivered sim-seconds just before the session's **first delivered
    /// frame** is charged — a delivery-order fact, so deterministic at
    /// any thread or lane count. (Anchoring at dispatch-time activation
    /// instead would read a sim clock that depends on how far lanes ran
    /// ahead.) Meaningless until [`SessionSlot::epoch_anchored`].
    deadline_epoch: f64,
    /// Whether [`SessionSlot::deadline_epoch`] is final. `false` only
    /// for staged mid-serve admissions that have not delivered a frame
    /// yet; their provisional epoch is the current delivered sim-time
    /// (exact for `max_in_flight == 1` policies — the only ones entitled
    /// to read slack — since their next delivery is the decision at
    /// hand).
    epoch_anchored: bool,
    /// Sim-seconds charged to each delivered frame (execution plus the
    /// boundary reconfiguration entering it), in delivery order — the
    /// population the p50/p99 latency stats summarize.
    latencies: Vec<f64>,
    /// Resolution halvings applied to frames dispatched from now on
    /// (0 = native). Changed only by [`SessionSlot::staged_shift`]
    /// activating, so the shift a given schedule slot renders at is
    /// lane-invariant.
    res_shift: u32,
    /// A staged resolution change: `(activation slot, new shift)`,
    /// applied under the same delivered-count rule as staged churn.
    staged_shift: Option<(usize, u32)>,
    /// A staged frame skip: `(activation slot, frames to skip)`.
    staged_skip: Option<(usize, usize)>,
    /// Skips activated but not yet consumed by the dispatcher.
    skips_pending: usize,
    /// Consecutive delivered frames that missed their deadline.
    miss_streak: u32,
    /// Consecutive delivered frames that met their deadline.
    meet_streak: u32,
    stats: SessionStats,
}

impl SessionSlot {
    /// Whether the scheduler may still dispatch frames of this session.
    fn schedulable(&self) -> bool {
        self.active && !self.closed && self.scheduled < self.len
    }

    /// Absolute sim-time deadline of the session's frame `index`
    /// (`None` for best-effort sessions): the deadline epoch plus
    /// `index + 1` periods. `provisional_epoch` (the caller's delivered
    /// sim-time "now") stands in while the real epoch is not anchored
    /// yet.
    fn next_deadline(&self, index: usize, provisional_epoch: f64) -> Option<f64> {
        let epoch = if self.epoch_anchored {
            self.deadline_epoch
        } else {
            provisional_epoch
        };
        self.period.map(|p| epoch + (index as f64 + 1.0) * p)
    }
}

/// What the admission controller decided about one
/// [`SessionRequest`] handed to [`RenderServer::try_admit`].
///
/// Decisions are a pure function of settled (delivered) accounting, the
/// switch-cost model, and the [`AdmissionControl`] knobs — never of lane
/// timing — so the decision stream is bit-identical at any
/// `UNI_RENDER_THREADS`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmitDecision {
    /// Predicted feasible against the current load: the session joined
    /// the schedule under the normal [`RenderServer::admit`] rules.
    Admitted(SessionHandle),
    /// Predicted infeasible *now* but feasible once part of the current
    /// load drains: the session was staged to join at delivered-frame
    /// slot `activates_at` (a schedule-order estimate of that drain; if
    /// the schedule drains earlier the session joins at the drain point
    /// instead of waiting).
    Queued {
        /// Handle of the queued session.
        handle: SessionHandle,
        /// Delivered-frame slot the session is staged to activate at.
        activates_at: usize,
    },
    /// Predicted infeasible even after the entire current load drains
    /// (or the queue is full): the request was dropped — no session
    /// exists for it.
    Refused {
        /// The predicted per-round slack of the tightest deadline had
        /// the request been admitted against the current load
        /// (negative: by how many sim-seconds a scheduling round would
        /// overrun the period).
        predicted_slack: f64,
    },
}

impl AdmitDecision {
    /// The session handle, unless the request was refused.
    pub fn handle(&self) -> Option<SessionHandle> {
        match self {
            Self::Admitted(handle) => Some(*handle),
            Self::Queued { handle, .. } => Some(*handle),
            Self::Refused { .. } => None,
        }
    }
}

/// Feasibility knobs for [`RenderServer::try_admit`].
///
/// The controller predicts the sim-seconds of one scheduling round over
/// the live sessions plus the candidate — per-session mean frame cost
/// (the [`AdmissionControl::frame_cost_prior`] where a session has no
/// delivered history) plus the [`SwitchCostModel::round_cost`] of the
/// round's pipeline sequence — and admits only if `headroom × round`
/// fits inside every live deadline period and the candidate's own.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionControl {
    /// Safety multiplier on the predicted round (≥ 1 reserves margin
    /// for estimation error; clamped to ≥ 0). Default `1.0`.
    pub headroom: f64,
    /// Assumed mean frame cost (sim-seconds) for sessions with no
    /// delivered frames yet — including every candidate. Default `0.0`
    /// (optimistic: unknown sessions are presumed free).
    pub frame_cost_prior: f64,
    /// Most sessions allowed to wait in the queued (staged,
    /// delayed-activation) state at once. Default `1`.
    pub max_queued: usize,
}

impl Default for AdmissionControl {
    fn default() -> Self {
        Self {
            headroom: 1.0,
            frame_cost_prior: 0.0,
            max_queued: 1,
        }
    }
}

impl AdmissionControl {
    /// Default knobs (headroom 1.0, zero prior, queue depth 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the safety multiplier on the predicted round.
    pub fn headroom(mut self, headroom: f64) -> Self {
        self.headroom = if headroom.is_finite() {
            headroom.max(0.0)
        } else {
            1.0
        };
        self
    }

    /// Sets the assumed mean frame cost for history-less sessions.
    pub fn frame_cost_prior(mut self, seconds: f64) -> Self {
        self.frame_cost_prior = if seconds.is_finite() {
            seconds.max(0.0)
        } else {
            0.0
        };
        self
    }

    /// Sets the queued-session bound.
    pub fn max_queued(mut self, max_queued: usize) -> Self {
        self.max_queued = max_queued;
        self
    }
}

/// Graceful-degradation knobs for overload that develops *mid-serve*,
/// consumed by [`RenderServer::with_degradation`].
///
/// All three degraded modes are decided at frame **delivery** (a
/// schedule-order moment) and staged to take effect at the same
/// deterministic slot rule as mid-serve churn (delivered count +
/// dispatch window), so every degraded stream stays bit-identical at any
/// `UNI_RENDER_THREADS`:
///
/// - **Resolution scaling** — after
///   [`DegradePolicy::degrade_after_misses`] consecutive misses a
///   session's frames render at half linear resolution per step (the
///   camera's pixel grid halves; view/projection are untouched, so the
///   frustum is identical and only sampling density drops), up to
///   [`DegradePolicy::max_resolution_shift`] halvings; after
///   [`DegradePolicy::recover_after_meets`] consecutive met deadlines
///   one step is restored.
/// - **Frame skipping** — a frame delivered more than
///   [`DegradePolicy::skip_when_late_periods`] periods late stages one
///   explicit skip: the session's next undispatched frame is dropped
///   (never rendered, never delivered) and accounted in
///   [`SessionStats::frames_skipped`], advancing the session's deadline
///   ladder by one period.
/// - **Shedding** — a session still missing
///   [`DegradePolicy::shed_after_misses`] deadlines in a row at maximum
///   degradation sheds the lowest-(priority, weight) live session
///   (ties: the youngest), staging a close exactly like
///   [`RenderServer::close`] and marking the victim
///   [`SessionStats::shed`]. The last live session is never shed — it
///   degrades but keeps serving.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradePolicy {
    /// Most resolution halvings a session can accumulate. Default `2`
    /// (down to quarter linear resolution).
    pub max_resolution_shift: u32,
    /// Consecutive missed deadlines before staging one more halving.
    /// Default `2`.
    pub degrade_after_misses: u32,
    /// Consecutive met deadlines before restoring one halving.
    /// Default `4`.
    pub recover_after_meets: u32,
    /// How many periods late a delivery must be to stage a frame skip.
    /// Default `2.0`.
    pub skip_when_late_periods: f64,
    /// Consecutive misses *at maximum resolution degradation* before
    /// shedding a victim session; `0` disables shedding. Default `6`.
    pub shed_after_misses: u32,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        Self {
            max_resolution_shift: 2,
            degrade_after_misses: 2,
            recover_after_meets: 4,
            skip_when_late_periods: 2.0,
            shed_after_misses: 6,
        }
    }
}

impl DegradePolicy {
    /// Default knobs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the resolution-halving cap (`0` disables scaling).
    pub fn max_resolution_shift(mut self, shift: u32) -> Self {
        self.max_resolution_shift = shift;
        self
    }

    /// Sets the miss streak that triggers one halving (clamped ≥ 1).
    pub fn degrade_after_misses(mut self, misses: u32) -> Self {
        self.degrade_after_misses = misses.max(1);
        self
    }

    /// Sets the meet streak that restores one halving (clamped ≥ 1).
    pub fn recover_after_meets(mut self, meets: u32) -> Self {
        self.recover_after_meets = meets.max(1);
        self
    }

    /// Sets the lateness (in periods) that stages a frame skip;
    /// non-finite disables skipping.
    pub fn skip_when_late_periods(mut self, periods: f64) -> Self {
        self.skip_when_late_periods = periods;
        self
    }

    /// Sets the at-max-degradation miss streak that sheds a victim
    /// (`0` disables shedding).
    pub fn shed_after_misses(mut self, misses: u32) -> Self {
        self.shed_after_misses = misses;
        self
    }
}

/// A frame dispatched to a lane, awaiting in-order delivery.
struct Pending {
    session: usize,
    index: usize,
    /// Resolution halvings the frame was dispatched at.
    res_shift: u32,
    ticket: Ticket<Rendered>,
}

/// A multi-session render server over one shared baked scene.
///
/// See the [module docs](self) for the scheduling and accounting
/// contract. Typical use:
///
/// ```
/// use std::sync::Arc;
/// use uni_engine::{CameraPath, RenderServer, SessionRequest, WeightedFair};
/// use uni_renderers::{MeshPipeline, MlpPipeline};
/// use uni_scene::SceneSpec;
///
/// let spec = SceneSpec::demo("server-doc", 5).with_detail(0.03);
/// let scene = Arc::new(spec.bake());
/// let mut server = RenderServer::new(Arc::clone(&scene))
///     .with_policy(WeightedFair::new());
/// let alice = server.admit(
///     SessionRequest::new(
///         Box::new(MeshPipeline::default()),
///         CameraPath::orbit(spec.orbit(32, 24), 2),
///     )
///     .weight(3)
///     .label("alice"),
/// );
/// let bob = server.admit(SessionRequest::new(
///     Box::new(MlpPipeline::default()),
///     CameraPath::orbit(spec.orbit(16, 12), 2),
/// ));
/// while let Some(frame) = server.next_frame() {
///     let session = frame.session;
///     server.recycle(session, frame.report.image);
/// }
/// assert_eq!(server.summary().scheduled_frames, 4);
/// let stats = server.session_stats(alice).expect("alice served");
/// assert_eq!(stats.weight, 3);
/// assert_eq!(stats.label.as_deref(), Some("alice"));
/// assert_eq!(server.session_stats(bob).expect("bob served").frames, 2);
/// ```
pub struct RenderServer {
    scene: Arc<BakedScene>,
    accel: Option<Arc<Accelerator>>,
    sessions: Vec<SessionSlot>,
    policy: Box<dyn SchedulePolicy>,
    lookahead: usize,
    lanes_requested: usize,
    lane_pool: Option<LanePool>,
    /// Whether served frames split into a render stage (on `lane_pool`)
    /// and a trace-replay stage (on `sim_pool`), so a lane starts the
    /// next frame's render while the previous frame's replay is still
    /// simulating. Delivery and accounting stay in schedule order, so
    /// outputs are bit-identical with the overlap off.
    overlap: bool,
    /// Replay lanes for the pipelined path; `None` until serving starts
    /// (and always `None` without an accelerator or with overlap off).
    sim_pool: Option<LanePool>,
    /// Schedule slots assigned so far (the next slot's index).
    ticks: u64,
    /// Session / pipeline scheduled at the previous tick.
    last_session: Option<usize>,
    last_pipeline: Option<Pipeline>,
    pending: VecDeque<Pending>,
    delivered: usize,
    admissions: u64,
    closes: u64,
    boundary: BoundaryMeter,
    /// Learned per-pipeline-pair switch cost estimates, fed from the
    /// boundary meter's history at every delivery; `None` until an
    /// accelerator is attached (no boundaries are charged without one).
    switch_costs: Option<SwitchCostModel>,
    total_cycles: u64,
    total_seconds: f64,
    in_frame_reconfigs: u64,
    deadline_misses: u64,
    /// Feasibility knobs for [`RenderServer::try_admit`]; `None` means
    /// `try_admit` admits unconditionally (like `admit`).
    admission: Option<AdmissionControl>,
    /// Mid-serve degradation knobs; `None` disables every degraded mode.
    degrade: Option<DegradePolicy>,
    refusals: u64,
    queued_admissions: u64,
    frames_skipped: u64,
    degraded_frames: u64,
    shed_sessions: u64,
}

impl RenderServer {
    /// Creates a server over `scene` with no sessions yet, scheduling
    /// strict [`RoundRobin`] (the original contract) until
    /// [`RenderServer::with_policy`] says otherwise.
    ///
    /// `scene` accepts an owned [`BakedScene`] or a shared
    /// `Arc<BakedScene>`; either way every session renders the same
    /// instance.
    pub fn new(scene: impl Into<Arc<BakedScene>>) -> Self {
        Self {
            scene: scene.into(),
            accel: None,
            sessions: Vec::new(),
            policy: Box::new(RoundRobin::new()),
            lookahead: DEFAULT_LOOKAHEAD,
            lanes_requested: uni_parallel::worker_count(),
            lane_pool: None,
            overlap: uni_parallel::overlap_enabled(),
            sim_pool: None,
            ticks: 0,
            last_session: None,
            last_pipeline: None,
            pending: VecDeque::new(),
            delivered: 0,
            admissions: 0,
            closes: 0,
            boundary: BoundaryMeter::new(),
            switch_costs: None,
            total_cycles: 0,
            total_seconds: 0.0,
            in_frame_reconfigs: 0,
            deadline_misses: 0,
            admission: None,
            degrade: None,
            refusals: 0,
            queued_admissions: 0,
            frames_skipped: 0,
            degraded_frames: 0,
            shed_sessions: 0,
        }
    }

    /// Additionally traces and simulates every served frame on `accel`
    /// (one device shared by all sessions), enabling the reconfiguration,
    /// deadline, and switch-cost accounting. The server's
    /// [`SwitchCostModel`] is seeded from the device's reconfiguration
    /// window (crossing pipelines presumed to cost one window, staying
    /// presumed free) and then learns per-pair costs from the boundaries
    /// the schedule actually pays.
    pub fn with_accelerator(mut self, accel: Accelerator) -> Self {
        let cfg = accel.config();
        let reconfig_seconds = cfg.cycles_to_seconds(cfg.reconfig_cycles);
        self.switch_costs = Some(SwitchCostModel::seeded(reconfig_seconds));
        self.accel = Some(Arc::new(accel));
        self
    }

    /// The server's renderer-switch cost estimator — the same model
    /// policies see via [`PolicyContext::switch_costs`]. `None` until an
    /// accelerator is attached.
    pub fn switch_costs(&self) -> Option<&SwitchCostModel> {
        self.switch_costs.as_ref()
    }

    /// Replaces the scheduling policy (default: [`RoundRobin`]).
    ///
    /// # Panics
    ///
    /// Panics if called after serving has started — the policy is part
    /// of the deterministic schedule and cannot change mid-stream.
    pub fn with_policy(mut self, policy: impl SchedulePolicy + 'static) -> Self {
        assert!(
            self.ticks == 0,
            "scheduling policy must be set before serving starts"
        );
        self.policy = Box::new(policy);
        self
    }

    /// Overrides the worker-lane count (default:
    /// [`uni_parallel::worker_count`]). Requests are clamped to at least
    /// one lane — `with_lanes(0)` serves inline rather than panicking on
    /// first dispatch. Lane count never affects delivered images or
    /// accounting — only execution overlap.
    ///
    /// # Panics
    ///
    /// Panics if called after serving has started.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        assert!(
            self.lane_pool.is_none(),
            "lane count must be set before serving starts"
        );
        self.lanes_requested = lanes.max(1);
        self
    }

    /// Enables or disables render/replay pipelining (default:
    /// [`uni_parallel::overlap_enabled`] — on unless
    /// `UNI_RENDER_OVERLAP=0`). Only effective with an accelerator
    /// attached; without one there is no replay to overlap with. Never
    /// changes delivered frames or accounting — only execution overlap.
    ///
    /// # Panics
    ///
    /// Panics if called after serving has started.
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        assert!(
            self.lane_pool.is_none(),
            "overlap must be set before serving starts"
        );
        self.overlap = overlap;
        self
    }

    /// Overrides the dispatch lookahead (default [`DEFAULT_LOOKAHEAD`];
    /// clamped to ≥ 1): the most frames the server schedules beyond the
    /// delivered prefix, and therefore how many delivered frames pass
    /// before a mid-serve [`admit`](RenderServer::admit) /
    /// [`close`](RenderServer::close) takes effect.
    ///
    /// The lookahead is part of the *deterministic* schedule contract:
    /// derive it from workload shape if you must, never from thread or
    /// core counts, or churn timing will stop being reproducible.
    ///
    /// # Panics
    ///
    /// Panics if called after serving has started.
    pub fn with_lookahead(mut self, lookahead: usize) -> Self {
        assert!(
            self.ticks == 0,
            "lookahead must be set before serving starts"
        );
        self.lookahead = lookahead.max(1);
        self
    }

    /// Enables deadline-aware admission control: subsequent
    /// [`try_admit`](RenderServer::try_admit) calls predict feasibility
    /// against the live load before scheduling a request. Without this,
    /// `try_admit` admits unconditionally, exactly like
    /// [`admit`](RenderServer::admit). May be set at any time — the
    /// knobs shape only future decisions, never the existing schedule.
    pub fn with_admission_control(mut self, control: AdmissionControl) -> Self {
        self.admission = Some(control);
        self
    }

    /// Enables graceful degradation for overload that develops
    /// mid-serve: resolution scaling, frame skipping, and shedding per
    /// `policy` (see [`DegradePolicy`] for the decision rules and the
    /// determinism argument). Only meaningful with an accelerator
    /// attached — without one no deadline accounting exists to react to.
    ///
    /// # Panics
    ///
    /// Panics if called after serving has started — degraded modes are
    /// part of the deterministic schedule.
    pub fn with_degradation(mut self, policy: DegradePolicy) -> Self {
        assert!(
            self.ticks == 0,
            "degradation policy must be set before serving starts"
        );
        self.degrade = Some(policy);
        self
    }

    /// Registers a camera stream and returns its dense session id.
    ///
    /// Equivalent to `admit(request).id()` — kept for callers of the
    /// pre-handle API. New code should prefer
    /// [`admit`](RenderServer::admit), which returns a typed
    /// [`SessionHandle`].
    pub fn add_session(&mut self, request: SessionRequest) -> usize {
        self.admit(request).id()
    }

    /// Admits a camera stream and returns its [`SessionHandle`]. Legal
    /// at any time, including **mid-serve**.
    ///
    /// Before the first frame is scheduled, admission is immediate. Once
    /// serving has started, the session is *staged*: it joins the
    /// schedule at a deterministic slot — the current delivered-frame
    /// count plus the dispatch window (`min(lookahead,
    /// policy.max_in_flight())`) — and its first scheduled frame is
    /// charged through the boundary meter like any other schedule entry
    /// (entering it from a different pipeline pays one reconfiguration).
    /// Keying activation to *delivered* frames (never to how far lanes
    /// ran ahead) is what keeps mid-serve admission bit-deterministic at
    /// any thread count. If the schedule drains before the activation
    /// slot is reached, staged sessions join at the drain point instead
    /// of being lost.
    pub fn admit(&mut self, request: SessionRequest) -> SessionHandle {
        let id = self.sessions.len();
        let mid_serve = self.ticks > 0;
        let active_from = if mid_serve {
            self.delivered + self.window_limit()
        } else {
            0
        };
        if mid_serve {
            self.admissions += 1;
        }
        let SessionRequest {
            renderer,
            path,
            weight,
            priority,
            deadline_hz,
            label,
        } = request;
        let pipeline = renderer.pipeline();
        let mut stats = SessionStats::new(id, pipeline);
        stats.weight = weight;
        stats.priority = priority;
        stats.deadline_hz = deadline_hz;
        stats.label = label;
        self.sessions.push(SessionSlot {
            len: path.len(),
            state: Arc::new(Mutex::new(SessionState {
                renderer,
                path,
                pool: FramePool::new(),
                replay: ReplayScratch::default(),
            })),
            pipeline,
            scheduled: 0,
            in_flight: false,
            active_from,
            active: !mid_serve,
            closed_from: None,
            closed: false,
            last_scheduled: None,
            period: deadline_hz.map(f64::recip),
            // Up-front sessions count from sim-time 0; mid-serve
            // admissions anchor when their first frame is delivered
            // (see next_frame) — a delivery-order fact, never a
            // dispatch-progress one.
            deadline_epoch: 0.0,
            epoch_anchored: !mid_serve,
            latencies: Vec::new(),
            res_shift: 0,
            staged_shift: None,
            staged_skip: None,
            skips_pending: 0,
            miss_streak: 0,
            meet_streak: 0,
            stats,
        });
        SessionHandle(id)
    }

    /// Admits a camera stream **subject to admission control**: predicts
    /// whether the request is feasible against the live load and returns
    /// a typed [`AdmitDecision`] instead of unconditionally scheduling.
    /// Without [`RenderServer::with_admission_control`] this is exactly
    /// [`admit`](RenderServer::admit) (always `Admitted`).
    ///
    /// The prediction: one scheduling round over the live sessions plus
    /// the candidate costs the sum of per-session mean frame costs
    /// (settled `seconds / frames`; the configured prior where a session
    /// has no history) plus [`SwitchCostModel::round_cost`] of the
    /// round's pipeline sequence. The request is *admitted* when
    /// `headroom × round` fits inside every live deadline period and the
    /// candidate's own; *queued* (staged with a delayed, deterministic
    /// activation slot) when it becomes feasible after the
    /// shortest-remaining live sessions drain and the queue has room;
    /// *refused* (dropped) otherwise. Every input is a schedule-order
    /// fact, so the decision stream is bit-identical at any thread
    /// count.
    pub fn try_admit(&mut self, request: SessionRequest) -> AdmitDecision {
        let Some(control) = self.admission else {
            return AdmitDecision::Admitted(self.admit(request));
        };
        // Live load: sessions that will still demand frames — active or
        // staged, not closed (and not closing), path not exhausted.
        let live: Vec<usize> = self
            .sessions
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.closed && s.closed_from.is_none() && s.scheduled < s.len)
            .map(|(id, _)| id)
            .collect();
        let candidate_pipeline = request.renderer.pipeline();
        let candidate_period = request
            .deadline_hz
            .filter(|hz| hz.is_finite() && *hz > 0.0)
            .map(f64::recip);
        let mean_cost = |id: usize| {
            let stats = &self.sessions[id].stats;
            if stats.frames > 0 {
                stats.seconds / stats.frames as f64
            } else {
                control.frame_cost_prior
            }
        };
        // Predicted slack of the tightest constraint for one round over
        // `ids` + the candidate; `None` when nothing is deadline-bound.
        let round_slack = |ids: &[usize]| -> Option<f64> {
            let mut round: f64 = ids.iter().map(|&id| mean_cost(id)).sum();
            round += control.frame_cost_prior;
            if let Some(model) = &self.switch_costs {
                let mut pipelines: Vec<Pipeline> =
                    ids.iter().map(|&id| self.sessions[id].pipeline).collect();
                pipelines.push(candidate_pipeline);
                round += model.round_cost(&pipelines);
            }
            let tightest = ids
                .iter()
                .filter_map(|&id| self.sessions[id].period)
                .chain(candidate_period)
                .min_by(f64::total_cmp)?;
            Some(tightest - control.headroom * round)
        };
        let slack_now = round_slack(&live);
        if slack_now.is_none_or(|s| s >= 0.0) {
            return AdmitDecision::Admitted(self.admit(request));
        }
        let predicted_slack = slack_now.expect("checked above");
        // Infeasible now. Peel live sessions in ascending remaining
        // frames (ties: ascending id) until the remainder + candidate
        // fits — the drain the candidate must wait for.
        let mut by_drain = live.clone();
        by_drain.sort_by_key(|&id| {
            let s = &self.sessions[id];
            (s.len - s.scheduled + s.skips_pending, id)
        });
        let queued = self
            .sessions
            .iter()
            .filter(|s| !s.active && s.closed_from.is_none() && !s.closed)
            .count();
        for peeled in 1..=by_drain.len() {
            let rest: Vec<usize> = by_drain[peeled..].to_vec();
            if round_slack(&rest).is_some_and(|s| s < 0.0) {
                continue;
            }
            if queued >= control.max_queued {
                break;
            }
            // Feasible once the `peeled` shortest sessions drain. Under
            // round-robin-style service, the last of them drains after
            // roughly Σ min(remaining_s, r_max) frames across the live
            // set — a schedule-order estimate; an earlier real drain
            // activates the session at the drain point instead.
            let r_max = {
                let s = &self.sessions[by_drain[peeled - 1]];
                s.len - s.scheduled
            };
            let drain_frames: usize = live
                .iter()
                .map(|&id| {
                    let s = &self.sessions[id];
                    (s.len - s.scheduled).min(r_max)
                })
                .sum();
            let activates_at = self.delivered + drain_frames.max(self.window_limit());
            let handle = self.admit(request);
            let slot = &mut self.sessions[handle.0];
            slot.active = false;
            slot.active_from = activates_at;
            slot.epoch_anchored = false;
            self.queued_admissions += 1;
            return AdmitDecision::Queued {
                handle,
                activates_at,
            };
        }
        self.refusals += 1;
        AdmitDecision::Refused { predicted_slack }
    }

    /// Closes a session early: no further frames of it are scheduled
    /// once the close takes effect, at the same deterministic slot rule
    /// as [`admit`](RenderServer::admit) (delivered count + dispatch
    /// window). Frames scheduled before that slot are still delivered
    /// and accounted normally.
    ///
    /// Returns `false` — and stages nothing — when the handle is
    /// unknown, the session is already closed (or has a close staged),
    /// or every frame of its path is already scheduled (nothing left to
    /// cancel).
    pub fn close(&mut self, handle: SessionHandle) -> bool {
        let mid_serve = self.ticks > 0;
        let closed_from = if mid_serve {
            self.delivered + self.window_limit()
        } else {
            0
        };
        let Some(slot) = self.sessions.get_mut(handle.0) else {
            return false;
        };
        if slot.closed || slot.closed_from.is_some() || slot.scheduled >= slot.len {
            return false;
        }
        slot.closed_from = Some(closed_from);
        self.closes += 1;
        true
    }

    /// The scene every session shares.
    pub fn scene(&self) -> &BakedScene {
        &self.scene
    }

    /// A shared handle to the scene (no copy).
    pub fn shared_scene(&self) -> Arc<BakedScene> {
        Arc::clone(&self.scene)
    }

    /// Number of admitted sessions (including staged and closed ones).
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Machine-readable name of the active scheduling policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Frames not yet delivered, across all sessions. While a staged
    /// close is pending this is an upper bound (frames it will cancel
    /// are still counted); once applied the count is exact.
    pub fn remaining(&self) -> usize {
        let total: usize = self
            .sessions
            .iter()
            .map(|s| if s.closed { s.scheduled } else { s.len })
            .sum();
        total - self.delivered
    }

    /// Statistics for one session: its delivered share of the schedule
    /// so far. `None` for unknown handles.
    pub fn session_stats(&self, handle: SessionHandle) -> Option<SessionStats> {
        self.sessions
            .get(handle.0)
            .map(|slot| self.slot_stats(slot))
    }

    /// Whether a session's stream is fully settled on this server: every
    /// frame it will ever get here has been delivered (its path ran out,
    /// or a close took effect) and none of its frames is still in
    /// flight. Checked between deliveries this is a pure function of the
    /// delivered schedule — the fleet's migration hand-off polls it, so
    /// the hand-off slot is bit-identical at any thread count. `false`
    /// for unknown handles.
    pub fn session_drained(&self, handle: SessionHandle) -> bool {
        self.sessions
            .get(handle.0)
            .is_some_and(|slot| (slot.closed || slot.scheduled >= slot.len) && !slot.in_flight)
    }

    /// Whether every admitted session is drained and nothing is pending
    /// delivery — this server will never deliver another frame. Unlike
    /// [`RenderServer::remaining`], which over-counts while a staged
    /// close or frame skip is outstanding, this is exact — it is the
    /// scene cache's eviction-safety check.
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty()
            && self
                .sessions
                .iter()
                .all(|slot| (slot.closed || slot.scheduled >= slot.len) && !slot.in_flight)
    }

    /// Returns a delivered frame's buffer to its session's pool, and
    /// reports whether the pool took it. Recycle every frame before
    /// asking for the next one and each session's pool stays at a single
    /// allocation for its whole stream.
    ///
    /// The pool *refuses* buffers that could never be reused — unknown
    /// session ids, sessions whose every frame is already scheduled, and
    /// closed sessions — returning `false` instead of silently crediting
    /// a finished stream's pool (the buffer is dropped). Recycling the
    /// final frame of a drained session therefore returns `false`; that
    /// is harmless and expected.
    pub fn recycle(&mut self, session: usize, image: Image) -> bool {
        let Some(slot) = self.sessions.get_mut(session) else {
            return false;
        };
        if slot.closed || slot.scheduled >= slot.len {
            return false;
        }
        slot.state
            .lock()
            .expect("session state")
            .pool
            .release(image);
        true
    }

    /// Delivers the next frame of the schedule, or `None` once every
    /// session's path is exhausted (staged admissions are activated
    /// rather than abandoned, so `None` really means *nothing left*).
    ///
    /// Rendering (and simulation) of upcoming frames overlaps on the
    /// worker lanes, but delivery and accounting strictly follow the
    /// schedule order, so outputs and summaries are deterministic.
    pub fn next_frame(&mut self) -> Option<ServedFrame> {
        self.fill_lanes();
        let pending = self.pending.pop_front()?;
        let rendered = pending.ticket.wait();
        let session = pending.session;
        self.sessions[session].in_flight = false;
        self.delivered += 1;

        let mut boundary = false;
        let mut deadline_slack = None;
        if let Some(accel) = &self.accel {
            let (first, last) = match &rendered.trace {
                Some(trace) => (trace.first_op(), trace.last_op()),
                None => (None, None),
            };
            let slot = &mut self.sessions[session];
            // A staged mid-serve session anchors its deadline clock the
            // moment its first frame starts service: the delivered
            // sim-time *before* this frame is charged. Delivery order is
            // deterministic, so the epoch is too — unlike the dispatch
            // moment of the activation slot, which depends on how far
            // lanes ran ahead.
            if !slot.epoch_anchored {
                slot.deadline_epoch = self.total_seconds;
                slot.epoch_anchored = true;
            }
            let avoided_before = self.boundary.avoided();
            let cfg = accel.config();
            let reconfig_seconds = cfg.cycles_to_seconds(cfg.reconfig_cycles);
            // Sim-seconds this frame adds to the schedule: boundary
            // reconfiguration (if paid) plus simulated execution — the
            // frame's sim latency.
            let mut frame_seconds = 0.0;
            // Pipeline-aware boundary metering: crossing renderers always
            // reconfigures (the device swaps pipeline configuration);
            // same-renderer boundaries pay only when the micro-operator
            // families differ. Coalescing policies amortize the former.
            if self.boundary.observe_for(slot.pipeline, first, last) {
                // The schedule pays the switch into this frame; charge it
                // to the aggregate and attribute it to the entering
                // session.
                boundary = true;
                let cycles = cfg.reconfig_cycles;
                self.total_cycles += cycles;
                self.total_seconds += reconfig_seconds;
                frame_seconds += reconfig_seconds;
                slot.stats.boundary_reconfigurations += 1;
                slot.stats.cycles += cycles;
                slot.stats.seconds += reconfig_seconds;
            } else if self.boundary.avoided() > avoided_before {
                slot.stats.boundary_switches_avoided += 1;
            }
            // Every crossed boundary — paid or amortized — teaches the
            // switch-cost model what its ordered pipeline pair costs.
            if let (Some(event), Some(model)) =
                (self.boundary.last_boundary(), self.switch_costs.as_mut())
            {
                let cost = if event.switched {
                    reconfig_seconds
                } else {
                    0.0
                };
                model.observe(event.from, event.to, cost);
            }
            if let Some(sim) = &rendered.sim {
                self.in_frame_reconfigs += sim.reconfigurations;
                self.total_cycles += sim.cycles;
                self.total_seconds += sim.seconds;
                frame_seconds += sim.seconds;
                slot.stats.in_frame_reconfigurations += sim.reconfigurations;
                slot.stats.cycles += sim.cycles;
                slot.stats.seconds += sim.seconds;
            }
            slot.latencies.push(frame_seconds);
            // Deadline accounting in schedule order: the frame completes
            // at the schedule's cumulative sim-time, and its slack is
            // measured against the session's periodic due time. Both are
            // delivery-order facts — lane timing never enters.
            if let Some(due) = slot.next_deadline(pending.index, slot.deadline_epoch) {
                let slack = due - self.total_seconds;
                deadline_slack = Some(slack);
                if slack < 0.0 {
                    slot.stats.deadline_misses += 1;
                    self.deadline_misses += 1;
                }
                slot.stats.worst_slack = Some(match slot.stats.worst_slack {
                    Some(worst) => worst.min(slack),
                    None => slack,
                });
            }
        }
        {
            let slot = &mut self.sessions[session];
            slot.stats.frames += 1;
            if pending.res_shift > 0 {
                slot.stats.degraded_frames += 1;
                self.degraded_frames += 1;
            }
        }
        if let Some(slack) = deadline_slack {
            self.degrade_on_delivery(session, slack);
        }

        Some(ServedFrame {
            session,
            handle: SessionHandle(session),
            report: FrameReport {
                index: pending.index,
                camera: rendered.camera,
                image: rendered.image,
                trace: rendered.trace,
                sim: rendered.sim,
                boundary_reconfiguration: boundary,
            },
            deadline_slack,
            resolution_shift: pending.res_shift,
        })
    }

    /// The mid-serve degradation controller, run once per delivered
    /// deadline-bound frame (a schedule-order moment). Reads only the
    /// delivered slack and the session's streak counters; every reaction
    /// is *staged* under the churn slot rule (`delivered + dispatch
    /// window`), so degraded schedules remain bit-identical at any
    /// thread or lane count. No-op without
    /// [`RenderServer::with_degradation`].
    fn degrade_on_delivery(&mut self, session: usize, slack: f64) {
        let Some(policy) = self.degrade else {
            return;
        };
        let activates_at = self.delivered + self.window_limit();
        let mut shed_now = false;
        {
            let slot = &mut self.sessions[session];
            if slack < 0.0 {
                slot.miss_streak += 1;
                slot.meet_streak = 0;
            } else {
                slot.meet_streak += 1;
                slot.miss_streak = 0;
            }
            // The shift decisions compare against — the staged value
            // when a change is already in flight, so streaks never
            // double-stage.
            let effective_shift = slot.staged_shift.map_or(slot.res_shift, |(_, s)| s);
            if slack < 0.0 {
                // One more halving after a sustained miss streak.
                if slot.miss_streak >= policy.degrade_after_misses
                    && effective_shift < policy.max_resolution_shift
                    && slot.staged_shift.is_none()
                {
                    slot.staged_shift = Some((activates_at, effective_shift + 1));
                    slot.miss_streak = 0;
                }
                // A delivery multiple periods late stages one explicit
                // skip: dropping the next frame advances the deadline
                // ladder a full period for zero rendering cost.
                if let Some(period) = slot.period {
                    if policy.skip_when_late_periods.is_finite()
                        && slack < -(policy.skip_when_late_periods * period)
                        && slot.staged_skip.is_none()
                        && slot.skips_pending == 0
                    {
                        slot.staged_skip = Some((activates_at, 1));
                    }
                }
                // Still drowning at maximum degradation: shed a victim.
                if policy.shed_after_misses > 0
                    && effective_shift >= policy.max_resolution_shift
                    && slot.miss_streak >= policy.shed_after_misses
                {
                    slot.miss_streak = 0;
                    shed_now = true;
                }
            } else if slot.meet_streak >= policy.recover_after_meets
                && effective_shift > 0
                && slot.staged_shift.is_none()
            {
                // Sustained recovery: restore one halving.
                slot.staged_shift = Some((activates_at, effective_shift - 1));
                slot.meet_streak = 0;
            }
        }
        if shed_now {
            // The cheapest victim: lowest priority, then lowest weight,
            // then the youngest session (highest id). Marked shed and
            // staged exactly like a caller close, but not counted in
            // `closes` — the server, not the caller, hung up. Never
            // fires with fewer than two live sessions: the last stream
            // degrades but keeps serving rather than self-destructing.
            let live: Vec<usize> = self
                .sessions
                .iter()
                .enumerate()
                .filter(|(_, s)| {
                    s.active && !s.closed && s.closed_from.is_none() && s.scheduled < s.len
                })
                .map(|(id, _)| id)
                .collect();
            if live.len() >= 2 {
                let victim = live
                    .into_iter()
                    .min_by_key(|&id| {
                        let s = &self.sessions[id];
                        (s.stats.priority, s.stats.weight, std::cmp::Reverse(id))
                    })
                    .expect("nonempty");
                let slot = &mut self.sessions[victim];
                slot.closed_from = Some(activates_at);
                slot.stats.shed = true;
                self.shed_sessions += 1;
            }
        }
    }

    /// Serves every remaining frame, recycling each buffer internally,
    /// and returns the final summary. The droppable-output path for
    /// benchmarks and accounting runs.
    pub fn run(&mut self) -> ServerSummary {
        while let Some(frame) = self.next_frame() {
            self.recycle(frame.session, frame.report.image);
        }
        self.summary()
    }

    /// Statistics over everything delivered so far: per-session stats in
    /// session-id order plus schedule-level aggregates (always
    /// [consistent](ServerSummary::is_consistent)), the policy name, and
    /// the mid-serve admission / close event counts.
    pub fn summary(&self) -> ServerSummary {
        let per_session: Vec<SessionStats> = self
            .sessions
            .iter()
            .map(|slot| self.slot_stats(slot))
            .collect();
        ServerSummary {
            per_session,
            policy: self.policy.name().to_string(),
            admissions: self.admissions,
            closes: self.closes,
            refusals: self.refusals,
            queued_admissions: self.queued_admissions,
            frames_skipped: self.frames_skipped,
            degraded_frames: self.degraded_frames,
            shed_sessions: self.shed_sessions,
            deadline_misses: self.deadline_misses,
            scheduled_frames: self.delivered,
            total_cycles: self.total_cycles,
            total_seconds: self.total_seconds,
            in_frame_reconfigurations: self.in_frame_reconfigs,
            boundary_reconfigurations: self.boundary.switches(),
            boundary_switches_avoided: self.boundary.avoided(),
        }
    }

    /// One slot's stats, completed with the pool's allocation counter
    /// and the latency percentiles over its delivered frames.
    fn slot_stats(&self, slot: &SessionSlot) -> SessionStats {
        let mut stats = slot.stats.clone();
        stats.framebuffer_allocations =
            slot.state.lock().expect("session state").pool.allocations();
        stats.resolution_shift = slot.staged_shift.map_or(slot.res_shift, |(_, s)| s);
        if !slot.latencies.is_empty() {
            let mut sorted = slot.latencies.clone();
            sorted.sort_by(f64::total_cmp);
            stats.latency_p50 = percentile(&sorted, 50.0);
            stats.latency_p99 = percentile(&sorted, 99.0);
        }
        stats
    }

    /// The lane-invariant dispatch bound: how many frames may be
    /// scheduled beyond the delivered prefix, and how many delivered
    /// frames pass before staged churn activates. Never derived from the
    /// lane count — that is the whole point.
    fn window_limit(&self) -> usize {
        self.lookahead.min(self.policy.max_in_flight()).max(1)
    }

    /// Activates staged admissions and applies staged closes whose slot
    /// has been reached; returns whether anything changed. The drain
    /// fast-forward passes `usize::MAX` to apply everything staged
    /// immediately (the drain point is itself schedule-determined, so
    /// that stays deterministic).
    fn apply_staged(&mut self, slot_index: usize) -> bool {
        let mut changed = false;
        for slot in &mut self.sessions {
            if !slot.active && slot.active_from <= slot_index {
                slot.active = true;
                changed = true;
            }
            if let Some(at) = slot.closed_from {
                if !slot.closed && at <= slot_index {
                    slot.closed = true;
                    if slot.scheduled < slot.len {
                        slot.stats.closed_early = true;
                    }
                    changed = true;
                }
            }
            // Staged degradation follows the same slot rule as churn:
            // the shift a given schedule entry renders at — and the
            // point a skip drops frames at — is a function of delivered
            // counts and ticks, never of lane progress.
            if let Some((at, shift)) = slot.staged_shift {
                if at <= slot_index {
                    slot.res_shift = shift;
                    slot.staged_shift = None;
                    changed = true;
                }
            }
            if let Some((at, skips)) = slot.staged_skip {
                if at <= slot_index {
                    slot.skips_pending += skips;
                    slot.staged_skip = None;
                    changed = true;
                }
            }
        }
        changed
    }

    /// Snapshot of every schedulable session, in id order — what the
    /// policy decides over.
    fn views(&self) -> Vec<SessionView> {
        let now = self.total_seconds;
        self.sessions
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.schedulable())
            .map(|(id, slot)| {
                let deadline = slot.next_deadline(slot.scheduled, now);
                SessionView {
                    session: id,
                    pipeline: slot.pipeline,
                    remaining: slot.len - slot.scheduled,
                    weight: slot.stats.weight,
                    priority: slot.stats.priority,
                    delivered: slot.stats.frames,
                    sim_seconds: slot.stats.seconds,
                    deadline,
                    slack: deadline.map(|d| d - now),
                    last_scheduled: slot.last_scheduled,
                }
            })
            .collect()
    }

    /// Dispatches upcoming schedule entries to worker lanes until the
    /// dispatch window is full, the schedule is exhausted, or the policy
    /// picks a session whose previous frame is still undelivered (the
    /// schedule never skips ahead — determinism over throughput).
    fn fill_lanes(&mut self) {
        if self.lane_pool.is_none() {
            self.lane_pool = Some(LanePool::new(self.lanes_requested));
            if self.overlap && self.accel.is_some() {
                // `spawn`, not `new`: even a one-lane server overlaps —
                // the render runs inline (or on its lane) while the
                // replay simulates on its own thread.
                self.sim_pool = Some(LanePool::spawn(self.lanes_requested));
            }
        }
        let window = {
            let pool = self.lane_pool.as_ref().expect("lane pool created above");
            pool.lanes().min(self.window_limit())
        };
        while self.pending.len() < window {
            let slot_index = self.ticks as usize;
            self.apply_staged(slot_index);
            self.consume_skips();
            let views = self.views();
            let pick = if views.is_empty() {
                None
            } else {
                let ctx = PolicyContext {
                    tick: self.ticks,
                    last_session: self.last_session,
                    last_pipeline: self.last_pipeline,
                    now_seconds: self.total_seconds,
                    switch_costs: self.switch_costs.as_ref(),
                    load: self.load_view(),
                };
                self.policy.pick(&ctx, &views)
            };
            let Some(sid) = pick else {
                // Nothing runnable. If the schedule has drained while
                // churn is still staged, bring it in now instead of
                // ending the stream with sessions stranded.
                if self.pending.is_empty() && self.apply_staged(usize::MAX) {
                    continue;
                }
                break;
            };
            let valid = views.iter().any(|v| v.session == sid);
            debug_assert!(valid, "policy picked an unschedulable session {sid}");
            if !valid {
                break;
            }
            if self.sessions[sid].in_flight {
                // The policy insists on a session mid-delivery: wait for
                // it rather than reordering the schedule.
                break;
            }

            let tick = self.ticks;
            self.ticks += 1;
            let slot = &mut self.sessions[sid];
            let index = slot.scheduled;
            slot.scheduled += 1;
            slot.in_flight = true;
            slot.last_scheduled = Some(tick);
            self.last_session = Some(sid);
            self.last_pipeline = Some(slot.pipeline);

            // The shift this schedule entry renders at is the slot's
            // current (staged-rule-applied) value — captured here so the
            // lane closure is a pure function of the dispatch decision.
            let res_shift = slot.res_shift;
            let state = Arc::clone(&slot.state);
            let scene = Arc::clone(&self.scene);
            let accel = self.accel.clone();
            let pool = self.lane_pool.as_ref().expect("lane pool created above");
            let ticket = match (accel, &self.sim_pool) {
                (Some(accel), Some(sim_pool)) => {
                    // Pipelined: the render lane hands off to the replay
                    // lane and is free for the next frame immediately.
                    // Both stages key their lane off the same tick, so
                    // per-lane FIFO order is still the schedule order.
                    let render_state = Arc::clone(&state);
                    let staged: Ticket<Staged> = pool.submit_at(tick, move || {
                        let mut guard = render_state.lock().expect("session state");
                        let state = &mut *guard;
                        let camera = degraded_camera(state.path.camera(index), res_shift);
                        let mut image = state.pool.acquire_for(camera.width, camera.height);
                        state.renderer.render_into(&scene, &camera, &mut image);
                        let trace = state.renderer.trace(&scene, &camera);
                        Staged {
                            camera,
                            image,
                            trace,
                        }
                    });
                    sim_pool.submit_at(tick, move || {
                        let staged = staged.wait();
                        // The state mutex is uncontended: at most one
                        // frame of a session is in flight, and this
                        // frame's render stage already released it.
                        let sim = {
                            let mut guard = state.lock().expect("session state");
                            accel.simulate_with_scratch(&staged.trace, &mut guard.replay)
                        };
                        Rendered {
                            camera: staged.camera,
                            image: staged.image,
                            trace: Some(staged.trace),
                            sim: Some(sim),
                        }
                    })
                }
                (accel, _) => pool.submit_at(tick, move || {
                    let mut guard = state.lock().expect("session state");
                    let state = &mut *guard;
                    let camera = degraded_camera(state.path.camera(index), res_shift);
                    let mut image = state.pool.acquire_for(camera.width, camera.height);
                    state.renderer.render_into(&scene, &camera, &mut image);
                    let (trace, sim) = match &accel {
                        Some(accel) => {
                            let trace = state.renderer.trace(&scene, &camera);
                            let sim = accel.simulate_with_scratch(&trace, &mut state.replay);
                            (Some(trace), Some(sim))
                        }
                        None => (None, None),
                    };
                    Rendered {
                        camera,
                        image,
                        trace,
                        sim,
                    }
                }),
            };
            self.pending.push_back(Pending {
                session: sid,
                index,
                res_shift,
                ticket,
            });
        }
    }

    /// Drops every activated-but-unconsumed frame skip: the session's
    /// next undispatched frames advance past without rendering, in
    /// session-id order. Runs inside the dispatch loop right after
    /// [`RenderServer::apply_staged`], so skips land at the same tick at
    /// any lane count. Skipped frames are counted, never delivered —
    /// they leave index gaps in the served stream and advance the
    /// session's deadline ladder.
    fn consume_skips(&mut self) {
        for slot in &mut self.sessions {
            if slot.skips_pending == 0 {
                continue;
            }
            if !slot.active || slot.closed {
                slot.skips_pending = 0;
                continue;
            }
            let skipped = slot.skips_pending.min(slot.len - slot.scheduled);
            slot.skips_pending = 0;
            slot.scheduled += skipped;
            slot.stats.frames_skipped += skipped as u64;
            self.frames_skipped += skipped as u64;
        }
    }

    /// Aggregate load view over the currently schedulable sessions —
    /// what policies observe as [`PolicyContext::load`], computed from
    /// settled accounting and the switch-cost model only.
    fn load_view(&self) -> LoadView {
        let prior = self.admission.map_or(0.0, |c| c.frame_cost_prior);
        let mut view = LoadView::default();
        let mut pipelines: Vec<Pipeline> = Vec::new();
        for slot in &self.sessions {
            if !slot.schedulable() {
                continue;
            }
            view.live_sessions += 1;
            view.predicted_round_seconds += if slot.stats.frames > 0 {
                slot.stats.seconds / slot.stats.frames as f64
            } else {
                prior
            };
            pipelines.push(slot.pipeline);
            if let Some(p) = slot.period {
                view.deadline_bound += 1;
                view.min_period = Some(match view.min_period {
                    Some(m) => m.min(p),
                    None => p,
                });
            }
        }
        if let Some(model) = &self.switch_costs {
            view.predicted_round_seconds += model.round_cost(&pipelines);
        }
        view
    }
}

/// `camera` with each image dimension halved `shift` times (floor of 1
/// pixel). View and projection are untouched: the frustum is identical,
/// only the sampling density drops — which is what makes the degraded
/// frame a cheaper rendering of the *same* view.
fn degraded_camera(mut camera: Camera, shift: u32) -> Camera {
    if shift > 0 {
        camera.width = (camera.width >> shift).max(1);
        camera.height = (camera.height >> shift).max(1);
    }
    camera
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{Priority, WeightedFair};
    use uni_core::AcceleratorConfig;
    use uni_renderers::{MeshPipeline, MlpPipeline};
    use uni_scene::SceneSpec;

    fn scene_and_spec() -> (Arc<BakedScene>, SceneSpec) {
        static SCENE: std::sync::OnceLock<Arc<BakedScene>> = std::sync::OnceLock::new();
        let spec = SceneSpec::demo("server-test", 11).with_detail(0.03);
        let scene = SCENE.get_or_init(|| Arc::new(spec.bake()));
        (Arc::clone(scene), spec)
    }

    #[test]
    fn delivery_follows_round_robin_until_sessions_drain() {
        let (scene, spec) = scene_and_spec();
        let mut server = RenderServer::new(Arc::clone(&scene)).with_lanes(2);
        // Session 0: 3 frames; session 1: 1 frame — it drops out of the
        // cycle after its only frame.
        server.add_session(SessionRequest::new(
            Box::new(MeshPipeline::default()),
            CameraPath::orbit(spec.orbit(24, 16), 3),
        ));
        server.add_session(SessionRequest::new(
            Box::new(MlpPipeline::default()),
            CameraPath::orbit(spec.orbit(16, 12), 1),
        ));
        let mut order = Vec::new();
        while let Some(frame) = server.next_frame() {
            order.push((frame.session, frame.report.index));
            server.recycle(frame.session, frame.report.image);
        }
        assert_eq!(order, vec![(0, 0), (1, 0), (0, 1), (0, 2)]);
        assert_eq!(server.remaining(), 0);
        assert!(server.next_frame().is_none());
    }

    #[test]
    fn recycled_sessions_keep_one_framebuffer_each() {
        let (scene, spec) = scene_and_spec();
        let mut server = RenderServer::new(scene)
            .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
            .with_lanes(2);
        for _ in 0..3 {
            server.add_session(SessionRequest::new(
                Box::new(MeshPipeline::default()),
                CameraPath::orbit(spec.orbit(20, 14), 3),
            ));
        }
        let summary = server.run();
        assert_eq!(summary.scheduled_frames, 9);
        assert!(summary.is_consistent());
        assert_eq!(summary.policy, "round_robin");
        for stats in &summary.per_session {
            assert_eq!(stats.frames, 3);
            assert_eq!(
                stats.framebuffer_allocations, 1,
                "session {} allocated once for its whole stream",
                stats.session
            );
        }
        assert!(summary.total_cycles > 0);
        assert!(summary.mean_fps() > 0.0);
    }

    #[test]
    fn lane_count_does_not_change_the_summary() {
        let (scene, spec) = scene_and_spec();
        let serve = |lanes: usize| {
            let mut server = RenderServer::new(Arc::clone(&scene))
                .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
                .with_lanes(lanes);
            server.add_session(SessionRequest::new(
                Box::new(MeshPipeline::default()),
                CameraPath::orbit(spec.orbit(20, 14), 2),
            ));
            server.add_session(SessionRequest::new(
                Box::new(MlpPipeline::default()),
                CameraPath::orbit(spec.orbit(16, 12), 2),
            ));
            server.run()
        };
        assert_eq!(serve(1), serve(4));
    }

    #[test]
    fn zero_lane_request_serves_inline() {
        // Regression: `with_lanes(0)` must clamp to one inline lane, not
        // build an empty pool that panics on first dispatch.
        let (scene, spec) = scene_and_spec();
        let mut server = RenderServer::new(scene).with_lanes(0);
        server.add_session(SessionRequest::new(
            Box::new(MeshPipeline::default()),
            CameraPath::orbit(spec.orbit(16, 12), 2),
        ));
        let summary = server.run();
        assert_eq!(summary.scheduled_frames, 2);
    }

    #[test]
    fn recycle_reports_whether_the_pool_took_the_buffer() {
        let (scene, spec) = scene_and_spec();
        let mut server = RenderServer::new(scene).with_lanes(1);
        server.add_session(SessionRequest::new(
            Box::new(MeshPipeline::default()),
            CameraPath::orbit(spec.orbit(16, 12), 2),
        ));
        let first = server.next_frame().expect("frame 0");
        assert!(
            server.recycle(first.session, first.report.image),
            "mid-stream recycle is accepted"
        );
        let last = server.next_frame().expect("frame 1");
        assert!(
            !server.recycle(last.session, last.report.image),
            "a finished session's pool refuses the buffer"
        );
        // Out-of-range ids are refused, not a panic.
        assert!(!server.recycle(99, Image::empty()));
    }

    #[test]
    fn mid_serve_admission_joins_at_a_deterministic_slot() {
        let (scene, spec) = scene_and_spec();
        let serve = |lanes: usize| {
            let mut server = RenderServer::new(Arc::clone(&scene))
                .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
                .with_lanes(lanes)
                .with_lookahead(3);
            server.add_session(SessionRequest::new(
                Box::new(MeshPipeline::default()),
                CameraPath::orbit(spec.orbit(20, 14), 4),
            ));
            server.add_session(SessionRequest::new(
                Box::new(MlpPipeline::default()),
                CameraPath::orbit(spec.orbit(16, 12), 4),
            ));
            let mut order = Vec::new();
            let mut late = None;
            while let Some(frame) = server.next_frame() {
                order.push((frame.session, frame.report.index));
                server.recycle(frame.session, frame.report.image);
                if order.len() == 2 {
                    late = Some(
                        server.admit(
                            SessionRequest::new(
                                Box::new(MeshPipeline::default()),
                                CameraPath::orbit(spec.orbit(16, 12), 2),
                            )
                            .label("late"),
                        ),
                    );
                }
            }
            let late = late.expect("admitted");
            let stats = server.session_stats(late).expect("late session stats");
            assert_eq!(stats.frames, 2, "staged admission is served, not lost");
            assert_eq!(stats.label.as_deref(), Some("late"));
            let summary = server.summary();
            assert_eq!(summary.admissions, 1);
            assert!(summary.is_consistent());
            (order, summary)
        };
        assert_eq!(serve(1), serve(4), "churn timing is lane-invariant");
    }

    #[test]
    fn close_cancels_unscheduled_frames_only() {
        let (scene, spec) = scene_and_spec();
        let mut server = RenderServer::new(Arc::clone(&scene))
            .with_lanes(1)
            .with_lookahead(2);
        let victim = server.admit(SessionRequest::new(
            Box::new(MeshPipeline::default()),
            CameraPath::orbit(spec.orbit(16, 12), 12),
        ));
        let other = server.admit(SessionRequest::new(
            Box::new(MlpPipeline::default()),
            CameraPath::orbit(spec.orbit(16, 12), 3),
        ));
        let first = server.next_frame().expect("frame");
        server.recycle(first.session, first.report.image);
        assert!(server.close(victim), "open session accepts a close");
        assert!(!server.close(victim), "double close is refused");
        assert!(!server.close(SessionHandle(42)), "unknown handle refused");
        let mut delivered = [0usize; 2];
        while let Some(frame) = server.next_frame() {
            delivered[frame.session] += 1;
            server.recycle(frame.session, frame.report.image);
        }
        let victim_stats = server.session_stats(victim).expect("victim stats");
        assert!(victim_stats.closed_early);
        assert!(
            victim_stats.frames < 12,
            "close cancelled the tail of the path"
        );
        assert_eq!(server.session_stats(other).expect("other").frames, 3);
        assert_eq!(server.summary().closes, 1);
        assert_eq!(server.remaining(), 0);
    }

    #[test]
    fn try_admit_without_control_always_admits() {
        let (scene, spec) = scene_and_spec();
        let mut server = RenderServer::new(scene).with_lanes(1);
        let decision = server.try_admit(SessionRequest::new(
            Box::new(MeshPipeline::default()),
            CameraPath::orbit(spec.orbit(16, 12), 2),
        ));
        assert!(matches!(decision, AdmitDecision::Admitted(_)));
        assert_eq!(server.summary().refusals, 0);
    }

    #[test]
    fn try_admit_predicts_feasibility_from_priors_and_periods() {
        let (scene, spec) = scene_and_spec();
        let mut server = RenderServer::new(scene)
            .with_lanes(1)
            .with_admission_control(AdmissionControl::new().frame_cost_prior(0.1));
        // One best-effort session in the mix: a round over it plus any
        // candidate is predicted at 2 × 0.1 s.
        server.admit(SessionRequest::new(
            Box::new(MeshPipeline::default()),
            CameraPath::orbit(spec.orbit(16, 12), 3),
        ));
        // Plenty of slack: period 0.25 s ≥ 0.2 s round.
        let roomy = server.try_admit(
            SessionRequest::new(
                Box::new(MlpPipeline::default()),
                CameraPath::orbit(spec.orbit(16, 12), 2),
            )
            .deadline_hz(4.0),
        );
        let AdmitDecision::Admitted(roomy) = roomy else {
            panic!("feasible request admitted, got {roomy:?}");
        };
        // Infeasible now (0.15 < 0.3 round over three sessions) but
        // feasible once the two live sessions drain: queued.
        let tight = server.try_admit(
            SessionRequest::new(
                Box::new(MeshPipeline::default()),
                CameraPath::orbit(spec.orbit(16, 12), 2),
            )
            .deadline_hz(1.0 / 0.15),
        );
        let AdmitDecision::Queued { handle, .. } = tight else {
            panic!("drainable overload queues, got {tight:?}");
        };
        // Hopeless even alone (0.05 < 0.1 prior): refused, queue or not.
        let hopeless = server.try_admit(
            SessionRequest::new(
                Box::new(MeshPipeline::default()),
                CameraPath::orbit(spec.orbit(16, 12), 2),
            )
            .deadline_hz(20.0),
        );
        let AdmitDecision::Refused { predicted_slack } = hopeless else {
            panic!("infeasible request refused, got {hopeless:?}");
        };
        assert!(predicted_slack < 0.0, "refusal reports the deficit");
        assert!(hopeless.handle().is_none());

        // Every admitted-or-queued stream is served to completion.
        let summary = server.run();
        assert!(summary.is_consistent());
        assert_eq!(summary.refusals, 1);
        assert_eq!(summary.queued_admissions, 1);
        assert_eq!(summary.scheduled_frames, 7, "3 + 2 + 2 frames served");
        assert_eq!(server.session_stats(roomy).expect("roomy").frames, 2);
        assert_eq!(server.session_stats(handle).expect("queued").frames, 2);
    }

    #[test]
    fn degradation_scales_resolution_and_skips_under_hopeless_deadlines() {
        let (scene, spec) = scene_and_spec();
        let mut server = RenderServer::new(scene)
            .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
            .with_lanes(1)
            .with_lookahead(1)
            .with_degradation(
                DegradePolicy::new()
                    .degrade_after_misses(1)
                    .skip_when_late_periods(0.5)
                    .shed_after_misses(0),
            );
        // A deadline no schedule can hold: every delivery misses, so the
        // controller must walk the session down to max degradation and
        // start skipping.
        let handle = server.admit(
            SessionRequest::new(
                Box::new(MeshPipeline::default()),
                CameraPath::orbit(spec.orbit(32, 24), 10),
            )
            .deadline_hz(1.0e7),
        );
        let mut shifts = Vec::new();
        let mut indices = Vec::new();
        while let Some(frame) = server.next_frame() {
            shifts.push(frame.resolution_shift);
            indices.push(frame.report.index);
            server.recycle(frame.session, frame.report.image);
        }
        let stats = server.session_stats(handle).expect("stats");
        assert!(stats.degraded_frames > 0, "resolution degradation engaged");
        assert!(stats.frames_skipped > 0, "skipping engaged");
        assert_eq!(
            stats.resolution_shift, 2,
            "walked down to the default max shift"
        );
        assert_eq!(shifts[0], 0, "first frame rendered at native resolution");
        assert_eq!(*shifts.last().expect("frames"), 2);
        assert!(
            indices.windows(2).any(|w| w[1] > w[0] + 1),
            "skips leave index gaps in the served stream: {indices:?}"
        );
        assert_eq!(
            stats.frames as u64 + stats.frames_skipped,
            10,
            "every path frame is either delivered or explicitly skipped"
        );
        let summary = server.summary();
        assert!(summary.is_consistent());
        assert_eq!(summary.degraded_frames, stats.degraded_frames);
        assert_eq!(summary.frames_skipped, stats.frames_skipped);
    }

    #[test]
    fn shedding_closes_the_lowest_priority_session_without_counting_a_close() {
        let (scene, spec) = scene_and_spec();
        let mut server = RenderServer::new(scene)
            .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
            .with_lanes(1)
            .with_lookahead(1)
            .with_degradation(
                DegradePolicy::new()
                    .max_resolution_shift(0)
                    .skip_when_late_periods(f64::INFINITY)
                    .shed_after_misses(2),
            );
        let bound = server.admit(
            SessionRequest::new(
                Box::new(MeshPipeline::default()),
                CameraPath::orbit(spec.orbit(24, 16), 8),
            )
            .priority(5)
            .deadline_hz(1.0e7),
        );
        let victim = server.admit(
            SessionRequest::new(
                Box::new(MlpPipeline::default()),
                CameraPath::orbit(spec.orbit(16, 12), 8),
            )
            .priority(0),
        );
        let summary = server.run();
        assert!(summary.is_consistent());
        assert_eq!(summary.shed_sessions, 1);
        assert_eq!(summary.closes, 0, "shedding is not a caller close");
        let victim_stats = server.session_stats(victim).expect("victim");
        assert!(victim_stats.shed, "lowest-priority session was shed");
        assert!(victim_stats.closed_early);
        assert!(victim_stats.frames < 8, "its tail was cancelled");
        let bound_stats = server.session_stats(bound).expect("bound");
        assert!(!bound_stats.shed);
        assert_eq!(bound_stats.frames, 8, "the deadline session kept serving");
    }

    #[test]
    fn weighted_fair_and_priority_policies_report_their_names() {
        let (scene, spec) = scene_and_spec();
        let serve = |policy_server: RenderServer| {
            let mut server = policy_server;
            server.add_session(
                SessionRequest::new(
                    Box::new(MeshPipeline::default()),
                    CameraPath::orbit(spec.orbit(16, 12), 2),
                )
                .weight(2)
                .priority(3),
            );
            server.run()
        };
        let wf = serve(
            RenderServer::new(Arc::clone(&scene))
                .with_policy(WeightedFair::new())
                .with_lanes(1),
        );
        assert_eq!(wf.policy, "weighted_fair");
        assert_eq!(wf.per_session[0].weight, 2);
        assert_eq!(wf.per_session[0].priority, 3);
        let pr = serve(
            RenderServer::new(Arc::clone(&scene))
                .with_policy(Priority::new())
                .with_lanes(1),
        );
        assert_eq!(pr.policy, "priority");
        assert_eq!(pr.scheduled_frames, 2);
    }
}
