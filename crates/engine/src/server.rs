//! Multi-session serving: many camera streams sharing one baked scene
//! and one accelerator.
//!
//! A [`RenderServer`] is the serving analogue of the paper's premise —
//! one reconfigurable accelerator in front of *diverse* renderers. It
//! owns a single immutable [`BakedScene`] behind an [`Arc`] (no
//! per-session copies), accepts any number of [`SessionRequest`]s (each
//! its own camera path, resolution, and pipeline — pipelines mix freely
//! across sessions), and schedules their frames **round-robin** across a
//! persistent pool of worker lanes ([`uni_parallel::LanePool`]). Each
//! session keeps its own [`FramePool`], [`ReplayScratch`], and share of
//! the reconfiguration accounting.
//!
//! Two properties are part of the public contract:
//!
//! 1. **Deterministic schedule.** Frames are delivered in strict
//!    round-robin session order (session 0 frame 0, session 1 frame 0,
//!    …, session 0 frame 1, …; exhausted sessions drop out of the
//!    cycle). Lanes only overlap *execution*; delivery and accounting
//!    follow the schedule, so results are independent of lane timing
//!    and every served frame is **bit-identical** to the same frame
//!    rendered by a standalone [`crate::RenderSession`].
//! 2. **Cross-session switching is charged.** The accelerator is one
//!    device: whenever two consecutively *scheduled* frames end and
//!    start in different micro-operator families — typically because
//!    neighbouring sessions run different pipelines — the schedule pays
//!    one reconfiguration ([`BoundaryMeter`]). That is exactly the
//!    cross-renderer switching cost the paper models, now visible as a
//!    serving-mix property in [`ServerSummary`].

use crate::path::CameraPath;
use crate::pool::FramePool;
use crate::session::FrameReport;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use uni_core::{Accelerator, ReplayScratch, SimReport};
use uni_geometry::{Camera, Image};
use uni_microops::{BoundaryMeter, ServerSummary, SessionStats, Trace};
use uni_parallel::{LanePool, Ticket};
use uni_renderers::Renderer;
use uni_scene::BakedScene;

/// One camera stream a [`RenderServer`] should serve: a renderer
/// (pipeline choice) plus a camera path (trajectory *and* resolution).
pub struct SessionRequest {
    /// The pipeline rendering this stream. `Send` because frames execute
    /// on worker lanes.
    pub renderer: Box<dyn Renderer + Send>,
    /// The frames to serve, in order.
    pub path: CameraPath,
}

impl SessionRequest {
    /// Bundles a renderer and a path into a request.
    pub fn new(renderer: Box<dyn Renderer + Send>, path: CameraPath) -> Self {
        Self { renderer, path }
    }
}

/// One delivered frame of a served schedule.
#[derive(Debug)]
pub struct ServedFrame {
    /// Which session the frame belongs to (id from
    /// [`RenderServer::add_session`]).
    pub session: usize,
    /// The frame itself. `report.index` is the frame's position on *its
    /// session's* path; `report.boundary_reconfiguration` is true when
    /// the accelerator switched mode entering this frame from the
    /// previously *scheduled* one (possibly another session's). Hand
    /// `report.image` back via [`RenderServer::recycle`].
    pub report: FrameReport,
}

/// What a worker lane hands back for one scheduled frame.
struct Rendered {
    camera: Camera,
    image: Image,
    trace: Option<Trace>,
    sim: Option<SimReport>,
}

/// The per-session state a worker lane mutates while rendering one of
/// the session's frames. Guarded by a mutex, but never contended: the
/// scheduler keeps at most one frame of a session in flight.
struct SessionState {
    renderer: Box<dyn Renderer + Send>,
    path: CameraPath,
    pool: FramePool,
    replay: ReplayScratch,
}

/// Scheduler-side bookkeeping for one session.
struct SessionSlot {
    state: Arc<Mutex<SessionState>>,
    /// Total frames on the session's path.
    len: usize,
    /// Frames dispatched to lanes so far.
    scheduled: usize,
    /// Whether a dispatched frame has not been delivered yet (at most
    /// one — the invariant that keeps per-session pools at 1 buffer).
    in_flight: bool,
    stats: SessionStats,
}

/// A frame dispatched to a lane, awaiting in-order delivery.
struct Pending {
    session: usize,
    index: usize,
    ticket: Ticket<Rendered>,
}

/// A multi-session render server over one shared baked scene.
///
/// See the [module docs](self) for the scheduling and accounting
/// contract. Typical use:
///
/// ```
/// use std::sync::Arc;
/// use uni_engine::{CameraPath, RenderServer, SessionRequest};
/// use uni_renderers::{MeshPipeline, MlpPipeline};
/// use uni_scene::SceneSpec;
///
/// let spec = SceneSpec::demo("server-doc", 5).with_detail(0.03);
/// let scene = Arc::new(spec.bake());
/// let mut server = RenderServer::new(Arc::clone(&scene));
/// server.add_session(SessionRequest::new(
///     Box::new(MeshPipeline::default()),
///     CameraPath::orbit(spec.orbit(32, 24), 2),
/// ));
/// server.add_session(SessionRequest::new(
///     Box::new(MlpPipeline::default()),
///     CameraPath::orbit(spec.orbit(16, 12), 2),
/// ));
/// while let Some(frame) = server.next_frame() {
///     let session = frame.session;
///     server.recycle(session, frame.report.image);
/// }
/// assert_eq!(server.summary().scheduled_frames, 4);
/// ```
pub struct RenderServer {
    scene: Arc<BakedScene>,
    accel: Option<Arc<Accelerator>>,
    sessions: Vec<SessionSlot>,
    lanes_requested: usize,
    lane_pool: Option<LanePool>,
    /// Next session id the round-robin cursor considers.
    rr: usize,
    /// Monotone dispatch counter (assigns lanes round-robin too).
    dispatched: usize,
    pending: VecDeque<Pending>,
    delivered: usize,
    boundary: BoundaryMeter,
    total_cycles: u64,
    total_seconds: f64,
    in_frame_reconfigs: u64,
}

impl RenderServer {
    /// Creates a server over `scene` with no sessions yet.
    ///
    /// `scene` accepts an owned [`BakedScene`] or a shared
    /// `Arc<BakedScene>`; either way every session renders the same
    /// instance.
    pub fn new(scene: impl Into<Arc<BakedScene>>) -> Self {
        Self {
            scene: scene.into(),
            accel: None,
            sessions: Vec::new(),
            lanes_requested: uni_parallel::worker_count(),
            lane_pool: None,
            rr: 0,
            dispatched: 0,
            pending: VecDeque::new(),
            delivered: 0,
            boundary: BoundaryMeter::new(),
            total_cycles: 0,
            total_seconds: 0.0,
            in_frame_reconfigs: 0,
        }
    }

    /// Additionally traces and simulates every served frame on `accel`
    /// (one device shared by all sessions), enabling the reconfiguration
    /// accounting.
    pub fn with_accelerator(mut self, accel: Accelerator) -> Self {
        self.accel = Some(Arc::new(accel));
        self
    }

    /// Overrides the worker-lane count (default:
    /// [`uni_parallel::worker_count`]). Lane count never affects
    /// delivered images or accounting — only execution overlap.
    ///
    /// # Panics
    ///
    /// Panics if called after serving has started.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        assert!(
            self.lane_pool.is_none(),
            "lane count must be set before serving starts"
        );
        self.lanes_requested = lanes.max(1);
        self
    }

    /// Registers a camera stream and returns its session id (ids are
    /// dense, in registration order).
    pub fn add_session(&mut self, request: SessionRequest) -> usize {
        let id = self.sessions.len();
        let pipeline = request.renderer.pipeline();
        self.sessions.push(SessionSlot {
            len: request.path.len(),
            state: Arc::new(Mutex::new(SessionState {
                renderer: request.renderer,
                path: request.path,
                pool: FramePool::new(),
                replay: ReplayScratch::default(),
            })),
            scheduled: 0,
            in_flight: false,
            stats: SessionStats::new(id, pipeline),
        });
        id
    }

    /// The scene every session shares.
    pub fn scene(&self) -> &BakedScene {
        &self.scene
    }

    /// A shared handle to the scene (no copy).
    pub fn shared_scene(&self) -> Arc<BakedScene> {
        Arc::clone(&self.scene)
    }

    /// Number of registered sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Frames not yet delivered, across all sessions.
    pub fn remaining(&self) -> usize {
        let total: usize = self.sessions.iter().map(|s| s.len).sum();
        total - self.delivered
    }

    /// Returns a delivered frame's buffer to its session's pool. Recycle
    /// every frame before asking for the next one and each session's
    /// pool stays at a single allocation for its whole stream.
    ///
    /// # Panics
    ///
    /// Panics when `session` is not a registered id.
    pub fn recycle(&mut self, session: usize, image: Image) {
        self.sessions[session]
            .state
            .lock()
            .expect("session state")
            .pool
            .release(image);
    }

    /// Delivers the next frame of the round-robin schedule, or `None`
    /// once every session's path is exhausted.
    ///
    /// Rendering (and simulation) of upcoming frames overlaps on the
    /// worker lanes, but delivery and accounting strictly follow the
    /// schedule order, so outputs and summaries are deterministic.
    pub fn next_frame(&mut self) -> Option<ServedFrame> {
        self.fill_lanes();
        let pending = self.pending.pop_front()?;
        let rendered = pending.ticket.wait();
        let session = pending.session;
        self.sessions[session].in_flight = false;
        self.delivered += 1;

        let mut boundary = false;
        if let Some(accel) = &self.accel {
            let (first, last) = match &rendered.trace {
                Some(trace) => (trace.first_op(), trace.last_op()),
                None => (None, None),
            };
            let slot = &mut self.sessions[session];
            let avoided_before = self.boundary.avoided();
            if self.boundary.observe(first, last) {
                // The schedule pays the switch into this frame; charge it
                // to the aggregate and attribute it to the entering
                // session.
                boundary = true;
                let cfg = accel.config();
                let cycles = cfg.reconfig_cycles;
                let seconds = cfg.cycles_to_seconds(cycles);
                self.total_cycles += cycles;
                self.total_seconds += seconds;
                slot.stats.boundary_reconfigurations += 1;
                slot.stats.cycles += cycles;
                slot.stats.seconds += seconds;
            } else if self.boundary.avoided() > avoided_before {
                slot.stats.boundary_switches_avoided += 1;
            }
            if let Some(sim) = &rendered.sim {
                self.in_frame_reconfigs += sim.reconfigurations;
                self.total_cycles += sim.cycles;
                self.total_seconds += sim.seconds;
                slot.stats.in_frame_reconfigurations += sim.reconfigurations;
                slot.stats.cycles += sim.cycles;
                slot.stats.seconds += sim.seconds;
            }
        }
        self.sessions[session].stats.frames += 1;

        Some(ServedFrame {
            session,
            report: FrameReport {
                index: pending.index,
                camera: rendered.camera,
                image: rendered.image,
                trace: rendered.trace,
                sim: rendered.sim,
                boundary_reconfiguration: boundary,
            },
        })
    }

    /// Serves every remaining frame, recycling each buffer internally,
    /// and returns the final summary. The droppable-output path for
    /// benchmarks and accounting runs.
    pub fn run(&mut self) -> ServerSummary {
        while let Some(frame) = self.next_frame() {
            self.recycle(frame.session, frame.report.image);
        }
        self.summary()
    }

    /// Statistics over everything delivered so far: per-session stats in
    /// session-id order plus schedule-level aggregates (always
    /// [consistent](ServerSummary::is_consistent)).
    pub fn summary(&self) -> ServerSummary {
        let per_session: Vec<SessionStats> = self
            .sessions
            .iter()
            .map(|slot| {
                let mut stats = slot.stats.clone();
                stats.framebuffer_allocations =
                    slot.state.lock().expect("session state").pool.allocations();
                stats
            })
            .collect();
        ServerSummary {
            per_session,
            scheduled_frames: self.delivered,
            total_cycles: self.total_cycles,
            total_seconds: self.total_seconds,
            in_frame_reconfigurations: self.in_frame_reconfigs,
            boundary_reconfigurations: self.boundary.switches(),
            boundary_switches_avoided: self.boundary.avoided(),
        }
    }

    /// Dispatches upcoming schedule entries to worker lanes until the
    /// lanes are saturated, the schedule is exhausted, or the next entry
    /// belongs to a session whose previous frame is still undelivered
    /// (the schedule never skips ahead — determinism over throughput).
    fn fill_lanes(&mut self) {
        if self.lane_pool.is_none() {
            self.lane_pool = Some(LanePool::new(self.lanes_requested));
        }
        let n = self.sessions.len();
        if n == 0 {
            return;
        }
        let pool = self.lane_pool.as_ref().expect("lane pool created above");
        let capacity = pool.lanes();
        while self.pending.len() < capacity {
            // The next schedule entry: first session at or after the
            // round-robin cursor with frames left to dispatch.
            let mut next = None;
            for step in 0..n {
                let sid = (self.rr + step) % n;
                if self.sessions[sid].scheduled < self.sessions[sid].len {
                    next = Some(sid);
                    break;
                }
            }
            let Some(sid) = next else { break };
            if self.sessions[sid].in_flight {
                break;
            }
            let slot = &mut self.sessions[sid];
            let index = slot.scheduled;
            slot.scheduled += 1;
            slot.in_flight = true;
            self.rr = (sid + 1) % n;

            let state = Arc::clone(&slot.state);
            let scene = Arc::clone(&self.scene);
            let accel = self.accel.clone();
            let lane = self.dispatched % capacity;
            self.dispatched += 1;
            let ticket = pool.submit(lane, move || {
                let mut guard = state.lock().expect("session state");
                let state = &mut *guard;
                let camera = state.path.camera(index);
                let mut image = state.pool.acquire_for(camera.width, camera.height);
                state.renderer.render_into(&scene, &camera, &mut image);
                let (trace, sim) = match &accel {
                    Some(accel) => {
                        let trace = state.renderer.trace(&scene, &camera);
                        let sim = accel.simulate_with_scratch(&trace, &mut state.replay);
                        (Some(trace), Some(sim))
                    }
                    None => (None, None),
                };
                Rendered {
                    camera,
                    image,
                    trace,
                    sim,
                }
            });
            self.pending.push_back(Pending {
                session: sid,
                index,
                ticket,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uni_core::AcceleratorConfig;
    use uni_renderers::{MeshPipeline, MlpPipeline};
    use uni_scene::SceneSpec;

    fn scene_and_spec() -> (Arc<BakedScene>, SceneSpec) {
        static SCENE: std::sync::OnceLock<Arc<BakedScene>> = std::sync::OnceLock::new();
        let spec = SceneSpec::demo("server-test", 11).with_detail(0.03);
        let scene = SCENE.get_or_init(|| Arc::new(spec.bake()));
        (Arc::clone(scene), spec)
    }

    #[test]
    fn delivery_follows_round_robin_until_sessions_drain() {
        let (scene, spec) = scene_and_spec();
        let mut server = RenderServer::new(Arc::clone(&scene)).with_lanes(2);
        // Session 0: 3 frames; session 1: 1 frame — it drops out of the
        // cycle after its only frame.
        server.add_session(SessionRequest::new(
            Box::new(MeshPipeline::default()),
            CameraPath::orbit(spec.orbit(24, 16), 3),
        ));
        server.add_session(SessionRequest::new(
            Box::new(MlpPipeline::default()),
            CameraPath::orbit(spec.orbit(16, 12), 1),
        ));
        let mut order = Vec::new();
        while let Some(frame) = server.next_frame() {
            order.push((frame.session, frame.report.index));
            server.recycle(frame.session, frame.report.image);
        }
        assert_eq!(order, vec![(0, 0), (1, 0), (0, 1), (0, 2)]);
        assert_eq!(server.remaining(), 0);
        assert!(server.next_frame().is_none());
    }

    #[test]
    fn recycled_sessions_keep_one_framebuffer_each() {
        let (scene, spec) = scene_and_spec();
        let mut server = RenderServer::new(scene)
            .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
            .with_lanes(2);
        for _ in 0..3 {
            server.add_session(SessionRequest::new(
                Box::new(MeshPipeline::default()),
                CameraPath::orbit(spec.orbit(20, 14), 3),
            ));
        }
        let summary = server.run();
        assert_eq!(summary.scheduled_frames, 9);
        assert!(summary.is_consistent());
        for stats in &summary.per_session {
            assert_eq!(stats.frames, 3);
            assert_eq!(
                stats.framebuffer_allocations, 1,
                "session {} allocated once for its whole stream",
                stats.session
            );
        }
        assert!(summary.total_cycles > 0);
        assert!(summary.mean_fps() > 0.0);
    }

    #[test]
    fn lane_count_does_not_change_the_summary() {
        let (scene, spec) = scene_and_spec();
        let serve = |lanes: usize| {
            let mut server = RenderServer::new(Arc::clone(&scene))
                .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
                .with_lanes(lanes);
            server.add_session(SessionRequest::new(
                Box::new(MeshPipeline::default()),
                CameraPath::orbit(spec.orbit(20, 14), 2),
            ));
            server.add_session(SessionRequest::new(
                Box::new(MlpPipeline::default()),
                CameraPath::orbit(spec.orbit(16, 12), 2),
            ));
            server.run()
        };
        assert_eq!(serve(1), serve(4));
    }
}
