//! Streaming render sessions: a scene + renderer + camera path driven
//! frame by frame through reusable render targets and (optionally) the
//! Uni-Render accelerator simulator.
//!
//! A [`RenderSession`] is the frame-stream surface the paper's
//! cross-frame claims live on: consecutive frames of a camera path reuse
//! the framebuffer pool (zero steady-state allocations), reuse one
//! [`ReplayScratch`] for trace replay, and amortize PE-array
//! reconfigurations across the stream — the session tracks both the
//! switches *inside* each frame and the ones *at frame boundaries*,
//! where a stream whose frames end and start in the same micro-operator
//! family pays nothing.

use crate::path::CameraPath;
use crate::pool::FramePool;
use std::sync::{Arc, Mutex};
use uni_core::{Accelerator, ReplayScratch, SimReport};
use uni_geometry::{Camera, Image};
use uni_microops::{BoundaryMeter, Trace};
use uni_parallel::{LanePool, Ticket};
use uni_renderers::Renderer;
use uni_scene::BakedScene;

/// Everything one streamed frame produced.
#[derive(Debug)]
pub struct FrameReport {
    /// Frame position on the camera path.
    pub index: usize,
    /// The camera the frame was rendered from.
    pub camera: Camera,
    /// The rendered frame. Hand it back via [`RenderSession::recycle`]
    /// to keep the stream allocation-free.
    pub image: Image,
    /// The frame's micro-operator trace (when the session simulates).
    pub trace: Option<Trace>,
    /// The simulated accelerator report (when the session simulates).
    pub sim: Option<SimReport>,
    /// Whether entering this frame required a PE-array mode switch from
    /// the previous frame's final micro-operator family. `false` for the
    /// first frame and whenever the boundary families match — the
    /// cross-frame amortization the stream exists to measure.
    pub boundary_reconfiguration: bool,
}

/// Aggregate statistics over the frames a session has streamed so far.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSummary {
    /// Frames streamed.
    pub frames: usize,
    /// Total simulated cycles across the stream, including the
    /// reconfiguration windows paid at frame boundaries.
    pub total_cycles: u64,
    /// Total simulated seconds across the stream, including the
    /// reconfiguration windows paid at frame boundaries.
    pub total_seconds: f64,
    /// Reconfigurations *inside* frames (micro-op family switches while
    /// walking each trace).
    pub in_frame_reconfigurations: u64,
    /// Reconfigurations *at* frame boundaries (previous frame ended in a
    /// different family than the next begins).
    pub boundary_reconfigurations: u64,
    /// Frame boundaries that needed no switch — the reconfigurations the
    /// stream amortized away versus treating every frame as cold.
    pub boundary_switches_avoided: u64,
    /// Fresh framebuffer allocations the session's pool performed.
    pub framebuffer_allocations: u64,
    /// Median simulated per-frame latency (seconds: execution plus the
    /// boundary reconfiguration entering the frame), nearest-rank over
    /// the delivered frames; `0.0` until a simulated frame streams.
    pub latency_p50: f64,
    /// 99th-percentile simulated per-frame latency (nearest-rank);
    /// `0.0` until a simulated frame streams. Computed by the same
    /// shared [`uni_microops::percentile`] as the server summaries.
    pub latency_p99: f64,
}

impl StreamSummary {
    /// Simulated throughput over the stream (frames per simulated
    /// second). `0.0` when nothing has been simulated (no accelerator
    /// attached, or no frames streamed yet).
    pub fn mean_fps(&self) -> f64 {
        if self.total_seconds > 0.0 {
            self.frames as f64 / self.total_seconds
        } else {
            0.0
        }
    }

    /// All reconfigurations the stream paid: in-frame plus boundary.
    pub fn total_reconfigurations(&self) -> u64 {
        self.in_frame_reconfigurations + self.boundary_reconfigurations
    }

    /// Reconfigurations per frame, amortized across the whole stream.
    pub fn reconfigurations_per_frame(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.total_reconfigurations() as f64 / self.frames as f64
        }
    }
}

/// A frame rendered ahead of delivery: its trace replay is in flight on
/// the session's replay lane while the *next* frame renders on the
/// calling thread — the render/replay pipelining overlap.
struct StagedFrame {
    index: usize,
    camera: Camera,
    image: Image,
    ticket: Ticket<(Trace, SimReport)>,
}

/// A streaming render session over one scene, renderer, and camera path.
///
/// The scene is held behind an [`Arc`], so many sessions (and the
/// multi-session [`crate::RenderServer`]) can stream over **one** baked
/// scene without per-session copies — pass an `Arc<BakedScene>` to share,
/// or a plain [`BakedScene`] to let the session own it.
///
/// With an accelerator attached, the session **pipelines** by default:
/// frame `N`'s dataflow replay runs on a dedicated replay lane while
/// frame `N + 1` renders on the calling thread. Delivery and accounting
/// stay in strict path order, so every report and summary field is
/// bit-identical with the overlap off (see
/// [`RenderSession::with_overlap`]) — the only observable difference is
/// that a recycled stream holds **two** framebuffers instead of one (the
/// prefetched frame needs its own target).
pub struct RenderSession {
    scene: Arc<BakedScene>,
    renderer: Box<dyn Renderer>,
    path: CameraPath,
    pool: FramePool,
    accel: Option<Arc<Accelerator>>,
    /// Shared with the replay lane's in-flight job; never contended —
    /// at most one replay is in flight and the delivering thread only
    /// locks it on the serial (non-overlap) path.
    replay: Arc<Mutex<ReplayScratch>>,
    overlap: bool,
    /// Single-lane pool the overlapped path replays traces on; spawned
    /// lazily at the first overlapped frame.
    replay_lane: Option<LanePool>,
    staged: Option<StagedFrame>,
    cursor: usize,
    boundary: BoundaryMeter,
    frames_done: usize,
    total_cycles: u64,
    total_seconds: f64,
    in_frame_reconfigs: u64,
    /// Per delivered frame: the sim-seconds charged to it, in delivery
    /// order — the population the summary's latency percentiles are
    /// computed over.
    latencies: Vec<f64>,
}

impl RenderSession {
    /// Creates a session that renders images only (no simulation).
    ///
    /// `scene` accepts either an owned [`BakedScene`] or an
    /// `Arc<BakedScene>` shared with other sessions.
    pub fn new(
        scene: impl Into<Arc<BakedScene>>,
        renderer: Box<dyn Renderer>,
        path: CameraPath,
    ) -> Self {
        Self {
            scene: scene.into(),
            renderer,
            path,
            pool: FramePool::new(),
            accel: None,
            replay: Arc::new(Mutex::new(ReplayScratch::default())),
            overlap: uni_parallel::overlap_enabled(),
            replay_lane: None,
            staged: None,
            cursor: 0,
            boundary: BoundaryMeter::new(),
            frames_done: 0,
            total_cycles: 0,
            total_seconds: 0.0,
            in_frame_reconfigs: 0,
            latencies: Vec::new(),
        }
    }

    /// Additionally traces every frame and simulates it on `accel`,
    /// reusing one [`ReplayScratch`] across the stream.
    pub fn with_accelerator(mut self, accel: Accelerator) -> Self {
        self.accel = Some(Arc::new(accel));
        self
    }

    /// Enables or disables render/replay pipelining (see the type docs).
    /// Defaults to [`uni_parallel::overlap_enabled`] —
    /// on unless `UNI_RENDER_OVERLAP=0`. Only consulted when an
    /// accelerator is attached; image-only sessions have no replay to
    /// overlap with and always stream single-buffered.
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    /// The scene being rendered.
    pub fn scene(&self) -> &BakedScene {
        &self.scene
    }

    /// A shared handle to the scene (no copy) — hand it to further
    /// sessions or a [`crate::RenderServer`] serving the same scene.
    pub fn shared_scene(&self) -> Arc<BakedScene> {
        Arc::clone(&self.scene)
    }

    /// The renderer driving the stream.
    pub fn renderer(&self) -> &dyn Renderer {
        self.renderer.as_ref()
    }

    /// The camera path being walked.
    pub fn path(&self) -> &CameraPath {
        &self.path
    }

    /// The session's framebuffer pool.
    pub fn pool(&self) -> &FramePool {
        &self.pool
    }

    /// Frames not yet streamed (a frame prefetched by the overlap but
    /// not yet delivered still counts as remaining).
    pub fn remaining(&self) -> usize {
        self.path.len() - self.cursor + usize::from(self.staged.is_some())
    }

    /// Returns a consumed frame's buffer to the pool so the next
    /// [`RenderSession::next_frame`] reuses its allocation.
    pub fn recycle(&mut self, frame: Image) {
        self.pool.release(frame);
    }

    /// Renders (and, with an accelerator, traces + simulates) the next
    /// frame of the path. Returns `None` once the path is exhausted.
    pub fn next_frame(&mut self) -> Option<FrameReport> {
        if self.overlap && self.accel.is_some() {
            return self.next_frame_overlapped();
        }
        if self.cursor >= self.path.len() {
            return None;
        }
        let index = self.cursor;
        self.cursor += 1;
        let camera = self.path.camera(index);
        // `render_into` resizes and overwrites the target, so the
        // acquired buffer arrives untouched (one full-frame fill per
        // frame, not two). `acquire_for` also counts the reallocation a
        // mid-stream resolution growth is about to pay.
        let mut image = self.pool.acquire_for(camera.width, camera.height);
        self.renderer.render_into(&self.scene, &camera, &mut image);

        let mut trace_out = None;
        let mut sim_out = None;
        let mut boundary = false;
        if let Some(accel) = self.accel.clone() {
            let trace = self.renderer.trace(&self.scene, &camera);
            let sim = accel
                .simulate_with_scratch(&trace, &mut self.replay.lock().expect("replay scratch"));
            boundary = self.account_frame(accel.config(), &trace, &sim);
            trace_out = Some(trace);
            sim_out = Some(sim);
        }
        self.frames_done += 1;
        Some(FrameReport {
            index,
            camera,
            image,
            trace: trace_out,
            sim: sim_out,
            boundary_reconfiguration: boundary,
        })
    }

    /// The pipelined frame path: deliver the staged frame (waiting out
    /// its in-flight replay) after staging its successor, so the
    /// successor's render overlapped this frame's replay.
    fn next_frame_overlapped(&mut self) -> Option<FrameReport> {
        if self.staged.is_none() {
            self.staged = self.stage_frame();
        }
        let cur = self.staged.take()?;
        // Prefetch: frame N+1 renders here while frame N's replay runs
        // on the lane. Per-lane FIFO keeps replays in path order.
        self.staged = self.stage_frame();
        let (trace, sim) = cur.ticket.wait();
        // Delivery-order accounting, identical to the serial path.
        let accel = Arc::clone(
            self.accel
                .as_ref()
                .expect("overlap requires an accelerator"),
        );
        let boundary = self.account_frame(accel.config(), &trace, &sim);
        self.frames_done += 1;
        Some(FrameReport {
            index: cur.index,
            camera: cur.camera,
            image: cur.image,
            trace: Some(trace),
            sim: Some(sim),
            boundary_reconfiguration: boundary,
        })
    }

    /// Renders the next frame of the path and submits its trace replay
    /// to the replay lane, returning the staged frame without waiting.
    fn stage_frame(&mut self) -> Option<StagedFrame> {
        if self.cursor >= self.path.len() {
            return None;
        }
        let index = self.cursor;
        self.cursor += 1;
        let camera = self.path.camera(index);
        let mut image = self.pool.acquire_for(camera.width, camera.height);
        self.renderer.render_into(&self.scene, &camera, &mut image);
        let trace = self.renderer.trace(&self.scene, &camera);
        let accel = Arc::clone(
            self.accel
                .as_ref()
                .expect("overlap requires an accelerator"),
        );
        let replay = Arc::clone(&self.replay);
        let lane = self
            .replay_lane
            // `spawn`, not `new`: a one-lane `new` pool would run the
            // replay inline on this thread and serialize the pipeline.
            .get_or_insert_with(|| LanePool::spawn(1));
        let ticket = lane.submit(0, move || {
            let mut scratch = replay.lock().expect("replay scratch");
            let sim = accel.simulate_with_scratch(&trace, &mut scratch);
            drop(scratch);
            (trace, sim)
        });
        Some(StagedFrame {
            index,
            camera,
            image,
            ticket,
        })
    }

    /// Charges one delivered frame to the stream totals (boundary
    /// switch, in-frame reconfigurations, cycles, seconds) and returns
    /// whether entering it paid a boundary reconfiguration. Called in
    /// delivery order on both the serial and the overlapped path.
    fn account_frame(
        &mut self,
        cfg: &uni_core::AcceleratorConfig,
        trace: &Trace,
        sim: &SimReport,
    ) -> bool {
        let mut boundary = false;
        let mut frame_seconds = sim.seconds;
        if self.boundary.observe(trace.first_op(), trace.last_op()) {
            boundary = true;
            // Per-frame simulation charges only in-frame switches
            // (a frame's first op is free), so the stream pays the
            // boundary switch here — keeping the time accounting
            // consistent with total_reconfigurations().
            self.total_cycles += cfg.reconfig_cycles;
            self.total_seconds += cfg.cycles_to_seconds(cfg.reconfig_cycles);
            frame_seconds += cfg.cycles_to_seconds(cfg.reconfig_cycles);
        }
        self.in_frame_reconfigs += sim.reconfigurations;
        self.total_cycles += sim.cycles;
        self.total_seconds += sim.seconds;
        self.latencies.push(frame_seconds);
        boundary
    }

    /// Statistics over the frames streamed so far.
    pub fn summary(&self) -> StreamSummary {
        let (latency_p50, latency_p99) = if self.latencies.is_empty() {
            (0.0, 0.0)
        } else {
            let mut sorted = self.latencies.clone();
            sorted.sort_by(f64::total_cmp);
            (
                uni_microops::percentile(&sorted, 50.0),
                uni_microops::percentile(&sorted, 99.0),
            )
        };
        StreamSummary {
            frames: self.frames_done,
            total_cycles: self.total_cycles,
            total_seconds: self.total_seconds,
            in_frame_reconfigurations: self.in_frame_reconfigs,
            boundary_reconfigurations: self.boundary.switches(),
            boundary_switches_avoided: self.boundary.avoided(),
            framebuffer_allocations: self.pool.allocations(),
            latency_p50,
            latency_p99,
        }
    }

    /// Batch replay: traces *every* frame of the path and simulates the
    /// whole batch through [`Accelerator::simulate_many`] (parallel
    /// workers, one [`ReplayScratch`] per worker). Independent of the
    /// streaming cursor. Returns `None` without an accelerator.
    pub fn replay_path(&self) -> Option<Vec<SimReport>> {
        let accel = self.accel.as_ref()?;
        let traces: Vec<Trace> = self
            .path
            .iter()
            .map(|camera| self.renderer.trace(&self.scene, &camera))
            .collect();
        Some(accel.simulate_many(&traces))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uni_core::AcceleratorConfig;
    use uni_renderers::MeshPipeline;
    use uni_scene::SceneSpec;

    fn session(frames: usize) -> RenderSession {
        let spec = SceneSpec::demo("engine-test", 9).with_detail(0.03);
        let scene = spec.bake();
        let path = CameraPath::orbit(spec.orbit(48, 32), frames);
        RenderSession::new(scene, Box::new(MeshPipeline::default()), path)
            .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
    }

    #[test]
    fn streams_every_frame_then_ends() {
        let mut s = session(3);
        let mut seen = 0;
        while let Some(frame) = s.next_frame() {
            assert_eq!(frame.index, seen);
            assert_eq!(frame.image.width(), 48);
            assert!(frame.sim.as_ref().expect("simulated").fps() > 0.0);
            seen += 1;
            s.recycle(frame.image);
        }
        assert_eq!(seen, 3);
        assert_eq!(s.remaining(), 0);
        assert!(s.next_frame().is_none());
        let summary = s.summary();
        assert_eq!(summary.frames, 3);
        assert!(summary.total_cycles > 0);
        assert!(summary.mean_fps() > 0.0);
    }

    #[test]
    fn recycling_keeps_the_stream_allocation_free() {
        // Overlap off: the prefetched frame of the pipelined path needs a
        // second buffer, and this test pins the single-buffer contract.
        let mut s = session(4).with_overlap(false);
        let mut ptr = None;
        while let Some(frame) = s.next_frame() {
            let p = frame.image.pixels().as_ptr();
            if let Some(prev) = ptr {
                assert_eq!(p, prev, "framebuffer reused across frames");
            }
            ptr = Some(p);
            s.recycle(frame.image);
        }
        assert_eq!(s.summary().framebuffer_allocations, 1);
    }

    #[test]
    fn overlapped_stream_matches_serial_bit_for_bit_and_double_buffers() {
        let run = |overlap: bool| {
            let mut s = session(4).with_overlap(overlap);
            let mut frames = Vec::new();
            while let Some(f) = s.next_frame() {
                let sim = f.sim.as_ref().expect("simulated");
                frames.push((
                    f.index,
                    f.image.clone(),
                    sim.cycles,
                    f.boundary_reconfiguration,
                ));
                s.recycle(f.image);
            }
            (frames, s.summary())
        };
        let (serial_frames, serial) = run(false);
        let (overlap_frames, overlapped) = run(true);
        assert_eq!(serial_frames, overlap_frames, "delivery is bit-identical");
        assert_eq!(serial.frames, overlapped.frames);
        assert_eq!(serial.total_cycles, overlapped.total_cycles);
        assert_eq!(serial.total_seconds, overlapped.total_seconds);
        assert_eq!(
            serial.in_frame_reconfigurations,
            overlapped.in_frame_reconfigurations
        );
        assert_eq!(
            serial.boundary_reconfigurations,
            overlapped.boundary_reconfigurations
        );
        assert_eq!(serial.framebuffer_allocations, 1);
        assert_eq!(
            overlapped.framebuffer_allocations, 2,
            "the pipelined stream double-buffers: one frame in hand, one prefetched"
        );
    }

    #[test]
    fn overlap_prefetch_counts_toward_remaining_until_delivered() {
        let mut s = session(3).with_overlap(true);
        assert_eq!(s.remaining(), 3);
        let first = s.next_frame().expect("frame 0");
        // Frame 1 is staged (rendered, replay in flight) but undelivered.
        assert_eq!(s.remaining(), 2);
        s.recycle(first.image);
        while let Some(frame) = s.next_frame() {
            s.recycle(frame.image);
        }
        assert_eq!(s.remaining(), 0);
        assert!(s.next_frame().is_none());
    }

    #[test]
    fn boundary_accounting_covers_every_gap() {
        let mut s = session(4);
        while let Some(frame) = s.next_frame() {
            s.recycle(frame.image);
        }
        let summary = s.summary();
        // 4 frames -> 3 boundaries, each either amortized or a switch.
        assert_eq!(
            summary.boundary_reconfigurations + summary.boundary_switches_avoided,
            3
        );
        // Same pipeline every frame: boundaries cost at most one switch
        // each, so amortized per-frame switches are bounded by the
        // per-frame trace switches + 1.
        assert!(summary.reconfigurations_per_frame() >= 0.0);
    }

    #[test]
    fn replay_path_matches_streamed_reports() {
        let mut s = session(2);
        let batch = s.replay_path().expect("has accelerator");
        assert_eq!(batch.len(), 2);
        let first = s.next_frame().expect("frame 0");
        assert_eq!(
            first.sim.expect("simulated").cycles,
            batch[0].cycles,
            "streamed and batched replay agree"
        );
    }
}
