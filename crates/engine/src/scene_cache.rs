//! Scene residency as a managed resource: a stable scene identity
//! ([`SceneKey`]) and a capacity-bounded bake cache ([`SceneCache`]).
//!
//! A fleet cannot keep every scene baked: residency is bounded by a
//! scene count and (optionally) a byte budget, and everything about it
//! — identity, routing, eviction order — must be deterministic.
//! Identity is the canonical encoding of a [`SceneSpec`] (never the
//! pointer identity of a baked `Arc`), routing hashes that encoding
//! with FNV-1a, and eviction picks the resident with the
//! least-recently-*delivered* schedule slot: the fleet's delivered-frame
//! counter, never a wall clock, so the eviction sequence is a pure
//! function of the delivered schedule and bit-identical at any
//! `UNI_RENDER_THREADS`.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use uni_microops::FleetCacheStats;
use uni_scene::{BakedScene, SceneSpec};

/// A stable, content-derived scene identity.
///
/// Two specs with equal identity fields produce equal keys — and, since
/// baking is seeded purely from [`SceneSpec::seed`], equal baked scenes.
/// The key is the canonical unit-separated encoding of every identity
/// field, with floats encoded bit-exactly; [`SceneKey::route_hash`] is
/// the FNV-1a hash of that encoding, which is what the fleet routes on.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SceneKey(String);

impl SceneKey {
    /// The canonical key of a scene spec.
    pub fn of(spec: &SceneSpec) -> Self {
        Self(format!(
            "{}\u{1f}{:016x}\u{1f}{:?}\u{1f}{}\u{1f}{:08x}\u{1f}{:08x}\u{1f}{:?}",
            spec.name,
            spec.seed,
            spec.flavor,
            spec.object_count,
            spec.extent.to_bits(),
            spec.detail.to_bits(),
            spec.repr,
        ))
    }

    /// The canonical encoding (the key itself).
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// FNV-1a (64-bit) of the canonical encoding — the routing hash.
    /// Stable across runs, platforms, and pointer identities.
    pub fn route_hash(&self) -> u64 {
        const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        self.0
            .as_bytes()
            .iter()
            .fold(OFFSET, |h, &b| (h ^ u64::from(b)).wrapping_mul(PRIME))
    }
}

/// Capacity knobs of a [`SceneCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SceneCacheConfig {
    /// Maximum scenes resident at once. Clamped to ≥ 1.
    pub max_resident: usize,
    /// Optional resident-byte budget (the sum of
    /// [`BakedScene::resident_bytes`] across residents). `None` means
    /// count-bounded only.
    pub max_bytes: Option<u64>,
}

impl Default for SceneCacheConfig {
    fn default() -> Self {
        Self {
            max_resident: 4,
            max_bytes: None,
        }
    }
}

/// One resident scene.
struct Resident {
    scene: Arc<BakedScene>,
    bytes: u64,
    /// The fleet's delivered-slot clock when this scene last produced a
    /// delivery (or was admitted to) — the eviction key.
    last_slot: u64,
}

/// A capacity-bounded, deterministically evicting bake cache.
///
/// The cache never decides *when* to evict — the fleet does, because
/// only the fleet knows which residents are pinned by live sessions.
/// The cache owns the deterministic pieces: residency, bake/rebake/hit
/// accounting, and the eviction *order* (least-recently-delivered slot,
/// ties broken by key order).
pub struct SceneCache {
    config: SceneCacheConfig,
    residents: BTreeMap<SceneKey, Resident>,
    /// Every key ever baked — distinguishes a rebake (eviction cost paid
    /// twice) from a first bake.
    ever_baked: BTreeSet<SceneKey>,
    bakes: u64,
    rebakes: u64,
    evictions: u64,
    hits: u64,
    baked_bytes: u64,
}

impl SceneCache {
    /// An empty cache with the given capacity knobs.
    pub fn new(config: SceneCacheConfig) -> Self {
        Self {
            config: SceneCacheConfig {
                max_resident: config.max_resident.max(1),
                max_bytes: config.max_bytes,
            },
            residents: BTreeMap::new(),
            ever_baked: BTreeSet::new(),
            bakes: 0,
            rebakes: 0,
            evictions: 0,
            hits: 0,
            baked_bytes: 0,
        }
    }

    /// The configured capacity knobs.
    pub fn config(&self) -> SceneCacheConfig {
        self.config
    }

    /// Whether `key` is resident.
    pub fn contains(&self, key: &SceneKey) -> bool {
        self.residents.contains_key(key)
    }

    /// The resident scene for `key`, touched to `slot`, baking it if it
    /// is not resident. A hit bumps the hit counter; a miss bakes
    /// (counting a rebake when the key was resident before) and charges
    /// the scene's resident bytes to the bake-cost account.
    pub fn acquire(&mut self, key: &SceneKey, spec: &SceneSpec, slot: u64) -> Arc<BakedScene> {
        if let Some(resident) = self.residents.get_mut(key) {
            self.hits += 1;
            resident.last_slot = slot;
            return Arc::clone(&resident.scene);
        }
        debug_assert_eq!(
            *key,
            SceneKey::of(spec),
            "acquire called with a key that is not the spec's"
        );
        let scene = Arc::new(spec.bake());
        let bytes = scene.resident_bytes();
        self.bakes += 1;
        self.baked_bytes += bytes;
        if !self.ever_baked.insert(key.clone()) {
            self.rebakes += 1;
        }
        self.residents.insert(
            key.clone(),
            Resident {
                scene: Arc::clone(&scene),
                bytes,
                last_slot: slot,
            },
        );
        scene
    }

    /// Bumps `key`'s last-delivered slot (called at every delivery the
    /// scene produces). Unknown keys are ignored.
    pub fn touch(&mut self, key: &SceneKey, slot: u64) {
        if let Some(resident) = self.residents.get_mut(key) {
            resident.last_slot = slot;
        }
    }

    /// Whether residency exceeds the configured budget (count or bytes).
    pub fn over_capacity(&self) -> bool {
        self.residents.len() > self.config.max_resident
            || self
                .config
                .max_bytes
                .is_some_and(|budget| self.resident_bytes() > budget)
    }

    /// The eviction candidate: among residents not in `pinned`, the one
    /// with the least-recently-delivered slot, ties broken by key order.
    /// `None` when every resident is pinned.
    pub fn evict_candidate(&self, pinned: &BTreeSet<SceneKey>) -> Option<SceneKey> {
        self.residents
            .iter()
            .filter(|(key, _)| !pinned.contains(key))
            .min_by_key(|(key, resident)| (resident.last_slot, (*key).clone()))
            .map(|(key, _)| key.clone())
    }

    /// Drops `key` from residency, counting an eviction. Returns whether
    /// the key was resident.
    pub fn evict(&mut self, key: &SceneKey) -> bool {
        if self.residents.remove(key).is_some() {
            self.evictions += 1;
            true
        } else {
            false
        }
    }

    /// Scenes currently resident.
    pub fn resident_scenes(&self) -> usize {
        self.residents.len()
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.residents.values().map(|r| r.bytes).sum()
    }

    /// A snapshot of every counter.
    pub fn stats(&self) -> FleetCacheStats {
        FleetCacheStats {
            bakes: self.bakes,
            rebakes: self.rebakes,
            evictions: self.evictions,
            hits: self.hits,
            baked_bytes: self.baked_bytes,
            resident_scenes: self.resident_scenes(),
            resident_bytes: self.resident_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, seed: u64) -> SceneSpec {
        SceneSpec::demo(name, seed).with_detail(0.02)
    }

    #[test]
    fn scene_keys_are_content_derived_and_stable() {
        let a = SceneKey::of(&spec("a", 1));
        let a2 = SceneKey::of(&spec("a", 1));
        let b = SceneKey::of(&spec("b", 1));
        let a_reseeded = SceneKey::of(&spec("a", 2));
        assert_eq!(a, a2);
        assert_eq!(a.route_hash(), a2.route_hash());
        assert_ne!(a, b);
        assert_ne!(a, a_reseeded);
        // FNV-1a of the empty input is the offset basis; of "a" it is
        // the published vector — pin the constants so the routing hash
        // can never silently change.
        assert_eq!(SceneKey(String::new()).route_hash(), 0xCBF2_9CE4_8422_2325);
        assert_eq!(
            SceneKey("a".to_string()).route_hash(),
            0xAF63_DC4C_8601_EC8C
        );
    }

    #[test]
    fn cache_counts_hits_bakes_rebakes_and_evictions() {
        let sa = spec("a", 1);
        let sb = spec("b", 2);
        let ka = SceneKey::of(&sa);
        let kb = SceneKey::of(&sb);
        let mut cache = SceneCache::new(SceneCacheConfig {
            max_resident: 1,
            max_bytes: None,
        });
        let first = cache.acquire(&ka, &sa, 0);
        cache.acquire(&ka, &sa, 1);
        assert_eq!(cache.stats().bakes, 1);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().baked_bytes, first.resident_bytes());

        cache.acquire(&kb, &sb, 2);
        assert!(cache.over_capacity());
        let victim = cache.evict_candidate(&BTreeSet::new()).unwrap();
        assert_eq!(victim, ka, "least-recently-delivered resident evicts");
        assert!(cache.evict(&victim));
        assert!(!cache.over_capacity());

        // Re-acquiring the evicted scene is a rebake — bit-identical to
        // the first bake, but the cost is paid again.
        let again = cache.acquire(&ka, &sa, 3);
        let stats = cache.stats();
        assert_eq!(stats.bakes, 3);
        assert_eq!(stats.rebakes, 1);
        assert_eq!(stats.evictions, 1);
        assert_eq!(*again, *first, "rebake reproduces the scene");
    }

    #[test]
    fn eviction_respects_pins_and_breaks_slot_ties_by_key() {
        let sa = spec("a", 1);
        let sb = spec("b", 2);
        let ka = SceneKey::of(&sa);
        let kb = SceneKey::of(&sb);
        let mut cache = SceneCache::new(SceneCacheConfig::default());
        cache.acquire(&ka, &sa, 5);
        cache.acquire(&kb, &sb, 5);
        // Equal slots: key order decides.
        assert_eq!(cache.evict_candidate(&BTreeSet::new()), Some(ka.clone()));
        // Pinning the tie-winner moves to the next candidate; pinning
        // everything yields none.
        let pinned: BTreeSet<SceneKey> = [ka.clone()].into_iter().collect();
        assert_eq!(cache.evict_candidate(&pinned), Some(kb.clone()));
        let all: BTreeSet<SceneKey> = [ka, kb].into_iter().collect();
        assert_eq!(cache.evict_candidate(&all), None);
    }

    #[test]
    fn byte_budget_bounds_residency() {
        let sa = spec("a", 1);
        let ka = SceneKey::of(&sa);
        let mut cache = SceneCache::new(SceneCacheConfig {
            max_resident: 8,
            max_bytes: Some(1),
        });
        cache.acquire(&ka, &sa, 0);
        assert!(
            cache.over_capacity(),
            "any real scene busts a 1-byte budget"
        );
    }
}
