//! Camera paths: deterministic frame-indexed camera trajectories.
//!
//! A [`CameraPath`] is the *input stream* of a [`crate::RenderSession`]:
//! a finite sequence of cameras a renderer walks frame by frame. Paths
//! are defined analytically (orbit sweeps, pose lerps) or as explicit
//! waypoint lists, so any frame can be produced by index without storing
//! the whole sequence.

use uni_geometry::{Camera, Orbit, Vec3};

/// How the path generates its cameras.
#[derive(Debug, Clone)]
enum PathKind {
    /// Sweep of `sweep` radians along an orbit starting at `start`.
    /// Frames are spaced *endpoint-exclusively* (`i / frames`), so a full
    /// `TAU` sweep never duplicates its first view — matching
    /// [`Orbit::cameras`].
    Orbit {
        orbit: Orbit,
        start: f32,
        sweep: f32,
    },
    /// Pose interpolation between two cameras, endpoints inclusive
    /// (boxed to keep the variants size-balanced).
    Lerp(Box<(Camera, Camera)>),
    /// An explicit camera list.
    Waypoints(Vec<Camera>),
}

/// A finite camera trajectory, indexable by frame.
#[derive(Debug, Clone)]
pub struct CameraPath {
    kind: PathKind,
    frames: usize,
}

impl CameraPath {
    /// A full revolution around `orbit` in `frames` evenly spaced views
    /// (endpoint-exclusive, like [`Orbit::cameras`]).
    pub fn orbit(orbit: Orbit, frames: usize) -> Self {
        Self::orbit_arc(orbit, 0.0, std::f32::consts::TAU, frames)
    }

    /// An arc of `sweep` radians along `orbit` starting at angle `start`,
    /// in `frames` evenly spaced views (endpoint-exclusive).
    pub fn orbit_arc(orbit: Orbit, start: f32, sweep: f32, frames: usize) -> Self {
        Self {
            kind: PathKind::Orbit {
                orbit,
                start,
                sweep,
            },
            frames,
        }
    }

    /// A straight-line pose interpolation from `from` to `to` over
    /// `frames` views, endpoints inclusive. Eye positions, forward
    /// directions, the field of view, and the near/far clip planes
    /// interpolate linearly; the resolution comes from `from`.
    /// Degenerate when the two forward directions are exactly opposed
    /// (the lerped direction vanishes).
    pub fn lerp(from: Camera, to: Camera, frames: usize) -> Self {
        Self {
            kind: PathKind::Lerp(Box::new((from, to))),
            frames,
        }
    }

    /// An explicit list of cameras.
    pub fn waypoints(cameras: Vec<Camera>) -> Self {
        let frames = cameras.len();
        Self {
            kind: PathKind::Waypoints(cameras),
            frames,
        }
    }

    /// Number of frames on the path.
    pub fn len(&self) -> usize {
        self.frames
    }

    /// Whether the path holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames == 0
    }

    /// The camera for frame `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index >= len()`.
    pub fn camera(&self, index: usize) -> Camera {
        assert!(
            index < self.frames,
            "frame {index} out of range ({} frames)",
            self.frames
        );
        match &self.kind {
            PathKind::Orbit {
                orbit,
                start,
                sweep,
            } => orbit.camera_at(start + index as f32 / self.frames as f32 * sweep),
            PathKind::Lerp(endpoints) => {
                let (from, to) = endpoints.as_ref();
                let t = if self.frames <= 1 {
                    0.0
                } else {
                    index as f32 / (self.frames - 1) as f32
                };
                let eye = from.eye.lerp(to.eye, t);
                let fwd = from.forward().lerp(to.forward(), t).normalized();
                let lin = |a: f32, b: f32| a * (1.0 - t) + b * t;
                Camera::look_at(
                    eye,
                    eye + fwd,
                    Vec3::Y,
                    lin(from.fov_y, to.fov_y),
                    from.width,
                    from.height,
                )
                .with_clip(lin(from.near, to.near), lin(from.far, to.far))
            }
            PathKind::Waypoints(cams) => cams[index],
        }
    }

    /// Iterates over every camera on the path in frame order.
    pub fn iter(&self) -> impl Iterator<Item = Camera> + '_ {
        (0..self.frames).map(|i| self.camera(i))
    }

    /// The tail of this path from frame `start` (inclusive) to the end,
    /// as an explicit waypoint list.
    ///
    /// Frame `i` of the suffix is **bit-identical** to frame
    /// `start + i` of the original: the cameras are materialized through
    /// the same [`CameraPath::camera`] arithmetic the original path
    /// would use, never re-parameterized — which is what lets a migrated
    /// session resume mid-path on another shard and still deliver the
    /// exact frames the unmigrated session would have. `start >= len()`
    /// yields an empty path.
    pub fn suffix(&self, start: usize) -> Self {
        Self::waypoints((start..self.frames).map(|i| self.camera(i)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orbit() -> Orbit {
        Orbit {
            target: Vec3::ZERO,
            radius: 4.0,
            height: 1.0,
            fov_y: 1.0,
            width: 64,
            height_px: 48,
        }
    }

    #[test]
    fn full_orbit_matches_orbit_cameras() {
        let path = CameraPath::orbit(orbit(), 6);
        let reference = orbit().cameras(6);
        assert_eq!(path.len(), 6);
        for (i, cam) in path.iter().enumerate() {
            assert!((cam.eye - reference[i].eye).length() < 1e-6, "frame {i}");
        }
    }

    #[test]
    fn lerp_path_hits_both_endpoints() {
        let a = Camera::look_at(Vec3::new(4.0, 1.0, 0.0), Vec3::ZERO, Vec3::Y, 1.0, 64, 48)
            .with_clip(0.5, 50.0);
        let b = Camera::look_at(Vec3::new(0.0, 1.0, 4.0), Vec3::ZERO, Vec3::Y, 1.2, 64, 48)
            .with_clip(1.0, 100.0);
        let path = CameraPath::lerp(a, b, 5);
        assert!((path.camera(0).eye - a.eye).length() < 1e-6);
        assert!((path.camera(4).eye - b.eye).length() < 1e-6);
        let mid = path.camera(2);
        assert!((mid.eye - a.eye.lerp(b.eye, 0.5)).length() < 1e-6);
        assert!((mid.fov_y - 1.1).abs() < 1e-6);
        // Clip planes interpolate too (endpoints reproduce the inputs).
        assert!((path.camera(0).near - 0.5).abs() < 1e-6);
        assert!((path.camera(4).far - 100.0).abs() < 1e-6);
        assert!((mid.near - 0.75).abs() < 1e-6);
        assert!((mid.far - 75.0).abs() < 1e-6);
    }

    #[test]
    fn waypoints_round_trip() {
        let cams = orbit().cameras(3);
        let path = CameraPath::waypoints(cams.clone());
        assert_eq!(path.len(), 3);
        assert!((path.camera(2).eye - cams[2].eye).length() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_frame_panics() {
        CameraPath::orbit(orbit(), 2).camera(2);
    }

    #[test]
    fn suffix_reproduces_the_original_frames_bit_for_bit() {
        let path = CameraPath::orbit_arc(orbit(), 0.3, 2.5, 7);
        let tail = path.suffix(3);
        assert_eq!(tail.len(), 4);
        for i in 0..tail.len() {
            // Bit-identical, not approximately equal: the suffix stores
            // the exact cameras the original arithmetic produces.
            assert_eq!(tail.camera(i).eye, path.camera(3 + i).eye, "frame {i}");
            assert_eq!(tail.camera(i).fov_y, path.camera(3 + i).fov_y);
        }
        assert!(path.suffix(7).is_empty());
        assert!(path.suffix(99).is_empty());
    }
}
