//! Multi-scene serving: a fleet of per-scene [`RenderServer`] shards
//! behind deterministic routing, a capacity-bounded scene cache, and
//! live session migration.
//!
//! Every server so far serves exactly one `Arc<BakedScene>`; production
//! traffic spans many scenes. A [`ServerFleet`] routes each
//! [`FleetSessionRequest`] to the shard owning its scene — by
//! [`SceneKey`] (a stable content-derived identity, hashed with FNV-1a),
//! never by pointer identity — bakes scenes on demand behind a
//! [`SceneCache`](crate::SceneCache) with a `max_resident` /
//! byte-budget capacity bound, and accounts everything (per-shard
//! [`uni_microops::ServerSummary`] roll-ups, bake/rebake/eviction cost,
//! migration outcomes) in a [`FleetSummary`].
//!
//! Three fleet-level properties extend the server's determinism
//! contract:
//!
//! 1. **Sharding is invisible.** Each session's delivered frames are
//!    bit-identical to a standalone [`crate::RenderSession`] walking the
//!    same path on the same scene, at any `UNI_RENDER_THREADS` — the
//!    fleet only interleaves shard delivery (by a deterministic cyclic
//!    cursor), it never alters what a shard delivers.
//! 2. **Eviction is a schedule fact.** The cache evicts the resident
//!    scene with the least-recently-*delivered* fleet slot (ties by key
//!    order) — the fleet's delivered-frame counter, never a wall clock
//!    (uni-lint R4/R9 hold here) — so the eviction sequence, and hence
//!    every bake/rebake, is a pure function of the delivered schedule.
//!    A rebaked scene is bit-identical to its first bake (baking is
//!    seeded purely from the spec), so evict-then-rebake round-trips
//!    the served stream exactly.
//! 3. **Migration is a permutation.** [`ServerFleet::migrate`] drains
//!    the session on its source shard at the deterministic churn slot
//!    (delivered count + dispatch window, via the server's staged-close
//!    machinery), then re-admits the remaining path suffix on the
//!    target shard through [`RenderServer::try_admit`] — admission
//!    control spans shards. When source and target scenes bake
//!    identically, the migrated session's delivered frames are a
//!    bit-identical permutation of the unmigrated stream. A session
//!    closed while its migration is staged cancels cleanly: the suffix
//!    is never admitted, so the target summary carries no ghost slot.

use std::collections::{BTreeMap, BTreeSet};

use uni_core::{Accelerator, AcceleratorConfig};
use uni_geometry::Image;
use uni_microops::{FleetCacheStats, FleetSummary, SessionStats, ShardSummary};
use uni_renderers::Renderer;
use uni_scene::SceneSpec;

use crate::path::CameraPath;
use crate::scene_cache::{SceneCache, SceneCacheConfig, SceneKey};
use crate::sched::{SchedulePolicy, SessionHandle};
use crate::server::{
    AdmissionControl, AdmitDecision, DegradePolicy, RenderServer, ServedFrame, SessionRequest,
};

/// Builds a fresh renderer for a session segment. Migration needs to
/// *re*-construct the session's pipeline on the target shard, so fleet
/// requests carry a factory instead of a one-shot boxed renderer.
pub type RendererFactory = Box<dyn Fn() -> Box<dyn Renderer + Send> + Send>;

/// Builds a fresh [`SchedulePolicy`] per shard server (every shard runs
/// its own scheduler instance; feedback policies carry state and cannot
/// be shared).
pub type PolicyFactory = Box<dyn Fn() -> Box<dyn SchedulePolicy>>;

/// One camera stream a [`ServerFleet`] should serve: a renderer
/// factory, a camera path, and the same scheduling attributes as a
/// [`SessionRequest`]. The fleet keeps the request as the session's
/// blueprint so a migration can rebuild the remaining suffix on another
/// shard.
pub struct FleetSessionRequest {
    factory: RendererFactory,
    path: CameraPath,
    weight: u32,
    priority: u8,
    deadline_hz: Option<f64>,
    label: Option<String>,
}

impl FleetSessionRequest {
    /// Bundles a renderer factory and a path with default scheduling
    /// attributes (weight 1, priority 0, best-effort, unlabelled).
    pub fn new(
        factory: impl Fn() -> Box<dyn Renderer + Send> + Send + 'static,
        path: CameraPath,
    ) -> Self {
        Self {
            factory: Box::new(factory),
            path,
            weight: 1,
            priority: 0,
            deadline_hz: None,
            label: None,
        }
    }

    /// Sets the fair-share weight (clamped to ≥ 1), as
    /// [`SessionRequest::weight`].
    pub fn weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Sets the priority level (higher wins), as
    /// [`SessionRequest::priority`].
    pub fn priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Declares a per-frame sim-time deadline rate, as
    /// [`SessionRequest::deadline_hz`] (non-finite or non-positive
    /// rates keep the session best-effort).
    pub fn deadline_hz(mut self, hz: f64) -> Self {
        self.deadline_hz = (hz.is_finite() && hz > 0.0).then_some(hz);
        self
    }

    /// Attaches a human-readable label.
    pub fn label(mut self, label: &str) -> Self {
        self.label = Some(label.to_string());
        self
    }

    /// Frames on the session's full path.
    fn path_len(&self) -> usize {
        self.path.len()
    }

    /// A server request for the path segment starting at `start`:
    /// frame `i` of the segment is bit-identical to frame `start + i`
    /// of the full path.
    fn request_from(&self, start: usize) -> SessionRequest {
        let path = if start == 0 {
            self.path.clone()
        } else {
            self.path.suffix(start)
        };
        let mut request = SessionRequest::new((self.factory)(), path)
            .weight(self.weight)
            .priority(self.priority);
        if let Some(hz) = self.deadline_hz {
            request = request.deadline_hz(hz);
        }
        if let Some(label) = &self.label {
            request = request.label(label);
        }
        request
    }
}

/// Typed handle of a fleet session. Stable across migrations: the
/// handle a session was admitted with keeps identifying it after it
/// moves to another shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FleetHandle(usize);

impl FleetHandle {
    /// The dense fleet-wide session id.
    pub fn id(&self) -> usize {
        self.0
    }
}

/// [`AdmitDecision`] with fleet handles: what admission control decided
/// for a [`ServerFleet::try_admit`] request on the scene's shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FleetAdmitDecision {
    /// Admitted on the scene's shard.
    Admitted(FleetHandle),
    /// Queued on the scene's shard, activating at that *shard's*
    /// delivered-frame slot `activates_at`.
    Queued {
        /// Handle of the queued session.
        handle: FleetHandle,
        /// Shard-local delivered-frame slot the session activates at.
        activates_at: usize,
    },
    /// Refused by the shard's admission control — no session exists.
    Refused {
        /// Predicted per-round slack had the request been admitted.
        predicted_slack: f64,
    },
}

impl FleetAdmitDecision {
    /// The fleet handle, unless the request was refused.
    pub fn handle(&self) -> Option<FleetHandle> {
        match self {
            Self::Admitted(handle) => Some(*handle),
            Self::Queued { handle, .. } => Some(*handle),
            Self::Refused { .. } => None,
        }
    }
}

/// One delivered frame of a fleet schedule.
#[derive(Debug)]
pub struct FleetFrame {
    /// The owning fleet session.
    pub handle: FleetHandle,
    /// Key of the scene the frame was rendered from.
    pub scene: SceneKey,
    /// Index of the delivering shard (registration order).
    pub shard: usize,
    /// The frame's position on the session's *original* path. For a
    /// never-migrated session this equals `frame.report.index`; after a
    /// migration the segment offset is added back, so consumers see one
    /// uninterrupted index space.
    pub path_index: usize,
    /// The shard's delivered frame. `frame.report.index` is
    /// segment-relative; `frame.session` is the shard-local session id.
    pub frame: ServedFrame,
}

/// Fleet-level lifecycle of a session.
enum Phase {
    /// Serving (or drained) on its current shard.
    Live,
    /// Close staged on the source shard; the remaining suffix re-admits
    /// on `target` once the source segment drains.
    Migrating { target: usize },
    /// Nothing left to do for this session at the fleet level (its
    /// migration completed with an empty remainder, was cancelled, or
    /// was refused by the target shard).
    Settled,
}

/// One fleet session: where it currently lives and how to rebuild it.
struct FleetSession {
    shard: usize,
    /// Residency generation of `shard` the session belongs to (index
    /// into the shard's retired summaries once evicted).
    generation: usize,
    inner: SessionHandle,
    /// Index on the original path where the current segment starts.
    offset: usize,
    blueprint: FleetSessionRequest,
    phase: Phase,
}

/// One per-scene shard: the scene's identity, its live server (present
/// exactly while the scene is resident), and the summaries of evicted
/// residency generations.
struct Shard {
    key: SceneKey,
    spec: SceneSpec,
    server: Option<RenderServer>,
    /// Summaries of evicted server generations, oldest first.
    retired: Vec<uni_microops::ServerSummary>,
    /// Shard-local session id → fleet session id, current generation.
    inner_to_fleet: Vec<usize>,
}

/// A fleet of per-scene [`RenderServer`] shards with deterministic
/// routing, capacity-bounded scene residency, and live migration. See
/// the [module docs](self) for the contract.
pub struct ServerFleet {
    cache: SceneCache,
    shards: Vec<Shard>,
    /// Routing table: FNV-1a scene hash → shard indices (a bucket list
    /// keeps hash collisions harmless — full keys disambiguate).
    routes: BTreeMap<u64, Vec<usize>>,
    sessions: Vec<FleetSession>,
    /// Cyclic delivery cursor over shards.
    cursor: usize,
    /// The fleet's delivered-slot clock: total frames delivered. Drives
    /// cache recency — never a wall clock.
    slot: u64,
    migrations: u64,
    migrations_completed: u64,
    migrations_cancelled: u64,
    migrations_refused: u64,
    // Per-shard server construction knobs.
    accelerator: Option<AcceleratorConfig>,
    policy_factory: Option<PolicyFactory>,
    lanes: Option<usize>,
    overlap: Option<bool>,
    lookahead: Option<usize>,
    admission: Option<AdmissionControl>,
    degradation: Option<DegradePolicy>,
}

impl ServerFleet {
    /// An empty fleet with the given scene-cache capacity.
    pub fn new(cache: SceneCacheConfig) -> Self {
        Self {
            cache: SceneCache::new(cache),
            shards: Vec::new(),
            routes: BTreeMap::new(),
            sessions: Vec::new(),
            cursor: 0,
            slot: 0,
            migrations: 0,
            migrations_completed: 0,
            migrations_cancelled: 0,
            migrations_refused: 0,
            accelerator: None,
            policy_factory: None,
            lanes: None,
            overlap: None,
            lookahead: None,
            admission: None,
            degradation: None,
        }
    }

    /// Gives every shard server a simulated accelerator built from
    /// `config` (each shard gets its own instance).
    pub fn with_accelerator_config(mut self, config: AcceleratorConfig) -> Self {
        self.accelerator = Some(config);
        self
    }

    /// Sets the scheduling policy of every shard server via a factory
    /// (each shard runs its own policy instance).
    pub fn with_policy_factory(
        mut self,
        factory: impl Fn() -> Box<dyn SchedulePolicy> + 'static,
    ) -> Self {
        self.policy_factory = Some(Box::new(factory));
        self
    }

    /// Sets the worker-lane count of every shard server.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = Some(lanes);
        self
    }

    /// Forces render/replay pipelining on or off on every shard server
    /// (otherwise each server follows `UNI_RENDER_OVERLAP`).
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap = Some(overlap);
        self
    }

    /// Sets the dispatch lookahead of every shard server.
    pub fn with_lookahead(mut self, lookahead: usize) -> Self {
        self.lookahead = Some(lookahead);
        self
    }

    /// Arms admission control on every shard server —
    /// [`ServerFleet::try_admit`] and migration re-admission both pass
    /// through it, so feasibility prediction spans shards.
    pub fn with_admission_control(mut self, control: AdmissionControl) -> Self {
        self.admission = Some(control);
        self
    }

    /// Arms graceful degradation on every shard server.
    pub fn with_degradation(mut self, policy: DegradePolicy) -> Self {
        self.degradation = Some(policy);
        self
    }

    /// Registers a scene (idempotent) and returns its routing key. A
    /// registered scene has a shard but costs nothing until a session
    /// needs it baked.
    pub fn register(&mut self, spec: &SceneSpec) -> SceneKey {
        let idx = self.register_spec(spec);
        self.shards[idx].key.clone()
    }

    /// The shard index a scene key routes to, if registered.
    pub fn shard_of(&self, key: &SceneKey) -> Option<usize> {
        self.routes
            .get(&key.route_hash())
            .and_then(|bucket| bucket.iter().copied().find(|&i| self.shards[i].key == *key))
    }

    /// Admits a session on its scene's shard unconditionally (the
    /// [`RenderServer::admit`] path: no feasibility check). Bakes the
    /// scene if it is not resident, evicting per the cache policy.
    pub fn admit(&mut self, spec: &SceneSpec, request: FleetSessionRequest) -> FleetHandle {
        let shard_idx = self.register_spec(spec);
        self.ensure_server(shard_idx);
        let inner = self.shards[shard_idx]
            .server
            .as_mut()
            .expect("ensure_server built the shard server")
            .admit(request.request_from(0));
        self.bind(shard_idx, inner, request)
    }

    /// Admits a session through its shard's admission control (the
    /// [`RenderServer::try_admit`] path). Refused requests leave no
    /// session behind — and no scene residency is spent on them beyond
    /// the bake the feasibility check itself required.
    pub fn try_admit(
        &mut self,
        spec: &SceneSpec,
        request: FleetSessionRequest,
    ) -> FleetAdmitDecision {
        let shard_idx = self.register_spec(spec);
        self.ensure_server(shard_idx);
        let decision = self.shards[shard_idx]
            .server
            .as_mut()
            .expect("ensure_server built the shard server")
            .try_admit(request.request_from(0));
        match decision {
            AdmitDecision::Admitted(inner) => {
                FleetAdmitDecision::Admitted(self.bind(shard_idx, inner, request))
            }
            AdmitDecision::Queued {
                handle: inner,
                activates_at,
            } => FleetAdmitDecision::Queued {
                handle: self.bind(shard_idx, inner, request),
                activates_at,
            },
            AdmitDecision::Refused { predicted_slack } => {
                FleetAdmitDecision::Refused { predicted_slack }
            }
        }
    }

    /// Closes a fleet session early, at its shard's deterministic churn
    /// slot. Closing a session whose migration is still staged cancels
    /// the migration: the source close (already staged by
    /// [`ServerFleet::migrate`]) stands, and the suffix is never
    /// re-admitted — the target shard keeps no ghost slot.
    pub fn close(&mut self, handle: FleetHandle) -> bool {
        let Some(session) = self.sessions.get(handle.0) else {
            return false;
        };
        match session.phase {
            Phase::Settled => false,
            Phase::Migrating { .. } => {
                self.sessions[handle.0].phase = Phase::Settled;
                self.migrations_cancelled += 1;
                true
            }
            Phase::Live => {
                let shard = session.shard;
                let inner = session.inner;
                if session.generation != self.shards[shard].retired.len() {
                    return false;
                }
                self.shards[shard]
                    .server
                    .as_mut()
                    .is_some_and(|server| server.close(inner))
            }
        }
    }

    /// Stages a live migration: the session drains on its source shard
    /// at the deterministic churn slot (delivered count + dispatch
    /// window, via [`RenderServer::close`]), then its remaining path
    /// suffix re-admits on `target`'s shard through
    /// [`RenderServer::try_admit`]. The hand-off happens inside
    /// [`ServerFleet::next_frame`] at the drain point — a pure function
    /// of the delivered schedule.
    ///
    /// Returns `false` — staging nothing — when the handle is unknown
    /// or already settled/migrating, the target is the session's own
    /// scene, or the source has every frame scheduled already (nothing
    /// left to move).
    pub fn migrate(&mut self, handle: FleetHandle, target: &SceneSpec) -> bool {
        let target_idx = self.register_spec(target);
        let Some(session) = self.sessions.get(handle.0) else {
            return false;
        };
        if !matches!(session.phase, Phase::Live) {
            return false;
        }
        let source = session.shard;
        let inner = session.inner;
        if source == target_idx || session.generation != self.shards[source].retired.len() {
            return false;
        }
        let staged = self.shards[source]
            .server
            .as_mut()
            .is_some_and(|server| server.close(inner));
        if !staged {
            return false;
        }
        self.sessions[handle.0].phase = Phase::Migrating { target: target_idx };
        self.migrations += 1;
        true
    }

    /// Delivers the next frame of the fleet schedule, sweeping shards
    /// from a cyclic cursor (each delivery advances the cursor past its
    /// shard, so shards with work interleave fairly and
    /// deterministically). Migration hand-offs are finalized between
    /// deliveries — at drain points, never mid-flight. `None` when every
    /// shard is drained and no hand-off remains.
    pub fn next_frame(&mut self) -> Option<FleetFrame> {
        if self.shards.is_empty() {
            return None;
        }
        loop {
            let progressed = self.finalize_migrations();
            let shard_count = self.shards.len();
            let mut delivered = None;
            for probe in 0..shard_count {
                let idx = (self.cursor + probe) % shard_count;
                let Some(server) = self.shards[idx].server.as_mut() else {
                    continue;
                };
                if server.is_drained() {
                    continue;
                }
                if let Some(frame) = server.next_frame() {
                    self.cursor = (idx + 1) % shard_count;
                    delivered = Some((idx, frame));
                    break;
                }
            }
            let Some((idx, frame)) = delivered else {
                // Nothing delivered: the sweep may still have applied
                // staged drains, unblocking a hand-off. Retry while the
                // finalizer makes progress; otherwise the fleet is done.
                if progressed || self.finalize_migrations() {
                    continue;
                }
                return None;
            };
            self.slot += 1;
            let key = self.shards[idx].key.clone();
            self.cache.touch(&key, self.slot);
            let fleet_id = self.shards[idx].inner_to_fleet[frame.session];
            let path_index = self.sessions[fleet_id].offset + frame.report.index;
            return Some(FleetFrame {
                handle: FleetHandle(fleet_id),
                scene: key,
                shard: idx,
                path_index,
                frame,
            });
        }
    }

    /// Returns a delivered frame's buffer to its session's pool on its
    /// current shard, as [`RenderServer::recycle`]. `false` once the
    /// session's generation was retired (the pool is gone with it).
    pub fn recycle(&mut self, handle: FleetHandle, image: Image) -> bool {
        let Some(session) = self.sessions.get(handle.0) else {
            return false;
        };
        let shard = session.shard;
        if session.generation != self.shards[shard].retired.len() {
            return false;
        }
        let inner = session.inner.id();
        self.shards[shard]
            .server
            .as_mut()
            .is_some_and(|server| server.recycle(inner, image))
    }

    /// Serves every remaining frame (recycling buffers) and returns the
    /// fleet summary.
    pub fn run(&mut self) -> FleetSummary {
        while let Some(frame) = self.next_frame() {
            let handle = frame.handle;
            self.recycle(handle, frame.frame.report.image);
        }
        self.summary()
    }

    /// The fleet-wide account: per-shard summaries (one
    /// [`uni_microops::ServerSummary`] per residency generation), the
    /// delivered-slot clock, cache counters, and migration outcomes.
    pub fn summary(&self) -> FleetSummary {
        let shards: Vec<ShardSummary> = self
            .shards
            .iter()
            .map(|shard| ShardSummary {
                scene: shard.key.as_str().to_string(),
                route_hash: shard.key.route_hash(),
                servers: shard
                    .retired
                    .iter()
                    .cloned()
                    .chain(shard.server.as_ref().map(|s| s.summary()))
                    .collect(),
            })
            .collect();
        let deadline_misses = shards.iter().map(|s| s.deadline_misses()).sum();
        FleetSummary {
            delivered_frames: self.slot as usize,
            deadline_misses,
            cache: self.cache.stats(),
            migrations: self.migrations,
            migrations_completed: self.migrations_completed,
            migrations_cancelled: self.migrations_cancelled,
            migrations_refused: self.migrations_refused,
            shards,
        }
    }

    /// Stats of the session's *current* segment (after a migration,
    /// earlier segments live in the source shard's summary). `None` for
    /// unknown handles or retired generations whose record is gone.
    pub fn session_stats(&self, handle: FleetHandle) -> Option<SessionStats> {
        let session = self.sessions.get(handle.0)?;
        self.segment_stats(session.shard, session.generation, session.inner)
    }

    /// Scene-cache counters.
    pub fn cache_stats(&self) -> FleetCacheStats {
        self.cache.stats()
    }

    /// Registered shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Fleet sessions ever admitted (refused requests never count).
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Frames delivered so far — the fleet's schedule clock.
    pub fn delivered(&self) -> u64 {
        self.slot
    }

    /// Looks up or creates the shard owning `spec`'s scene.
    fn register_spec(&mut self, spec: &SceneSpec) -> usize {
        let key = SceneKey::of(spec);
        let hash = key.route_hash();
        if let Some(bucket) = self.routes.get(&hash) {
            for &idx in bucket {
                if self.shards[idx].key == key {
                    return idx;
                }
            }
        }
        let idx = self.shards.len();
        self.shards.push(Shard {
            key,
            spec: spec.clone(),
            server: None,
            retired: Vec::new(),
            inner_to_fleet: Vec::new(),
        });
        self.routes.entry(hash).or_default().push(idx);
        idx
    }

    /// Makes the shard's scene resident and its server live, evicting
    /// per the cache policy afterwards (the just-ensured scene and every
    /// scene with undrained sessions are pinned).
    fn ensure_server(&mut self, shard_idx: usize) {
        let key = self.shards[shard_idx].key.clone();
        let spec = self.shards[shard_idx].spec.clone();
        if self.shards[shard_idx].server.is_some() {
            // Already resident: count the hit and refresh recency — an
            // admit is a use of the scene just like a delivery.
            self.cache.acquire(&key, &spec, self.slot);
            return;
        }
        let scene = self.cache.acquire(&key, &spec, self.slot);
        let mut server = RenderServer::new(scene);
        if let Some(config) = self.accelerator {
            server = server.with_accelerator(Accelerator::new(config));
        }
        if let Some(factory) = &self.policy_factory {
            server = server.with_policy(factory());
        }
        if let Some(lanes) = self.lanes {
            server = server.with_lanes(lanes);
        }
        if let Some(overlap) = self.overlap {
            server = server.with_overlap(overlap);
        }
        if let Some(lookahead) = self.lookahead {
            server = server.with_lookahead(lookahead);
        }
        if let Some(control) = self.admission {
            server = server.with_admission_control(control);
        }
        if let Some(policy) = self.degradation {
            server = server.with_degradation(policy);
        }
        self.shards[shard_idx].server = Some(server);
        self.shards[shard_idx].inner_to_fleet.clear();
        self.enforce_capacity(shard_idx);
    }

    /// Evicts least-recently-delivered residents until the cache fits
    /// its budget, retiring each victim shard's server into its summary
    /// history. Pinned (undrained or just-ensured) scenes are never
    /// evicted — residency may transiently exceed the budget when every
    /// resident is pinned by live sessions.
    fn enforce_capacity(&mut self, protect: usize) {
        while self.cache.over_capacity() {
            let mut pinned: BTreeSet<SceneKey> = BTreeSet::new();
            pinned.insert(self.shards[protect].key.clone());
            for shard in &self.shards {
                if shard.server.as_ref().is_some_and(|s| !s.is_drained()) {
                    pinned.insert(shard.key.clone());
                }
            }
            let Some(victim) = self.cache.evict_candidate(&pinned) else {
                break;
            };
            self.cache.evict(&victim);
            if let Some(idx) = self.shard_of(&victim) {
                if let Some(server) = self.shards[idx].server.take() {
                    self.shards[idx].retired.push(server.summary());
                    self.shards[idx].inner_to_fleet.clear();
                }
            }
        }
    }

    /// Finalizes every staged migration whose source segment has
    /// drained: computes the consumed prefix (delivered + skipped — a
    /// schedule fact), then re-admits the remaining suffix on the target
    /// shard through its admission control. Returns whether any
    /// migration advanced.
    fn finalize_migrations(&mut self) -> bool {
        let mut progress = false;
        for sid in 0..self.sessions.len() {
            let Phase::Migrating { target } = self.sessions[sid].phase else {
                continue;
            };
            let source = self.sessions[sid].shard;
            let generation = self.sessions[sid].generation;
            let inner = self.sessions[sid].inner;
            let drained = if generation == self.shards[source].retired.len() {
                self.shards[source]
                    .server
                    .as_ref()
                    .is_none_or(|server| server.session_drained(inner))
            } else {
                // The generation was retired — everything in it settled.
                true
            };
            if !drained {
                continue;
            }
            progress = true;
            let consumed = self
                .segment_stats(source, generation, inner)
                .map_or(0, |s| s.frames + s.frames_skipped as usize);
            let next_index = self.sessions[sid].offset + consumed;
            if next_index >= self.sessions[sid].blueprint.path_len() {
                // The source segment drained the whole path: the
                // migration completes with nothing left to move.
                self.sessions[sid].phase = Phase::Settled;
                self.migrations_completed += 1;
                continue;
            }
            self.ensure_server(target);
            let request = self.sessions[sid].blueprint.request_from(next_index);
            let decision = self.shards[target]
                .server
                .as_mut()
                .expect("ensure_server built the shard server")
                .try_admit(request);
            match decision {
                AdmitDecision::Admitted(handle) | AdmitDecision::Queued { handle, .. } => {
                    let map = &mut self.shards[target].inner_to_fleet;
                    if map.len() <= handle.id() {
                        map.resize(handle.id() + 1, usize::MAX);
                    }
                    map[handle.id()] = sid;
                    let generation = self.shards[target].retired.len();
                    let session = &mut self.sessions[sid];
                    session.shard = target;
                    session.generation = generation;
                    session.inner = handle;
                    session.offset = next_index;
                    session.phase = Phase::Live;
                    self.migrations_completed += 1;
                }
                AdmitDecision::Refused { .. } => {
                    self.sessions[sid].phase = Phase::Settled;
                    self.migrations_refused += 1;
                }
            }
        }
        progress
    }

    /// Binds a freshly admitted shard session to a new fleet session.
    fn bind(
        &mut self,
        shard_idx: usize,
        inner: SessionHandle,
        blueprint: FleetSessionRequest,
    ) -> FleetHandle {
        let fleet_id = self.sessions.len();
        let shard = &mut self.shards[shard_idx];
        if shard.inner_to_fleet.len() <= inner.id() {
            shard.inner_to_fleet.resize(inner.id() + 1, usize::MAX);
        }
        shard.inner_to_fleet[inner.id()] = fleet_id;
        self.sessions.push(FleetSession {
            shard: shard_idx,
            generation: shard.retired.len(),
            inner,
            offset: 0,
            blueprint,
            phase: Phase::Live,
        });
        FleetHandle(fleet_id)
    }

    /// A segment's stats, whether its generation is live or retired.
    fn segment_stats(
        &self,
        shard: usize,
        generation: usize,
        inner: SessionHandle,
    ) -> Option<SessionStats> {
        let shard = &self.shards[shard];
        if generation == shard.retired.len() {
            shard
                .server
                .as_ref()
                .and_then(|server| server.session_stats(inner))
        } else {
            shard
                .retired
                .get(generation)
                .and_then(|summary| summary.session(inner.id()).cloned())
        }
    }
}
