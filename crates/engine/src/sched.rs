//! Policy-driven frame scheduling for [`crate::RenderServer`].
//!
//! Uni-Render time-multiplexes *diverse* renderers on one reconfigurable
//! accelerator, paying an explicit PE-array reconfiguration whenever two
//! consecutively scheduled frames straddle different micro-operator
//! families. *Which order* the schedule visits sessions in is therefore a
//! first-class knob: it decides both latency distribution across users
//! and how many boundary reconfigurations the device pays. This module
//! makes that knob pluggable while keeping the serving contract the
//! server has always had — the schedule is **deterministic**: a pure
//! function of the session mix and the policy, never of lane timing or
//! `UNI_RENDER_THREADS`.
//!
//! A [`SchedulePolicy`] deterministically picks the next session to
//! schedule from a snapshot of runnable-session state
//! ([`SessionView`]s: remaining frames, weight, priority, sim-time
//! consumed, deadline slack, last-scheduled tick) plus a
//! [`PolicyContext`] (current tick, previously scheduled
//! session/pipeline, delivered sim-time, and the server's learned
//! [`SwitchCostModel`]). Five built-ins ship:
//!
//! - [`RoundRobin`] — strict cyclic session order, bit-compatible with
//!   the server's original hard-coded schedule;
//! - [`WeightedFair`] — deficit-style fair sharing: always schedules the
//!   backlogged session with the least accumulated sim-time per unit
//!   weight, so sim-time shares track weights within one frame's cost;
//! - [`Priority`] — strict priority levels (higher [`priority`] wins),
//!   round-robin within a level;
//! - [`EarliestDeadline`] — strict EDF over sim-time deadlines
//!   ([`crate::SessionRequest::deadline_hz`]): the runnable session
//!   whose next frame is due soonest always goes first;
//! - [`CostAware`] — reconfiguration-aware coalescing with a latency
//!   conscience: extends a same-pipeline batch only while the estimated
//!   switch saving ([`SwitchCostModel`]) exceeds the worst slack loss
//!   the extra delay would induce on deadline-bound sessions.
//!
//! The first three built-ins accept a `coalesce_switches` knob: when the
//! previously scheduled frame's pipeline still has a runnable session,
//! the policy keeps scheduling that pipeline (within whatever its base
//! order allows) to batch same-pipeline frames and amortize boundary
//! reconfigurations — the reconfiguration-aware scheduling the paper's
//! hybrid figures probe. [`CostAware`] is the *quantitative* version of
//! that knob.
//!
//! [`priority`]: SessionView::priority

use uni_microops::{Pipeline, SwitchCostModel};

/// A typed handle to one serving session of a [`crate::RenderServer`].
///
/// Returned by [`crate::RenderServer::admit`]; pass it back to
/// [`close`](crate::RenderServer::close),
/// [`session_stats`](crate::RenderServer::session_stats), and
/// [`recycle`](crate::RenderServer::recycle). Handles are dense indices
/// in admission order, so [`SessionHandle::id`] doubles as the session's
/// position in [`uni_microops::ServerSummary::per_session`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionHandle(pub(crate) usize);

impl SessionHandle {
    /// The session's dense id (admission order).
    pub fn id(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for SessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

impl From<SessionHandle> for usize {
    fn from(handle: SessionHandle) -> usize {
        handle.0
    }
}

/// Snapshot of one schedulable session, as a policy sees it.
///
/// The server builds one view per *live* session — admitted (active),
/// not closed, with at least one frame left to schedule — in session-id
/// order. Everything in the view is deterministic serving state:
/// identical inputs produce identical views at any thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionView {
    /// Dense session id ([`SessionHandle::id`]).
    pub session: usize,
    /// The pipeline family this session renders with (what a boundary
    /// reconfiguration is paid to switch between).
    pub pipeline: Pipeline,
    /// Frames of the session's path not yet scheduled.
    pub remaining: usize,
    /// Fair-share weight (≥ 1; see [`crate::SessionRequest::weight`]).
    pub weight: u32,
    /// Priority level (higher wins; see
    /// [`crate::SessionRequest::priority`]).
    pub priority: u8,
    /// Frames of this session delivered so far.
    pub delivered: usize,
    /// Simulated seconds charged to this session's *delivered* frames,
    /// including boundary reconfigurations paid entering them. Stays
    /// `0.0` when the server has no accelerator attached (nothing is
    /// simulated).
    pub sim_seconds: f64,
    /// Absolute sim-time (seconds on the server's delivered-frame axis)
    /// the session's next unscheduled frame is due, per its
    /// [`crate::SessionRequest::deadline_hz`] rate; `None` for
    /// best-effort sessions.
    pub deadline: Option<f64>,
    /// Sim-time slack of the next unscheduled frame: its deadline minus
    /// the delivered sim-time ([`PolicyContext::now_seconds`]). Negative
    /// means the frame is already late before it is even scheduled.
    /// `None` for best-effort sessions.
    pub slack: Option<f64>,
    /// Tick at which the session was most recently scheduled (`None`
    /// until its first frame is scheduled).
    pub last_scheduled: Option<u64>,
}

/// Schedule-wide state a policy may condition on.
///
/// Everything here is settled *serving* state — a pure function of the
/// schedule delivered so far, identical at any thread count. Policies
/// that read the feedback fields ([`now_seconds`], [`switch_costs`], or
/// [`SessionView::sim_seconds`] / [`SessionView::slack`]) must bound
/// [`SchedulePolicy::max_in_flight`] to 1 so decisions see fully
/// delivered accounting.
///
/// [`now_seconds`]: PolicyContext::now_seconds
/// [`switch_costs`]: PolicyContext::switch_costs
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PolicyContext<'a> {
    /// The slot being scheduled: ticks count scheduled frames from 0.
    pub tick: u64,
    /// Session scheduled at the previous tick, if any.
    pub last_session: Option<usize>,
    /// Pipeline scheduled at the previous tick, if any — the PE-array
    /// mode the accelerator is (logically) left in, which
    /// switch-coalescing policies try to keep serving.
    pub last_pipeline: Option<Pipeline>,
    /// Cumulative simulated seconds of every *delivered* frame — the
    /// sim-time "now" that deadlines and slack are measured against.
    /// Stays `0.0` on accelerator-less servers.
    pub now_seconds: f64,
    /// The server's renderer-switch cost estimator, learned from the
    /// boundary history of the schedule as served (`None` on
    /// accelerator-less servers — nothing charges boundaries there).
    pub switch_costs: Option<&'a SwitchCostModel>,
    /// Aggregate feasibility view of the admitted load — the same
    /// numbers admission control conditions on, recomputed at each
    /// delivered frame so policies can react to developing overload.
    /// All fields are schedule-order facts.
    pub load: LoadView,
}

/// Aggregate load/feasibility facts exposed to policies and admission
/// control: how much work one scheduling round over the live sessions is
/// predicted to take, against the tightest deadline period it must fit.
/// Derived exclusively from settled (delivered) accounting plus the
/// switch-cost model — never from lane timing.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LoadView {
    /// Sessions currently schedulable (admitted, active, not drained).
    pub live_sessions: usize,
    /// How many of those carry a `deadline_hz`.
    pub deadline_bound: usize,
    /// Predicted sim seconds of one round-robin visit over the live
    /// sessions: the sum of per-session mean frame costs (priors where
    /// unobserved) plus the round's switch overhead.
    pub predicted_round_seconds: f64,
    /// The tightest deadline period (seconds per frame) of any live
    /// deadline-bound session; `None` when every session is best-effort.
    pub min_period: Option<f64>,
}

impl LoadView {
    /// Predicted slack of the tightest deadline against one round:
    /// `min_period - predicted_round_seconds`. `None` when no session is
    /// deadline-bound; negative means a round is predicted not to fit.
    pub fn predicted_slack(&self) -> Option<f64> {
        self.min_period.map(|p| p - self.predicted_round_seconds)
    }
}

/// Former name of [`PolicyContext`], kept for downstream policies
/// written against the PR 4 surface.
pub type ScheduleContext<'a> = PolicyContext<'a>;

/// A deterministic scheduling policy for [`crate::RenderServer`].
///
/// # Contract
///
/// - **Determinism.** `pick` must be a pure function of `(ctx, sessions)`
///   and the policy's own configuration. The server may call it several
///   times with identical inputs (e.g. while the picked session is still
///   in flight) and relies on getting the same answer. Never consult
///   wall-clock time, thread ids, or other ambient state.
/// - **Validity.** Return the [`SessionView::session`] id of one of the
///   presented views, or `None` to schedule nothing. Picking a session
///   whose previous frame is still undelivered is legal and means "wait
///   for that session" — the server stalls dispatch rather than
///   reordering. (Whether a pick stalls is *execution* state; it is
///   deliberately absent from the views so policies cannot condition on
///   lane timing.)
/// - **Feedback.** [`SessionView::sim_seconds`] only advances when frames
///   are *delivered*. A policy whose decisions depend on it must bound
///   [`max_in_flight`](SchedulePolicy::max_in_flight) so decisions are
///   made on settled state; feedback-free policies (round-robin,
///   priority) can leave it unbounded and enjoy full lane overlap.
pub trait SchedulePolicy: Send {
    /// Short machine-readable policy name (reported in
    /// [`uni_microops::ServerSummary::policy`] and `BENCH_serve.json`).
    fn name(&self) -> &'static str;

    /// Picks the session whose next frame should occupy slot
    /// `ctx.tick`, or `None` if nothing should be scheduled.
    fn pick(&mut self, ctx: &PolicyContext<'_>, sessions: &[SessionView]) -> Option<usize>;

    /// Upper bound on scheduled-but-undelivered frames. The server
    /// dispatches at most `min(max_in_flight, lookahead, lanes)` frames
    /// beyond the delivered prefix. Policies that read
    /// [`SessionView::sim_seconds`] must return `1` so every decision
    /// sees fully settled accounting; the default is unbounded.
    fn max_in_flight(&self) -> usize {
        usize::MAX
    }
}

impl SchedulePolicy for Box<dyn SchedulePolicy> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn pick(&mut self, ctx: &PolicyContext<'_>, sessions: &[SessionView]) -> Option<usize> {
        (**self).pick(ctx, sessions)
    }

    fn max_in_flight(&self) -> usize {
        (**self).max_in_flight()
    }
}

/// Restricts `sessions` to the previously scheduled pipeline when
/// switch-coalescing applies, otherwise returns them unchanged.
///
/// Coalescing keeps the PE array in its current mode while *any*
/// presented session still runs that pipeline; the base policy then
/// orders within the restricted set. When the current mode has no
/// runnable session left (or nothing was scheduled yet), the base policy
/// sees the full set and the schedule pays the one unavoidable switch.
fn coalesce<'a>(
    enabled: bool,
    ctx: &PolicyContext<'_>,
    sessions: &'a [SessionView],
    scratch: &'a mut Vec<SessionView>,
) -> &'a [SessionView] {
    let Some(last) = ctx.last_pipeline else {
        return sessions;
    };
    if !enabled {
        return sessions;
    }
    scratch.clear();
    scratch.extend(sessions.iter().filter(|v| v.pipeline == last).copied());
    if scratch.is_empty() {
        sessions
    } else {
        scratch
    }
}

/// Cyclic-order pick: the first session id strictly after
/// `ctx.last_session`, wrapping to the lowest id. With views presented in
/// id order this reproduces the server's original round-robin cursor bit
/// for bit.
fn round_robin_pick(ctx: &PolicyContext<'_>, sessions: &[SessionView]) -> Option<usize> {
    let after = ctx.last_session.map_or(0, |s| s + 1);
    sessions
        .iter()
        .find(|v| v.session >= after)
        .or_else(|| sessions.first())
        .map(|v| v.session)
}

/// Round-robin among `sessions` by recency: least-recently-scheduled
/// first, never-scheduled sessions first of all, ties by session id.
fn least_recent_pick(sessions: &[SessionView]) -> Option<usize> {
    sessions
        .iter()
        .min_by_key(|v| (v.last_scheduled.map_or(0, |t| t + 1), v.session))
        .map(|v| v.session)
}

/// Strict cyclic session order — the server's original contract.
///
/// Sessions are visited in ascending id order, wrapping; a session with
/// no frames left drops out of the cycle. With `coalesce_switches` off
/// (the default) the schedule is bit-compatible with the pre-policy
/// `RenderServer`, which the golden/determinism suites pin.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    coalesce_switches: bool,
    scratch: Vec<SessionView>,
}

impl RoundRobin {
    /// Plain round-robin (no switch coalescing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables (or disables) batching same-pipeline frames to amortize
    /// boundary reconfigurations: the cycle restricts itself to sessions
    /// of the previously scheduled pipeline while any remain runnable.
    pub fn coalesce_switches(mut self, coalesce: bool) -> Self {
        self.coalesce_switches = coalesce;
        self
    }
}

impl SchedulePolicy for RoundRobin {
    fn name(&self) -> &'static str {
        if self.coalesce_switches {
            "round_robin_coalesced"
        } else {
            "round_robin"
        }
    }

    fn pick(&mut self, ctx: &PolicyContext<'_>, sessions: &[SessionView]) -> Option<usize> {
        let pool = coalesce(self.coalesce_switches, ctx, sessions, &mut self.scratch);
        round_robin_pick(ctx, pool)
    }
}

/// Deficit-style weighted fair sharing by accumulated sim-time credit.
///
/// Every pick goes to the backlogged session with the smallest
/// `sim_seconds / weight` — the one furthest behind its fair share of
/// accelerator time. Shares therefore track weights within one frame's
/// sim cost while every session stays backlogged (pinned by
/// `tests/server_policies.rs`). Ties break to the least recently
/// scheduled session, then the lowest id, so equal-credit sessions
/// round-robin.
///
/// On a server *without* an accelerator nothing is simulated and
/// `sim_seconds` never advances; the policy then falls back to
/// delivered-frame counts as the credit (weighted fairness by frames
/// instead of sim-time). The fallback engages only while every
/// presented session's sim-time is zero, so simulated servers are
/// unaffected.
///
/// The policy reads delivered sim-time, so it caps
/// [`max_in_flight`](SchedulePolicy::max_in_flight) at 1: every decision
/// sees settled accounting, trading lane overlap for exact fairness.
/// Admissions and closes consequently take effect on the very next tick.
#[derive(Debug, Clone, Default)]
pub struct WeightedFair {
    coalesce_switches: bool,
    scratch: Vec<SessionView>,
}

impl WeightedFair {
    /// Fair sharing by `sim_seconds / weight` credit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables batching same-pipeline frames; fairness then holds only up
    /// to the length of each coalesced run.
    pub fn coalesce_switches(mut self, coalesce: bool) -> Self {
        self.coalesce_switches = coalesce;
        self
    }
}

impl SchedulePolicy for WeightedFair {
    fn name(&self) -> &'static str {
        if self.coalesce_switches {
            "weighted_fair_coalesced"
        } else {
            "weighted_fair"
        }
    }

    fn pick(&mut self, ctx: &PolicyContext<'_>, sessions: &[SessionView]) -> Option<usize> {
        let pool = coalesce(self.coalesce_switches, ctx, sessions, &mut self.scratch);
        // No sim-time anywhere (accelerator-less server, or nothing
        // delivered yet): fair-share by delivered frames instead.
        let simulated = pool.iter().any(|v| v.sim_seconds > 0.0);
        let consumed = |v: &SessionView| {
            if simulated {
                v.sim_seconds
            } else {
                v.delivered as f64
            }
        };
        pool.iter()
            .min_by(|a, b| {
                let credit_a = consumed(a) / f64::from(a.weight.max(1));
                let credit_b = consumed(b) / f64::from(b.weight.max(1));
                credit_a
                    .total_cmp(&credit_b)
                    .then_with(|| {
                        let recency = |v: &SessionView| v.last_scheduled.map_or(0, |t| t + 1);
                        recency(a).cmp(&recency(b))
                    })
                    .then_with(|| a.session.cmp(&b.session))
            })
            .map(|v| v.session)
    }

    fn max_in_flight(&self) -> usize {
        1
    }
}

/// Strict priority levels with round-robin inside each level.
///
/// The runnable session with the highest [`SessionView::priority`] always
/// wins; among equal-priority sessions the least recently scheduled goes
/// first (ties by id), i.e. plain round-robin. Strictness includes
/// waiting: if the top-priority session's previous frame is still in
/// flight the schedule stalls rather than letting a lower level jump in.
///
/// With `coalesce_switches`, same-pipeline batching applies *within* the
/// top priority level only — coalescing never lets a lower level preempt
/// a higher one.
#[derive(Debug, Clone, Default)]
pub struct Priority {
    coalesce_switches: bool,
    level: Vec<SessionView>,
    scratch: Vec<SessionView>,
}

impl Priority {
    /// Strict levels, round-robin within a level.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables batching same-pipeline frames within the top level.
    pub fn coalesce_switches(mut self, coalesce: bool) -> Self {
        self.coalesce_switches = coalesce;
        self
    }
}

impl SchedulePolicy for Priority {
    fn name(&self) -> &'static str {
        if self.coalesce_switches {
            "priority_coalesced"
        } else {
            "priority"
        }
    }

    fn pick(&mut self, ctx: &PolicyContext<'_>, sessions: &[SessionView]) -> Option<usize> {
        let top = sessions.iter().map(|v| v.priority).max()?;
        self.level.clear();
        self.level
            .extend(sessions.iter().filter(|v| v.priority == top).copied());
        least_recent_pick(coalesce(
            self.coalesce_switches,
            ctx,
            &self.level,
            &mut self.scratch,
        ))
    }
}

/// Urgency order shared by [`EarliestDeadline`] and [`CostAware`]: the
/// session whose next frame is due soonest goes first; best-effort
/// sessions (no deadline) rank behind every deadline-bound one, ordered
/// among themselves by recency (round-robin). All ties break on the
/// session id — the deterministic tie-break the EDF contract pins.
fn earliest_deadline_pick(sessions: &[SessionView]) -> Option<usize> {
    sessions
        .iter()
        .min_by(|a, b| {
            let due = |v: &SessionView| v.deadline.unwrap_or(f64::INFINITY);
            due(a)
                .total_cmp(&due(b))
                .then_with(|| {
                    let recency = |v: &SessionView| v.last_scheduled.map_or(0, |t| t + 1);
                    recency(a).cmp(&recency(b))
                })
                .then_with(|| a.session.cmp(&b.session))
        })
        .map(|v| v.session)
}

/// Strict earliest-deadline-first over sim-time deadlines.
///
/// Sessions declare a per-frame deadline rate with
/// [`crate::SessionRequest::deadline_hz`]; the policy always schedules
/// the runnable session whose next frame is due soonest on the sim-time
/// axis, deterministic ties broken by recency then session id
/// ([`SessionHandle::id`]). Best-effort sessions (no deadline) run only
/// while no deadline-bound session is runnable, round-robin among
/// themselves.
///
/// The policy reads delivered sim-time (deadlines and slack settle only
/// at delivery), so it caps
/// [`max_in_flight`](SchedulePolicy::max_in_flight) at 1: every decision
/// sees completed accounting — the trade the deadline contract requires,
/// since a decision made on stale slack could invert the EDF order.
#[derive(Debug, Clone, Copy, Default)]
pub struct EarliestDeadline;

impl EarliestDeadline {
    /// Strict EDF, deterministic tie-break on session id.
    pub fn new() -> Self {
        Self
    }
}

impl SchedulePolicy for EarliestDeadline {
    fn name(&self) -> &'static str {
        "earliest_deadline"
    }

    fn pick(&mut self, _ctx: &PolicyContext<'_>, sessions: &[SessionView]) -> Option<usize> {
        earliest_deadline_pick(sessions)
    }

    fn max_in_flight(&self) -> usize {
        1
    }
}

/// Cost-aware switch coalescing: batch same-pipeline frames *only while
/// the switching cost saved exceeds the deadline slack destroyed*.
///
/// The fixed `coalesce_switches` knob batches unconditionally — great
/// for reconfiguration-dominated mixes, blind to latency. This policy
/// prices both sides of the trade each tick, using the server's learned
/// [`SwitchCostModel`] ([`PolicyContext::switch_costs`]):
///
/// - **base order is urgency**: like [`EarliestDeadline`], the most
///   urgent runnable session is the default pick (best-effort sessions
///   round-robin behind deadline-bound ones), so batches start with —
///   and whole batches are ordered by — who is due soonest;
/// - **extending a batch**: when the urgent pick would leave the current
///   pipeline while some session of that pipeline is still runnable, the
///   policy estimates the *switch saving* of staying (cost of the
///   urgent pick's boundary minus cost of the same-pipeline boundary)
///   and the *worst induced slack loss* — for every deadline-bound
///   session outside the batch, how much of the extra delay (one more
///   batched frame, estimated from the batch session's mean delivered
///   frame time) lands below zero slack. The batch extends only while
///   saving exceeds loss.
///
/// With no deadline-bound sessions the loss is always zero and the
/// policy coalesces exactly as hard as the fixed knob — it never pays
/// *more* reconfigurations than `RoundRobin::coalesce_switches(true)` on
/// a deadline-free workload. With deadlines, it spends its switch budget
/// where the cost model says it is cheap and breaks batches where slack
/// says it must.
///
/// Reads sim-time feedback (slack, mean frame cost, learned switch
/// costs), so [`max_in_flight`](SchedulePolicy::max_in_flight) is 1.
#[derive(Debug, Clone, Default)]
pub struct CostAware {
    batch: Vec<SessionView>,
}

impl CostAware {
    /// Cost-aware coalescing over the server's learned switch costs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Expected sim seconds one more frame of `candidate` would occupy
    /// the accelerator for: the session's mean delivered frame time,
    /// falling back to the mean over all delivered frames in the views
    /// (a cold session borrows the workload's typical frame), then 0.
    fn expected_frame_seconds(candidate: &SessionView, sessions: &[SessionView]) -> f64 {
        if candidate.delivered > 0 {
            return candidate.sim_seconds / candidate.delivered as f64;
        }
        let (sum, frames) = sessions.iter().fold((0.0, 0usize), |(s, n), v| {
            (s + v.sim_seconds, n + v.delivered)
        });
        if frames > 0 {
            sum / frames as f64
        } else {
            0.0
        }
    }
}

impl SchedulePolicy for CostAware {
    fn name(&self) -> &'static str {
        "cost_aware"
    }

    fn pick(&mut self, ctx: &PolicyContext<'_>, sessions: &[SessionView]) -> Option<usize> {
        let urgent = earliest_deadline_pick(sessions)?;
        let Some(last) = ctx.last_pipeline else {
            return Some(urgent);
        };
        let urgent_view = sessions
            .iter()
            .find(|v| v.session == urgent)
            .expect("picked from sessions");
        if urgent_view.pipeline == last {
            // Continuing the batch is also the urgent choice: free win.
            return Some(urgent);
        }
        self.batch.clear();
        self.batch
            .extend(sessions.iter().filter(|v| v.pipeline == last).copied());
        let Some(stay) = earliest_deadline_pick(&self.batch) else {
            // Current mode has drained: the switch is unavoidable.
            return Some(urgent);
        };
        let stay_view = self
            .batch
            .iter()
            .find(|v| v.session == stay)
            .expect("picked from batch");
        // Switch saving of extending the batch one more frame instead of
        // following the urgent pick out of the current mode.
        let saving = ctx
            .switch_costs
            .map_or(0.0, |m| m.saving(last, last, urgent_view.pipeline));
        if saving <= 0.0 {
            return Some(urgent);
        }
        // Extending delays every session outside the batch by one more
        // frame of the batch session; the slack a deadline-bound session
        // loses is the part of that delay below zero slack.
        let delay = Self::expected_frame_seconds(stay_view, sessions);
        let worst_loss = sessions
            .iter()
            .filter(|v| v.pipeline != last)
            .filter_map(|v| v.slack)
            .map(|slack| (delay - slack).clamp(0.0, delay))
            .fold(0.0, f64::max);
        if saving > worst_loss {
            Some(stay)
        } else {
            Some(urgent)
        }
    }

    fn max_in_flight(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(session: usize, pipeline: Pipeline) -> SessionView {
        SessionView {
            session,
            pipeline,
            remaining: 2,
            weight: 1,
            priority: 0,
            delivered: 0,
            sim_seconds: 0.0,
            deadline: None,
            slack: None,
            last_scheduled: None,
        }
    }

    fn ctx(
        tick: u64,
        last_session: Option<usize>,
        last_pipeline: Option<Pipeline>,
    ) -> PolicyContext<'static> {
        PolicyContext {
            tick,
            last_session,
            last_pipeline,
            ..PolicyContext::default()
        }
    }

    #[test]
    fn round_robin_cycles_in_id_order_and_wraps() {
        let mut rr = RoundRobin::new();
        let views = [
            view(0, Pipeline::Mesh),
            view(2, Pipeline::Mlp),
            view(5, Pipeline::Mesh),
        ];
        assert_eq!(rr.pick(&ctx(0, None, None), &views), Some(0));
        assert_eq!(rr.pick(&ctx(1, Some(0), None), &views), Some(2));
        assert_eq!(rr.pick(&ctx(2, Some(2), None), &views), Some(5));
        // Wraps past the highest id back to the lowest.
        assert_eq!(rr.pick(&ctx(3, Some(5), None), &views), Some(0));
        // A drained session simply disappears from the views: the cursor
        // lands on the next live id.
        let views = [view(0, Pipeline::Mesh), view(5, Pipeline::Mesh)];
        assert_eq!(rr.pick(&ctx(4, Some(2), None), &views), Some(5));
        assert_eq!(rr.pick(&ctx(5, None, None), &[]), None);
    }

    #[test]
    fn coalesced_round_robin_sticks_to_the_current_pipeline() {
        let mut rr = RoundRobin::new().coalesce_switches(true);
        let views = [
            view(0, Pipeline::Gaussian3d),
            view(1, Pipeline::Mesh),
            view(2, Pipeline::Gaussian3d),
        ];
        // Mode is Gaussian: the cycle restricts to gaussian sessions.
        let c = ctx(3, Some(0), Some(Pipeline::Gaussian3d));
        assert_eq!(rr.pick(&c, &views), Some(2));
        let c = ctx(4, Some(2), Some(Pipeline::Gaussian3d));
        assert_eq!(rr.pick(&c, &views), Some(0), "wraps within the pipeline");
        // Once no gaussian session remains, the switch is paid and the
        // full cycle returns.
        let views = [view(1, Pipeline::Mesh)];
        let c = ctx(5, Some(0), Some(Pipeline::Gaussian3d));
        assert_eq!(rr.pick(&c, &views), Some(1));
    }

    #[test]
    fn weighted_fair_schedules_the_most_behind_session() {
        let mut wf = WeightedFair::new();
        let mut a = view(0, Pipeline::Mesh);
        let mut b = view(1, Pipeline::Mesh);
        b.weight = 3;
        // Equal credit (0/1 vs 0/3): ties round-robin by recency then id.
        assert_eq!(wf.pick(&ctx(0, None, None), &[a, b]), Some(0));
        a.sim_seconds = 0.9;
        a.last_scheduled = Some(0);
        // a: 0.9 credit, b: 0.0 — b is behind.
        assert_eq!(wf.pick(&ctx(1, Some(0), None), &[a, b]), Some(1));
        b.sim_seconds = 0.9;
        b.last_scheduled = Some(1);
        // a: 0.9/1, b: 0.9/3 = 0.3 — weight keeps b ahead of its share.
        assert_eq!(wf.pick(&ctx(2, Some(1), None), &[a, b]), Some(1));
        b.sim_seconds = 3.0;
        // a: 0.9, b: 1.0 — now a is behind.
        assert_eq!(wf.pick(&ctx(3, Some(1), None), &[a, b]), Some(0));
        assert_eq!(wf.max_in_flight(), 1, "feedback policy settles each tick");
    }

    #[test]
    fn priority_is_strict_with_round_robin_inside_levels() {
        let mut p = Priority::new();
        let mut low = view(0, Pipeline::Mesh);
        low.priority = 0;
        let mut hi_a = view(1, Pipeline::Mlp);
        hi_a.priority = 7;
        let mut hi_b = view(2, Pipeline::Mlp);
        hi_b.priority = 7;
        assert_eq!(p.pick(&ctx(0, None, None), &[low, hi_a, hi_b]), Some(1));
        hi_a.last_scheduled = Some(0);
        assert_eq!(
            p.pick(&ctx(1, Some(1), None), &[low, hi_a, hi_b]),
            Some(2),
            "round-robin within the level"
        );
        hi_b.last_scheduled = Some(1);
        assert_eq!(p.pick(&ctx(2, Some(2), None), &[low, hi_a, hi_b]), Some(1));
        // Only when the level drains does the lower level run.
        assert_eq!(p.pick(&ctx(3, Some(1), None), &[low]), Some(0));
    }

    fn deadline_view(session: usize, pipeline: Pipeline, deadline: f64, now: f64) -> SessionView {
        SessionView {
            deadline: Some(deadline),
            slack: Some(deadline - now),
            ..view(session, pipeline)
        }
    }

    #[test]
    fn earliest_deadline_is_strict_with_id_tie_break() {
        let mut edf = EarliestDeadline::new();
        let views = [
            deadline_view(0, Pipeline::Mesh, 0.5, 0.0),
            deadline_view(1, Pipeline::Mlp, 0.2, 0.0),
            view(2, Pipeline::Mesh), // best-effort: behind every deadline
        ];
        assert_eq!(edf.pick(&ctx(0, None, None), &views), Some(1));
        // Equal deadlines and recency: the lower id wins.
        let tied = [
            deadline_view(3, Pipeline::Mesh, 0.2, 0.0),
            deadline_view(1, Pipeline::Mlp, 0.2, 0.0),
        ];
        assert_eq!(edf.pick(&ctx(1, None, None), &tied), Some(1));
        // Only best-effort sessions left: round-robin by recency.
        let mut a = view(4, Pipeline::Mesh);
        a.last_scheduled = Some(7);
        let b = view(5, Pipeline::Mlp);
        assert_eq!(edf.pick(&ctx(2, Some(4), None), &[a, b]), Some(5));
        assert_eq!(edf.max_in_flight(), 1, "EDF decides on settled slack");
    }

    #[test]
    fn cost_aware_extends_batches_only_while_the_saving_covers_the_slack_loss() {
        fn in_mesh_mode(model: Option<&SwitchCostModel>) -> PolicyContext<'_> {
            PolicyContext {
                tick: 4,
                last_session: Some(0),
                last_pipeline: Some(Pipeline::Mesh),
                now_seconds: 0.0,
                switch_costs: model,
                load: LoadView::default(),
            }
        }
        let mut ca = CostAware::new();
        // Batch session (mesh, mode we're in) has delivered frames at 0.4s
        // each; the urgent pick is an mlp session due soonest.
        let mut batch = deadline_view(0, Pipeline::Mesh, 10.0, 0.0);
        batch.delivered = 2;
        batch.sim_seconds = 0.8;
        let urgent = deadline_view(1, Pipeline::Mlp, 1.0, 0.0);
        let mut model = SwitchCostModel::seeded(1.0);
        // Saving 1.0 (seeded cross cost) vs zero slack loss (urgent has
        // 1.0s slack, delay is 0.4s): extend the batch.
        assert_eq!(
            ca.pick(&in_mesh_mode(Some(&model)), &[batch, urgent]),
            Some(0)
        );
        // Tight slack (0.1s < 0.4s delay -> 0.3s loss) beats a saving
        // shrunk to 0.2s: the batch breaks in favour of the urgent
        // session.
        let tight = deadline_view(1, Pipeline::Mlp, 0.1, 0.0);
        model.seed_pair(Pipeline::Mesh, Pipeline::Mlp, 0.2);
        assert_eq!(
            ca.pick(&in_mesh_mode(Some(&model)), &[batch, tight]),
            Some(1)
        );
        // No cost model (accelerator-less server): nothing to save, so
        // the urgent order rules.
        assert_eq!(ca.pick(&in_mesh_mode(None), &[batch, urgent]), Some(1));
        // When the urgent pick is already in the batch, it just runs.
        let urgent_mesh = deadline_view(2, Pipeline::Mesh, 0.5, 0.0);
        assert_eq!(
            ca.pick(&in_mesh_mode(Some(&model)), &[batch, urgent_mesh]),
            Some(2)
        );
        assert_eq!(ca.max_in_flight(), 1);
    }

    #[test]
    fn handles_are_ids() {
        let h = SessionHandle(3);
        assert_eq!(h.id(), 3);
        assert_eq!(usize::from(h), 3);
        assert_eq!(h.to_string(), "session#3");
    }
}
