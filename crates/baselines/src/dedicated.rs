//! Models of the dedicated neural-rendering accelerators.
//!
//! Each supports exactly one pipeline (the "×" bars in Figs. 7 and 16) and
//! executes it with high efficiency — often beating Uni-Render on its home
//! turf, which is the paper's overhead-versus-flexibility trade-off
//! (Sec. VII-E). Throughput and power parameters are fitted to the
//! cross-accelerator ratios the paper reports; see [`crate::calibration`].

use crate::commercial::{DeviceProfile, RooflineDevice};
use crate::{Device, DeviceReport};
use serde::{Deserialize, Serialize};
use uni_microops::{MicroOp, Pipeline, Trace};

/// A single-pipeline accelerator wrapping a tuned roofline core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DedicatedAccelerator {
    core: RooflineDevice,
    pipeline: Pipeline,
    /// Workload reduction from algorithm-level tricks baked into the chip
    /// (e.g. MetaVRain's Pixel-Reuse cuts compute ~20×).
    workload_divisor: f64,
}

impl DedicatedAccelerator {
    /// Builds a dedicated accelerator supporting one pipeline.
    pub fn new(core: RooflineDevice, pipeline: Pipeline, workload_divisor: f64) -> Self {
        assert!(workload_divisor >= 1.0, "divisor cannot add work");
        Self {
            core,
            pipeline,
            workload_divisor,
        }
    }

    /// The single pipeline this chip accelerates.
    pub fn pipeline(&self) -> Pipeline {
        self.pipeline
    }
}

impl Device for DedicatedAccelerator {
    fn name(&self) -> &str {
        self.core.name()
    }

    fn power_w(&self) -> f64 {
        self.core.power_w()
    }

    fn supports(&self, pipeline: Pipeline) -> bool {
        pipeline == self.pipeline
    }

    fn execute(&self, trace: &Trace) -> Option<DeviceReport> {
        if !self.supports(trace.pipeline()) {
            return None;
        }
        let base = self.core.execute(trace)?;
        let seconds = (base.seconds / self.workload_divisor).max(1e-5); // Chips still pay a minimal frame time.
        Some(DeviceReport {
            seconds,
            energy_j: seconds * self.power_w(),
        })
    }
}

/// A dedicated ASIC achieves roughly uniform efficiency on its target
/// workload: no shader scalarization, no cache thrash — the workload is
/// exactly what the datapath was built for.
fn asic_profile(compute: f64, memory: f64) -> DeviceProfile {
    DeviceProfile {
        triangle: (compute, memory),
        splat: (compute, memory),
        texture2d: (compute, memory),
        linear_grid: (compute, memory),
        hash_gather: (compute, memory),
        sort: (compute, memory),
        gemm: (compute, memory),
        tiny_gemm_threshold: 1.0, // Custom datapaths batch tiny layers.
        cache_bytes: 64.0e6,      // Weights stream without thrash.
        scatter_sensitivity: 0.0,
    }
}

/// Instant-3D (ISCA'23): hash-grid training/rendering accelerator.
///
/// Optimized for smaller-scale objects and bounded indoor scenes; its
/// fixed mapping cannot be reconfigured for other pipelines or scene
/// scales (Sec. VII-B).
pub fn instant3d() -> DedicatedAccelerator {
    DedicatedAccelerator::new(
        RooflineDevice::new(
            "Instant-3D",
            2.1,
            1.4e12,
            1.4e12,
            0.2e12,
            25.6e9,
            0.5e-3,
            asic_profile(0.45, 0.45),
        ),
        Pipeline::HashGrid,
        1.0,
    )
}

/// RT-NeRF (ICCAD'22): low-rank-decomposed-grid rendering accelerator.
///
/// Designed for sparse 2D grids; MeRF-style dense-2D + sparse-3D workloads
/// run below its design point (Sec. VII-B).
pub fn rt_nerf() -> DedicatedAccelerator {
    DedicatedAccelerator::new(
        RooflineDevice::new(
            "RT-NeRF",
            11.6,
            2.0e12,
            2.0e12,
            0.25e12,
            32.0e9,
            0.5e-3,
            asic_profile(0.35, 0.6),
        ),
        Pipeline::LowRankGrid,
        1.0,
    )
}

/// MetaVRain (ISSCC'23): MLP-based (NeRF) rendering processor with
/// hybrid-neural engines and built-in Pixel-Reuse (~20× compute cut from
/// temporal reuse — which assumes slow camera motion, Sec. VII-B).
pub fn metavrain() -> DedicatedAccelerator {
    DedicatedAccelerator::new(
        RooflineDevice::new(
            "MetaVRain",
            1.16,
            2.0e12,
            1.0e12,
            0.4e12,
            25.6e9,
            0.2e-3,
            asic_profile(0.55, 0.8),
        ),
        Pipeline::Mlp,
        20.0,
    )
}

/// GSCore (ASPLOS'24): 3D-Gaussian-splatting accelerator (Sec. VIII-A).
pub fn gscore() -> DedicatedAccelerator {
    DedicatedAccelerator::new(
        RooflineDevice::new(
            "GSCore",
            1.0,
            1.5e12,
            1.5e12,
            0.4e12,
            51.2e9,
            0.3e-3,
            asic_profile(0.5, 0.8),
        ),
        Pipeline::Gaussian3d,
        1.0,
    )
}

/// CICERO (2024): hash-grid rendering accelerator with radiance warping
/// and memory optimizations (Sec. VIII-A). Parameters are normalized to
/// Uni-Render's MAC budget, matching the paper's "when scaling to the same
/// number of MAC units" comparison.
pub fn cicero() -> DedicatedAccelerator {
    DedicatedAccelerator::new(
        RooflineDevice::new(
            "CICERO",
            2.0,
            1.6e12,
            1.6e12,
            0.25e12,
            32.0e9,
            0.3e-3,
            asic_profile(0.38, 0.8),
        ),
        Pipeline::HashGrid,
        // Radiance warping reuses shading across nearby rays (~3x fewer
        // decoder evaluations).
        3.0,
    )
}

/// Convenience: every dedicated model keyed by the micro-op family it
/// shines at (useful for the ablation harnesses).
pub fn home_turf(op: MicroOp) -> Option<&'static str> {
    match op {
        MicroOp::Gemm => Some("MetaVRain"),
        MicroOp::CombinedGridIndexing => Some("Instant-3D"),
        MicroOp::DecomposedGridIndexing => Some("RT-NeRF"),
        MicroOp::GeometricProcessing | MicroOp::Sorting => Some("GSCore"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uni_microops::{Invocation, Workload};

    fn mlp_trace() -> Trace {
        let mut t = Trace::new(Pipeline::Mlp, 1280, 720);
        t.push(Invocation::new(
            "mlp",
            Workload::Gemm {
                batch: 1 << 22,
                in_dim: 39,
                out_dim: 32,
                weight_bytes: 2496,
            },
        ));
        t
    }

    #[test]
    fn unsupported_pipelines_return_none() {
        let mv = metavrain();
        let mut mesh_trace = Trace::new(Pipeline::Mesh, 640, 480);
        mesh_trace.push(Invocation::new(
            "sc",
            Workload::Gemm {
                batch: 1000,
                in_dim: 4,
                out_dim: 4,
                weight_bytes: 32,
            },
        ));
        assert!(mv.execute(&mesh_trace).is_none());
        assert!(mv.execute(&mlp_trace()).is_some());
    }

    #[test]
    fn pixel_reuse_divides_metavrain_latency() {
        let with_reuse = metavrain();
        let without = DedicatedAccelerator::new(
            RooflineDevice::new(
                "MetaVRain-noreuse",
                1.16,
                1.0e12,
                0.6e12,
                0.3e12,
                25.6e9,
                0.2e-3,
                super::asic_profile(0.55, 0.5),
            ),
            Pipeline::Mlp,
            1.0,
        );
        let t = mlp_trace();
        let a = with_reuse.execute(&t).expect("supported").seconds;
        let b = without.execute(&t).expect("supported").seconds;
        assert!(b / a > 10.0, "pixel reuse ~20x: {}", b / a);
    }

    #[test]
    fn each_accelerator_has_low_power() {
        for d in [
            instant3d().power_w(),
            metavrain().power_w(),
            gscore().power_w(),
        ] {
            assert!(d < 15.0, "ASIC power stays edge-scale: {d} W");
        }
        // MetaVRain is the 133 mW-class chip measured at ~1/5 of
        // Uni-Render's power in the paper's comparison.
        assert!((metavrain().power_w() - 5.78 / 5.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "divisor cannot add work")]
    fn invalid_divisor_panics() {
        DedicatedAccelerator::new(
            RooflineDevice::new(
                "x",
                1.0,
                1e12,
                1e12,
                1e11,
                1e9,
                0.0,
                super::asic_profile(0.5, 0.5),
            ),
            Pipeline::Mlp,
            0.5,
        );
    }

    #[test]
    fn home_turf_covers_all_ops() {
        for op in MicroOp::ALL {
            assert!(home_turf(op).is_some());
        }
    }
}
