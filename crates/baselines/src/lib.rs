//! Calibrated models of the devices and accelerators Uni-Render is
//! benchmarked against (Sec. III and Sec. VII).
//!
//! We do not have the physical hardware (Snapdragon 8Gen2 development kit,
//! Jetson Xavier NX / Orin NX, an AMD 780M desktop) nor the dedicated ASICs
//! (Instant-3D, RT-NeRF, MetaVRain, GSCore, CICERO). Each baseline is a
//! roofline-style model executing the *same micro-operator traces* as the
//! Uni-Render simulator: per-unit peak throughputs come from spec sheets,
//! per-micro-operator efficiencies are fitted so the model reproduces the
//! operating points the paper reports (Fig. 7, Tab. I, Sec. VII-B) — see
//! [`calibration`] for every anchor and its source quote.

pub mod calibration;
pub mod commercial;
pub mod dedicated;

pub use commercial::{amd_780m, orin_nx, snapdragon_8gen2, xavier_nx, RooflineDevice};
pub use dedicated::{cicero, gscore, instant3d, metavrain, rt_nerf};

use serde::{Deserialize, Serialize};
use uni_microops::{Pipeline, Trace};

/// A baseline device's execution result for one frame trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceReport {
    /// Frame latency in seconds.
    pub seconds: f64,
    /// Energy per frame in joules (device power × latency).
    pub energy_j: f64,
}

impl DeviceReport {
    /// Frames per second.
    pub fn fps(&self) -> f64 {
        if self.seconds > 0.0 {
            1.0 / self.seconds
        } else {
            f64::INFINITY
        }
    }

    /// Energy efficiency in frames per joule.
    pub fn frames_per_joule(&self) -> f64 {
        if self.energy_j > 0.0 {
            1.0 / self.energy_j
        } else {
            f64::INFINITY
        }
    }
}

/// A baseline rendering device.
pub trait Device {
    /// Device name as used in the paper's figures.
    fn name(&self) -> &str;

    /// Typical power in watts while rendering.
    fn power_w(&self) -> f64;

    /// Whether this device can execute the given pipeline at all
    /// (dedicated accelerators support exactly one — the "×" bars of
    /// Figs. 7 and 16).
    fn supports(&self, pipeline: Pipeline) -> bool;

    /// Executes a frame trace; `None` when the pipeline is unsupported.
    fn execute(&self, trace: &Trace) -> Option<DeviceReport>;
}

/// The four commercial devices of Sec. III-A, in the paper's order.
pub fn commercial_devices() -> Vec<Box<dyn Device>> {
    vec![
        Box::new(snapdragon_8gen2()),
        Box::new(xavier_nx()),
        Box::new(orin_nx()),
        Box::new(amd_780m()),
    ]
}

/// The three dedicated neural-rendering accelerators of Sec. III-A.
pub fn dedicated_accelerators() -> Vec<Box<dyn Device>> {
    vec![
        Box::new(instant3d()),
        Box::new(rt_nerf()),
        Box::new(metavrain()),
    ]
}

/// All seven baselines of Figs. 7 and 16 (commercial then dedicated).
pub fn all_baselines() -> Vec<Box<dyn Device>> {
    let mut v = commercial_devices();
    v.extend(dedicated_accelerators());
    v
}

/// The two related-work accelerators discussed in Sec. VIII-A
/// (GSCore for 3DGS, CICERO for hash grids).
pub fn related_accelerators() -> Vec<Box<dyn Device>> {
    vec![Box::new(gscore()), Box::new(cicero())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_baselines_in_paper_order() {
        let all = all_baselines();
        assert_eq!(all.len(), 7);
        let names: Vec<&str> = all.iter().map(|d| d.name()).collect();
        assert_eq!(
            names,
            vec![
                "8Gen2",
                "Xavier NX",
                "Orin NX",
                "AMD 780M",
                "Instant-3D",
                "RT-NeRF",
                "MetaVRain"
            ]
        );
    }

    #[test]
    fn commercial_devices_support_everything() {
        for d in commercial_devices() {
            for p in Pipeline::ALL {
                assert!(d.supports(p), "{} must support {p}", d.name());
            }
        }
    }

    #[test]
    fn dedicated_accelerators_support_exactly_one_typical_pipeline() {
        for d in dedicated_accelerators() {
            let supported: Vec<Pipeline> = Pipeline::TYPICAL
                .into_iter()
                .filter(|&p| d.supports(p))
                .collect();
            assert_eq!(supported.len(), 1, "{} supports {supported:?}", d.name());
        }
    }

    #[test]
    fn device_report_math() {
        let r = DeviceReport {
            seconds: 0.02,
            energy_j: 0.4,
        };
        assert!((r.fps() - 50.0).abs() < 1e-9);
        assert!((r.frames_per_joule() - 2.5).abs() < 1e-9);
    }
}
