//! Calibration anchors: every paper-reported number the baseline models
//! are fitted against, with its source.
//!
//! The models in [`crate::commercial`] and [`crate::dedicated`] are
//! parametric rooflines; these anchors are the measured/claimed operating
//! points from the paper that the fitted parameters must reproduce (within
//! the tolerance each harness asserts). Keeping them in one table makes the
//! calibration auditable: change a model parameter, rerun `fig7_motivating`
//! and `fig16_speedup`, and compare against this table.

use serde::{Deserialize, Serialize};
use uni_microops::Pipeline;

/// An anchor: a target FPS for (device, pipeline) on Unbounded-360 at
/// 1280×720, with the paper statement it derives from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Anchor {
    /// Device name (matches [`crate::Device::name`]).
    pub device: &'static str,
    /// Pipeline.
    pub pipeline: Pipeline,
    /// Target FPS.
    pub fps: f64,
    /// Source statement in the paper.
    pub source: &'static str,
}

/// The real-time threshold of the paper (FPS).
pub const REAL_TIME_FPS: f64 = 30.0;

/// Anchors for the commercial devices (Fig. 7 / Tab. I / Sec. I).
///
/// Exact bar heights in Fig. 7 are not published as numbers; anchors are
/// derived from Tab. I's upper bounds on Orin NX, the two cross-device
/// ratios stated in Sec. I (8Gen2 = 2.4× Xavier on mesh, 1.75× *slower*
/// on low-rank), and the requirement that exactly three settings across
/// the whole figure are real-time.
pub fn commercial_anchors() -> Vec<Anchor> {
    use Pipeline::*;
    vec![
        Anchor {
            device: "Orin NX",
            pipeline: Mesh,
            fps: 20.0,
            source: "Tab. I: ≤20 FPS on [76]",
        },
        Anchor {
            device: "Orin NX",
            pipeline: Mlp,
            fps: 0.2,
            source: "Tab. I: ≤0.2 FPS on [76]",
        },
        Anchor {
            device: "Orin NX",
            pipeline: LowRankGrid,
            fps: 10.0,
            source: "Tab. I: ≤10 FPS on [76]",
        },
        Anchor {
            device: "Orin NX",
            pipeline: HashGrid,
            fps: 1.0,
            source: "Tab. I: ≤1 FPS on [76]",
        },
        Anchor {
            device: "Orin NX",
            pipeline: Gaussian3d,
            fps: 5.0,
            source: "Tab. I: ≤5 FPS on [76]",
        },
        Anchor {
            device: "Xavier NX",
            pipeline: Mesh,
            fps: 10.7,
            source: "Sec. I: 8Gen2 achieves 2.4× over Xavier for mesh",
        },
        Anchor {
            device: "8Gen2",
            pipeline: Mesh,
            fps: 25.7,
            source: "Sec. I: 2.4× speedup over Xavier NX for mesh",
        },
        Anchor {
            device: "Xavier NX",
            pipeline: LowRankGrid,
            fps: 7.0,
            source: "Sec. I: 8Gen2 is 1.75× slower than Xavier for low-rank",
        },
        Anchor {
            device: "8Gen2",
            pipeline: LowRankGrid,
            fps: 4.0,
            source: "Sec. I: 1.75× slower than Xavier NX",
        },
        Anchor {
            device: "AMD 780M",
            pipeline: Mesh,
            fps: 36.0,
            source: "Fig. 7: one of only three real-time settings",
        },
    ]
}

/// Anchors for the Uni-Render accelerator itself on Unbounded-360
/// (derived from the speedup statements of Sec. VII-B).
pub fn uni_render_anchors() -> Vec<Anchor> {
    use Pipeline::*;
    vec![
        Anchor {
            device: "Uni-Render",
            pipeline: Mesh,
            fps: 18.0,
            source: "Sec. VII-B: 0.9× Orin NX on the mesh pipeline",
        },
        Anchor {
            device: "Uni-Render",
            pipeline: Mlp,
            fps: 11.0,
            source: "Sec. VII-B: up to 119× over commercial devices (vs Xavier-class MLP ≈0.1 FPS)",
        },
        Anchor {
            device: "Uni-Render",
            pipeline: LowRankGrid,
            fps: 39.0,
            source: "Sec. VII-B: 3× over RT-NeRF on low-rank",
        },
        Anchor {
            device: "Uni-Render",
            pipeline: HashGrid,
            fps: 50.0,
            source: "Sec. VII-B: 6× over Instant-3D on hash grid",
        },
        Anchor {
            device: "Uni-Render",
            pipeline: Gaussian3d,
            fps: 30.0,
            source: "Sec. VIII-A: 12× over Xavier NX on 3DGS (GSCore reaches 15×)",
        },
    ]
}

/// Cross-accelerator ratios of Sec. VII-B / VIII-A (ours ÷ theirs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatioAnchor {
    /// Baseline accelerator.
    pub device: &'static str,
    /// Pipeline compared on.
    pub pipeline: Pipeline,
    /// Uni-Render speedup over the baseline (FPS ratio; <1 = slower).
    pub speedup: f64,
    /// Uni-Render energy-efficiency improvement (frames/J ratio).
    pub energy_ratio: f64,
    /// Source statement.
    pub source: &'static str,
}

/// The dedicated-accelerator comparison anchors.
pub fn dedicated_anchors() -> Vec<RatioAnchor> {
    use Pipeline::*;
    vec![
        RatioAnchor {
            device: "RT-NeRF",
            pipeline: LowRankGrid,
            speedup: 3.0,
            energy_ratio: 6.0,
            source: "Sec. VII-B: 3× speedup and 6× energy efficiency over RT-NeRF",
        },
        RatioAnchor {
            device: "Instant-3D",
            pipeline: HashGrid,
            speedup: 6.0,
            energy_ratio: 2.2,
            source: "Sec. VII-B: 6× speedup and 2.2× energy efficiency over Instant-3D",
        },
        RatioAnchor {
            device: "MetaVRain",
            pipeline: Mlp,
            speedup: 0.1,
            energy_ratio: 0.02,
            source: "Sec. VII-B: 10% FPS with 5× more power → 2% energy efficiency",
        },
        RatioAnchor {
            device: "GSCore",
            pipeline: Gaussian3d,
            speedup: 0.8,
            energy_ratio: 1.0,
            source: "Sec. VIII-A: ours 12× over Xavier vs GSCore's 15× (20% slower)",
        },
        RatioAnchor {
            device: "CICERO",
            pipeline: HashGrid,
            speedup: 0.86,
            energy_ratio: 1.0,
            source: "Sec. VIII-A: 14% slower than CICERO at equal MAC count",
        },
    ]
}

/// Tab. IV anchors: Uni-Render FPS on NeRF-Synthetic (800×800).
pub fn tab4_anchors() -> Vec<(Pipeline, f64, &'static str)> {
    use Pipeline::*;
    vec![
        (Mesh, 117.0, "Tab. IV: mesh-based 117 FPS"),
        (
            Mlp,
            23.0,
            "Tab. IV: MLP-based 23 FPS (>200 with Pixel-Reuse)",
        ),
        (LowRankGrid, 80.0, "Tab. IV: low-rank 80 FPS"),
        (HashGrid, 187.0, "Tab. IV: hash-grid 187 FPS"),
        (Gaussian3d, 65.0, "Tab. IV: 3D-Gaussian 65 FPS"),
    ]
}

/// Fig. 17 anchors: MixRT hybrid speedups over the commercial devices on
/// the four indoor scenes (2.0×–3.7× overall; 2.0×–2.6× vs Xavier/Orin).
pub fn fig17_speedup_band() -> (f64, f64) {
    (2.0, 3.7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_reference_known_devices() {
        let known = ["8Gen2", "Xavier NX", "Orin NX", "AMD 780M", "Uni-Render"];
        for a in commercial_anchors()
            .iter()
            .chain(uni_render_anchors().iter())
        {
            assert!(known.contains(&a.device), "{}", a.device);
            assert!(a.fps > 0.0);
            assert!(!a.source.is_empty());
        }
    }

    #[test]
    fn stated_cross_device_ratios_hold_in_anchor_table() {
        let anchors = commercial_anchors();
        let fps = |d: &str, p: Pipeline| {
            anchors
                .iter()
                .find(|a| a.device == d && a.pipeline == p)
                .map(|a| a.fps)
                .expect("anchor present")
        };
        let mesh_ratio = fps("8Gen2", Pipeline::Mesh) / fps("Xavier NX", Pipeline::Mesh);
        assert!(
            (mesh_ratio - 2.4).abs() < 0.05,
            "2.4× on mesh: {mesh_ratio}"
        );
        let lr_ratio =
            fps("Xavier NX", Pipeline::LowRankGrid) / fps("8Gen2", Pipeline::LowRankGrid);
        assert!((lr_ratio - 1.75).abs() < 0.05, "1.75× slower: {lr_ratio}");
    }

    #[test]
    fn no_commercial_anchor_is_real_time_except_amd_mesh() {
        for a in commercial_anchors() {
            let rt = a.fps > REAL_TIME_FPS;
            assert_eq!(
                rt,
                a.device == "AMD 780M" && a.pipeline == Pipeline::Mesh,
                "{} {}",
                a.device,
                a.pipeline
            );
        }
    }

    #[test]
    fn tab4_every_pipeline_has_an_anchor() {
        let anchors = tab4_anchors();
        assert_eq!(anchors.len(), 5);
        // All real-time per Tab. IV's checkmarks (MLP via the Pixel-Reuse
        // row).
        for (p, fps, _) in &anchors {
            if *p == Pipeline::Mlp {
                assert!(*fps >= 23.0);
            } else {
                assert!(*fps > REAL_TIME_FPS, "{p}");
            }
        }
    }

    #[test]
    fn metavrain_ratio_is_consistent() {
        let a = dedicated_anchors();
        let mv = a.iter().find(|r| r.device == "MetaVRain").expect("present");
        // 10% FPS at 5× power = 2% energy efficiency.
        assert!((mv.speedup * (1.0 / 5.0) - mv.energy_ratio).abs() < 1e-9);
    }
}
