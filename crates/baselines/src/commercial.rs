//! Roofline models of the commercial baseline devices.
//!
//! Each device executes a trace invocation-by-invocation: the time of an
//! invocation is the maximum of its compute time (peak throughput ×
//! workload-specific efficiency) and its memory time (bandwidth ×
//! workload-specific efficiency), summed over the trace plus a fixed
//! per-frame host/driver overhead.
//!
//! The paper's baselines run WebGL software implementations (Sec. VII-A),
//! so efficiency depends on *how* a micro-operator exercises the GPU:
//! hardware rasterizers and texture units run near peak; random-hash
//! gathers run at a fraction of a percent of peak bandwidth; per-pixel
//! tiny MLPs in fragment shaders lose vectorization; KiloNeRF's thousands
//! of scattered tiny weight sets thrash caches. The [`DeviceProfile`]
//! fields encode exactly these effects, and are fitted against the
//! operating points in [`crate::calibration`].

use crate::{Device, DeviceReport};
use serde::{Deserialize, Serialize};
use uni_microops::{Dims, IndexFunction, Pipeline, PrimitiveKind, Trace, Workload};

/// Workload-aware efficiency profile of a GPU-class device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Triangle rasterization: compute / memory efficiency (hardware
    /// rasterizer path).
    pub triangle: (f64, f64),
    /// Splat compositing: per-pixel sorted alpha-blend traversal is
    /// latency-bound on GPUs (~1 % of peak).
    pub splat: (f64, f64),
    /// 2D linear texture fetch (hardware texture units).
    pub texture2d: (f64, f64),
    /// 3D/1D linear grid fetch (software gather, coherent).
    pub linear_grid: (f64, f64),
    /// Random-hash gather (the paper's headline inefficiency).
    pub hash_gather: (f64, f64),
    /// Sorting.
    pub sort: (f64, f64),
    /// Dense GEMM at favorable shapes.
    pub gemm: (f64, f64),
    /// `in × out` product below which GEMM efficiency derates linearly
    /// (per-pixel tiny MLPs in shaders cannot batch).
    pub tiny_gemm_threshold: f64,
    /// Weight working set that stays cache-resident (bytes).
    pub cache_bytes: f64,
    /// Penalty slope for weight sets overflowing the cache (KiloNeRF's
    /// scattered tiny MLPs).
    pub scatter_sensitivity: f64,
}

/// A roofline device model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflineDevice {
    name: String,
    power_w: f64,
    /// Peak FP16-class MAC throughput (MAC/s).
    fp_macs_per_s: f64,
    /// Peak integer-op throughput (op/s).
    int_ops_per_s: f64,
    /// Peak special-function throughput (op/s).
    sfu_ops_per_s: f64,
    /// Peak DRAM bandwidth (B/s).
    mem_bytes_per_s: f64,
    /// Fixed per-frame host/driver overhead (seconds).
    frame_overhead_s: f64,
    profile: DeviceProfile,
}

impl RooflineDevice {
    /// Builds a device model.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        power_w: f64,
        fp_macs_per_s: f64,
        int_ops_per_s: f64,
        sfu_ops_per_s: f64,
        mem_bytes_per_s: f64,
        frame_overhead_s: f64,
        profile: DeviceProfile,
    ) -> Self {
        Self {
            name: name.into(),
            power_w,
            fp_macs_per_s,
            int_ops_per_s,
            sfu_ops_per_s,
            mem_bytes_per_s,
            frame_overhead_s,
            profile,
        }
    }

    /// The efficiency pair `(compute, memory)` for one workload.
    fn efficiency(&self, workload: &Workload) -> (f64, f64) {
        let p = &self.profile;
        match workload {
            Workload::Geometric { kind, .. } => match kind {
                PrimitiveKind::Triangle => p.triangle,
                PrimitiveKind::GaussianSplat => p.splat,
            },
            Workload::GridIndex {
                function,
                dims,
                table_bytes,
                ..
            } => match function {
                IndexFunction::RandomHash => {
                    // Hash tables partially resident in the GPU cache
                    // gather proportionally faster (small MixRT fields
                    // approach coherent-gather speed).
                    let residency = (p.cache_bytes * 8.0 / (*table_bytes).max(1) as f64).min(1.0);
                    let compute = p.hash_gather.0 + (p.linear_grid.0 - p.hash_gather.0) * residency;
                    let memory = p.hash_gather.1 + (p.linear_grid.1 - p.hash_gather.1) * residency;
                    (compute, memory)
                }
                _ if *dims == Dims::D2 => p.texture2d,
                _ => p.linear_grid,
            },
            Workload::Sort { .. } => p.sort,
            Workload::Gemm {
                in_dim,
                out_dim,
                weight_bytes,
                ..
            } => {
                let shape = f64::from(*in_dim) * f64::from(*out_dim);
                // Element-wise accumulates (blending, 4×4 vertex
                // transforms) are not matmuls — shaders run them at full
                // rate; only genuine per-pixel tiny MLPs derate.
                let tiny = if shape <= 16.0 {
                    1.0
                } else {
                    (shape / p.tiny_gemm_threshold).min(1.0)
                };
                let overflow = (*weight_bytes as f64 / p.cache_bytes - 1.0).max(0.0);
                let compute = p.gemm.0 * tiny / (1.0 + p.scatter_sensitivity * overflow);
                (compute.max(1e-5), p.gemm.1)
            }
        }
    }

    /// Frame latency for a trace in seconds.
    pub fn frame_seconds(&self, trace: &Trace) -> f64 {
        let mut total = self.frame_overhead_s;
        for inv in trace.iter() {
            let cv = inv.cost();
            let (ec, em) = self.efficiency(inv.workload());
            // MAC work pays the workload-specific efficiency;
            // transcendentals run on native SFU hardware at a fixed ~50 %
            // issue rate regardless of how the surrounding loop schedules.
            let compute = (cv.fp_macs as f64 / self.fp_macs_per_s
                + cv.int_macs as f64 / self.int_ops_per_s)
                / ec.max(1e-6)
                + cv.sfu_ops as f64 / (self.sfu_ops_per_s * 0.5);
            let memory = cv.dram_bytes() as f64 / (self.mem_bytes_per_s * em.max(1e-6));
            total += compute.max(memory);
        }
        total
    }
}

impl Device for RooflineDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn power_w(&self) -> f64 {
        self.power_w
    }

    fn supports(&self, _pipeline: Pipeline) -> bool {
        true // General-purpose GPUs run every pipeline (if slowly).
    }

    fn execute(&self, trace: &Trace) -> Option<DeviceReport> {
        let seconds = self.frame_seconds(trace);
        Some(DeviceReport {
            seconds,
            energy_j: seconds * self.power_w,
        })
    }
}

/// Qualcomm Snapdragon 8 Gen 2 mobile development kit (~10 W).
///
/// A tile-based mobile GPU: excellent at mesh rasterization + texturing
/// (the paper calls it "highly optimized for mesh-based rendering
/// pipelines"), weak at irregular gathers and big-batch GEMM.
pub fn snapdragon_8gen2() -> RooflineDevice {
    RooflineDevice::new(
        "8Gen2",
        10.0,
        3.4e12,
        1.2e12,
        0.4e12,
        28.0e9,
        2.0e-3,
        DeviceProfile {
            triangle: (0.60, 0.60),
            splat: (0.007, 0.25),
            texture2d: (0.55, 0.45),
            linear_grid: (0.04, 0.05),
            hash_gather: (0.02, 0.003),
            sort: (0.06, 0.20),
            gemm: (0.40, 0.45),
            tiny_gemm_threshold: 12288.0,
            cache_bytes: 1.0e6,
            scatter_sensitivity: 1.5,
        },
    )
}

/// NVIDIA Jetson Xavier NX edge GPU (~20 W module).
pub fn xavier_nx() -> RooflineDevice {
    RooflineDevice::new(
        "Xavier NX",
        20.0,
        1.1e12,
        0.55e12,
        0.14e12,
        45.0e9,
        2.5e-3,
        DeviceProfile {
            triangle: (0.45, 0.50),
            splat: (0.016, 0.28),
            texture2d: (0.40, 0.45),
            linear_grid: (0.08, 0.18),
            hash_gather: (0.025, 0.004),
            sort: (0.08, 0.28),
            gemm: (0.25, 0.50),
            tiny_gemm_threshold: 8192.0,
            cache_bytes: 1.3e6,
            scatter_sensitivity: 1.2,
        },
    )
}

/// NVIDIA Jetson Orin NX edge GPU (~20 W module) — the strongest
/// commercial baseline (Tab. I is measured on it).
pub fn orin_nx() -> RooflineDevice {
    RooflineDevice::new(
        "Orin NX",
        20.0,
        2.6e12,
        1.3e12,
        0.33e12,
        75.0e9,
        1.5e-3,
        DeviceProfile {
            triangle: (0.50, 0.55),
            splat: (0.012, 0.30),
            texture2d: (0.45, 0.50),
            linear_grid: (0.10, 0.18),
            hash_gather: (0.030, 0.005),
            sort: (0.10, 0.30),
            gemm: (0.40, 0.52),
            tiny_gemm_threshold: 16384.0,
            cache_bytes: 1.5e6,
            scatter_sensitivity: 1.2,
        },
    )
}

/// x86 desktop with an integrated AMD 780M GPU (~20 W GPU power).
pub fn amd_780m() -> RooflineDevice {
    RooflineDevice::new(
        "AMD 780M",
        20.0,
        4.3e12,
        2.0e12,
        0.54e12,
        55.0e9,
        1.0e-3,
        DeviceProfile {
            triangle: (0.55, 0.60),
            splat: (0.008, 0.30),
            texture2d: (0.50, 0.55),
            linear_grid: (0.11, 0.20),
            hash_gather: (0.035, 0.006),
            sort: (0.12, 0.32),
            gemm: (0.42, 0.55),
            tiny_gemm_threshold: 16384.0,
            cache_bytes: 2.0e6,
            scatter_sensitivity: 1.2,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use uni_microops::Invocation;

    fn gemm_trace(batch: u64) -> Trace {
        let mut t = Trace::new(Pipeline::Mlp, 640, 480);
        t.push(Invocation::new(
            "mlp",
            Workload::Gemm {
                batch,
                in_dim: 256,
                out_dim: 256,
                weight_bytes: 256 * 256 * 2,
            },
        ));
        t
    }

    #[test]
    fn bigger_workloads_take_longer() {
        let d = orin_nx();
        let small = d.frame_seconds(&gemm_trace(1 << 14));
        let large = d.frame_seconds(&gemm_trace(1 << 20));
        assert!(large > small);
    }

    #[test]
    fn empty_trace_costs_only_overhead() {
        let d = xavier_nx();
        let t = Trace::new(Pipeline::Mesh, 64, 64);
        assert!((d.frame_seconds(&t) - 2.5e-3).abs() < 1e-12);
    }

    #[test]
    fn orin_beats_xavier_on_identical_work() {
        let t = gemm_trace(1 << 20);
        let orin = orin_nx().execute(&t).expect("supported");
        let xavier = xavier_nx().execute(&t).expect("supported");
        assert!(orin.seconds < xavier.seconds, "newer GPU is faster");
    }

    #[test]
    fn energy_is_power_times_latency() {
        let t = gemm_trace(1 << 20);
        let r = snapdragon_8gen2().execute(&t).expect("supported");
        assert!((r.energy_j - r.seconds * 10.0).abs() < 1e-12);
    }

    #[test]
    fn tiny_per_pixel_mlps_lose_efficiency() {
        let d = orin_nx();
        let tiny = {
            let mut t = Trace::new(Pipeline::Mesh, 640, 480);
            // Same MAC count as the reference GEMM, but 16x16-shaped.
            t.push(Invocation::new(
                "shading",
                Workload::Gemm {
                    batch: (1 << 20) * 256,
                    in_dim: 16,
                    out_dim: 16,
                    weight_bytes: 512,
                },
            ));
            t
        };
        let dense = d.frame_seconds(&gemm_trace(1 << 20));
        let shader = d.frame_seconds(&tiny);
        assert!(
            shader > dense * 10.0,
            "tiny layers are disproportionately slow: {shader} vs {dense}"
        );
    }

    #[test]
    fn scattered_weight_sets_thrash_caches() {
        let d = orin_nx();
        let resident = {
            let mut t = Trace::new(Pipeline::Mlp, 640, 480);
            t.push(Invocation::new(
                "one-net",
                Workload::Gemm {
                    batch: 1 << 22,
                    in_dim: 32,
                    out_dim: 32,
                    weight_bytes: 2048,
                },
            ));
            t
        };
        let scattered = {
            let mut t = Trace::new(Pipeline::Mlp, 640, 480);
            t.push(Invocation::new(
                "kilonerf",
                Workload::Gemm {
                    batch: 1 << 22,
                    in_dim: 32,
                    out_dim: 32,
                    weight_bytes: 8 << 20, // Thousands of tiny nets.
                },
            ));
            t
        };
        let a = d.frame_seconds(&resident);
        let b = d.frame_seconds(&scattered);
        assert!(b > a * 5.0, "scatter penalty: {b} vs {a}");
    }

    #[test]
    fn hash_gather_is_the_worst_memory_pattern() {
        let d = orin_nx();
        let make = |function, dims| {
            let mut t = Trace::new(Pipeline::HashGrid, 640, 480);
            t.push(Invocation::new(
                "fetch",
                Workload::GridIndex {
                    points: 1 << 20,
                    levels: 4,
                    corners: 8,
                    feature_dim: 4,
                    table_bytes: 64 << 20,
                    function,
                    dims,
                    decomposed: false,
                },
            ));
            d.frame_seconds(&t)
        };
        let hash = make(IndexFunction::RandomHash, Dims::D3);
        let texture = make(IndexFunction::LinearIndexing, Dims::D2);
        let linear3d = make(IndexFunction::LinearIndexing, Dims::D3);
        assert!(hash > linear3d, "{hash} vs {linear3d}");
        assert!(linear3d > texture, "{linear3d} vs {texture}");
    }
}
