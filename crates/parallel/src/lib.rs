//! Band parallelism for the render hot paths.
//!
//! The functional pipelines process images in horizontal *bands* (whole
//! scanlines, or rows of 16×16 tiles). Bands touch disjoint slices of the
//! row-major pixel buffer, so they parallelize without locks: each worker
//! takes ownership of distinct `&mut` chunks via `chunks_mut` and the
//! results are bitwise independent of the thread count.
//!
//! Built on `std::thread::scope` — the hermetic build environment has no
//! rayon, and band-granularity work needs nothing fancier. With the
//! `threads` feature disabled (or one available core, or
//! `UNI_RENDER_THREADS=1`) everything runs serially on the calling thread;
//! callers keep a single code path either way.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// A type-erased job a [`LanePool`] worker executes.
type LaneJob = Box<dyn FnOnce() + Send + 'static>;

/// A handle to one submitted [`LanePool`] job's result.
///
/// [`Ticket::wait`] blocks until the job has run on its lane (or returns
/// immediately when the pool executes inline).
#[derive(Debug)]
pub struct Ticket<R> {
    inner: TicketInner<R>,
}

#[derive(Debug)]
enum TicketInner<R> {
    /// The job already ran on the submitting thread (inline pool).
    Ready(R),
    /// The job runs on a lane; the result (or the job's panic payload)
    /// arrives on this channel, tagged with where the job was placed so
    /// a failure names its lane and — for [`LanePool::submit_at`] — the
    /// schedule tick that put it there.
    Pending {
        rx: mpsc::Receiver<Result<R, String>>,
        lane: usize,
        tick: Option<u64>,
    },
}

/// Renders a caught panic payload for re-raising with provenance.
fn panic_payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl<R> Ticket<R> {
    /// Blocks until the job's result is available.
    ///
    /// # Panics
    ///
    /// Panics if the job itself panicked on its lane (the lane survives;
    /// the ticket carries the failure). The message names the lane the
    /// job ran on, the schedule tick that placed it there (for
    /// [`LanePool::submit_at`] submissions), and the original panic
    /// payload, so a failing frame in a many-lane server is attributable
    /// from the panic alone. Inline pools run jobs at submit time on the
    /// calling thread, where the original panic propagates directly.
    pub fn wait(self) -> R {
        match self.inner {
            TicketInner::Ready(r) => r,
            TicketInner::Pending { rx, lane, tick } => match rx.recv() {
                Ok(Ok(r)) => r,
                Ok(Err(payload)) => match tick {
                    Some(t) => {
                        panic!("job on lane {lane} (scheduled tick {t}) panicked: {payload}")
                    }
                    None => panic!("job on lane {lane} panicked: {payload}"),
                },
                Err(_) => match tick {
                    Some(t) => panic!(
                        "job on lane {lane} (scheduled tick {t}) was lost: \
                         the lane dropped the result channel without reporting"
                    ),
                    None => panic!(
                        "job on lane {lane} was lost: \
                         the lane dropped the result channel without reporting"
                    ),
                },
            },
        }
    }
}

/// A pool of *persistent* worker lanes.
///
/// Unlike [`par_bands`] / [`par_indices`], which spawn scoped threads per
/// call, a `LanePool` keeps its workers alive across submissions — the
/// primitive long-lived frame servers schedule onto. Jobs are submitted to
/// an explicit lane index; each lane executes its jobs in FIFO order, and
/// distinct lanes run concurrently. Results come back through [`Ticket`]s,
/// so a caller that submits in a deterministic order and waits in that
/// same order observes results independent of execution timing.
///
/// With the `threads` feature disabled, with `UNI_RENDER_THREADS=1`, or
/// with `lanes <= 1`, the pool is *inline*: `submit` runs the job on the
/// calling thread and the ticket is immediately ready. Callers keep a
/// single code path either way.
#[derive(Debug)]
pub struct LanePool {
    lanes: Vec<Lane>,
}

#[derive(Debug)]
struct Lane {
    tx: Option<mpsc::Sender<LaneJob>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl LanePool {
    /// Creates a pool of `lanes` persistent workers.
    ///
    /// Requests are clamped to at least one lane. The pool degenerates to
    /// inline execution when threading is unavailable (see type docs).
    pub fn new(lanes: usize) -> Self {
        let lanes = lanes.max(1);
        if !is_parallel() || lanes == 1 {
            return Self { lanes: Vec::new() };
        }
        Self::spawn_lanes(lanes)
    }

    /// Creates a pool that runs off the calling thread even with a single
    /// lane, so a submitted job can overlap work the caller keeps doing —
    /// the shape the render/replay pipelining in `uni-engine` needs (a
    /// one-lane [`LanePool::new`] would run replay inline and serialize).
    ///
    /// Still degenerates to inline execution when threading is
    /// unavailable (`UNI_RENDER_THREADS=1` or the `threads` feature is
    /// off), keeping results bit-identical at every thread count.
    pub fn spawn(lanes: usize) -> Self {
        let lanes = lanes.max(1);
        if !is_parallel() {
            return Self { lanes: Vec::new() };
        }
        Self::spawn_lanes(lanes)
    }

    fn spawn_lanes(lanes: usize) -> Self {
        let lanes = (0..lanes)
            .map(|i| {
                let (tx, rx) = mpsc::channel::<LaneJob>();
                let handle = std::thread::Builder::new()
                    .name(format!("uni-lane-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            // A panicking job must not take the lane down
                            // with it: the submit wrapper catches the
                            // unwind and ships the payload through the
                            // ticket channel, so later jobs on this lane
                            // still run and the failure surfaces — with
                            // lane/tick provenance — at the job's own
                            // `Ticket::wait`. This outer catch is a
                            // backstop for panics outside that wrapper.
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                        }
                    })
                    .expect("spawn lane worker");
                Lane {
                    tx: Some(tx),
                    handle: Some(handle),
                }
            })
            .collect();
        Self { lanes }
    }

    /// Number of lanes jobs can be submitted to (1 when inline).
    pub fn lanes(&self) -> usize {
        self.lanes.len().max(1)
    }

    /// Whether submissions run on the calling thread.
    pub fn is_inline(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Submits `job` to lane `lane % self.lanes()` and returns a ticket
    /// for its result. Jobs on the same lane run in submission order.
    pub fn submit<R, F>(&self, lane: usize, job: F) -> Ticket<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        self.submit_inner(lane, None, job)
    }

    fn submit_inner<R, F>(&self, lane: usize, tick: Option<u64>, job: F) -> Ticket<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        if self.lanes.is_empty() {
            return Ticket {
                inner: TicketInner::Ready(job()),
            };
        }
        let lane = lane % self.lanes.len();
        let (tx, rx) = mpsc::channel();
        self.lanes[lane]
            .tx
            .as_ref()
            .expect("lane open while pool is alive")
            .send(Box::new(move || {
                // Catch the job's unwind so its panic payload travels
                // through the ticket (re-raised with lane/tick provenance
                // at `wait`) instead of dying with the channel. Receiver
                // may be dropped (caller abandoned the ticket) —
                // discarding the result is fine then.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job))
                    .map_err(|p| panic_payload_text(p.as_ref()));
                let _ = tx.send(result);
            }))
            .expect("lane worker alive while pool is alive");
        Ticket {
            inner: TicketInner::Pending { rx, lane, tick },
        }
    }

    /// Submits `job` at schedule slot `tick`: the lane is
    /// `tick % self.lanes()`, so lane assignment is a pure function of
    /// the *schedule order*, never of submission timing or arrival
    /// interleaving. Frame servers use this so the lane a frame runs on —
    /// and therefore per-lane FIFO ordering — is reproducible from the
    /// schedule alone at any thread count.
    pub fn submit_at<R, F>(&self, tick: u64, job: F) -> Ticket<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        self.submit_inner((tick % self.lanes() as u64) as usize, Some(tick), job)
    }
}

impl Drop for LanePool {
    fn drop(&mut self) {
        // Closing the channels ends each worker's recv loop; joining
        // guarantees no lane outlives the pool.
        for lane in &mut self.lanes {
            lane.tx.take();
        }
        for lane in &mut self.lanes {
            if let Some(handle) = lane.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// One band's work slot: the chunk a worker claims (exactly once).
type BandCell<'a, T> = std::sync::Mutex<Option<&'a mut [T]>>;

/// Process-wide worker-count pin; `0` means "no pin, consult the
/// environment". See [`set_worker_count`].
static WORKER_PIN: AtomicUsize = AtomicUsize::new(0);

/// Pins [`worker_count`] process-wide, bypassing `UNI_RENDER_THREADS`.
///
/// `None` restores environment-driven detection. Returns the previous
/// pin so scoped callers can restore it. Two reasons to pin instead of
/// setting the variable: mutating the environment is unsound in a
/// threaded process, and reading it back allocates — a pinned count
/// keeps [`worker_count`] off the allocator entirely, which the
/// zero-steady-state-allocation harness measures per frame.
pub fn set_worker_count(workers: Option<usize>) -> Option<usize> {
    let raw = workers.map_or(0, |n| n.max(1));
    let prev = WORKER_PIN.swap(raw, Ordering::SeqCst);
    (prev != 0).then_some(prev)
}

/// Worker count the band helpers will use.
///
/// A [`set_worker_count`] pin wins; otherwise `UNI_RENDER_THREADS`
/// overrides detection. Without the `threads` feature this is always 1.
pub fn worker_count() -> usize {
    #[cfg(not(feature = "threads"))]
    {
        1
    }
    #[cfg(feature = "threads")]
    {
        let pinned = WORKER_PIN.load(Ordering::SeqCst);
        if pinned != 0 {
            return pinned;
        }
        if let Ok(v) = std::env::var("UNI_RENDER_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Whether the helpers will actually spawn threads.
pub fn is_parallel() -> bool {
    worker_count() > 1
}

/// Whether render/replay pipelining defaults on (`UNI_RENDER_OVERLAP`).
///
/// On unless the variable is set to `0`, `off`, or `false`. Overlap only
/// changes *when* work executes — delivered frames, traces, reports, and
/// all schedule-order accounting are bit-identical either way — so the
/// knob exists for debugging and for callers that want the seed-era
/// single-framebuffer streaming behavior back
/// (`RenderSession::with_overlap(false)` per session, or this env var
/// globally).
pub fn overlap_enabled() -> bool {
    match std::env::var("UNI_RENDER_OVERLAP") {
        Ok(v) => !matches!(v.trim(), "0" | "off" | "false"),
        Err(_) => true,
    }
}

/// Splits `data` into consecutive chunks of `band_len` elements (the last
/// may be shorter) and runs `f(band_index, chunk)` for every band,
/// returning the per-band results in band order.
///
/// Bands are claimed from a shared counter, so heterogeneous band costs
/// load-balance across workers. With one worker this degenerates to a
/// plain serial loop on the calling thread.
///
/// # Panics
///
/// Panics if `band_len == 0` while `data` is nonempty, or if a worker
/// panics (the panic is propagated).
pub fn par_bands<T, R, F>(data: &mut [T], band_len: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    if data.is_empty() {
        return Vec::new();
    }
    assert!(band_len > 0, "band_len must be positive");
    let n_bands = data.len().div_ceil(band_len);
    let workers = worker_count().min(n_bands);

    if workers <= 1 {
        return data
            .chunks_mut(band_len)
            .enumerate()
            .map(|(i, chunk)| f(i, chunk))
            .collect();
    }

    // Hand each band's `&mut` chunk to exactly one worker through a slot
    // vector; a claimed index takes its chunk out of the cell exactly
    // once, so band execution never holds a lock.
    let slot_cells: Vec<BandCell<'_, T>> = data
        .chunks_mut(band_len)
        .map(|chunk| std::sync::Mutex::new(Some(chunk)))
        .collect();
    run_pool(n_bands, workers, |i| {
        let chunk = slot_cells[i]
            .lock()
            .expect("band slot poisoned")
            .take()
            .expect("band claimed once");
        f(i, chunk)
    })
}

/// [`par_bands`] folded in band order: `merge(acc, band_result)` over
/// every band, starting from `init`.
///
/// Callers that only need an aggregate (stats merged across bands) use
/// this instead of collecting per-band results. With one worker the
/// whole call runs on the calling thread without touching the allocator
/// — the backbone of the zero-steady-state-allocation contract. With
/// more workers the per-band results are still merged in band order, so
/// any merge (associative or not) yields results bit-identical to the
/// serial path.
///
/// # Panics
///
/// Panics if `band_len == 0` while `data` is nonempty, or if a worker
/// panics (the panic is propagated).
pub fn par_bands_fold<T, R, A, F, M>(
    data: &mut [T],
    band_len: usize,
    init: A,
    f: F,
    mut merge: M,
) -> A
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
    M: FnMut(A, R) -> A,
{
    if data.is_empty() {
        return init;
    }
    assert!(band_len > 0, "band_len must be positive");
    let n_bands = data.len().div_ceil(band_len);
    if worker_count().min(n_bands) <= 1 {
        let mut acc = init;
        for (i, chunk) in data.chunks_mut(band_len).enumerate() {
            acc = merge(acc, f(i, chunk));
        }
        return acc;
    }
    par_bands(data, band_len, f).into_iter().fold(init, merge)
}

/// Runs `f(index)` for every index in `0..n`, returning results in order.
/// The read-only sibling of [`par_bands`] for fan-out over shared state.
pub fn par_indices<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = worker_count().min(n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    run_pool(n, workers, f)
}

/// The shared worker pool behind [`par_bands`] and [`par_indices`]: runs
/// `f(i)` for every index in `0..n` on `workers` scoped threads, indices
/// claimed from an atomic cursor (so heterogeneous costs load-balance),
/// results returned in index order. Worker panics are propagated.
fn run_pool<R, F>(n: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let cursor = AtomicUsize::new(0);
    let cells: Vec<std::sync::Mutex<Option<R>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let cursor = &cursor;
            let cells = &cells;
            let f = &f;
            handles.push(scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                *cells[i].lock().expect("result cell poisoned") = Some(f(i));
            }));
        }
        for h in handles {
            if let Err(p) = h.join() {
                std::panic::resume_unwind(p);
            }
        }
    });
    cells
        .into_iter()
        .map(|c| {
            c.into_inner()
                .expect("result cell poisoned")
                .expect("every index ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_matches_collected_bands() {
        let mut a: Vec<u32> = (0..103).collect();
        let mut b = a.clone();
        let collected: u64 = par_bands(&mut a, 10, |i, chunk| {
            i as u64 + chunk.iter().map(|&v| u64::from(v)).sum::<u64>()
        })
        .iter()
        .sum();
        let folded = par_bands_fold(
            &mut b,
            10,
            0u64,
            |i, chunk| i as u64 + chunk.iter().map(|&v| u64::from(v)).sum::<u64>(),
            |acc, r| acc + r,
        );
        assert_eq!(folded, collected);
        assert_eq!(
            par_bands_fold(&mut [0u8; 0], 4, 7usize, |_, _| 1, |a, r| a + r),
            7
        );
    }

    #[test]
    fn worker_pin_overrides_environment() {
        let prev = set_worker_count(Some(3));
        #[cfg(feature = "threads")]
        assert_eq!(worker_count(), 3);
        let restored = set_worker_count(prev);
        assert_eq!(restored, Some(3));
    }

    #[test]
    fn bands_cover_every_element_once() {
        let mut data: Vec<u32> = vec![0; 103];
        let counts = par_bands(&mut data, 10, |band, chunk| {
            for v in chunk.iter_mut() {
                *v += 1 + band as u32;
            }
            chunk.len()
        });
        assert_eq!(counts.len(), 11);
        assert_eq!(counts.iter().sum::<usize>(), 103);
        assert_eq!(counts[10], 3, "last band is the remainder");
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, 1 + (i / 10) as u32, "element {i} written by its band");
        }
    }

    #[test]
    fn results_arrive_in_band_order() {
        let mut data: Vec<u8> = vec![0; 64];
        let ids = par_bands(&mut data, 8, |band, _| band);
        assert_eq!(ids, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_no_bands() {
        let mut data: Vec<u8> = Vec::new();
        let r: Vec<usize> = par_bands(&mut data, 16, |_, chunk| chunk.len());
        assert!(r.is_empty());
    }

    #[test]
    fn par_indices_orders_results() {
        let squares = par_indices(20, |i| i * i);
        assert_eq!(squares, (0..20).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn lane_pool_returns_results_per_submission() {
        let pool = LanePool::new(3);
        let tickets: Vec<Ticket<usize>> = (0..12).map(|i| pool.submit(i, move || i * i)).collect();
        let results: Vec<usize> = tickets.into_iter().map(Ticket::wait).collect();
        assert_eq!(results, (0..12).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn lane_pool_jobs_on_one_lane_run_in_submission_order() {
        let pool = LanePool::new(2);
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let tickets: Vec<Ticket<()>> = (0..8)
            .map(|i| {
                let log = log.clone();
                pool.submit(0, move || log.lock().unwrap().push(i))
            })
            .collect();
        for t in tickets {
            t.wait();
        }
        assert_eq!(*log.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn lane_pool_clamps_to_one_lane() {
        let pool = LanePool::new(0);
        assert_eq!(pool.lanes(), 1);
        assert_eq!(pool.submit(7, || 42).wait(), 42);
    }

    #[test]
    fn zero_lane_pool_serves_a_whole_submission_stream() {
        // Regression: a zero-lane request must behave as a one-lane pool
        // for arbitrarily many submissions (a server built
        // `with_lanes(0)` schedules through it for its whole run), not
        // panic on first submit against an empty lane vector.
        let pool = LanePool::new(0);
        let tickets: Vec<Ticket<usize>> = (0..32)
            .map(|i| pool.submit_at(i as u64, move || i + 1))
            .collect();
        let results: Vec<usize> = tickets.into_iter().map(Ticket::wait).collect();
        assert_eq!(results, (1..=32).collect::<Vec<_>>());
    }

    #[test]
    fn submit_at_assigns_lanes_by_schedule_tick() {
        let pool = LanePool::new(2);
        // Same tick stream, regardless of how calls interleave in time,
        // lands on the same lanes: per-lane FIFO makes results ordered by
        // submission within a lane, and `wait` order recovers tick order.
        let tickets: Vec<Ticket<u64>> = (0..10u64)
            .map(|t| pool.submit_at(t, move || t * 3))
            .collect();
        let results: Vec<u64> = tickets.into_iter().map(Ticket::wait).collect();
        assert_eq!(results, (0..10).map(|t| t * 3).collect::<Vec<_>>());
    }

    #[test]
    fn spawned_single_lane_pool_runs_off_thread_when_parallel() {
        let pool = LanePool::spawn(1);
        assert_eq!(pool.lanes(), 1);
        if is_parallel() {
            assert!(!pool.is_inline(), "spawn(1) must not run inline");
        } else {
            assert!(pool.is_inline(), "serial environments stay inline");
        }
        let tickets: Vec<Ticket<usize>> = (0..6)
            .map(|i| pool.submit_at(i as u64, move || i * 2))
            .collect();
        let results: Vec<usize> = tickets.into_iter().map(Ticket::wait).collect();
        assert_eq!(results, (0..6).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn panic_message_carries_lane_and_tick_provenance() {
        // spawn_lanes directly: bypasses the inline fallback so the
        // off-thread provenance path is exercised even when the test
        // environment itself is single-threaded.
        let pool = LanePool::spawn_lanes(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.submit_at(7, || panic!("splat buffer overflow")).wait()
        }))
        .expect_err("the job panic must surface at wait");
        let msg = panic_payload_text(caught.as_ref());
        assert!(msg.contains("lane 1"), "names the lane (7 % 2): {msg}");
        assert!(msg.contains("tick 7"), "names the schedule slot: {msg}");
        assert!(
            msg.contains("splat buffer overflow"),
            "carries the original payload: {msg}"
        );
    }

    #[test]
    fn lane_pool_survives_a_panicking_job() {
        let pool = LanePool::new(2);
        // Inline pools panic at submit, threaded ones at wait — either
        // way the failure reaches the submitting thread.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.submit(1, || panic!("job failure")).wait()
        }));
        assert!(caught.is_err(), "panicking job surfaces to the submitter");
        // The lane is still serviceable afterwards.
        assert_eq!(pool.submit(1, || 7).wait(), 7);
    }
}
