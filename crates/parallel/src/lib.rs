//! Band parallelism for the render hot paths.
//!
//! The functional pipelines process images in horizontal *bands* (whole
//! scanlines, or rows of 16×16 tiles). Bands touch disjoint slices of the
//! row-major pixel buffer, so they parallelize without locks: each worker
//! takes ownership of distinct `&mut` chunks via `chunks_mut` and the
//! results are bitwise independent of the thread count.
//!
//! Built on `std::thread::scope` — the hermetic build environment has no
//! rayon, and band-granularity work needs nothing fancier. With the
//! `threads` feature disabled (or one available core, or
//! `UNI_RENDER_THREADS=1`) everything runs serially on the calling thread;
//! callers keep a single code path either way.

use std::sync::atomic::{AtomicUsize, Ordering};

/// One band's work slot: the chunk a worker claims (exactly once).
type BandCell<'a, T> = std::sync::Mutex<Option<&'a mut [T]>>;

/// Worker count the band helpers will use.
///
/// `UNI_RENDER_THREADS` overrides detection; without the `threads` feature
/// this is always 1.
pub fn worker_count() -> usize {
    #[cfg(not(feature = "threads"))]
    {
        1
    }
    #[cfg(feature = "threads")]
    {
        if let Ok(v) = std::env::var("UNI_RENDER_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Whether the helpers will actually spawn threads.
pub fn is_parallel() -> bool {
    worker_count() > 1
}

/// Splits `data` into consecutive chunks of `band_len` elements (the last
/// may be shorter) and runs `f(band_index, chunk)` for every band,
/// returning the per-band results in band order.
///
/// Bands are claimed from a shared counter, so heterogeneous band costs
/// load-balance across workers. With one worker this degenerates to a
/// plain serial loop on the calling thread.
///
/// # Panics
///
/// Panics if `band_len == 0` while `data` is nonempty, or if a worker
/// panics (the panic is propagated).
pub fn par_bands<T, R, F>(data: &mut [T], band_len: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    if data.is_empty() {
        return Vec::new();
    }
    assert!(band_len > 0, "band_len must be positive");
    let n_bands = data.len().div_ceil(band_len);
    let workers = worker_count().min(n_bands);

    if workers <= 1 {
        return data
            .chunks_mut(band_len)
            .enumerate()
            .map(|(i, chunk)| f(i, chunk))
            .collect();
    }

    // Hand each band's `&mut` chunk to exactly one worker through a slot
    // vector; a claimed index takes its chunk out of the cell exactly
    // once, so band execution never holds a lock.
    let slot_cells: Vec<BandCell<'_, T>> = data
        .chunks_mut(band_len)
        .map(|chunk| std::sync::Mutex::new(Some(chunk)))
        .collect();
    run_pool(n_bands, workers, |i| {
        let chunk = slot_cells[i]
            .lock()
            .expect("band slot poisoned")
            .take()
            .expect("band claimed once");
        f(i, chunk)
    })
}

/// Runs `f(index)` for every index in `0..n`, returning results in order.
/// The read-only sibling of [`par_bands`] for fan-out over shared state.
pub fn par_indices<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = worker_count().min(n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    run_pool(n, workers, f)
}

/// The shared worker pool behind [`par_bands`] and [`par_indices`]: runs
/// `f(i)` for every index in `0..n` on `workers` scoped threads, indices
/// claimed from an atomic cursor (so heterogeneous costs load-balance),
/// results returned in index order. Worker panics are propagated.
fn run_pool<R, F>(n: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let cursor = AtomicUsize::new(0);
    let cells: Vec<std::sync::Mutex<Option<R>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let cursor = &cursor;
            let cells = &cells;
            let f = &f;
            handles.push(scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                *cells[i].lock().expect("result cell poisoned") = Some(f(i));
            }));
        }
        for h in handles {
            if let Err(p) = h.join() {
                std::panic::resume_unwind(p);
            }
        }
    });
    cells
        .into_iter()
        .map(|c| {
            c.into_inner()
                .expect("result cell poisoned")
                .expect("every index ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_cover_every_element_once() {
        let mut data: Vec<u32> = vec![0; 103];
        let counts = par_bands(&mut data, 10, |band, chunk| {
            for v in chunk.iter_mut() {
                *v += 1 + band as u32;
            }
            chunk.len()
        });
        assert_eq!(counts.len(), 11);
        assert_eq!(counts.iter().sum::<usize>(), 103);
        assert_eq!(counts[10], 3, "last band is the remainder");
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, 1 + (i / 10) as u32, "element {i} written by its band");
        }
    }

    #[test]
    fn results_arrive_in_band_order() {
        let mut data: Vec<u8> = vec![0; 64];
        let ids = par_bands(&mut data, 8, |band, _| band);
        assert_eq!(ids, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_no_bands() {
        let mut data: Vec<u8> = Vec::new();
        let r: Vec<usize> = par_bands(&mut data, 16, |_, chunk| chunk.len());
        assert!(r.is_empty());
    }

    #[test]
    fn par_indices_orders_results() {
        let squares = par_indices(20, |i| i * i);
        assert_eq!(squares, (0..20).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }
}
