//! Fixed-width wide-lane vectors for the render hot kernels.
//!
//! `F32x8` / `F32x4` are plain aligned arrays with fully unrolled
//! lane-wise arithmetic — a shape LLVM reliably lowers to vector
//! instructions (`vmulps`/`vaddps` on x86, NEON on aarch64) without any
//! `std::arch` intrinsics or crates.io dependency. Because every op is
//! exactly the scalar op applied per lane (no FMA contraction, no
//! reassociation), results are bit-identical whether or not the backend
//! vectorizes, on every target. Numeric differences against the seed-era
//! kernels come only from how *callers* restructure their reductions
//! (e.g. the 8-output GEMM panels in `uni_scene::nn`), never from these
//! primitives.

/// An 8-lane single-precision vector.
///
/// The 32-byte alignment matches one AVX register / two NEON registers,
/// so panel loads in the GEMM microkernel stay on aligned fast paths.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(align(32))]
pub struct F32x8(pub [f32; 8]);

impl F32x8 {
    /// All lanes zero.
    pub const ZERO: Self = Self([0.0; 8]);

    /// Broadcasts `v` to every lane.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        Self([v; 8])
    }

    /// Loads the first 8 elements of `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src` has fewer than 8 elements.
    #[inline(always)]
    pub fn load(src: &[f32]) -> Self {
        let s = &src[..8];
        Self([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]])
    }

    /// Stores all 8 lanes into the front of `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` has fewer than 8 elements.
    #[inline(always)]
    pub fn store(self, dst: &mut [f32]) {
        dst[..8].copy_from_slice(&self.0);
    }

    /// Stores the first `min(dst.len(), 8)` lanes — the tail write of a
    /// panel whose logical width is not a multiple of 8.
    #[inline(always)]
    pub fn store_prefix(self, dst: &mut [f32]) {
        let n = dst.len().min(8);
        dst[..n].copy_from_slice(&self.0[..n]);
    }

    /// Lane-wise `self * a + acc` as an explicit multiply then add (two
    /// rounding steps, exactly like the scalar expression `x * w + acc`)
    /// — deliberately *not* a fused multiply-add, so wide and scalar
    /// evaluations of the same reduction order agree bit-for-bit.
    #[inline(always)]
    pub fn mul_add(self, a: Self, acc: Self) -> Self {
        let mut r = [0f32; 8];
        let mut i = 0;
        while i < 8 {
            r[i] = self.0[i] * a.0[i] + acc.0[i];
            i += 1;
        }
        Self(r)
    }

    /// Lane-wise maximum.
    #[inline(always)]
    pub fn max(self, o: Self) -> Self {
        let mut r = [0f32; 8];
        let mut i = 0;
        while i < 8 {
            r[i] = self.0[i].max(o.0[i]);
            i += 1;
        }
        Self(r)
    }

    /// Lane-wise rectified linear unit (`max(x, 0)`).
    #[inline(always)]
    pub fn relu(self) -> Self {
        self.max(Self::ZERO)
    }

    /// Applies a scalar function per lane (for activations with no wide
    /// lowering, e.g. sigmoid's `exp`).
    #[inline(always)]
    pub fn map(self, f: impl Fn(f32) -> f32) -> Self {
        let mut r = [0f32; 8];
        let mut i = 0;
        while i < 8 {
            r[i] = f(self.0[i]);
            i += 1;
        }
        Self(r)
    }

    /// The lanes as an array.
    #[inline(always)]
    pub fn to_array(self) -> [f32; 8] {
        self.0
    }
}

impl std::ops::Add for F32x8 {
    type Output = Self;
    #[inline(always)]
    fn add(self, o: Self) -> Self {
        let mut r = [0f32; 8];
        let mut i = 0;
        while i < 8 {
            r[i] = self.0[i] + o.0[i];
            i += 1;
        }
        Self(r)
    }
}

impl std::ops::Sub for F32x8 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        let mut r = [0f32; 8];
        let mut i = 0;
        while i < 8 {
            r[i] = self.0[i] - o.0[i];
            i += 1;
        }
        Self(r)
    }
}

impl std::ops::Mul for F32x8 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        let mut r = [0f32; 8];
        let mut i = 0;
        while i < 8 {
            r[i] = self.0[i] * o.0[i];
            i += 1;
        }
        Self(r)
    }
}

/// A 4-lane single-precision vector — one hash-grid feature entry
/// (`F = 4`) or one RGBA group.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(align(16))]
pub struct F32x4(pub [f32; 4]);

impl F32x4 {
    /// All lanes zero.
    pub const ZERO: Self = Self([0.0; 4]);

    /// Broadcasts `v` to every lane.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        Self([v; 4])
    }

    /// Loads the first 4 elements of `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src` has fewer than 4 elements.
    #[inline(always)]
    pub fn load(src: &[f32]) -> Self {
        let s = &src[..4];
        Self([s[0], s[1], s[2], s[3]])
    }

    /// Stores all 4 lanes into the front of `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` has fewer than 4 elements.
    #[inline(always)]
    pub fn store(self, dst: &mut [f32]) {
        dst[..4].copy_from_slice(&self.0);
    }

    /// Lane-wise `self * a + acc` (separate multiply and add — see
    /// [`F32x8::mul_add`]).
    #[inline(always)]
    pub fn mul_add(self, a: Self, acc: Self) -> Self {
        Self([
            self.0[0] * a.0[0] + acc.0[0],
            self.0[1] * a.0[1] + acc.0[1],
            self.0[2] * a.0[2] + acc.0[2],
            self.0[3] * a.0[3] + acc.0[3],
        ])
    }

    /// The lanes as an array.
    #[inline(always)]
    pub fn to_array(self) -> [f32; 4] {
        self.0
    }
}

impl std::ops::Add for F32x4 {
    type Output = Self;
    #[inline(always)]
    fn add(self, o: Self) -> Self {
        Self([
            self.0[0] + o.0[0],
            self.0[1] + o.0[1],
            self.0[2] + o.0[2],
            self.0[3] + o.0[3],
        ])
    }
}

impl std::ops::Mul for F32x4 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        Self([
            self.0[0] * o.0[0],
            self.0[1] * o.0[1],
            self.0[2] * o.0[2],
            self.0[3] * o.0[3],
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_ops_match_scalar_bit_for_bit() {
        let a = [0.1f32, -2.5, 3.75, 1e-8, -1e8, 7.0, 0.0, -0.0];
        let b = [1.3f32, 0.5, -0.25, 2e7, 3.0, -6.0, 9.0, 4.0];
        let va = F32x8::load(&a);
        let vb = F32x8::load(&b);
        let sum = (va + vb).to_array();
        let prod = (va * vb).to_array();
        let fma = va.mul_add(vb, F32x8::splat(0.5)).to_array();
        for i in 0..8 {
            assert_eq!(sum[i].to_bits(), (a[i] + b[i]).to_bits(), "add lane {i}");
            assert_eq!(prod[i].to_bits(), (a[i] * b[i]).to_bits(), "mul lane {i}");
            assert_eq!(
                fma[i].to_bits(),
                (a[i] * b[i] + 0.5).to_bits(),
                "mul_add lane {i} is an unfused multiply-then-add"
            );
        }
    }

    #[test]
    fn relu_clamps_negative_lanes() {
        let v = F32x8([1.0, -1.0, 0.0, -0.0, 5.5, -5.5, f32::MIN_POSITIVE, -2.0]);
        let r = v.relu().to_array();
        assert_eq!(r, [1.0, 0.0, 0.0, 0.0, 5.5, 0.0, f32::MIN_POSITIVE, 0.0]);
    }

    #[test]
    fn store_prefix_writes_only_the_tail_width() {
        let v = F32x8([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let mut dst = [0f32; 3];
        v.store_prefix(&mut dst);
        assert_eq!(dst, [1.0, 2.0, 3.0]);
        let mut full = [0f32; 8];
        v.store_prefix(&mut full);
        assert_eq!(full, v.to_array());
    }

    #[test]
    fn f32x4_matches_scalar() {
        let a = F32x4([1.5, -2.0, 0.25, 8.0]);
        let b = F32x4([2.0, 3.0, -4.0, 0.5]);
        assert_eq!((a + b).to_array(), [3.5, 1.0, -3.75, 8.5]);
        assert_eq!((a * b).to_array(), [3.0, -6.0, -1.0, 4.0]);
        let acc = a.mul_add(b, F32x4::splat(1.0)).to_array();
        assert_eq!(acc, [4.0, -5.0, 0.0, 5.0]);
    }

    #[test]
    fn alignment_is_register_width() {
        assert_eq!(std::mem::align_of::<F32x8>(), 32);
        assert_eq!(std::mem::align_of::<F32x4>(), 16);
    }
}
