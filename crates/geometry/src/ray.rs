//! Rays and ray-primitive intersection.
//!
//! Ray casting is the first step of every volume-rendering pipeline
//! (Sec. II-B/C/D of the paper); ray-triangle intersection backs the
//! reference checks for the mesh rasterizer.

use crate::vec::Vec3;
use serde::{Deserialize, Serialize};

/// A half-line `origin + t * direction` for `t >= 0`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ray {
    /// Starting point.
    pub origin: Vec3,
    /// Direction. Stored as given; normalize at construction when distances
    /// along the ray must be metric.
    pub direction: Vec3,
}

/// A ray-triangle intersection record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TriangleHit {
    /// Distance along the ray.
    pub t: f32,
    /// Barycentric coordinate of vertex B.
    pub u: f32,
    /// Barycentric coordinate of vertex C.
    pub v: f32,
}

impl TriangleHit {
    /// Barycentric coordinate of vertex A (`1 - u - v`).
    #[inline]
    pub fn w(&self) -> f32 {
        1.0 - self.u - self.v
    }
}

impl Ray {
    /// Creates a ray, normalizing the direction.
    #[inline]
    pub fn new(origin: Vec3, direction: Vec3) -> Self {
        Self {
            origin,
            direction: direction.normalized(),
        }
    }

    /// Creates a ray without normalizing the direction.
    #[inline]
    pub const fn new_unnormalized(origin: Vec3, direction: Vec3) -> Self {
        Self { origin, direction }
    }

    /// Point at parameter `t`.
    #[inline]
    pub fn at(&self, t: f32) -> Vec3 {
        self.origin + self.direction * t
    }

    /// Möller-Trumbore ray-triangle intersection.
    ///
    /// Returns `None` for misses, back-side hits at negative `t`, and
    /// degenerate triangles. Both winding orders are accepted.
    pub fn intersect_triangle(&self, a: Vec3, b: Vec3, c: Vec3) -> Option<TriangleHit> {
        const EPS: f32 = 1e-8;
        let ab = b - a;
        let ac = c - a;
        let p = self.direction.cross(ac);
        let det = ab.dot(p);
        if det.abs() < EPS {
            return None; // Parallel or degenerate.
        }
        let inv_det = 1.0 / det;
        let s = self.origin - a;
        let u = s.dot(p) * inv_det;
        if !(0.0..=1.0).contains(&u) {
            return None;
        }
        let q = s.cross(ab);
        let v = self.direction.dot(q) * inv_det;
        if v < 0.0 || u + v > 1.0 {
            return None;
        }
        let t = ac.dot(q) * inv_det;
        if t < EPS {
            return None;
        }
        Some(TriangleHit { t, u, v })
    }

    /// Ray-sphere intersection; returns the nearest positive `t`.
    pub fn intersect_sphere(&self, center: Vec3, radius: f32) -> Option<f32> {
        let oc = self.origin - center;
        let a = self.direction.length_squared();
        let half_b = oc.dot(self.direction);
        let c = oc.length_squared() - radius * radius;
        let disc = half_b * half_b - a * c;
        if disc < 0.0 {
            return None;
        }
        let sqrt_d = disc.sqrt();
        let t0 = (-half_b - sqrt_d) / a;
        if t0 > 1e-6 {
            return Some(t0);
        }
        let t1 = (-half_b + sqrt_d) / a;
        (t1 > 1e-6).then_some(t1)
    }

    /// Ray-plane intersection with plane `dot(n, x) = d`.
    pub fn intersect_plane(&self, normal: Vec3, d: f32) -> Option<f32> {
        let denom = normal.dot(self.direction);
        if denom.abs() < 1e-8 {
            return None;
        }
        let t = (d - normal.dot(self.origin)) / denom;
        (t > 1e-6).then_some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructor_normalizes_direction() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, -3.0));
        assert!((r.direction.length() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn hit_through_triangle_centroid() {
        let (a, b, c) = (
            Vec3::new(-1.0, -1.0, 0.0),
            Vec3::new(1.0, -1.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        let centroid = (a + b + c) / 3.0;
        let r = Ray::new(centroid + Vec3::Z * 5.0, -Vec3::Z);
        let hit = r.intersect_triangle(a, b, c).expect("hit");
        assert!((hit.t - 5.0).abs() < 1e-5);
        // Barycentric coordinates of the centroid are all 1/3.
        assert!((hit.u - 1.0 / 3.0).abs() < 1e-5);
        assert!((hit.v - 1.0 / 3.0).abs() < 1e-5);
        assert!((hit.w() - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn miss_outside_triangle() {
        let (a, b, c) = (Vec3::ZERO, Vec3::X, Vec3::Y);
        let r = Ray::new(Vec3::new(2.0, 2.0, 1.0), -Vec3::Z);
        assert!(r.intersect_triangle(a, b, c).is_none());
    }

    #[test]
    fn triangle_behind_ray_is_not_hit() {
        let (a, b, c) = (Vec3::ZERO, Vec3::X, Vec3::Y);
        let r = Ray::new(Vec3::new(0.2, 0.2, -1.0), -Vec3::Z);
        assert!(r.intersect_triangle(a, b, c).is_none());
    }

    #[test]
    fn degenerate_triangle_is_rejected() {
        let r = Ray::new(Vec3::new(0.0, 0.0, 1.0), -Vec3::Z);
        assert!(r
            .intersect_triangle(Vec3::ZERO, Vec3::X, Vec3::X * 2.0)
            .is_none());
    }

    #[test]
    fn sphere_hit_front_and_inside() {
        let r = Ray::new(Vec3::new(0.0, 0.0, 5.0), -Vec3::Z);
        let t = r.intersect_sphere(Vec3::ZERO, 1.0).expect("hit");
        assert!((t - 4.0).abs() < 1e-5);
        // From inside: nearest positive root is the exit point.
        let r2 = Ray::new(Vec3::ZERO, -Vec3::Z);
        let t2 = r2.intersect_sphere(Vec3::ZERO, 1.0).expect("hit");
        assert!((t2 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn plane_intersection() {
        let r = Ray::new(Vec3::new(0.0, 2.0, 0.0), -Vec3::Y);
        let t = r.intersect_plane(Vec3::Y, 0.0).expect("hit");
        assert!((t - 2.0).abs() < 1e-6);
        // Parallel ray misses.
        let r2 = Ray::new(Vec3::new(0.0, 2.0, 0.0), Vec3::X);
        assert!(r2.intersect_plane(Vec3::Y, 0.0).is_none());
    }

    fn arb_unit() -> impl Strategy<Value = f32> {
        0.05f32..0.9
    }

    proptest! {
        /// A point constructed from barycentric coordinates inside the
        /// triangle must be hit by the perpendicular ray through it, and the
        /// returned barycentrics must reconstruct the same point.
        #[test]
        fn prop_barycentric_round_trip(u in arb_unit(), v in arb_unit()) {
            prop_assume!(u + v < 0.95);
            let (a, b, c) = (
                Vec3::new(-1.0, -1.0, 0.0),
                Vec3::new(2.0, -0.5, 0.0),
                Vec3::new(0.0, 1.5, 0.0),
            );
            let p = a * (1.0 - u - v) + b * u + c * v;
            let r = Ray::new(p + Vec3::Z * 3.0, -Vec3::Z);
            let hit = r.intersect_triangle(a, b, c).expect("interior point must be hit");
            let q = a * hit.w() + b * hit.u + c * hit.v;
            prop_assert!((q - p).length() < 1e-4);
        }

        /// Points on the sphere surface are reported at the correct distance.
        #[test]
        fn prop_sphere_distance(dist in 2f32..50.0, radius in 0.1f32..1.5) {
            let r = Ray::new(Vec3::new(0.0, 0.0, dist), -Vec3::Z);
            let t = r.intersect_sphere(Vec3::ZERO, radius).expect("on-axis hit");
            prop_assert!((t - (dist - radius)).abs() < 1e-3);
        }
    }
}
