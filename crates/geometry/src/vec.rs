//! Fixed-size vector types (`Vec2`, `Vec3`, `Vec4`) over `f32`.
//!
//! These mirror the small-vector APIs of common graphics math crates but are
//! implemented locally so the reproduction has no external math dependencies.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 2-component `f32` vector.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
}

/// A 3-component `f32` vector.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

/// A 4-component `f32` vector (homogeneous coordinates, RGBA, quaternions).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec4 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
    /// W component.
    pub w: f32,
}

macro_rules! impl_vec_common {
    ($ty:ident { $($f:ident),+ }, $n:expr) => {
        impl $ty {
            /// The zero vector.
            pub const ZERO: Self = Self { $($f: 0.0),+ };
            /// The all-ones vector.
            pub const ONE: Self = Self { $($f: 1.0),+ };

            /// Creates a vector from components.
            #[inline]
            pub const fn new($($f: f32),+) -> Self {
                Self { $($f),+ }
            }

            /// Creates a vector with every component set to `v`.
            #[inline]
            pub const fn splat(v: f32) -> Self {
                Self { $($f: v),+ }
            }

            /// Dot product.
            #[inline]
            pub fn dot(self, rhs: Self) -> f32 {
                0.0 $(+ self.$f * rhs.$f)+
            }

            /// Squared Euclidean length.
            #[inline]
            pub fn length_squared(self) -> f32 {
                self.dot(self)
            }

            /// Euclidean length.
            #[inline]
            pub fn length(self) -> f32 {
                self.length_squared().sqrt()
            }

            /// Returns the vector scaled to unit length.
            ///
            /// Returns the zero vector when the input length is not a
            /// positive finite number, so callers never observe NaNs.
            #[inline]
            pub fn normalized(self) -> Self {
                let len = self.length();
                if len.is_finite() && len > 0.0 {
                    self / len
                } else {
                    Self::ZERO
                }
            }

            /// Component-wise multiplication (Hadamard product).
            #[inline]
            pub fn mul_elem(self, rhs: Self) -> Self {
                Self { $($f: self.$f * rhs.$f),+ }
            }

            /// Component-wise minimum.
            #[inline]
            pub fn min_elem(self, rhs: Self) -> Self {
                Self { $($f: self.$f.min(rhs.$f)),+ }
            }

            /// Component-wise maximum.
            #[inline]
            pub fn max_elem(self, rhs: Self) -> Self {
                Self { $($f: self.$f.max(rhs.$f)),+ }
            }

            /// Smallest component.
            #[inline]
            pub fn min_component(self) -> f32 {
                let mut m = f32::INFINITY;
                $(m = m.min(self.$f);)+
                m
            }

            /// Largest component.
            #[inline]
            pub fn max_component(self) -> f32 {
                let mut m = f32::NEG_INFINITY;
                $(m = m.max(self.$f);)+
                m
            }

            /// Component-wise absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self { $($f: self.$f.abs()),+ }
            }

            /// Linear interpolation: `self * (1 - t) + rhs * t`.
            #[inline]
            pub fn lerp(self, rhs: Self, t: f32) -> Self {
                self * (1.0 - t) + rhs * t
            }

            /// Clamps every component into `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: f32, hi: f32) -> Self {
                Self { $($f: self.$f.clamp(lo, hi)),+ }
            }

            /// Sum of all components.
            #[inline]
            pub fn component_sum(self) -> f32 {
                0.0 $(+ self.$f)+
            }

            /// Returns `true` if every component is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                true $(&& self.$f.is_finite())+
            }

            /// Distance between two points.
            #[inline]
            pub fn distance(self, rhs: Self) -> f32 {
                (self - rhs).length()
            }

            /// Components as an array, in declaration order.
            #[inline]
            pub fn to_array(self) -> [f32; $n] {
                [$(self.$f),+]
            }
        }

        impl Add for $ty {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self { $($f: self.$f + rhs.$f),+ }
            }
        }

        impl AddAssign for $ty {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                $(self.$f += rhs.$f;)+
            }
        }

        impl Sub for $ty {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self { $($f: self.$f - rhs.$f),+ }
            }
        }

        impl SubAssign for $ty {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                $(self.$f -= rhs.$f;)+
            }
        }

        impl Mul<f32> for $ty {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f32) -> Self {
                Self { $($f: self.$f * rhs),+ }
            }
        }

        impl Mul<$ty> for f32 {
            type Output = $ty;
            #[inline]
            fn mul(self, rhs: $ty) -> $ty {
                rhs * self
            }
        }

        impl MulAssign<f32> for $ty {
            #[inline]
            fn mul_assign(&mut self, rhs: f32) {
                $(self.$f *= rhs;)+
            }
        }

        impl Div<f32> for $ty {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f32) -> Self {
                Self { $($f: self.$f / rhs),+ }
            }
        }

        impl DivAssign<f32> for $ty {
            #[inline]
            fn div_assign(&mut self, rhs: f32) {
                $(self.$f /= rhs;)+
            }
        }

        impl Neg for $ty {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self { $($f: -self.$f),+ }
            }
        }

        impl From<[f32; $n]> for $ty {
            #[inline]
            fn from(a: [f32; $n]) -> Self {
                let mut it = a.into_iter();
                Self { $($f: it.next().expect("array length matches")),+ }
            }
        }

        impl From<$ty> for [f32; $n] {
            #[inline]
            fn from(v: $ty) -> Self {
                v.to_array()
            }
        }

        impl Index<usize> for $ty {
            type Output = f32;
            #[inline]
            fn index(&self, i: usize) -> &f32 {
                let mut k = 0usize;
                $(
                    if i == k {
                        return &self.$f;
                    }
                    k += 1;
                )+
                let _ = k;
                panic!("vector index {i} out of range 0..{}", $n)
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "(")?;
                let mut first = true;
                $(
                    if !first {
                        write!(f, ", ")?;
                    }
                    first = false;
                    write!(f, "{}", self.$f)?;
                )+
                let _ = first;
                write!(f, ")")
            }
        }
    };
}

impl_vec_common!(Vec2 { x, y }, 2);
impl_vec_common!(Vec3 { x, y, z }, 3);
impl_vec_common!(Vec4 { x, y, z, w }, 4);

impl Vec2 {
    /// Unit X axis.
    pub const X: Self = Self::new(1.0, 0.0);
    /// Unit Y axis.
    pub const Y: Self = Self::new(0.0, 1.0);

    /// 2D "cross product" (z-component of the 3D cross of the embeddings).
    ///
    /// The sign tells which side of `self` the vector `rhs` lies on; it is
    /// the workhorse of the rasterizer's edge functions.
    #[inline]
    pub fn cross(self, rhs: Self) -> f32 {
        self.x * rhs.y - self.y * rhs.x
    }

    /// Rotates the vector counterclockwise by 90 degrees.
    #[inline]
    pub fn perp(self) -> Self {
        Self::new(-self.y, self.x)
    }

    /// Extends to a [`Vec3`] with the given z.
    #[inline]
    pub fn extend(self, z: f32) -> Vec3 {
        Vec3::new(self.x, self.y, z)
    }
}

impl Vec3 {
    /// Unit X axis.
    pub const X: Self = Self::new(1.0, 0.0, 0.0);
    /// Unit Y axis.
    pub const Y: Self = Self::new(0.0, 1.0, 0.0);
    /// Unit Z axis.
    pub const Z: Self = Self::new(0.0, 0.0, 1.0);

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Self) -> Self {
        Self::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Extends to a [`Vec4`] with the given w.
    #[inline]
    pub fn extend(self, w: f32) -> Vec4 {
        Vec4::new(self.x, self.y, self.z, w)
    }

    /// Drops the z component.
    #[inline]
    pub fn truncate(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Reflects the vector about a unit normal `n`.
    #[inline]
    pub fn reflect(self, n: Self) -> Self {
        self - n * (2.0 * self.dot(n))
    }

    /// Returns any unit vector orthogonal to `self` (which must be nonzero).
    pub fn any_orthonormal(self) -> Self {
        let v = if self.x.abs() < 0.9 { Self::X } else { Self::Y };
        self.cross(v).normalized()
    }
}

impl Vec4 {
    /// Projects homogeneous coordinates back to 3D by dividing by w.
    ///
    /// # Panics
    ///
    /// Does not panic; if `w == 0` the result contains infinities, which
    /// callers guard via [`Vec3::is_finite`].
    #[inline]
    pub fn project(self) -> Vec3 {
        Vec3::new(self.x / self.w, self.y / self.w, self.z / self.w)
    }

    /// Drops the w component.
    #[inline]
    pub fn truncate(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() <= 1e-5 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn vec3_dot_and_cross_are_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        let c = a.cross(b);
        assert!(close(c.dot(a), 0.0));
        assert!(close(c.dot(b), 0.0));
    }

    #[test]
    fn vec3_axis_cross_products_follow_right_hand_rule() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn normalized_zero_vector_is_zero() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(2.5, 3.5, 4.5));
    }

    #[test]
    fn homogeneous_projection() {
        let v = Vec4::new(2.0, 4.0, 6.0, 2.0);
        assert_eq!(v.project(), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn vec2_cross_sign_detects_orientation() {
        // Y is counterclockwise from X.
        assert!(Vec2::X.cross(Vec2::Y) > 0.0);
        assert!(Vec2::Y.cross(Vec2::X) < 0.0);
    }

    #[test]
    fn index_matches_fields() {
        let v = Vec4::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[3], 4.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let v = Vec2::new(1.0, 2.0);
        let _ = v[2];
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Vec2::new(1.0, 2.0).to_string(), "(1, 2)");
    }

    #[test]
    fn array_round_trip() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        let a: [f32; 3] = v.into();
        assert_eq!(Vec3::from(a), v);
    }

    #[test]
    fn any_orthonormal_is_orthogonal_and_unit() {
        for v in [Vec3::X, Vec3::Y, Vec3::Z, Vec3::new(0.3, -2.0, 5.0)] {
            let o = v.any_orthonormal();
            assert!(close(o.dot(v), 0.0), "{v:?} vs {o:?}");
            assert!(close(o.length(), 1.0));
        }
    }

    #[test]
    fn reflect_preserves_length() {
        let v = Vec3::new(1.0, -2.0, 0.5);
        let r = v.reflect(Vec3::Y);
        assert!(close(v.length(), r.length()));
        assert!(close(r.y, 2.0));
    }

    fn arb_vec3() -> impl Strategy<Value = Vec3> {
        (-100f32..100.0, -100f32..100.0, -100f32..100.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
    }

    proptest! {
        #[test]
        fn prop_dot_is_commutative(a in arb_vec3(), b in arb_vec3()) {
            prop_assert!(close(a.dot(b), b.dot(a)));
        }

        #[test]
        fn prop_cross_is_anticommutative(a in arb_vec3(), b in arb_vec3()) {
            let lhs = a.cross(b);
            let rhs = -(b.cross(a));
            prop_assert!(lhs.distance(rhs) < 1e-2);
        }

        #[test]
        fn prop_normalized_has_unit_length_or_zero(a in arb_vec3()) {
            let n = a.normalized();
            let len = n.length();
            prop_assert!(len == 0.0 || close(len, 1.0));
        }

        #[test]
        fn prop_triangle_inequality(a in arb_vec3(), b in arb_vec3()) {
            prop_assert!((a + b).length() <= a.length() + b.length() + 1e-3);
        }

        #[test]
        fn prop_min_max_bracket(a in arb_vec3(), b in arb_vec3()) {
            let lo = a.min_elem(b);
            let hi = a.max_elem(b);
            prop_assert!(lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z);
        }
    }
}
