//! Colors and image buffers, plus the PSNR quality metric from Tab. I.

use crate::vec::Vec3;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul};

/// Linear RGB color with `f32` channels.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Rgb {
    /// Red channel.
    pub r: f32,
    /// Green channel.
    pub g: f32,
    /// Blue channel.
    pub b: f32,
}

/// Linear RGBA color with straight (non-premultiplied) alpha.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Rgba {
    /// Color part.
    pub rgb: Rgb,
    /// Alpha (opacity).
    pub a: f32,
}

impl Rgb {
    /// Black.
    pub const BLACK: Self = Self::new(0.0, 0.0, 0.0);
    /// White.
    pub const WHITE: Self = Self::new(1.0, 1.0, 1.0);

    /// Creates a color.
    #[inline]
    pub const fn new(r: f32, g: f32, b: f32) -> Self {
        Self { r, g, b }
    }

    /// Gray level `v` in all channels.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Self::new(v, v, v)
    }

    /// Clamps channels to `[0, 1]`.
    #[inline]
    pub fn saturate(self) -> Self {
        Self::new(
            self.r.clamp(0.0, 1.0),
            self.g.clamp(0.0, 1.0),
            self.b.clamp(0.0, 1.0),
        )
    }

    /// Rec. 709 luma.
    #[inline]
    pub fn luminance(self) -> f32 {
        0.2126 * self.r + 0.7152 * self.g + 0.0722 * self.b
    }

    /// Linear interpolation toward `other`.
    #[inline]
    pub fn lerp(self, other: Self, t: f32) -> Self {
        self * (1.0 - t) + other * t
    }

    /// Encodes linear to sRGB (gamma) per channel.
    pub fn to_srgb(self) -> Self {
        fn enc(c: f32) -> f32 {
            let c = c.clamp(0.0, 1.0);
            if c <= 0.003_130_8 {
                12.92 * c
            } else {
                1.055 * c.powf(1.0 / 2.4) - 0.055
            }
        }
        Self::new(enc(self.r), enc(self.g), enc(self.b))
    }

    /// Decodes sRGB to linear per channel.
    pub fn from_srgb(self) -> Self {
        fn dec(c: f32) -> f32 {
            let c = c.clamp(0.0, 1.0);
            if c <= 0.040_45 {
                c / 12.92
            } else {
                ((c + 0.055) / 1.055).powf(2.4)
            }
        }
        Self::new(dec(self.r), dec(self.g), dec(self.b))
    }

    /// Quantizes to 8-bit channels.
    pub fn to_bytes(self) -> [u8; 3] {
        let q = |c: f32| (c.clamp(0.0, 1.0) * 255.0 + 0.5) as u8;
        [q(self.r), q(self.g), q(self.b)]
    }
}

impl From<Vec3> for Rgb {
    #[inline]
    fn from(v: Vec3) -> Self {
        Self::new(v.x, v.y, v.z)
    }
}

impl From<Rgb> for Vec3 {
    #[inline]
    fn from(c: Rgb) -> Self {
        Vec3::new(c.r, c.g, c.b)
    }
}

impl Add for Rgb {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.r + rhs.r, self.g + rhs.g, self.b + rhs.b)
    }
}

impl AddAssign for Rgb {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Mul<f32> for Rgb {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f32) -> Self {
        Self::new(self.r * rhs, self.g * rhs, self.b * rhs)
    }
}

impl fmt::Display for Rgb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rgb({:.3}, {:.3}, {:.3})", self.r, self.g, self.b)
    }
}

impl Rgba {
    /// Fully transparent black.
    pub const TRANSPARENT: Self = Self {
        rgb: Rgb::BLACK,
        a: 0.0,
    };

    /// Creates a color with alpha.
    #[inline]
    pub const fn new(r: f32, g: f32, b: f32, a: f32) -> Self {
        Self {
            rgb: Rgb::new(r, g, b),
            a,
        }
    }

    /// Composites `self` *over* `dst` (straight alpha).
    pub fn over(self, dst: Rgba) -> Rgba {
        let a = self.a + dst.a * (1.0 - self.a);
        if a <= 1e-8 {
            return Rgba::TRANSPARENT;
        }
        let rgb = (self.rgb * self.a + dst.rgb * (dst.a * (1.0 - self.a))) * (1.0 / a);
        Rgba { rgb, a }
    }
}

/// A row-major image of linear RGB pixels.
///
/// Images double as *reusable render targets*: [`Image::resize`] and
/// [`Image::clear`] recycle the pixel allocation, so a frame loop that
/// renders into the same target performs no steady-state allocations
/// (the convention `Renderer::render_into` and the frame-stream engine
/// build on).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Image {
    width: u32,
    height: u32,
    pixels: Vec<Rgb>,
}

impl Image {
    /// Creates an image filled with `fill`.
    pub fn new(width: u32, height: u32, fill: Rgb) -> Self {
        Self {
            width,
            height,
            pixels: vec![fill; (width as usize) * (height as usize)],
        }
    }

    /// Creates an empty 0×0 image holding no allocation — the cheapest
    /// seed for a reusable target that a renderer will [`Image::resize`].
    pub fn empty() -> Self {
        Self {
            width: 0,
            height: 0,
            pixels: Vec::new(),
        }
    }

    /// Resizes to `width × height` and fills every pixel with `fill`,
    /// reusing the existing allocation whenever its capacity suffices.
    pub fn resize(&mut self, width: u32, height: u32, fill: Rgb) {
        self.width = width;
        self.height = height;
        let n = (width as usize) * (height as usize);
        self.pixels.clear();
        self.pixels.resize(n, fill);
    }

    /// Fills every pixel with `fill` without touching the allocation.
    pub fn clear(&mut self, fill: Rgb) {
        self.pixels.fill(fill);
    }

    /// Capacity of the underlying pixel buffer, in pixels. Stable across
    /// frames when a target is reused at a fixed resolution — the
    /// property the framebuffer-pool tests assert.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.pixels.capacity()
    }

    /// Borrow of row `y` (`width` contiguous pixels).
    ///
    /// # Panics
    ///
    /// Panics when `y` is out of bounds.
    #[inline]
    pub fn row(&self, y: u32) -> &[Rgb] {
        assert!(y < self.height, "row {y} out of bounds");
        let w = self.width as usize;
        &self.pixels[y as usize * w..(y as usize + 1) * w]
    }

    /// Mutable borrow of row `y` (`width` contiguous pixels).
    ///
    /// # Panics
    ///
    /// Panics when `y` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, y: u32) -> &mut [Rgb] {
        assert!(y < self.height, "row {y} out of bounds");
        let w = self.width as usize;
        &mut self.pixels[y as usize * w..(y as usize + 1) * w]
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Borrow of the pixel data, row-major.
    #[inline]
    pub fn pixels(&self) -> &[Rgb] {
        &self.pixels
    }

    /// Mutable borrow of the pixel data, row-major.
    ///
    /// Rows are contiguous (`width` pixels each), so horizontal bands of
    /// the image are disjoint `&mut` chunks — the property the parallel
    /// renderers rely on.
    #[inline]
    pub fn pixels_mut(&mut self) -> &mut [Rgb] {
        &mut self.pixels
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> Rgb {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.pixels[y as usize * self.width as usize + x as usize]
    }

    /// Sets pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when the coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, c: Rgb) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.pixels[y as usize * self.width as usize + x as usize] = c;
    }

    /// Mean over all pixels.
    pub fn mean(&self) -> Rgb {
        let n = self.pixels.len().max(1) as f32;
        let sum = self.pixels.iter().fold(Rgb::BLACK, |acc, &p| acc + p);
        sum * (1.0 / n)
    }

    /// Mean squared error against another image of identical dimensions.
    ///
    /// # Panics
    ///
    /// Panics when dimensions differ.
    pub fn mse(&self, other: &Image) -> f64 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "image dimensions must match"
        );
        let mut acc = 0f64;
        for (a, b) in self.pixels.iter().zip(&other.pixels) {
            let dr = f64::from(a.r - b.r);
            let dg = f64::from(a.g - b.g);
            let db = f64::from(a.b - b.b);
            acc += dr * dr + dg * dg + db * db;
        }
        acc / (self.pixels.len() as f64 * 3.0)
    }

    /// Peak signal-to-noise ratio in dB against a reference image (range 1.0).
    ///
    /// This is the rendering-quality metric of Tab. I. Identical images give
    /// `f64::INFINITY`.
    pub fn psnr(&self, reference: &Image) -> f64 {
        let mse = self.mse(reference);
        if mse <= 0.0 {
            f64::INFINITY
        } else {
            10.0 * (1.0 / mse).log10()
        }
    }

    /// Encodes as a binary PPM (P6) byte stream — small, dependency-free
    /// output for the examples.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        for p in &self.pixels {
            out.extend_from_slice(&p.to_srgb().to_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn srgb_round_trip() {
        for v in [0.0, 0.001, 0.1, 0.5, 0.9, 1.0] {
            let c = Rgb::splat(v);
            let back = c.to_srgb().from_srgb();
            assert!((back.r - v).abs() < 1e-4, "{v}");
        }
    }

    #[test]
    fn over_with_opaque_src_replaces_dst() {
        let src = Rgba::new(1.0, 0.0, 0.0, 1.0);
        let dst = Rgba::new(0.0, 1.0, 0.0, 1.0);
        let out = src.over(dst);
        assert!((out.rgb.r - 1.0).abs() < 1e-6 && out.rgb.g.abs() < 1e-6);
        assert!((out.a - 1.0).abs() < 1e-6);
    }

    #[test]
    fn over_with_transparent_src_keeps_dst() {
        let dst = Rgba::new(0.2, 0.4, 0.6, 0.8);
        let out = Rgba::TRANSPARENT.over(dst);
        assert!((out.a - dst.a).abs() < 1e-6);
        assert!((out.rgb.g - dst.rgb.g).abs() < 1e-6);
    }

    #[test]
    fn image_get_set() {
        let mut img = Image::new(4, 3, Rgb::BLACK);
        img.set(2, 1, Rgb::WHITE);
        assert_eq!(img.get(2, 1), Rgb::WHITE);
        assert_eq!(img.get(0, 0), Rgb::BLACK);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn image_get_out_of_bounds_panics() {
        let img = Image::new(2, 2, Rgb::BLACK);
        let _ = img.get(2, 0);
    }

    #[test]
    fn resize_reuses_the_allocation() {
        let mut img = Image::new(8, 8, Rgb::BLACK);
        let cap = img.capacity();
        let ptr = img.pixels().as_ptr();
        img.resize(4, 4, Rgb::WHITE);
        assert_eq!((img.width(), img.height()), (4, 4));
        assert_eq!(img.pixels().len(), 16);
        assert_eq!(img.get(3, 3), Rgb::WHITE);
        assert_eq!(img.capacity(), cap, "shrinking keeps the allocation");
        assert_eq!(img.pixels().as_ptr(), ptr, "same buffer");
        img.resize(8, 8, Rgb::splat(0.5));
        assert_eq!(img.pixels().as_ptr(), ptr, "growing back within capacity");
        assert_eq!(img.get(7, 7), Rgb::splat(0.5));
    }

    #[test]
    fn empty_image_holds_no_allocation() {
        let img = Image::empty();
        assert_eq!((img.width(), img.height()), (0, 0));
        assert_eq!(img.capacity(), 0);
    }

    #[test]
    fn clear_fills_without_resizing() {
        let mut img = Image::new(3, 2, Rgb::BLACK);
        let cap = img.capacity();
        img.clear(Rgb::WHITE);
        assert_eq!(img.get(2, 1), Rgb::WHITE);
        assert_eq!(img.capacity(), cap);
    }

    #[test]
    fn row_access_matches_get_set() {
        let mut img = Image::new(4, 3, Rgb::BLACK);
        img.row_mut(1)[2] = Rgb::WHITE;
        assert_eq!(img.get(2, 1), Rgb::WHITE);
        assert_eq!(img.row(1)[2], Rgb::WHITE);
        assert_eq!(img.row(0).len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        let img = Image::new(2, 2, Rgb::BLACK);
        let _ = img.row(2);
    }

    #[test]
    fn psnr_of_identical_images_is_infinite() {
        let img = Image::new(8, 8, Rgb::splat(0.5));
        assert!(img.psnr(&img).is_infinite());
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let reference = Image::new(8, 8, Rgb::splat(0.5));
        let mut slightly = reference.clone();
        let mut very = reference.clone();
        for y in 0..8 {
            for x in 0..8 {
                slightly.set(x, y, Rgb::splat(0.51));
                very.set(x, y, Rgb::splat(0.7));
            }
        }
        let p_slight = slightly.psnr(&reference);
        let p_very = very.psnr(&reference);
        assert!(p_slight > p_very, "{p_slight} vs {p_very}");
        assert!((p_slight - 40.0).abs() < 0.1, "0.01 error -> 40 dB");
    }

    #[test]
    fn ppm_header_and_size() {
        let img = Image::new(3, 2, Rgb::WHITE);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(ppm.len(), b"P6\n3 2\n255\n".len() + 3 * 2 * 3);
    }

    proptest! {
        #[test]
        fn prop_over_alpha_in_unit_range(
            sa in 0f32..1.0, da in 0f32..1.0, sr in 0f32..1.0, dr in 0f32..1.0,
        ) {
            let src = Rgba::new(sr, 0.5, 0.5, sa);
            let dst = Rgba::new(dr, 0.5, 0.5, da);
            let out = src.over(dst);
            prop_assert!((0.0..=1.0 + 1e-5).contains(&out.a));
            prop_assert!(out.a + 1e-6 >= sa.max(da * (1.0 - sa)));
        }

        #[test]
        fn prop_luminance_bounded(r in 0f32..1.0, g in 0f32..1.0, b in 0f32..1.0) {
            let l = Rgb::new(r, g, b).luminance();
            prop_assert!((0.0..=1.0 + 1e-5).contains(&l));
        }
    }
}
