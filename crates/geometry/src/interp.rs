//! Interpolation helpers: nearest, bilinear, trilinear weights.
//!
//! The grid-indexing micro-operators (Combined/Decomposed Grid Indexing,
//! Tab. II) reduce fetched features with exactly these weights; the hardware
//! reduction network evaluates them as weighted adder trees (Figs. 11-12),
//! so keeping the math here shared guarantees the functional renderer and
//! the accelerator model agree on counts and values.

use serde::{Deserialize, Serialize};

/// A cell coordinate decomposition: integer base index plus fractional part.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellCoord {
    /// Integer lattice coordinate of the lower corner.
    pub base: i64,
    /// Fractional offset in `[0, 1)`.
    pub frac: f32,
}

/// Splits a continuous grid coordinate into `(base, frac)`.
///
/// `resolution` is the number of *vertices* per axis; the continuous
/// coordinate `u` in `[0, 1]` spans `resolution - 1` cells. The base index
/// is clamped so `base + 1` is always a valid vertex, which matches how
/// grid pipelines treat boundary samples.
// uni-lint: hot
pub fn cell_coord(u: f32, resolution: u32) -> CellCoord {
    debug_assert!(resolution >= 2, "grids need at least 2 vertices per axis");
    let scaled = u.clamp(0.0, 1.0) * (resolution - 1) as f32;
    let max_base = (resolution - 2) as i64;
    let base = (scaled.floor() as i64).clamp(0, max_base);
    let frac = (scaled - base as f32).clamp(0.0, 1.0);
    CellCoord { base, frac }
}

/// The 4 bilinear corner weights for fractional offsets `(fx, fy)`.
///
/// Order: `(0,0), (1,0), (0,1), (1,1)` — x varies fastest. The weights
/// always sum to 1.
#[inline]
pub fn bilinear_weights(fx: f32, fy: f32) -> [f32; 4] {
    let gx = 1.0 - fx;
    let gy = 1.0 - fy;
    [gx * gy, fx * gy, gx * fy, fx * fy]
}

/// The 8 trilinear corner weights for fractional offsets `(fx, fy, fz)`.
///
/// Order: z-major over the bilinear order. The weights always sum to 1.
#[inline]
// uni-lint: hot
pub fn trilinear_weights(fx: f32, fy: f32, fz: f32) -> [f32; 8] {
    let b = bilinear_weights(fx, fy);
    let gz = 1.0 - fz;
    [
        b[0] * gz,
        b[1] * gz,
        b[2] * gz,
        b[3] * gz,
        b[0] * fz,
        b[1] * fz,
        b[2] * fz,
        b[3] * fz,
    ]
}

/// Bilinear interpolation of 4 scalar corner values (same order as
/// [`bilinear_weights`]).
#[inline]
pub fn bilerp(c: [f32; 4], fx: f32, fy: f32) -> f32 {
    let w = bilinear_weights(fx, fy);
    c[0] * w[0] + c[1] * w[1] + c[2] * w[2] + c[3] * w[3]
}

/// Trilinear interpolation of 8 scalar corner values (same order as
/// [`trilinear_weights`]).
#[inline]
pub fn trilerp(c: [f32; 8], fx: f32, fy: f32, fz: f32) -> f32 {
    let w = trilinear_weights(fx, fy, fz);
    let mut acc = 0.0;
    for i in 0..8 {
        acc += c[i] * w[i];
    }
    acc
}

/// Nearest-vertex index along one axis.
#[inline]
pub fn nearest_index(u: f32, resolution: u32) -> u32 {
    let scaled = u.clamp(0.0, 1.0) * (resolution - 1) as f32;
    (scaled + 0.5).floor().min((resolution - 1) as f32) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cell_coord_interior() {
        let c = cell_coord(0.5, 5); // 4 cells, coordinate 2.0
        assert_eq!(c.base, 2);
        assert!(c.frac.abs() < 1e-6);
    }

    #[test]
    fn cell_coord_clamps_at_upper_boundary() {
        let c = cell_coord(1.0, 8);
        assert_eq!(c.base, 6, "base+1 must be a valid vertex");
        assert!((c.frac - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cell_coord_clamps_below_zero() {
        let c = cell_coord(-0.3, 8);
        assert_eq!(c.base, 0);
        assert_eq!(c.frac, 0.0);
    }

    #[test]
    fn bilinear_corners_are_one_hot() {
        assert_eq!(bilinear_weights(0.0, 0.0), [1.0, 0.0, 0.0, 0.0]);
        assert_eq!(bilinear_weights(1.0, 0.0), [0.0, 1.0, 0.0, 0.0]);
        assert_eq!(bilinear_weights(0.0, 1.0), [0.0, 0.0, 1.0, 0.0]);
        assert_eq!(bilinear_weights(1.0, 1.0), [0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn bilerp_reproduces_linear_function() {
        // f(x, y) = 2x + 3y + 1 sampled at corners.
        let f = |x: f32, y: f32| 2.0 * x + 3.0 * y + 1.0;
        let corners = [f(0.0, 0.0), f(1.0, 0.0), f(0.0, 1.0), f(1.0, 1.0)];
        for &(x, y) in &[(0.25, 0.75), (0.5, 0.5), (0.9, 0.1)] {
            assert!((bilerp(corners, x, y) - f(x, y)).abs() < 1e-5);
        }
    }

    #[test]
    fn trilerp_reproduces_trilinear_function() {
        let f = |x: f32, y: f32, z: f32| 1.0 + x - 2.0 * y + 0.5 * z;
        let mut corners = [0f32; 8];
        for (i, c) in corners.iter_mut().enumerate() {
            let x = (i & 1) as f32;
            let y = ((i >> 1) & 1) as f32;
            let z = ((i >> 2) & 1) as f32;
            *c = f(x, y, z);
        }
        for &(x, y, z) in &[(0.3, 0.6, 0.9), (0.0, 1.0, 0.5)] {
            assert!((trilerp(corners, x, y, z) - f(x, y, z)).abs() < 1e-5);
        }
    }

    #[test]
    fn nearest_index_rounds() {
        assert_eq!(nearest_index(0.0, 4), 0);
        assert_eq!(nearest_index(0.34, 4), 1);
        assert_eq!(nearest_index(1.0, 4), 3);
    }

    proptest! {
        #[test]
        fn prop_bilinear_weights_sum_to_one(fx in 0f32..=1.0, fy in 0f32..=1.0) {
            let s: f32 = bilinear_weights(fx, fy).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-5);
        }

        #[test]
        fn prop_trilinear_weights_sum_to_one(
            fx in 0f32..=1.0, fy in 0f32..=1.0, fz in 0f32..=1.0,
        ) {
            let s: f32 = trilinear_weights(fx, fy, fz).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-5);
        }

        #[test]
        fn prop_weights_nonnegative(fx in 0f32..=1.0, fy in 0f32..=1.0, fz in 0f32..=1.0) {
            for w in trilinear_weights(fx, fy, fz) {
                prop_assert!(w >= -1e-7);
            }
        }

        #[test]
        fn prop_cell_coord_reconstructs(u in 0f32..=1.0, res in 2u32..128) {
            let c = cell_coord(u, res);
            let reconstructed = (c.base as f32 + c.frac) / (res - 1) as f32;
            prop_assert!((reconstructed - u.clamp(0.0, 1.0)).abs() < 1e-4);
            prop_assert!(c.base >= 0 && (c.base as u32) < res - 1);
        }

        #[test]
        fn prop_bilerp_within_corner_bounds(
            c0 in -5f32..5.0, c1 in -5f32..5.0, c2 in -5f32..5.0, c3 in -5f32..5.0,
            fx in 0f32..=1.0, fy in 0f32..=1.0,
        ) {
            let corners = [c0, c1, c2, c3];
            let v = bilerp(corners, fx, fy);
            let lo = corners.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = corners.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(v >= lo - 1e-4 && v <= hi + 1e-4);
        }
    }
}
