//! Ray sampling and a small deterministic RNG.
//!
//! Volume-rendering pipelines sample points along each ray (Sec. II-B,
//! "Ray Casting"); the sampler here produces the stratified samples both the
//! reference renderers and the workload decomposition count. A local
//! xorshift RNG keeps hot loops free of trait dispatch and makes traces
//! reproducible across runs.

use serde::{Deserialize, Serialize};

/// A small, fast, deterministic xorshift64* RNG.
///
/// Not cryptographic; used for jitter, procedural content, and workload
/// seeding where cross-run determinism matters more than statistical
/// perfection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates an RNG from a seed (0 is remapped to a fixed constant).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        // 24 mantissa bits.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn next_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "range must be nonempty");
        (self.next_u64() % n as u64) as usize
    }
}

/// Stratified sampler producing `n` jittered distances in `[t_near, t_far]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StratifiedSampler {
    /// Number of samples per ray.
    pub samples_per_ray: usize,
    /// Jitter amount in `[0, 1]`; 0 gives deterministic midpoints.
    pub jitter: f32,
}

impl StratifiedSampler {
    /// Creates a sampler with `samples_per_ray` strata and no jitter.
    pub fn new(samples_per_ray: usize) -> Self {
        Self {
            samples_per_ray,
            jitter: 0.0,
        }
    }

    /// Enables jitter with the given strength in `[0, 1]`.
    pub fn with_jitter(mut self, jitter: f32) -> Self {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// Produces sample distances in `[t_near, t_far]`, one per stratum.
    ///
    /// Returned distances are strictly increasing. With `jitter == 0` each
    /// sample sits at its stratum midpoint.
    pub fn sample(&self, t_near: f32, t_far: f32, rng: &mut XorShift64) -> Vec<f32> {
        let mut out = Vec::new();
        self.sample_into(t_near, t_far, rng, &mut out);
        out
    }

    /// Like [`StratifiedSampler::sample`], but refills `out` in place so
    /// per-ray hot loops reuse one buffer instead of allocating.
    pub fn sample_into(&self, t_near: f32, t_far: f32, rng: &mut XorShift64, out: &mut Vec<f32>) {
        out.clear();
        let n = self.samples_per_ray;
        if n == 0 || t_far <= t_near {
            return;
        }
        let dt = (t_far - t_near) / n as f32;
        out.reserve(n);
        for i in 0..n {
            let offset = if self.jitter > 0.0 {
                0.5 + (rng.next_f32() - 0.5) * self.jitter
            } else {
                0.5
            };
            out.push(t_near + (i as f32 + offset) * dt);
        }
    }
}

/// Samples distances with inverse-depth (disparity) spacing, used by
/// unbounded-scene pipelines (MeRF-style contraction) to spend samples near
/// the camera.
pub fn disparity_samples(t_near: f32, t_far: f32, n: usize) -> Vec<f32> {
    assert!(
        t_near > 0.0,
        "disparity sampling needs positive near distance"
    );
    if n == 0 || t_far <= t_near {
        return Vec::new();
    }
    let inv_near = 1.0 / t_near;
    let inv_far = 1.0 / t_far;
    (0..n)
        .map(|i| {
            let s = (i as f32 + 0.5) / n as f32;
            1.0 / (inv_near + (inv_far - inv_near) * s)
        })
        .collect()
}

/// The scene contraction of unbounded pipelines (MeRF Eq. (2)-style):
/// points inside the unit ball are unchanged, outside they are squashed
/// into the shell of radius 2.
pub fn contract(p: crate::vec::Vec3) -> crate::vec::Vec3 {
    let norm = p.abs().max_component();
    if norm <= 1.0 {
        p
    } else {
        p * ((2.0 - 1.0 / norm) / norm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec::Vec3;
    use proptest::prelude::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = XorShift64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn rng_f32_in_unit_interval() {
        let mut rng = XorShift64::new(7);
        for _ in 0..1000 {
            let v = rng.next_f32();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn rng_mean_is_near_half() {
        let mut rng = XorShift64::new(1);
        let n = 10_000;
        let sum: f32 = (0..n).map(|_| rng.next_f32()).sum();
        let mean = sum / n as f32;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn stratified_without_jitter_hits_midpoints() {
        let sampler = StratifiedSampler::new(4);
        let mut rng = XorShift64::new(1);
        let ts = sampler.sample(0.0, 4.0, &mut rng);
        assert_eq!(ts, vec![0.5, 1.5, 2.5, 3.5]);
    }

    #[test]
    fn stratified_samples_are_increasing_and_bounded() {
        let sampler = StratifiedSampler::new(32).with_jitter(1.0);
        let mut rng = XorShift64::new(9);
        let ts = sampler.sample(1.0, 9.0, &mut rng);
        assert_eq!(ts.len(), 32);
        for w in ts.windows(2) {
            assert!(w[0] < w[1], "strictly increasing");
        }
        assert!(ts[0] >= 1.0 && *ts.last().expect("nonempty") <= 9.0);
    }

    #[test]
    fn sample_into_matches_sample_and_reuses_buffer() {
        let sampler = StratifiedSampler::new(16).with_jitter(1.0);
        let expected = sampler.sample(1.0, 5.0, &mut XorShift64::new(3));
        let mut out = Vec::new();
        sampler.sample_into(1.0, 5.0, &mut XorShift64::new(3), &mut out);
        assert_eq!(out, expected);
        let ptr = out.as_ptr();
        sampler.sample_into(2.0, 6.0, &mut XorShift64::new(4), &mut out);
        assert_eq!(out.len(), 16);
        assert_eq!(out.as_ptr(), ptr, "buffer reused");
    }

    #[test]
    fn empty_interval_yields_no_samples() {
        let sampler = StratifiedSampler::new(8);
        let mut rng = XorShift64::new(1);
        assert!(sampler.sample(5.0, 5.0, &mut rng).is_empty());
        assert!(sampler.sample(5.0, 1.0, &mut rng).is_empty());
    }

    #[test]
    fn disparity_concentrates_samples_near_camera() {
        let ts = disparity_samples(0.5, 100.0, 16);
        assert_eq!(ts.len(), 16);
        let below_10 = ts.iter().filter(|&&t| t < 10.0).count();
        assert!(below_10 > 10, "most samples near camera, got {below_10}");
        for w in ts.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn contract_is_identity_inside_unit_ball() {
        let p = Vec3::new(0.3, -0.5, 0.2);
        assert_eq!(contract(p), p);
    }

    #[test]
    fn contract_bounds_distant_points_by_two() {
        for scale in [1.5f32, 10.0, 1000.0] {
            let p = Vec3::new(1.0, 0.5, -0.25) * scale;
            let c = contract(p);
            assert!(c.abs().max_component() < 2.0 + 1e-5, "{c:?}");
        }
    }

    #[test]
    fn contract_is_continuous_at_boundary() {
        let inside = contract(Vec3::new(0.9999, 0.0, 0.0));
        let outside = contract(Vec3::new(1.0001, 0.0, 0.0));
        assert!((inside - outside).length() < 1e-3);
    }

    proptest! {
        #[test]
        fn prop_stratified_one_sample_per_stratum(
            n in 1usize..64, near in 0f32..10.0, len in 0.1f32..50.0, seed in 0u64..1000,
        ) {
            let sampler = StratifiedSampler::new(n).with_jitter(1.0);
            let mut rng = XorShift64::new(seed);
            let ts = sampler.sample(near, near + len, &mut rng);
            prop_assert_eq!(ts.len(), n);
            let dt = len / n as f32;
            for (i, t) in ts.iter().enumerate() {
                let lo = near + i as f32 * dt;
                prop_assert!(*t >= lo - 1e-4 && *t <= lo + dt + 1e-4);
            }
        }

        #[test]
        fn prop_contract_max_norm_bounded(
            x in -100f32..100.0, y in -100f32..100.0, z in -100f32..100.0,
        ) {
            let c = contract(Vec3::new(x, y, z));
            prop_assert!(c.abs().max_component() <= 2.0 + 1e-4);
        }
    }
}
