//! Geometric math substrate for the Uni-Render reproduction.
//!
//! This crate provides the linear algebra, ray geometry, camera, color,
//! spherical-harmonics, interpolation, and sampling primitives that every
//! neural rendering pipeline in the workspace is built on. It is
//! self-contained (no external math crates) so the whole reproduction can be
//! audited end to end.
//!
//! # Example
//!
//! ```
//! use uni_geometry::{Camera, Vec3};
//!
//! let camera = Camera::look_at(
//!     Vec3::new(0.0, 0.0, 4.0),
//!     Vec3::ZERO,
//!     Vec3::Y,
//!     60f32.to_radians(),
//!     640,
//!     480,
//! );
//! let ray = camera.primary_ray(320.5, 240.5);
//! assert!(ray.direction.dot(Vec3::new(0.0, 0.0, -1.0)) > 0.99);
//! ```

pub mod aabb;
pub mod camera;
pub mod color;
pub mod interp;
pub mod mat;
pub mod ray;
pub mod sampling;
pub mod sh;
pub mod vec;
pub mod wide;

pub use aabb::Aabb;
pub use camera::{Camera, Orbit};
pub use color::{Image, Rgb, Rgba};
pub use interp::{bilinear_weights, trilinear_weights};
pub use mat::{FlatMat, Mat3, Mat4};
pub use ray::Ray;
pub use sampling::StratifiedSampler;
pub use vec::{Vec2, Vec3, Vec4};
pub use wide::{F32x4, F32x8};
