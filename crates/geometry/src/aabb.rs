//! Axis-aligned bounding boxes.
//!
//! Used for scene bounds (grid normalization in the hash/tri-plane
//! pipelines), ray-marching intervals, and the bounding-box pre-load the
//! Geometric Processing dataflow performs before rasterization (Fig. 10).

use crate::ray::Ray;
use crate::vec::Vec3;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box in 3D.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Default for Aabb {
    fn default() -> Self {
        Self::EMPTY
    }
}

impl Aabb {
    /// The empty box (inverted bounds); the identity for [`Aabb::union`].
    pub const EMPTY: Self = Self {
        min: Vec3::splat(f32::INFINITY),
        max: Vec3::splat(f32::NEG_INFINITY),
    };

    /// Creates a box from corners. Callers must pass `min <= max`
    /// component-wise; use [`Aabb::from_points`] for unordered input.
    #[inline]
    pub const fn new(min: Vec3, max: Vec3) -> Self {
        Self { min, max }
    }

    /// Smallest box containing all `points`.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Self {
        points
            .into_iter()
            .fold(Self::EMPTY, |acc, p| acc.union_point(p))
    }

    /// The cube `[-half, half]^3`.
    pub fn cube(half: f32) -> Self {
        Self::new(Vec3::splat(-half), Vec3::splat(half))
    }

    /// Whether the box contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Box center.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Edge lengths.
    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// Length of the space diagonal.
    #[inline]
    pub fn diagonal(&self) -> f32 {
        self.extent().length()
    }

    /// Smallest box containing `self` and `p`.
    #[inline]
    pub fn union_point(&self, p: Vec3) -> Self {
        Self::new(self.min.min_elem(p), self.max.max_elem(p))
    }

    /// Smallest box containing both boxes.
    #[inline]
    pub fn union(&self, other: &Self) -> Self {
        Self::new(self.min.min_elem(other.min), self.max.max_elem(other.max))
    }

    /// Whether `p` lies inside (inclusive).
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.y >= self.min.y
            && p.z >= self.min.z
            && p.x <= self.max.x
            && p.y <= self.max.y
            && p.z <= self.max.z
    }

    /// Expands every face outward by `pad`.
    #[inline]
    pub fn padded(&self, pad: f32) -> Self {
        Self::new(self.min - Vec3::splat(pad), self.max + Vec3::splat(pad))
    }

    /// Maps `p` into normalized `[0, 1]^3` coordinates of this box.
    ///
    /// Grid representations (hash grid, tri-plane) index with normalized
    /// coordinates; points outside the box map outside `[0, 1]`.
    #[inline]
    // uni-lint: hot
    pub fn normalize_point(&self, p: Vec3) -> Vec3 {
        let e = self.extent();
        Vec3::new(
            (p.x - self.min.x) / e.x,
            (p.y - self.min.y) / e.y,
            (p.z - self.min.z) / e.z,
        )
    }

    /// Inverse of [`Aabb::normalize_point`].
    #[inline]
    pub fn denormalize_point(&self, u: Vec3) -> Vec3 {
        self.min + self.extent().mul_elem(u)
    }

    /// Ray-box intersection via the slab method.
    ///
    /// Returns the entry/exit distances `(t_near, t_far)` clipped to
    /// `[t_min, t_max]`, or `None` when the ray misses.
    pub fn intersect_ray(&self, ray: &Ray, t_min: f32, t_max: f32) -> Option<(f32, f32)> {
        let mut t0 = t_min;
        let mut t1 = t_max;
        for axis in 0..3 {
            let origin = ray.origin[axis];
            let dir = ray.direction[axis];
            let inv = 1.0 / dir;
            let mut near = (self.min[axis] - origin) * inv;
            let mut far = (self.max[axis] - origin) * inv;
            if inv < 0.0 {
                std::mem::swap(&mut near, &mut far);
            }
            t0 = t0.max(near);
            t1 = t1.min(far);
            if t0 > t1 {
                return None;
            }
        }
        Some((t0, t1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_box_behaves_as_union_identity() {
        assert!(Aabb::EMPTY.is_empty());
        let b = Aabb::cube(1.0);
        assert_eq!(Aabb::EMPTY.union(&b), b);
    }

    #[test]
    fn from_points_brackets_input() {
        let b = Aabb::from_points([
            Vec3::new(1.0, -2.0, 3.0),
            Vec3::new(-1.0, 5.0, 0.0),
            Vec3::new(0.0, 0.0, -4.0),
        ]);
        assert_eq!(b.min, Vec3::new(-1.0, -2.0, -4.0));
        assert_eq!(b.max, Vec3::new(1.0, 5.0, 3.0));
    }

    #[test]
    fn contains_center_and_corners() {
        let b = Aabb::cube(2.0);
        assert!(b.contains(b.center()));
        assert!(b.contains(b.min));
        assert!(b.contains(b.max));
        assert!(!b.contains(Vec3::splat(2.1)));
    }

    #[test]
    fn ray_through_center_hits() {
        let b = Aabb::cube(1.0);
        let ray = Ray::new(Vec3::new(0.0, 0.0, 5.0), Vec3::new(0.0, 0.0, -1.0));
        let (t0, t1) = b.intersect_ray(&ray, 0.0, f32::INFINITY).expect("hit");
        assert!((t0 - 4.0).abs() < 1e-5);
        assert!((t1 - 6.0).abs() < 1e-5);
    }

    #[test]
    fn ray_missing_box_returns_none() {
        let b = Aabb::cube(1.0);
        let ray = Ray::new(Vec3::new(0.0, 5.0, 5.0), Vec3::new(0.0, 0.0, -1.0));
        assert!(b.intersect_ray(&ray, 0.0, f32::INFINITY).is_none());
    }

    #[test]
    fn ray_starting_inside_clips_entry_to_t_min() {
        let b = Aabb::cube(1.0);
        let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0));
        let (t0, t1) = b.intersect_ray(&ray, 0.0, f32::INFINITY).expect("hit");
        assert_eq!(t0, 0.0);
        assert!((t1 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn normalize_round_trip() {
        let b = Aabb::new(Vec3::new(-2.0, 0.0, 1.0), Vec3::new(2.0, 4.0, 3.0));
        let p = Vec3::new(1.0, 3.0, 2.5);
        let u = b.normalize_point(p);
        assert!(u.x >= 0.0 && u.x <= 1.0);
        assert!((b.denormalize_point(u) - p).length() < 1e-5);
    }

    fn arb_point() -> impl Strategy<Value = Vec3> {
        (-10f32..10.0, -10f32..10.0, -10f32..10.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
    }

    proptest! {
        #[test]
        fn prop_union_contains_both(a in arb_point(), b in arb_point(), c in arb_point()) {
            let box1 = Aabb::from_points([a, b]);
            let box2 = Aabb::from_points([c]);
            let u = box1.union(&box2);
            prop_assert!(u.contains(a) && u.contains(b) && u.contains(c));
        }

        #[test]
        fn prop_contained_points_normalize_into_unit_cube(
            a in arb_point(), b in arb_point(), t in 0f32..1.0,
        ) {
            let bx = Aabb::from_points([a, b]).padded(0.5);
            let p = a.lerp(b, t);
            let u = bx.normalize_point(p);
            prop_assert!((-1e-4..=1.0001).contains(&u.x));
            prop_assert!((-1e-4..=1.0001).contains(&u.y));
            prop_assert!((-1e-4..=1.0001).contains(&u.z));
        }
    }
}
