//! Pinhole camera: pose + intrinsics, pixel→ray generation, world→clip/screen
//! projection.
//!
//! The camera is the input to every "rendering engine" in the paper
//! (Sec. II): volume-rendering pipelines consume [`Camera::primary_ray`];
//! rasterization pipelines consume [`Camera::view_proj`] /
//! [`Camera::project_to_screen`].

use crate::mat::Mat4;
use crate::ray::Ray;
use crate::vec::{Vec2, Vec3};
use serde::{Deserialize, Serialize};

/// A pinhole camera with a perspective projection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Camera {
    /// Camera position in world space.
    pub eye: Vec3,
    /// World → view transform.
    pub view: Mat4,
    /// View → clip transform.
    pub proj: Mat4,
    /// Full vertical field of view, radians.
    pub fov_y: f32,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Near clip distance.
    pub near: f32,
    /// Far clip distance.
    pub far: f32,
}

impl Camera {
    /// Creates a camera looking from `eye` toward `target`.
    ///
    /// `fov_y` is the full vertical field of view in radians.
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3, fov_y: f32, width: u32, height: u32) -> Self {
        let near = 0.05;
        let far = 1000.0;
        let aspect = width as f32 / height as f32;
        Self {
            eye,
            view: Mat4::look_at_rh(eye, target, up),
            proj: Mat4::perspective_rh(fov_y, aspect, near, far),
            fov_y,
            width,
            height,
            near,
            far,
        }
    }

    /// Returns a copy with different clip distances.
    pub fn with_clip(mut self, near: f32, far: f32) -> Self {
        self.near = near;
        self.far = far;
        let aspect = self.width as f32 / self.height as f32;
        self.proj = Mat4::perspective_rh(self.fov_y, aspect, near, far);
        self
    }

    /// Returns a copy rendering at a different resolution (same pose/fov).
    pub fn with_resolution(mut self, width: u32, height: u32) -> Self {
        self.width = width;
        self.height = height;
        let aspect = width as f32 / height as f32;
        self.proj = Mat4::perspective_rh(self.fov_y, aspect, self.near, self.far);
        self
    }

    /// Combined world → clip transform.
    #[inline]
    pub fn view_proj(&self) -> Mat4 {
        self.proj * self.view
    }

    /// Number of pixels in a frame.
    #[inline]
    pub fn pixel_count(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height)
    }

    /// The world-space forward direction (unit).
    pub fn forward(&self) -> Vec3 {
        // Third row of the view matrix is -forward.
        let r = self.view.row(2);
        -Vec3::new(r.x, r.y, r.z).normalized()
    }

    /// Generates the primary ray through pixel coordinates `(px, py)`.
    ///
    /// Pixel centers are at half-integer coordinates: pass `(x + 0.5,
    /// y + 0.5)` to shoot through the center of pixel `(x, y)`. `py` grows
    /// downward (raster convention).
    pub fn primary_ray(&self, px: f32, py: f32) -> Ray {
        let ndc_x = 2.0 * px / self.width as f32 - 1.0;
        let ndc_y = 1.0 - 2.0 * py / self.height as f32;
        let aspect = self.width as f32 / self.height as f32;
        let tan_half = (self.fov_y * 0.5).tan();
        // Direction in view space (camera looks down -Z).
        let dir_view = Vec3::new(ndc_x * aspect * tan_half, ndc_y * tan_half, -1.0);
        let inv_view = self.view.inverse_rigid();
        let dir_world = inv_view.transform_vector(dir_view).normalized();
        Ray::new_unnormalized(self.eye, dir_world)
    }

    /// Projects a world point to screen coordinates plus NDC depth.
    ///
    /// Returns `(screen_xy, ndc_depth, view_depth)`; `None` when the point
    /// is behind the near plane. `view_depth` is the positive distance along
    /// the camera forward axis, the quantity the Z-buffer's "Min. Hold"
    /// reduction compares (Fig. 2).
    pub fn project_to_screen(&self, world: Vec3) -> Option<(Vec2, f32, f32)> {
        let view_p = self.view.transform_point(world);
        let view_depth = -view_p.z;
        if view_depth <= self.near {
            return None;
        }
        let clip = self.proj.mul_vec4(view_p.extend(1.0));
        let ndc = clip.project();
        let sx = (ndc.x + 1.0) * 0.5 * self.width as f32;
        let sy = (1.0 - ndc.y) * 0.5 * self.height as f32;
        Some((Vec2::new(sx, sy), ndc.z, view_depth))
    }

    /// The world-space size of one pixel at distance `depth` from the eye.
    ///
    /// Used by the splatting step to convert a Gaussian's world-space extent
    /// into a screen footprint.
    pub fn pixel_footprint(&self, depth: f32) -> f32 {
        let world_height = 2.0 * depth * (self.fov_y * 0.5).tan();
        world_height / self.height as f32
    }
}

/// An orbit of cameras around a target — the camera trajectory used by the
/// dataset catalogs' test views.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Orbit {
    /// Orbit center (look-at target).
    pub target: Vec3,
    /// Orbit radius.
    pub radius: f32,
    /// Camera height above the target.
    pub height: f32,
    /// Vertical field of view, radians.
    pub fov_y: f32,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height_px: u32,
}

impl Orbit {
    /// Camera at angular position `theta` (radians) on the orbit.
    pub fn camera_at(&self, theta: f32) -> Camera {
        let eye = self.target
            + Vec3::new(
                self.radius * theta.cos(),
                self.height,
                self.radius * theta.sin(),
            );
        Camera::look_at(
            eye,
            self.target,
            Vec3::Y,
            self.fov_y,
            self.width,
            self.height_px,
        )
    }

    /// `n` evenly spaced cameras around the full orbit.
    pub fn cameras(&self, n: usize) -> Vec<Camera> {
        (0..n)
            .map(|i| self.camera_at(i as f32 / n as f32 * std::f32::consts::TAU))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn test_camera() -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::ZERO,
            Vec3::Y,
            60f32.to_radians(),
            640,
            480,
        )
    }

    #[test]
    fn center_pixel_ray_points_forward() {
        let cam = test_camera();
        let ray = cam.primary_ray(320.0, 240.0);
        assert!((ray.origin - cam.eye).length() < 1e-6);
        assert!(ray.direction.dot(Vec3::new(0.0, 0.0, -1.0)) > 0.9999);
    }

    #[test]
    fn forward_matches_look_direction() {
        let cam = Camera::look_at(Vec3::new(3.0, 1.0, 3.0), Vec3::ZERO, Vec3::Y, 1.0, 64, 64);
        let expected = (Vec3::ZERO - Vec3::new(3.0, 1.0, 3.0)).normalized();
        assert!((cam.forward() - expected).length() < 1e-5);
    }

    #[test]
    fn project_center_of_view_lands_at_screen_center() {
        let cam = test_camera();
        let (screen, _ndc, depth) = cam.project_to_screen(Vec3::ZERO).expect("in view");
        assert!((screen.x - 320.0).abs() < 1e-2);
        assert!((screen.y - 240.0).abs() < 1e-2);
        assert!((depth - 5.0).abs() < 1e-5);
    }

    #[test]
    fn points_behind_camera_do_not_project() {
        let cam = test_camera();
        assert!(cam.project_to_screen(Vec3::new(0.0, 0.0, 10.0)).is_none());
    }

    #[test]
    fn ray_and_projection_are_inverse() {
        let cam = test_camera();
        let world = Vec3::new(0.7, -0.3, 1.0);
        let (screen, ..) = cam.project_to_screen(world).expect("in view");
        let ray = cam.primary_ray(screen.x, screen.y);
        // The ray through the projected pixel must pass near the point.
        let t = (world - ray.origin).dot(ray.direction);
        let closest = ray.at(t);
        assert!(
            (closest - world).length() < 1e-3,
            "closest {closest:?} vs {world:?}"
        );
    }

    #[test]
    fn pixel_footprint_grows_linearly_with_depth() {
        let cam = test_camera();
        let f1 = cam.pixel_footprint(1.0);
        let f2 = cam.pixel_footprint(2.0);
        assert!((f2 / f1 - 2.0).abs() < 1e-5);
    }

    #[test]
    fn orbit_cameras_keep_target_centered() {
        let orbit = Orbit {
            target: Vec3::new(1.0, 0.0, -2.0),
            radius: 4.0,
            height: 1.5,
            fov_y: 1.0,
            width: 320,
            height_px: 240,
        };
        for cam in orbit.cameras(8) {
            let (screen, ..) = cam.project_to_screen(orbit.target).expect("target visible");
            assert!((screen.x - 160.0).abs() < 0.5, "{screen:?}");
            assert!((screen.y - 120.0).abs() < 0.5, "{screen:?}");
        }
    }

    #[test]
    fn with_resolution_preserves_field_of_view() {
        let cam = test_camera().with_resolution(1280, 720);
        assert_eq!(cam.width, 1280);
        let ray_lo = test_camera().primary_ray(0.0, 240.0);
        let ray_hi = cam.primary_ray(0.0, 360.0);
        // Left edge at vertical center: same horizontal angle iff aspect
        // matches; aspects differ (4:3 vs 16:9) so directions must differ.
        assert!((ray_lo.direction - ray_hi.direction).length() > 1e-3);
    }

    proptest! {
        /// Every pixel's primary ray re-projects onto that pixel.
        #[test]
        fn prop_ray_projects_back_to_pixel(
            px in 1f32..639.0,
            py in 1f32..479.0,
            t in 0.5f32..50.0,
        ) {
            let cam = test_camera();
            let ray = cam.primary_ray(px, py);
            let world = ray.at(t);
            let (screen, ..) = cam.project_to_screen(world).expect("in front");
            prop_assert!((screen.x - px).abs() < 0.05, "{} vs {px}", screen.x);
            prop_assert!((screen.y - py).abs() < 0.05, "{} vs {py}", screen.y);
        }
    }
}
