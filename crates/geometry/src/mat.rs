//! Column-major 3×3 and 4×4 matrices, plus the contiguous row-major
//! [`FlatMat`] buffer.
//!
//! `Mat4` carries the space-conversion math of the mesh and 3D-Gaussian
//! pipelines (Sec. II-A / II-E of the paper): model/view transforms,
//! perspective projection into clip space, and viewport mapping.
//! `FlatMat` is the workspace-wide convention for dynamically sized
//! matrices (MLP weights, activation batches, cycle-exact engine state):
//! one contiguous row-major allocation instead of nested `Vec<Vec<f32>>`,
//! so hot loops stream rows without pointer chasing and buffers can be
//! reused across frames without reallocating.

use crate::vec::{Vec3, Vec4};
use serde::{Deserialize, Serialize};
use std::ops::Mul;

/// A column-major 3×3 matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    /// Columns of the matrix.
    pub cols: [Vec3; 3],
}

/// A column-major 4×4 matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat4 {
    /// Columns of the matrix.
    pub cols: [Vec4; 4],
}

impl Default for Mat3 {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Default for Mat4 {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Self = Self {
        cols: [
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ],
    };

    /// Builds a matrix from columns.
    #[inline]
    pub const fn from_cols(c0: Vec3, c1: Vec3, c2: Vec3) -> Self {
        Self { cols: [c0, c1, c2] }
    }

    /// Builds a diagonal matrix.
    #[inline]
    pub fn from_diagonal(d: Vec3) -> Self {
        Self::from_cols(
            Vec3::new(d.x, 0.0, 0.0),
            Vec3::new(0.0, d.y, 0.0),
            Vec3::new(0.0, 0.0, d.z),
        )
    }

    /// Rotation matrix from a unit quaternion `(x, y, z, w)`.
    ///
    /// Used to expand a 3D Gaussian's stored rotation into its covariance
    /// factor (Sec. II-E).
    pub fn from_quaternion(q: Vec4) -> Self {
        let Vec4 { x, y, z, w } = q;
        let (xx, yy, zz) = (x * x, y * y, z * z);
        let (xy, xz, yz) = (x * y, x * z, y * z);
        let (wx, wy, wz) = (w * x, w * y, w * z);
        Self::from_cols(
            Vec3::new(1.0 - 2.0 * (yy + zz), 2.0 * (xy + wz), 2.0 * (xz - wy)),
            Vec3::new(2.0 * (xy - wz), 1.0 - 2.0 * (xx + zz), 2.0 * (yz + wx)),
            Vec3::new(2.0 * (xz + wy), 2.0 * (yz - wx), 1.0 - 2.0 * (xx + yy)),
        )
    }

    /// Matrix-vector product.
    #[inline]
    pub fn mul_vec3(&self, v: Vec3) -> Vec3 {
        self.cols[0] * v.x + self.cols[1] * v.y + self.cols[2] * v.z
    }

    /// Transpose.
    pub fn transpose(&self) -> Self {
        Self::from_cols(self.row(0), self.row(1), self.row(2))
    }

    /// The `i`-th row (0-based).
    #[inline]
    pub fn row(&self, i: usize) -> Vec3 {
        Vec3::new(self.cols[0][i], self.cols[1][i], self.cols[2][i])
    }

    /// Determinant.
    pub fn determinant(&self) -> f32 {
        let [a, b, c] = self.cols;
        a.dot(b.cross(c))
    }

    /// Inverse, or `None` when the matrix is singular.
    pub fn inverse(&self) -> Option<Self> {
        let det = self.determinant();
        if !det.is_finite() || det.abs() < 1e-12 {
            return None;
        }
        let [a, b, c] = self.cols;
        let inv_det = 1.0 / det;
        // Rows of the inverse are the cross products of the column pairs.
        let r0 = b.cross(c) * inv_det;
        let r1 = c.cross(a) * inv_det;
        let r2 = a.cross(b) * inv_det;
        Some(Self::from_cols(r0, r1, r2).transpose())
    }
}

impl Mul for Mat3 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self {
            cols: [
                self.mul_vec3(rhs.cols[0]),
                self.mul_vec3(rhs.cols[1]),
                self.mul_vec3(rhs.cols[2]),
            ],
        }
    }
}

impl Mat4 {
    /// The identity matrix.
    pub const IDENTITY: Self = Self {
        cols: [
            Vec4::new(1.0, 0.0, 0.0, 0.0),
            Vec4::new(0.0, 1.0, 0.0, 0.0),
            Vec4::new(0.0, 0.0, 1.0, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        ],
    };

    /// Builds a matrix from columns.
    #[inline]
    pub const fn from_cols(c0: Vec4, c1: Vec4, c2: Vec4, c3: Vec4) -> Self {
        Self {
            cols: [c0, c1, c2, c3],
        }
    }

    /// Translation matrix.
    pub fn from_translation(t: Vec3) -> Self {
        let mut m = Self::IDENTITY;
        m.cols[3] = t.extend(1.0);
        m
    }

    /// Non-uniform scale matrix.
    pub fn from_scale(s: Vec3) -> Self {
        Self::from_cols(
            Vec4::new(s.x, 0.0, 0.0, 0.0),
            Vec4::new(0.0, s.y, 0.0, 0.0),
            Vec4::new(0.0, 0.0, s.z, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Embeds a 3×3 linear map in the upper-left block.
    pub fn from_mat3(m: Mat3) -> Self {
        Self::from_cols(
            m.cols[0].extend(0.0),
            m.cols[1].extend(0.0),
            m.cols[2].extend(0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Rotation about the Y axis by `angle` radians.
    pub fn from_rotation_y(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_cols(
            Vec4::new(c, 0.0, -s, 0.0),
            Vec4::new(0.0, 1.0, 0.0, 0.0),
            Vec4::new(s, 0.0, c, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Rotation about the X axis by `angle` radians.
    pub fn from_rotation_x(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_cols(
            Vec4::new(1.0, 0.0, 0.0, 0.0),
            Vec4::new(0.0, c, s, 0.0),
            Vec4::new(0.0, -s, c, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Right-handed look-at view matrix (world → camera/view space).
    ///
    /// The camera looks down its local −Z axis, matching OpenGL/WebGL
    /// conventions (the paper's baseline implementations are WebGL-based).
    pub fn look_at_rh(eye: Vec3, target: Vec3, up: Vec3) -> Self {
        let f = (target - eye).normalized();
        let s = f.cross(up).normalized();
        let u = s.cross(f);
        Self::from_cols(
            Vec4::new(s.x, u.x, -f.x, 0.0),
            Vec4::new(s.y, u.y, -f.y, 0.0),
            Vec4::new(s.z, u.z, -f.z, 0.0),
            Vec4::new(-s.dot(eye), -u.dot(eye), f.dot(eye), 1.0),
        )
    }

    /// Right-handed perspective projection (view → clip space).
    ///
    /// `fov_y` is the full vertical field of view in radians. Depth maps to
    /// `[-1, 1]` NDC after the perspective divide.
    pub fn perspective_rh(fov_y: f32, aspect: f32, near: f32, far: f32) -> Self {
        let f = 1.0 / (fov_y * 0.5).tan();
        let range = near - far;
        Self::from_cols(
            Vec4::new(f / aspect, 0.0, 0.0, 0.0),
            Vec4::new(0.0, f, 0.0, 0.0),
            Vec4::new(0.0, 0.0, (near + far) / range, -1.0),
            Vec4::new(0.0, 0.0, 2.0 * near * far / range, 0.0),
        )
    }

    /// Matrix-vector product.
    #[inline]
    pub fn mul_vec4(&self, v: Vec4) -> Vec4 {
        self.cols[0] * v.x + self.cols[1] * v.y + self.cols[2] * v.z + self.cols[3] * v.w
    }

    /// Transforms a 3D point (w = 1) without the perspective divide.
    #[inline]
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        self.mul_vec4(p.extend(1.0)).truncate()
    }

    /// Transforms a 3D direction (w = 0).
    #[inline]
    pub fn transform_vector(&self, v: Vec3) -> Vec3 {
        self.mul_vec4(v.extend(0.0)).truncate()
    }

    /// Transforms a 3D point and performs the perspective divide.
    #[inline]
    pub fn project_point(&self, p: Vec3) -> Vec3 {
        self.mul_vec4(p.extend(1.0)).project()
    }

    /// The `i`-th row (0-based).
    #[inline]
    pub fn row(&self, i: usize) -> Vec4 {
        Vec4::new(
            self.cols[0][i],
            self.cols[1][i],
            self.cols[2][i],
            self.cols[3][i],
        )
    }

    /// Transpose.
    pub fn transpose(&self) -> Self {
        Self::from_cols(self.row(0), self.row(1), self.row(2), self.row(3))
    }

    /// The upper-left 3×3 block.
    pub fn upper_left(&self) -> Mat3 {
        Mat3::from_cols(
            self.cols[0].truncate(),
            self.cols[1].truncate(),
            self.cols[2].truncate(),
        )
    }

    /// Inverse of a rigid transform (rotation + translation only).
    ///
    /// Cheaper and more numerically stable than a general inverse; view
    /// matrices produced by [`Mat4::look_at_rh`] qualify.
    pub fn inverse_rigid(&self) -> Self {
        let r = self.upper_left().transpose();
        let t = self.cols[3].truncate();
        let new_t = -(r.mul_vec3(t));
        let mut m = Self::from_mat3(r);
        m.cols[3] = new_t.extend(1.0);
        m
    }

    /// General inverse via Gauss-Jordan elimination, or `None` if singular.
    pub fn inverse(&self) -> Option<Self> {
        // Augmented [self | I] as row-major 4x8.
        let mut a = [[0f32; 8]; 4];
        for r in 0..4 {
            let row = self.row(r);
            a[r][..4].copy_from_slice(&row.to_array());
            a[r][4 + r] = 1.0;
        }
        for col in 0..4 {
            // Partial pivoting.
            let pivot = (col..4).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
            if a[pivot][col].abs() < 1e-12 {
                return None;
            }
            a.swap(col, pivot);
            let inv_p = 1.0 / a[col][col];
            for v in a[col].iter_mut() {
                *v *= inv_p;
            }
            let pivot_row = a[col];
            for (r, row) in a.iter_mut().enumerate() {
                if r != col {
                    let factor = row[col];
                    for (v, p) in row.iter_mut().zip(&pivot_row) {
                        *v -= factor * p;
                    }
                }
            }
        }
        let row = |r: usize| Vec4::new(a[r][4], a[r][5], a[r][6], a[r][7]);
        Some(Self::from_cols(row(0), row(1), row(2), row(3)).transpose())
    }
}

impl Mul for Mat4 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self {
            cols: [
                self.mul_vec4(rhs.cols[0]),
                self.mul_vec4(rhs.cols[1]),
                self.mul_vec4(rhs.cols[2]),
                self.mul_vec4(rhs.cols[3]),
            ],
        }
    }
}

/// A contiguous row-major `rows × cols` matrix of `f32`.
///
/// The flat-buffer convention of this workspace: anywhere a seed-era API
/// would have used `Vec<Vec<f32>>` (MLP weight blocks, activation batches,
/// per-PE register files), a `FlatMat` holds the same values in one
/// allocation. Rows are contiguous slices, so inner loops iterate
/// cache-linearly, and [`FlatMat::clear_rows`] lets long-lived scratch
/// buffers be refilled every frame without touching the allocator.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FlatMat {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl FlatMat {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// An empty matrix with `cols` columns and capacity for `rows` rows,
    /// ready for [`FlatMat::push_row`].
    pub fn with_row_capacity(rows: usize, cols: usize) -> Self {
        Self {
            data: Vec::with_capacity(rows * cols),
            rows: 0,
            cols,
        }
    }

    /// Builds from a generator called in row-major order.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { data, rows, cols }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(data: Vec<f32>, rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must match shape");
        Self { data, rows, cols }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row `r` as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The whole buffer, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The whole buffer, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != cols`.
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "row width must match cols");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Drops all rows but keeps the allocation (per-frame scratch reuse).
    pub fn clear_rows(&mut self) {
        self.data.clear();
        self.rows = 0;
    }

    /// Reshapes to `rows × cols` filled with zeros, reusing the
    /// allocation when possible.
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Fills every element with `v`.
    pub fn fill(&mut self, v: f32) {
        self.data.fill(v);
    }
}

impl std::ops::Index<(usize, usize)> for FlatMat {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for FlatMat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mat4_close(a: &Mat4, b: &Mat4, tol: f32) -> bool {
        (0..4).all(|i| (a.cols[i] - b.cols[i]).abs().max_component() < tol)
    }

    #[test]
    fn identity_is_neutral() {
        let m = Mat4::from_translation(Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(Mat4::IDENTITY * m, m);
        assert_eq!(m * Mat4::IDENTITY, m);
    }

    #[test]
    fn translation_moves_points_not_vectors() {
        let m = Mat4::from_translation(Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(m.transform_point(Vec3::ZERO), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(m.transform_vector(Vec3::X), Vec3::X);
    }

    #[test]
    fn look_at_places_eye_at_origin() {
        let eye = Vec3::new(3.0, 2.0, 5.0);
        let view = Mat4::look_at_rh(eye, Vec3::ZERO, Vec3::Y);
        let p = view.transform_point(eye);
        assert!(p.length() < 1e-5);
        // The target should land on the -Z axis.
        let t = view.transform_point(Vec3::ZERO);
        assert!(t.x.abs() < 1e-5 && t.y.abs() < 1e-5 && t.z < 0.0);
    }

    #[test]
    fn perspective_maps_near_and_far_to_ndc_bounds() {
        let proj = Mat4::perspective_rh(60f32.to_radians(), 1.0, 0.1, 100.0);
        let near = proj.project_point(Vec3::new(0.0, 0.0, -0.1));
        let far = proj.project_point(Vec3::new(0.0, 0.0, -100.0));
        assert!((near.z + 1.0).abs() < 1e-4, "near -> -1, got {}", near.z);
        assert!((far.z - 1.0).abs() < 1e-4, "far -> +1, got {}", far.z);
    }

    #[test]
    fn rigid_inverse_matches_general_inverse() {
        let view = Mat4::look_at_rh(Vec3::new(1.0, 2.0, 3.0), Vec3::ZERO, Vec3::Y);
        let a = view.inverse_rigid();
        let b = view.inverse().expect("view matrices are invertible");
        assert!(mat4_close(&a, &b, 1e-4));
    }

    #[test]
    fn inverse_of_singular_matrix_is_none() {
        let m = Mat4::from_scale(Vec3::new(1.0, 0.0, 1.0));
        assert!(m.inverse().is_none());
        let m3 = Mat3::from_diagonal(Vec3::new(1.0, 1.0, 0.0));
        assert!(m3.inverse().is_none());
    }

    #[test]
    fn mat3_inverse_round_trip() {
        let m = Mat3::from_cols(
            Vec3::new(2.0, 0.0, 1.0),
            Vec3::new(-1.0, 3.0, 0.0),
            Vec3::new(0.5, 0.0, 1.0),
        );
        let inv = m.inverse().expect("invertible");
        let prod = m * inv;
        for i in 0..3 {
            assert!(
                (prod.cols[i] - Mat3::IDENTITY.cols[i])
                    .abs()
                    .max_component()
                    < 1e-5
            );
        }
    }

    #[test]
    fn flatmat_rows_are_contiguous_row_major() {
        let m = FlatMat::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0, 7.0]);
        assert_eq!(m[(2, 3)], 11.0);
        assert_eq!(m.as_slice().len(), 12);
    }

    #[test]
    fn flatmat_push_and_clear_keep_capacity() {
        let mut m = FlatMat::with_row_capacity(8, 3);
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        let cap = m.as_slice().as_ptr();
        m.clear_rows();
        assert_eq!(m.rows(), 0);
        m.push_row(&[7.0, 8.0, 9.0]);
        assert_eq!(m.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(m.as_slice().as_ptr(), cap, "allocation reused");
    }

    #[test]
    fn flatmat_reset_zeroed_reshapes() {
        let mut m = FlatMat::zeros(2, 2);
        m[(1, 1)] = 5.0;
        m.reset_zeroed(3, 5);
        assert_eq!((m.rows(), m.cols()), (3, 5));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "row width must match cols")]
    fn flatmat_push_row_rejects_wrong_width() {
        let mut m = FlatMat::with_row_capacity(1, 3);
        m.push_row(&[1.0]);
    }

    #[test]
    fn quaternion_identity_is_identity_rotation() {
        let m = Mat3::from_quaternion(Vec4::new(0.0, 0.0, 0.0, 1.0));
        assert_eq!(m, Mat3::IDENTITY);
    }

    #[test]
    fn quaternion_rotation_preserves_length() {
        // 90 degrees about Z: x -> y.
        let half = std::f32::consts::FRAC_PI_4;
        let q = Vec4::new(0.0, 0.0, half.sin(), half.cos());
        let m = Mat3::from_quaternion(q);
        let r = m.mul_vec3(Vec3::X);
        assert!((r - Vec3::Y).length() < 1e-5, "{r:?}");
    }

    #[test]
    fn rotation_y_moves_x_to_minus_z_quarter_turn() {
        let m = Mat4::from_rotation_y(std::f32::consts::FRAC_PI_2);
        let r = m.transform_vector(Vec3::X);
        assert!((r - (-Vec3::Z)).length() < 1e-5, "{r:?}");
    }

    fn arb_rigid() -> impl Strategy<Value = Mat4> {
        (
            -3f32..3.0,
            -3f32..3.0,
            -3f32..3.0,
            0.01f32..std::f32::consts::PI,
            -3f32..3.0,
        )
            .prop_map(|(x, y, z, ry, rx)| {
                Mat4::from_translation(Vec3::new(x, y, z))
                    * Mat4::from_rotation_y(ry)
                    * Mat4::from_rotation_x(rx)
            })
    }

    proptest! {
        #[test]
        fn prop_inverse_round_trips(m in arb_rigid()) {
            let inv = m.inverse().expect("rigid transforms are invertible");
            let prod = m * inv;
            prop_assert!(mat4_close(&prod, &Mat4::IDENTITY, 1e-3));
        }

        #[test]
        fn prop_rigid_inverse_agrees(m in arb_rigid()) {
            let a = m.inverse_rigid();
            let b = m.inverse().expect("invertible");
            prop_assert!(mat4_close(&a, &b, 1e-3));
        }

        #[test]
        fn prop_mat3_det_of_rotation_is_one(angle in -3.0f32..3.0) {
            let half = angle * 0.5;
            let q = Vec4::new(0.0, half.sin(), 0.0, half.cos());
            let m = Mat3::from_quaternion(q);
            prop_assert!((m.determinant() - 1.0).abs() < 1e-4);
        }
    }
}
