//! Real spherical harmonics up to degree 3.
//!
//! 3D-Gaussian pipelines store view-dependent color as SH coefficients and
//! evaluate them per view direction; the paper notes this evaluation "can be
//! executed as the vector-matrix multiplication process of MLPs" (Sec. II-E)
//! and maps it onto the GEMM micro-operator. This module provides the basis
//! evaluation used by both the reference renderer and the workload model.

use crate::vec::Vec3;

/// Number of SH coefficients for a maximum degree (inclusive).
///
/// Degree 3 gives the 16 coefficients per channel used by 3DGS.
#[inline]
pub const fn coeff_count(max_degree: u8) -> usize {
    let l = max_degree as usize + 1;
    l * l
}

// Band constants, standard real-SH normalization.
const C0: f32 = 0.282_094_79;
const C1: f32 = 0.488_602_51;
const C2: [f32; 5] = [
    1.092_548_4,
    -1.092_548_4,
    0.315_391_57,
    -1.092_548_4,
    0.546_274_22,
];
const C3: [f32; 7] = [
    -0.590_043_6,
    2.890_611_4,
    -0.457_045_8,
    0.373_176_33,
    -0.457_045_8,
    1.445_305_7,
    -0.590_043_6,
];

/// Evaluates the real SH basis at unit direction `dir`.
///
/// Fills `out` with the first `out.len()` basis values in the standard
/// `(l, m)` order used by 3DGS implementations. Supports up to 16 values
/// (degree 3).
///
/// # Panics
///
/// Panics if `out.len() > 16`.
pub fn eval_basis(dir: Vec3, out: &mut [f32]) {
    assert!(out.len() <= 16, "sh basis supports degree <= 3 (16 coeffs)");
    let Vec3 { x, y, z } = dir;
    let mut vals = [0f32; 16];
    vals[0] = C0;
    if out.len() > 1 {
        vals[1] = -C1 * y;
        vals[2] = C1 * z;
        vals[3] = -C1 * x;
    }
    if out.len() > 4 {
        let (xx, yy, zz) = (x * x, y * y, z * z);
        let (xy, yz, xz) = (x * y, y * z, x * z);
        vals[4] = C2[0] * xy;
        vals[5] = C2[1] * yz;
        vals[6] = C2[2] * (2.0 * zz - xx - yy);
        vals[7] = C2[3] * xz;
        vals[8] = C2[4] * (xx - yy);
        if out.len() > 9 {
            vals[9] = C3[0] * y * (3.0 * xx - yy);
            vals[10] = C3[1] * xy * z;
            vals[11] = C3[2] * y * (4.0 * zz - xx - yy);
            vals[12] = C3[3] * z * (2.0 * zz - 3.0 * xx - 3.0 * yy);
            vals[13] = C3[4] * x * (4.0 * zz - xx - yy);
            vals[14] = C3[5] * z * (xx - yy);
            vals[15] = C3[6] * x * (xx - 3.0 * yy);
        }
    }
    out.copy_from_slice(&vals[..out.len()]);
}

/// Evaluates an SH expansion with per-coefficient scalar weights.
///
/// This is the dot product a PE's MAC array computes when SH color
/// evaluation is mapped to the GEMM micro-operator.
pub fn eval_expansion(dir: Vec3, coeffs: &[f32]) -> f32 {
    let mut basis = [0f32; 16];
    let n = coeffs.len().min(16);
    eval_basis(dir, &mut basis[..n]);
    coeffs[..n]
        .iter()
        .zip(&basis[..n])
        .map(|(c, b)| c * b)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dirs() -> Vec<Vec3> {
        let mut v = vec![Vec3::X, Vec3::Y, Vec3::Z, -Vec3::X, -Vec3::Y, -Vec3::Z];
        for i in 0..16 {
            let a = i as f32 * 0.39;
            let b = i as f32 * 0.17;
            v.push(Vec3::new(a.cos() * b.sin(), b.cos(), a.sin() * b.sin()).normalized());
        }
        v
    }

    #[test]
    fn coeff_counts() {
        assert_eq!(coeff_count(0), 1);
        assert_eq!(coeff_count(1), 4);
        assert_eq!(coeff_count(2), 9);
        assert_eq!(coeff_count(3), 16);
    }

    #[test]
    fn degree_zero_is_constant() {
        for d in dirs() {
            let mut out = [0f32; 1];
            eval_basis(d, &mut out);
            assert!((out[0] - C0).abs() < 1e-6);
        }
    }

    #[test]
    fn degree_one_terms_are_linear_in_direction() {
        let mut out = [0f32; 4];
        eval_basis(Vec3::Z, &mut out);
        assert!((out[2] - C1).abs() < 1e-6);
        assert!(out[1].abs() < 1e-6 && out[3].abs() < 1e-6);
    }

    /// SH basis functions are orthonormal over the sphere: Monte Carlo
    /// integration of `b_i * b_j` should approximate the identity matrix.
    #[test]
    fn basis_is_approximately_orthonormal() {
        let n_theta = 64;
        let n_phi = 128;
        let mut gram = [[0f64; 9]; 9];
        for it in 0..n_theta {
            // Midpoint rule over cos(theta) in [-1, 1] keeps area weights exact.
            let cos_t = -1.0 + (it as f32 + 0.5) * 2.0 / n_theta as f32;
            let sin_t = (1.0 - cos_t * cos_t).max(0.0).sqrt();
            for ip in 0..n_phi {
                let phi = (ip as f32 + 0.5) / n_phi as f32 * std::f32::consts::TAU;
                let d = Vec3::new(sin_t * phi.cos(), sin_t * phi.sin(), cos_t);
                let mut b = [0f32; 9];
                eval_basis(d, &mut b);
                for i in 0..9 {
                    for j in 0..9 {
                        gram[i][j] += f64::from(b[i] * b[j]);
                    }
                }
            }
        }
        let weight = 4.0 * std::f64::consts::PI / (n_theta * n_phi) as f64;
        for (i, row) in gram.iter().enumerate() {
            for (j, &g) in row.iter().enumerate() {
                let v = g * weight;
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (v - expected).abs() < 0.02,
                    "gram[{i}][{j}] = {v}, expected {expected}"
                );
            }
        }
    }

    #[test]
    fn expansion_matches_manual_dot() {
        let coeffs: Vec<f32> = (0..16).map(|i| (i as f32 * 0.3).sin()).collect();
        let d = Vec3::new(0.3, -0.5, 0.8).normalized();
        let mut basis = [0f32; 16];
        eval_basis(d, &mut basis);
        let manual: f32 = coeffs.iter().zip(&basis).map(|(c, b)| c * b).sum();
        assert!((eval_expansion(d, &coeffs) - manual).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "degree <= 3")]
    fn oversized_basis_panics() {
        let mut out = [0f32; 17];
        eval_basis(Vec3::Z, &mut out);
    }

    proptest! {
        /// Rotating a degree-0 expansion changes nothing; for any direction
        /// the DC term dominates a DC-only expansion.
        #[test]
        fn prop_dc_expansion_is_direction_invariant(
            x in -1f32..1.0, y in -1f32..1.0, z in -1f32..1.0,
        ) {
            prop_assume!(Vec3::new(x, y, z).length() > 0.1);
            let d = Vec3::new(x, y, z).normalized();
            let v = eval_expansion(d, &[2.0]);
            prop_assert!((v - 2.0 * C0).abs() < 1e-6);
        }

        /// Basis values are bounded on the unit sphere.
        #[test]
        fn prop_basis_bounded(x in -1f32..1.0, y in -1f32..1.0, z in -1f32..1.0) {
            prop_assume!(Vec3::new(x, y, z).length() > 0.1);
            let d = Vec3::new(x, y, z).normalized();
            let mut b = [0f32; 16];
            eval_basis(d, &mut b);
            for v in b {
                prop_assert!(v.abs() < 3.0);
            }
        }
    }
}
