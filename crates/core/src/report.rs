//! Simulation reports.

use crate::energy::{AreaBreakdown, EnergyBreakdown};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use uni_microops::{MicroOp, Pipeline};

/// The result of simulating one frame trace on the accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Pipeline that produced the trace.
    pub pipeline: Pipeline,
    /// Total cycles for the frame.
    pub cycles: u64,
    /// Frame latency in seconds.
    pub seconds: f64,
    /// Cycles attributed to each micro-operator (including its memory
    /// stalls).
    pub per_op_cycles: BTreeMap<MicroOp, u64>,
    /// Number of micro-op-family reconfigurations performed.
    pub reconfigurations: u64,
    /// Cycles spent reconfiguring.
    pub reconfiguration_cycles: u64,
    /// Effective DRAM traffic in bytes.
    pub dram_bytes: u64,
    /// Cycle-weighted compute utilization in `(0, 1]`.
    pub utilization: f64,
    /// Energy per frame, by Fig. 15 category.
    pub energy: EnergyBreakdown,
    /// Die area of the simulated configuration.
    pub area: AreaBreakdown,
}

impl SimReport {
    /// Frames per second.
    pub fn fps(&self) -> f64 {
        if self.seconds > 0.0 {
            1.0 / self.seconds
        } else {
            f64::INFINITY
        }
    }

    /// Average on-chip power over the frame in watts (DRAM excluded, as in
    /// the paper's 5.78 W figure).
    pub fn power_w(&self) -> f64 {
        if self.seconds > 0.0 {
            self.energy.on_chip_j() / self.seconds
        } else {
            0.0
        }
    }

    /// On-chip energy per frame in joules.
    pub fn energy_per_frame_j(&self) -> f64 {
        self.energy.on_chip_j()
    }

    /// Energy efficiency in frames per joule (on-chip).
    pub fn frames_per_joule(&self) -> f64 {
        let e = self.energy.on_chip_j();
        if e > 0.0 {
            1.0 / e
        } else {
            f64::INFINITY
        }
    }

    /// Whether the frame meets the 30 FPS real-time bar of the paper.
    pub fn is_real_time(&self) -> bool {
        self.fps() > 30.0
    }

    /// Fraction of cycles spent on one micro-operator.
    pub fn op_share(&self, op: MicroOp) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        *self.per_op_cycles.get(&op).unwrap_or(&0) as f64 / self.cycles as f64
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {:.1} FPS ({:.2} ms, {} cycles), {:.2} W on-chip, {:.1} MB DRAM/frame",
            self.pipeline,
            self.fps(),
            self.seconds * 1e3,
            self.cycles,
            self.power_w(),
            self.dram_bytes as f64 / 1e6,
        )?;
        for (op, cycles) in &self.per_op_cycles {
            writeln!(
                f,
                "  {:<26} {:>12} cycles ({:>5.1}%)",
                op.to_string(),
                cycles,
                self.op_share(*op) * 100.0
            )?;
        }
        write!(
            f,
            "  reconfigurations: {} ({} cycles)",
            self.reconfigurations, self.reconfiguration_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimReport {
        let mut per_op = BTreeMap::new();
        per_op.insert(MicroOp::Gemm, 800_000u64);
        per_op.insert(MicroOp::Sorting, 200_000u64);
        SimReport {
            pipeline: Pipeline::Gaussian3d,
            cycles: 1_000_000,
            seconds: 1e-3,
            per_op_cycles: per_op,
            reconfigurations: 2,
            reconfiguration_cycles: 4_000,
            dram_bytes: 10_000_000,
            utilization: 0.7,
            energy: EnergyBreakdown {
                compute_j: 4e-3,
                sram_array_j: 5e-4,
                sram_global_j: 8e-4,
                leakage_j: 3e-4,
                dram_j: 4e-4,
            },
            area: crate::energy::area(&crate::AcceleratorConfig::paper()),
        }
    }

    #[test]
    fn fps_and_realtime() {
        let r = sample();
        assert!((r.fps() - 1000.0).abs() < 1e-9);
        assert!(r.is_real_time());
    }

    #[test]
    fn power_excludes_dram() {
        let r = sample();
        // (4e-3 + 5e-4 + 8e-4 + 3e-4) / 1e-3 = 5.6 W.
        assert!((r.power_w() - 5.6).abs() < 1e-9);
    }

    #[test]
    fn op_shares() {
        let r = sample();
        assert!((r.op_share(MicroOp::Gemm) - 0.8).abs() < 1e-12);
        assert_eq!(r.op_share(MicroOp::Sorting), 0.2);
        assert_eq!(r.op_share(MicroOp::GeometricProcessing), 0.0);
    }

    #[test]
    fn display_is_informative() {
        let s = sample().to_string();
        assert!(s.contains("FPS"));
        assert!(s.contains("GEMM"));
        assert!(s.contains("reconfigurations: 2"));
    }
}
