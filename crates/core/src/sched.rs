//! The frame scheduler: walks a micro-operator trace, maps each invocation
//! through its dataflow, overlaps compute with double-buffered DRAM
//! transfers, fuses chained GEMM layers on chip, inserts reconfiguration
//! overhead between micro-operator families (Sec. VII-E), and accounts
//! energy with clock/power gating of idle modules.

use crate::config::AcceleratorConfig;
use crate::dataflow::{map_invocation, DataflowCosts};
use crate::energy::{area, EnergyBreakdown, EnergyModel};
use crate::pe::ModuleStatus;
use crate::report::SimReport;
use std::collections::BTreeMap;
use uni_microops::{MicroOp, Trace, Workload};

/// Fixed per-invocation setup cycles (descriptor load, address setup).
const INVOCATION_SETUP_CYCLES: u64 = 64;

/// Reusable scratch for batch trace replay.
///
/// [`Accelerator::simulate`] maps every invocation to its
/// [`DataflowCosts`] before the fusion pass can run. Replaying many traces
/// (the figure harnesses sweep hundreds) used to rebuild that mapping
/// buffer per frame; threading one scratch through
/// [`Accelerator::simulate_with_scratch`] keeps steady-state replay
/// allocation-free.
#[derive(Debug, Clone, Default)]
pub struct ReplayScratch {
    mapped: Vec<DataflowCosts>,
}

/// The Uni-Render accelerator simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct Accelerator {
    config: AcceleratorConfig,
    energy: EnergyModel,
}

impl Accelerator {
    /// Creates an accelerator with the default 28 nm energy model.
    pub fn new(config: AcceleratorConfig) -> Self {
        Self {
            config,
            energy: EnergyModel::default(),
        }
    }

    /// Overrides the energy model.
    pub fn with_energy_model(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Simulates one frame trace and returns the report.
    pub fn simulate(&self, trace: &Trace) -> SimReport {
        self.simulate_with_scratch(trace, &mut ReplayScratch::default())
    }

    /// Simulates one frame trace, reusing `scratch` for the invocation →
    /// dataflow mapping buffer so batch replay never reallocates it.
    pub fn simulate_with_scratch(&self, trace: &Trace, scratch: &mut ReplayScratch) -> SimReport {
        let cfg = &self.config;
        scratch.mapped.clear();
        scratch
            .mapped
            .extend(trace.iter().map(|inv| map_invocation(inv, cfg)));
        let mapped = &mut scratch.mapped;

        // Producer→consumer fusion: chained stages stream intermediates on
        // chip, removing the DRAM round trips the per-invocation dataflows
        // conservatively charged.
        let invs = trace.invocations();
        for i in 1..invs.len() {
            let inter = match (invs[i - 1].workload(), invs[i].workload()) {
                // GEMM → GEMM layer chaining.
                (
                    Workload::Gemm {
                        batch: b_prev,
                        out_dim,
                        ..
                    },
                    Workload::Gemm {
                        batch: b_cur,
                        in_dim,
                        ..
                    },
                ) if b_prev == b_cur && out_dim == in_dim => Some(b_cur * u64::from(*in_dim) * 2),
                // Grid fetch → decoder MLP chaining (fetched features feed
                // the GEMM directly through the reduction network).
                (Workload::GridIndex { points, .. }, Workload::Gemm { batch, in_dim, .. })
                    if points == batch =>
                {
                    Some(batch * u64::from(*in_dim) * 2)
                }
                _ => None,
            };
            if let Some(inter) = inter {
                let (left, right) = mapped.split_at_mut(i);
                let prev = &mut left[i - 1];
                let cur = &mut right[0];
                prev.dram_write_bytes = prev.dram_write_bytes.saturating_sub(inter);
                cur.dram_read_bytes = cur.dram_read_bytes.saturating_sub(inter);
            }
        }

        let mut per_op_cycles: BTreeMap<MicroOp, u64> = BTreeMap::new();
        let mut reconfigurations = 0u64;
        let mut reconfig_cycles = 0u64;
        let mut dram_bytes = 0u64;
        let mut util_weighted = 0f64;
        let mut energy = EnergyBreakdown::default();
        let mut gated_weighted = 0f64;
        let mut prev_op: Option<MicroOp> = None;
        let mut compute_total: u64 = 0;
        let mut dram_cycles_total: u64 = 0;

        for (inv, costs) in invs.iter().zip(mapped.iter()) {
            let op = inv.op();
            if let Some(p) = prev_op {
                if p != op {
                    reconfigurations += 1;
                    reconfig_cycles += cfg.reconfig_cycles;
                }
            }
            prev_op = Some(op);

            // Deep double buffering: the DMA engine prefetches across
            // invocation boundaries, so DRAM time overlaps the *frame's*
            // compute, not just the owning stage's (the stage attribution
            // below charges each op its own max(compute, memory) share).
            let dram_cycles = costs.dram_cycles(cfg);
            let stage_cycles = costs.compute_cycles.max(dram_cycles) + INVOCATION_SETUP_CYCLES;
            compute_total += costs.compute_cycles + INVOCATION_SETUP_CYCLES;
            dram_cycles_total += dram_cycles;
            *per_op_cycles.entry(op).or_insert(0) += stage_cycles;
            dram_bytes += costs.dram_read_bytes + costs.dram_write_bytes;
            util_weighted += costs.utilization * stage_cycles as f64;

            // Dynamic energy from the device-independent cost vector plus
            // the dataflow's traffic accounting.
            let cv = inv.cost();
            energy.compute_j += (cv.int_macs as f64 * self.energy.int_mac_j
                + cv.fp_macs as f64 * self.energy.bf16_mac_j
                + cv.sfu_ops as f64 * self.energy.sfu_j)
                * self.energy.control_overhead
                + costs.network_bytes as f64 * self.energy.noc_j_per_byte;
            energy.sram_array_j += cv.sram_bytes() as f64 * self.energy.sram_local_j_per_byte;
            // The global buffer stages both DRAM traffic and the operand
            // streams feeding the array.
            energy.sram_global_j +=
                (costs.dram_read_bytes + costs.dram_write_bytes + costs.network_bytes) as f64
                    * self.energy.sram_global_j_per_byte;
            energy.dram_j += (costs.dram_read_bytes + costs.dram_write_bytes) as f64
                * self.energy.dram_j_per_byte;

            // Gated-module leakage bookkeeping (Sec. VII-E: power/clock
            // gating conserves energy in unused modules).
            let gated = ModuleStatus::for_op(op).gated_module_count();
            gated_weighted += f64::from(gated) / 6.0 * stage_cycles as f64;
        }

        // Frame time: fully-overlapped compute vs. DRAM streams, plus the
        // serialized reconfiguration windows.
        let overlapped = compute_total.max(dram_cycles_total);
        let total_cycles = overlapped + reconfig_cycles;
        // Rescale the per-op attribution so shares still sum to the frame.
        let attributed: u64 = per_op_cycles.values().sum();
        let stage_sum = attributed.max(1);
        if attributed > 0 && attributed != overlapped {
            let scale = overlapped as f64 / attributed as f64;
            let mut remaining = overlapped;
            let keys: Vec<MicroOp> = per_op_cycles.keys().copied().collect();
            for (i, op) in keys.iter().enumerate() {
                let v = per_op_cycles.get_mut(op).expect("key exists");
                if i + 1 == keys.len() {
                    *v = remaining;
                } else {
                    *v = (*v as f64 * scale) as u64;
                    remaining = remaining.saturating_sub(*v);
                }
            }
        }
        let seconds = cfg.cycles_to_seconds(total_cycles);
        let die = area(cfg);
        let gated_fraction = if attributed > 0 {
            gated_weighted / stage_sum as f64
        } else {
            0.0
        };
        let leak_w = self.energy.leakage_w_per_mm2
            * die.total_mm2()
            * (1.0 - gated_fraction * self.energy.gating_efficiency * 0.5);
        energy.leakage_j = leak_w * seconds;

        SimReport {
            pipeline: trace.pipeline(),
            cycles: total_cycles,
            seconds,
            per_op_cycles,
            reconfigurations,
            reconfiguration_cycles: reconfig_cycles,
            dram_bytes,
            utilization: if attributed > 0 {
                util_weighted / stage_sum as f64
            } else {
                0.0
            },
            energy,
            area: die,
        }
    }

    /// Simulates many traces in parallel worker threads
    /// ([`uni_parallel::par_indices`], so the worker count honors
    /// `UNI_RENDER_THREADS` like every other parallel path).
    ///
    /// Each worker thread reuses one [`ReplayScratch`] across every
    /// trace it claims, so the batch replay performs no per-frame
    /// mapping allocations; reports come back in trace order regardless
    /// of which worker ran which index.
    pub fn simulate_many(&self, traces: &[Trace]) -> Vec<SimReport> {
        std::thread_local! {
            static SCRATCH: std::cell::RefCell<ReplayScratch> =
                std::cell::RefCell::new(ReplayScratch::default());
        }
        uni_parallel::par_indices(traces.len(), |i| {
            SCRATCH.with(|s| self.simulate_with_scratch(&traces[i], &mut s.borrow_mut()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uni_microops::{Dims, IndexFunction, Invocation, Pipeline, PrimitiveKind, Workload};

    fn accel() -> Accelerator {
        Accelerator::new(AcceleratorConfig::paper())
    }

    fn gemm(batch: u64, in_dim: u32, out_dim: u32) -> Invocation {
        Invocation::new(
            "g",
            Workload::Gemm {
                batch,
                in_dim,
                out_dim,
                weight_bytes: u64::from(in_dim) * u64::from(out_dim) * 2,
            },
        )
    }

    fn mixed_trace() -> Trace {
        let mut t = Trace::new(Pipeline::Gaussian3d, 640, 480);
        t.push(Invocation::new(
            "splat",
            Workload::Geometric {
                kind: PrimitiveKind::GaussianSplat,
                primitives: 100_000,
                candidate_pairs: 5_000_000,
                hits: 1_000_000,
                prim_bytes: 240,
                output_pixels: 640 * 480,
            },
        ));
        t.push(Invocation::new(
            "sort",
            Workload::Sort {
                patches: 1200,
                keys_per_patch: 200.0,
                entry_bytes: 8,
            },
        ));
        t.push(gemm(100_000, 16, 3));
        t
    }

    #[test]
    fn simulation_produces_consistent_totals() {
        let report = accel().simulate(&mixed_trace());
        assert!(report.cycles > 0);
        let op_sum: u64 = report.per_op_cycles.values().sum();
        assert_eq!(
            op_sum + report.reconfiguration_cycles,
            report.cycles,
            "per-op cycles + reconfig = total"
        );
        assert!(report.utilization > 0.0 && report.utilization <= 1.0);
        assert!(report.energy.on_chip_j() > 0.0);
    }

    #[test]
    fn reconfiguration_counted_between_families() {
        let report = accel().simulate(&mixed_trace());
        // splat -> sort -> gemm: two switches.
        assert_eq!(report.reconfigurations, 2);
        assert_eq!(
            report.reconfiguration_cycles,
            2 * AcceleratorConfig::paper().reconfig_cycles
        );
    }

    #[test]
    fn empty_trace_is_near_free() {
        let report = accel().simulate(&Trace::new(Pipeline::Mesh, 64, 64));
        assert_eq!(report.cycles, 0);
        assert_eq!(report.reconfigurations, 0);
    }

    #[test]
    fn gemm_chaining_removes_intermediate_traffic() {
        // Two huge chained layers whose intermediate tensor would spill.
        let mut chained = Trace::new(Pipeline::Mlp, 640, 480);
        chained.push(gemm(4_000_000, 32, 32));
        chained.push(gemm(4_000_000, 32, 4));
        let mut broken = Trace::new(Pipeline::Mlp, 640, 480);
        broken.push(gemm(4_000_000, 32, 32));
        broken.push(gemm(3_999_999, 32, 4)); // Batch mismatch: no fusion.
        let a = accel().simulate(&chained);
        let b = accel().simulate(&broken);
        assert!(
            a.dram_bytes < b.dram_bytes,
            "fusion saves DRAM: {} vs {}",
            a.dram_bytes,
            b.dram_bytes
        );
    }

    #[test]
    fn faster_dram_helps_memory_bound_traces() {
        let mut t = Trace::new(Pipeline::HashGrid, 1280, 720);
        t.push(Invocation::new(
            "hash",
            Workload::GridIndex {
                points: 4 << 20,
                levels: 16,
                corners: 8,
                feature_dim: 4,
                table_bytes: 64 << 20,
                function: IndexFunction::RandomHash,
                dims: Dims::D3,
                decomposed: false,
            },
        ));
        let slow = accel().simulate(&t);
        let mut fast_cfg = AcceleratorConfig::paper();
        fast_cfg.dram_bandwidth *= 4.0;
        let fast = Accelerator::new(fast_cfg).simulate(&t);
        assert!(fast.cycles < slow.cycles, "memory-bound trace speeds up");
    }

    #[test]
    fn simulate_many_matches_sequential() {
        let traces: Vec<Trace> = (0..6).map(|_| mixed_trace()).collect();
        let parallel = accel().simulate_many(&traces);
        let sequential: Vec<SimReport> = traces.iter().map(|t| accel().simulate(t)).collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn more_pes_speed_up_compute_bound_traces() {
        // Wide layers with a modest batch keep arithmetic intensity high
        // (compute-bound), so PE scaling translates into speedup.
        let mut t = Trace::new(Pipeline::Mlp, 640, 480);
        t.push(gemm(1 << 16, 256, 256));
        let base = accel().simulate(&t);
        let big = Accelerator::new(AcceleratorConfig::paper().scaled(4, 4)).simulate(&t);
        let speedup = base.cycles as f64 / big.cycles as f64;
        assert!(speedup > 3.0, "4x PEs near-4x on big GEMM: {speedup}");
    }
}
