//! 28 nm energy and area model.
//!
//! Substitutes for the paper's RTL synthesis + place-and-route flow
//! (Synopsys DC / Cadence Innovus at 28 nm, 0.9 V, 1 GHz): per-event
//! energies and per-region area densities are set from published 28 nm
//! characterizations and calibrated so the totals land at the paper's
//! reported 14.96 mm² and ~5.78 W with the Fig. 15 breakdowns
//! (area 54/31/15 %, power 75/10/15 % across {compute+control,
//! SRAM inside the PE array, SRAM outside}).

use crate::config::AcceleratorConfig;
use serde::{Deserialize, Serialize};

/// Per-event energy constants (joules).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// One INT16 multiply-accumulate.
    pub int_mac_j: f64,
    /// One BF16 multiply-accumulate.
    pub bf16_mac_j: f64,
    /// One special-function operation (exp/sin/rsqrt).
    pub sfu_j: f64,
    /// Multiplier on compute energy covering clock tree, PE controllers,
    /// and the data routers (the "control logic" share of Fig. 15).
    pub control_overhead: f64,
    /// Per byte accessed in the in-array scratchpads.
    pub sram_local_j_per_byte: f64,
    /// Per byte staged through the global SRAM buffer.
    pub sram_global_j_per_byte: f64,
    /// Per byte moved across the 2D-mesh networks (attributed to
    /// compute+control in the Fig. 15 grouping).
    pub noc_j_per_byte: f64,
    /// Per byte of DRAM traffic. Reported separately: the paper's power
    /// figures exclude DRAM ("Following [31], [52], [58], the power
    /// estimation excludes DRAM").
    pub dram_j_per_byte: f64,
    /// Static leakage power per mm² of active silicon (W).
    pub leakage_w_per_mm2: f64,
    /// Fraction of a gated module's leakage that power gating removes.
    pub gating_efficiency: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            int_mac_j: 0.9e-12,
            bf16_mac_j: 2.2e-12,
            sfu_j: 6.0e-12,
            control_overhead: 2.6,
            sram_local_j_per_byte: 0.12e-12,
            sram_global_j_per_byte: 5.0e-12,
            noc_j_per_byte: 0.5e-12,
            dram_j_per_byte: 40.0e-12,
            leakage_w_per_mm2: 0.045,
            gating_efficiency: 0.8,
        }
    }
}

/// Area regions matching Fig. 15's three categories.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// Computing and control logic (PE ALUs, controllers, routers) in mm².
    pub logic_mm2: f64,
    /// SRAM inside the PE array (FF + PS scratchpads) in mm².
    pub sram_array_mm2: f64,
    /// SRAM outside the PE array (global buffer subsystem) in mm².
    pub sram_global_mm2: f64,
}

impl AreaBreakdown {
    /// Total die area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.logic_mm2 + self.sram_array_mm2 + self.sram_global_mm2
    }

    /// Percentage shares `(logic, sram_array, sram_global)`.
    pub fn shares(&self) -> (f64, f64, f64) {
        let t = self.total_mm2();
        (
            self.logic_mm2 / t * 100.0,
            self.sram_array_mm2 / t * 100.0,
            self.sram_global_mm2 / t * 100.0,
        )
    }
}

/// Per-PE logic area in mm² (ALUs, controller, router share), calibrated so
/// the 16×16 array's logic lands at 54 % of 14.96 mm².
pub const PE_LOGIC_MM2: f64 = 8.078 / 256.0;
/// In-array scratchpad density in mm² per byte (small 512×16 arrays),
/// calibrated to 31 % of 14.96 mm² for 1.25 MB.
pub const SRAM_ARRAY_MM2_PER_BYTE: f64 = 4.638 / 1_310_720.0;
/// Global-buffer subsystem density in mm² per byte. Higher than the
/// in-array density because the paper's "SRAM outside the PE array" region
/// includes the buffer controllers and bus interfaces.
pub const SRAM_GLOBAL_MM2_PER_BYTE: f64 = 2.244 / 262_144.0;

/// Computes the area of a configuration.
pub fn area(config: &AcceleratorConfig) -> AreaBreakdown {
    AreaBreakdown {
        logic_mm2: config.pe_count() as f64 * PE_LOGIC_MM2,
        sram_array_mm2: config.local_memory_bytes() as f64 * SRAM_ARRAY_MM2_PER_BYTE,
        sram_global_mm2: config.global_buffer_bytes as f64 * SRAM_GLOBAL_MM2_PER_BYTE,
    }
}

/// Energy totals per Fig. 15 category (joules).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Compute + control (MACs, SFUs, controllers, networks).
    pub compute_j: f64,
    /// In-array scratchpad accesses.
    pub sram_array_j: f64,
    /// Global buffer accesses.
    pub sram_global_j: f64,
    /// Leakage over the frame time (attributed to compute+control in the
    /// percentage split, matching the paper's synthesis reports).
    pub leakage_j: f64,
    /// External DRAM (excluded from the power figure, reported for
    /// completeness).
    pub dram_j: f64,
}

impl EnergyBreakdown {
    /// On-chip energy (the paper's power basis — DRAM excluded).
    pub fn on_chip_j(&self) -> f64 {
        self.compute_j + self.sram_array_j + self.sram_global_j + self.leakage_j
    }

    /// Percentage shares `(compute+control, sram_array, sram_global)` of
    /// on-chip energy, with leakage folded into compute+control.
    pub fn shares(&self) -> (f64, f64, f64) {
        let t = self.on_chip_j();
        if t <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            (self.compute_j + self.leakage_j) / t * 100.0,
            self.sram_array_j / t * 100.0,
            self.sram_global_j / t * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_area_totals_and_breakdown() {
        let a = area(&AcceleratorConfig::paper());
        // Paper: 14.96 mm² total.
        assert!(
            (a.total_mm2() - 14.96).abs() < 0.05,
            "total {} mm²",
            a.total_mm2()
        );
        let (logic, arr, glob) = a.shares();
        // Fig. 15 area: 54 % / 31 % / 15 %.
        assert!((logic - 54.0).abs() < 1.0, "logic {logic}%");
        assert!((arr - 31.0).abs() < 1.0, "array sram {arr}%");
        assert!((glob - 15.0).abs() < 1.0, "global sram {glob}%");
    }

    #[test]
    fn area_scales_with_configuration() {
        let base = area(&AcceleratorConfig::paper());
        let scaled = area(&AcceleratorConfig::paper().scaled(2, 2));
        assert!((scaled.logic_mm2 / base.logic_mm2 - 2.0).abs() < 0.01);
        assert!((scaled.sram_array_mm2 / base.sram_array_mm2 - 2.0).abs() < 0.01);
    }

    #[test]
    fn energy_breakdown_shares_sum_to_hundred() {
        let e = EnergyBreakdown {
            compute_j: 3.0,
            sram_array_j: 0.5,
            sram_global_j: 0.7,
            leakage_j: 0.3,
            dram_j: 10.0,
        };
        let (a, b, c) = e.shares();
        assert!((a + b + c - 100.0).abs() < 1e-9);
        // DRAM excluded from on-chip.
        assert!((e.on_chip_j() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn default_constants_are_physically_ordered() {
        let m = EnergyModel::default();
        assert!(m.int_mac_j < m.bf16_mac_j, "INT16 cheaper than BF16");
        assert!(m.bf16_mac_j < m.sfu_j, "SFU ops are the expensive ones");
        assert!(m.sram_local_j_per_byte < m.sram_global_j_per_byte);
        assert!(m.sram_global_j_per_byte < m.dram_j_per_byte);
    }
}
