//! Cycle-exact micro-engines for validating the analytical dataflow
//! models.
//!
//! The frame-level simulator uses closed-form tile timing; these clocked
//! engines execute the same structures register by register on small
//! configurations so tests can check the formulas against ground truth:
//!
//! - a weight-stationary systolic array (Mode 1, Fig. 14);
//! - a pipelined weighted adder tree (the reduction network of Fig. 11);
//! - a PE-local merge sort (Fig. 13).
//!
//! All matrix state lives in contiguous row-major [`FlatMat`] buffers —
//! the per-PE register files are `rows × cols` planes, not nested vectors.

use uni_geometry::FlatMat;

/// Result of a cycle-exact run.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleResult<T> {
    /// Exact cycles from first input to last output.
    pub cycles: u64,
    /// The computed values (for functional verification).
    pub output: T,
}

/// Cycle-exact weight-stationary systolic matrix multiply.
///
/// Computes `out[b][o] = Σ_i input[b][i] * weights[i][o]` on a
/// `rows × cols` array where PE `(r, c)` holds `weights[(r, c)]`
/// (`rows = in_dim`, `cols = out_dim`). Activations enter from the left
/// edge with the classic one-cycle skew per row; partial sums flow down.
///
/// `weights` is `in_dim × out_dim`; `inputs` is `batch × in_dim`; the
/// output is `batch × out_dim`.
///
/// # Panics
///
/// Panics if the matrix shapes do not match the array.
pub fn systolic_gemm(weights: &FlatMat, inputs: &FlatMat) -> CycleResult<FlatMat> {
    let mut scratch = GemmScratch::default();
    let cycles = systolic_gemm_scratch(weights, inputs, &mut scratch);
    CycleResult {
        cycles,
        output: scratch.out,
    }
}

/// Reusable per-PE register planes and output buffer for
/// [`systolic_gemm_scratch`]. Repeated runs on the same array shape
/// reuse the allocations, so steady-state cycle validation touches the
/// allocator only on the first call.
#[derive(Debug, Clone, Default)]
pub struct GemmScratch {
    /// Activation registers moving right.
    act: FlatMat,
    /// Partial-sum registers moving down.
    psum: FlatMat,
    /// Drained outputs, `batch × out_dim`.
    pub out: FlatMat,
}

/// [`systolic_gemm`] into caller-owned scratch; returns the cycle count
/// and leaves the output matrix in `scratch.out`.
///
/// # Panics
///
/// Panics if the matrix shapes do not match the array.
// uni-lint: hot
pub fn systolic_gemm_scratch(
    weights: &FlatMat,
    inputs: &FlatMat,
    scratch: &mut GemmScratch,
) -> u64 {
    let rows = weights.rows();
    assert!(rows > 0, "empty weight matrix");
    let cols = weights.cols();
    assert_eq!(inputs.cols(), rows, "input width must equal weight rows");
    let batch = inputs.rows();

    // Per-PE registers: activation moving right, partial sum moving down.
    scratch.act.reset_zeroed(rows, cols);
    scratch.psum.reset_zeroed(rows, cols);
    scratch.out.reset_zeroed(batch, cols);
    let act = &mut scratch.act;
    let psum = &mut scratch.psum;
    let outputs = &mut scratch.out;
    let mut produced = 0usize;
    let mut cycles = 0u64;

    // Run until every output row has drained from the bottom edge.
    while produced < batch * cols {
        cycles += 1;
        let t = cycles as usize - 1;
        // Drain bottom edge first (values computed in the previous cycle).
        // Column c's output for batch row b appears at time
        // b + rows + c (0-based cycle t), after entering at t = b + r for
        // row r.
        // Shift partial sums down / activations right, starting from the
        // bottom-right so values move one step per cycle.
        for r in (0..rows).rev() {
            for c in (0..cols).rev() {
                // Activation arriving at this PE this cycle.
                let a_in = if c == 0 {
                    // Left edge: batch row (t - r) feeds row r (skewed).
                    let b = t as i64 - r as i64;
                    if b >= 0 && (b as usize) < batch {
                        inputs[(b as usize, r)]
                    } else {
                        0.0
                    }
                } else {
                    act[(r, c - 1)]
                };
                let p_in = if r == 0 { 0.0 } else { psum[(r - 1, c)] };
                let p_out = p_in + a_in * weights[(r, c)];
                // Emit from the bottom row.
                if r == rows - 1 {
                    let b = t as i64 - (rows as i64 - 1) - c as i64;
                    if b >= 0 && (b as usize) < batch {
                        outputs[(b as usize, c)] = p_out;
                        produced += 1;
                    }
                }
                psum[(r, c)] = p_out;
                act[(r, c)] = a_in;
            }
        }
        assert!(
            cycles < (batch + rows + cols + 8) as u64 * 2,
            "systolic array failed to drain"
        );
    }
    cycles
}

/// Closed-form cycle count the GEMM dataflow model assumes for a
/// weight-stationary systolic array: the last batch row enters at cycle
/// `batch - 1`, traverses `rows - 1` down and `cols - 1` across, and emits
/// one cycle later.
pub fn systolic_gemm_formula(rows: usize, cols: usize, batch: usize) -> u64 {
    (batch + rows + cols - 2).max(1) as u64
}

/// Cycle-exact pipelined weighted adder tree (the horizontal reduction
/// network of Fig. 11): `n` leaf inputs with weights, one stage of adders
/// per tree level, one new vector accepted per cycle.
pub fn adder_tree(values: &[f32], weights: &[f32]) -> CycleResult<f32> {
    assert_eq!(values.len(), weights.len(), "weight per value");
    assert!(!values.is_empty(), "empty reduction");
    let mut level: Vec<f32> = values.iter().zip(weights).map(|(v, w)| v * w).collect();
    let mut cycles = 1; // Multiply stage.
    while level.len() > 1 {
        level = level.chunks(2).map(|pair| pair.iter().sum()).collect();
        cycles += 1;
    }
    CycleResult {
        cycles,
        output: level[0],
    }
}

/// Latency formula for the adder tree: one multiply stage plus
/// `ceil(log2 n)` add stages.
pub fn adder_tree_formula(n: usize) -> u64 {
    1 + (n.max(1) as f64).log2().ceil() as u64
}

/// Cycle-exact PE-local merge sort (Fig. 13): iteratively merges runs of
/// doubling width through the FF scratchpad, one comparison per cycle per
/// comparator lane.
pub fn merge_sort(keys: &[u32], comparator_lanes: u64) -> CycleResult<Vec<u32>> {
    assert!(comparator_lanes > 0, "need at least one comparator");
    let mut data = keys.to_vec();
    let n = data.len();
    let mut comparisons = 0u64;
    let mut width = 1usize;
    let mut buffer = data.clone();
    while width < n {
        let mut start = 0;
        while start < n {
            let mid = (start + width).min(n);
            let end = (start + 2 * width).min(n);
            let (mut i, mut j, mut k) = (start, mid, start);
            while i < mid && j < end {
                comparisons += 1;
                if data[i] <= data[j] {
                    buffer[k] = data[i];
                    i += 1;
                } else {
                    buffer[k] = data[j];
                    j += 1;
                }
                k += 1;
            }
            while i < mid {
                buffer[k] = data[i];
                i += 1;
                k += 1;
            }
            while j < end {
                buffer[k] = data[j];
                j += 1;
                k += 1;
            }
            start = end;
        }
        std::mem::swap(&mut data, &mut buffer);
        width *= 2;
    }
    CycleResult {
        cycles: comparisons.div_ceil(comparator_lanes).max(1),
        output: data,
    }
}

/// Upper-bound formula the sorting dataflow model uses:
/// `n ⌈log2 n⌉ / lanes` comparisons.
pub fn merge_sort_formula(n: usize, comparator_lanes: u64) -> u64 {
    if n <= 1 {
        return 1;
    }
    let passes = (n as f64).log2().ceil() as u64;
    (n as u64 * passes).div_ceil(comparator_lanes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reference_matmul(weights: &FlatMat, inputs: &FlatMat) -> FlatMat {
        FlatMat::from_fn(inputs.rows(), weights.cols(), |b, o| {
            (0..weights.rows())
                .map(|i| inputs[(b, i)] * weights[(i, o)])
                .sum()
        })
    }

    #[test]
    fn systolic_gemm_is_functionally_correct() {
        let weights = FlatMat::from_vec(
            vec![
                1.0, 2.0, -1.0, //
                0.5, -0.5, 1.5, //
                2.0, 1.0, 0.0, //
                -1.0, 0.0, 3.0,
            ],
            4,
            3,
        );
        let inputs = FlatMat::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, //
                -1.0, 0.5, 2.0, 0.0, //
                0.0, 0.0, 1.0, 1.0,
            ],
            3,
            4,
        );
        let result = systolic_gemm(&weights, &inputs);
        let expected = reference_matmul(&weights, &inputs);
        for (g, w) in result.output.as_slice().iter().zip(expected.as_slice()) {
            assert!((g - w).abs() < 1e-4, "{g} vs {w}");
        }
    }

    #[test]
    fn systolic_cycles_match_fill_plus_drain_formula() {
        for (rows, cols, batch) in [(4, 3, 3), (2, 2, 10), (8, 4, 16), (3, 5, 7)] {
            let weights = FlatMat::from_fn(rows, cols, |_, _| 1.0);
            let inputs = FlatMat::from_fn(batch, rows, |_, _| 1.0);
            let result = systolic_gemm(&weights, &inputs);
            let formula = systolic_gemm_formula(rows, cols, batch);
            assert_eq!(
                result.cycles, formula,
                "rows={rows} cols={cols} batch={batch}"
            );
        }
    }

    #[test]
    fn adder_tree_matches_weighted_sum_and_formula() {
        let values = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let weights = [0.1f32, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
        let result = adder_tree(&values, &weights);
        let expected: f32 = values.iter().zip(&weights).map(|(v, w)| v * w).sum();
        assert!((result.output - expected).abs() < 1e-4);
        assert_eq!(result.cycles, adder_tree_formula(8));
        assert_eq!(adder_tree_formula(8), 4, "1 mul + 3 add stages");
    }

    #[test]
    fn merge_sort_sorts_and_counts() {
        let keys = [9u32, 3, 7, 1, 8, 2, 6, 4, 5, 0];
        let result = merge_sort(&keys, 1);
        let mut want = keys.to_vec();
        want.sort_unstable();
        assert_eq!(result.output, want);
        // Comparisons never exceed the n log n bound the model charges.
        assert!(result.cycles <= merge_sort_formula(keys.len(), 1));
    }

    #[test]
    fn comparator_lanes_divide_sort_cycles() {
        let keys: Vec<u32> = (0..256).rev().collect();
        let one = merge_sort(&keys, 1).cycles;
        let four = merge_sort(&keys, 4).cycles;
        let ratio = one as f64 / four as f64;
        assert!((3.5..=4.5).contains(&ratio), "4 lanes ~4x: {ratio}");
    }

    proptest! {
        /// The systolic engine agrees with a reference matmul on random
        /// shapes — the ground truth behind the GEMM dataflow model.
        #[test]
        fn prop_systolic_functional(
            rows in 1usize..6, cols in 1usize..6, batch in 1usize..8, seed in 0u64..100,
        ) {
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 17) as f32 / 8.0 - 1.0
            };
            let weights = FlatMat::from_fn(rows, cols, |_, _| next());
            let inputs = FlatMat::from_fn(batch, rows, |_, _| next());
            let result = systolic_gemm(&weights, &inputs);
            let expected = reference_matmul(&weights, &inputs);
            for (g, w) in result.output.as_slice().iter().zip(expected.as_slice()) {
                prop_assert!((g - w).abs() < 1e-3);
            }
            prop_assert_eq!(result.cycles, systolic_gemm_formula(rows, cols, batch));
        }

        /// Merge sort always sorts and respects the formula bound.
        #[test]
        fn prop_merge_sort_correct(mut keys in proptest::collection::vec(0u32..1000, 1..200)) {
            let result = merge_sort(&keys, 4);
            keys.sort_unstable();
            prop_assert_eq!(result.output, keys.clone());
            prop_assert!(result.cycles <= merge_sort_formula(keys.len(), 4).max(1));
        }
    }
}
