//! Sorting dataflow (Fig. 13): patch-parallel merge sort in Mode 2 with
//! both networks gated.
//!
//! Each PE owns one image patch's unordered splat list; the ALU is
//! reconfigured into comparators and merge runs stream through the FF
//! scratchpad until the patch is sorted. PEs work independently — the
//! utilization term models patch-size imbalance.

use super::DataflowCosts;
use crate::config::AcceleratorConfig;
use uni_microops::{Invocation, Workload};

/// Patch-size imbalance utilization (some patches hold many splats while
/// neighbors are nearly empty).
pub const SORT_UTILIZATION: f64 = 0.6;

/// Maps a sorting invocation onto the array.
pub fn cost(inv: &Invocation, config: &AcceleratorConfig) -> DataflowCosts {
    let Workload::Sort {
        patches,
        keys_per_patch,
        entry_bytes,
    } = *inv.workload()
    else {
        panic!("sorting dataflow requires a Sort workload");
    };
    let keys = (patches as f64 * keys_per_patch).round().max(1.0) as u64;
    let passes = keys_per_patch.max(2.0).log2().ceil() as u64;
    let compares = keys * passes;

    // Comparator throughput: the 4 INT MACs act as comparators.
    let cmp_cycles = compares / config.peak_int_macs_per_cycle().max(1);
    // Scratchpad streaming: every pass reads and writes each entry through
    // single-port cells — 2 accesses × entry words per key per pass,
    // distributed over all PEs' cells.
    let words = u64::from(entry_bytes).div_ceil(2);
    let sram_cycles =
        keys * passes * 2 * words / (config.pe_count() * u64::from(config.ff_cells_per_pe)).max(1);
    // Patch spill: patches larger than one FF scratchpad merge via the
    // global buffer at network bandwidth.
    let patch_bytes = (keys_per_patch * f64::from(entry_bytes)) as u64;
    let spill = patch_bytes > config.ff_bytes_per_pe();
    let spill_cycles = if spill {
        keys * u64::from(entry_bytes) / u64::from(config.network_bytes_per_cycle).max(1)
    } else {
        0
    };

    let busy = cmp_cycles.max(sram_cycles) + spill_cycles;
    let compute = ((busy as f64 / SORT_UTILIZATION) as u64).max(1);
    let stream = keys * u64::from(entry_bytes);

    DataflowCosts {
        compute_cycles: compute,
        dram_read_bytes: stream,
        dram_write_bytes: stream,
        network_bytes: stream * 2,
        utilization: SORT_UTILIZATION,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::paper()
    }

    fn sort(patches: u64, keys_per_patch: f64) -> Invocation {
        Invocation::new(
            "sort",
            Workload::Sort {
                patches,
                keys_per_patch,
                entry_bytes: 8,
            },
        )
    }

    #[test]
    fn cost_grows_n_log_n() {
        let a = cost(&sort(1000, 64.0), &cfg()).compute_cycles;
        let b = cost(&sort(1000, 256.0), &cfg()).compute_cycles;
        // 4x keys, log factor 8/6: expect ~5.3x.
        let ratio = b as f64 / a as f64;
        assert!((4.0..=8.0).contains(&ratio), "n log n growth: {ratio}");
    }

    #[test]
    fn oversized_patches_spill_through_global_buffer() {
        // 4 KB FF pad holds 512 8-byte entries.
        let fits = cost(&sort(1000, 400.0), &cfg()).compute_cycles;
        let spills = cost(&sort(1000, 800.0), &cfg()).compute_cycles;
        assert!(
            spills as f64 > fits as f64 * 2.2,
            "spill adds traffic: {spills} vs {fits}"
        );
    }

    #[test]
    fn patch_parallelism_uses_all_pes() {
        let one = cost(&sort(256, 128.0), &cfg()).compute_cycles;
        let four = cost(&sort(1024, 128.0), &cfg()).compute_cycles;
        let ratio = four as f64 / one as f64;
        assert!((3.0..=5.0).contains(&ratio), "4x patches -> ~4x: {ratio}");
    }

    #[test]
    fn streams_keys_both_ways() {
        let c = cost(&sort(100, 100.0), &cfg());
        assert_eq!(c.dram_read_bytes, c.dram_write_bytes);
        assert_eq!(c.dram_read_bytes, 100 * 100 * 8);
    }
}
