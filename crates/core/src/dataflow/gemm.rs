//! GEMM dataflow (Fig. 14): weight-stationary Mode-1 systolic execution.
//!
//! Neural-graphics MLPs are small (≪ 1 M parameters) but run at very large
//! batches, so weights stay resident in the FF scratchpads while
//! activations stream through the systolic input network. Small layers are
//! replicated across PE regions ("Each PE: One GEMM or One Layer of MLP",
//! Fig. 14) so utilization is governed by batch occupancy rather than
//! matrix size. Routing activations through the input buffer before the
//! ALUs costs an extra pipeline stage versus a vanilla systolic array —
//! the `gemm_buffer_penalty` of Sec. VII-E.

use super::DataflowCosts;
use crate::config::AcceleratorConfig;
use uni_microops::{Invocation, Workload};

/// Maps a GEMM invocation onto the array.
pub fn cost(inv: &Invocation, config: &AcceleratorConfig) -> DataflowCosts {
    let Workload::Gemm {
        batch,
        in_dim,
        out_dim,
        weight_bytes,
    } = *inv.workload()
    else {
        panic!("gemm dataflow requires a Gemm workload");
    };
    let cost = inv.cost();
    let macs = cost.fp_macs.max(1);
    let peak = config.peak_bf16_macs_per_cycle().max(1);

    // Batch occupancy: with per-PE layer replication the array is fully
    // busy once the in-flight batch covers all PEs.
    let occupancy = (batch as f64 / config.pe_count() as f64).clamp(0.05, 1.0);
    // Work-shape efficiency: extremely skinny layers (in*out < MACs/PE)
    // cannot fill a PE's MAC row every cycle.
    let shape_eff =
        (f64::from(in_dim) * f64::from(out_dim) / f64::from(config.bf16_macs_per_pe)).min(1.0);
    let utilization = (occupancy * shape_eff.max(0.25)).clamp(0.05, 1.0);

    let mut compute =
        (macs as f64 / (peak as f64 * utilization) * config.gemm_buffer_penalty) as u64;
    // Systolic fill/drain per weight tile.
    let fills = u64::from(config.pe_rows + config.pe_cols);
    // Weight tiling: if the weights exceed the array's FF capacity they are
    // reloaded per tile through the global buffer.
    let ff_capacity = config.local_memory_bytes() * 4 / 5; // FF share of local memory.
    let weight_passes = weight_bytes.div_ceil(ff_capacity.max(1)).max(1);
    let global_bw = u64::from(config.network_bytes_per_cycle) * 4; // Banked buffer.
    let reload = if weight_passes > 1 {
        weight_bytes / global_bw.max(1)
    } else {
        weight_bytes.min(ff_capacity) / global_bw.max(1)
    };
    compute += fills * weight_passes + reload;

    // SFU work (activations / encodings) shares the timeline.
    let sfu_cycles = cost.sfu_ops / config.peak_sfu_ops_per_cycle().max(1);
    compute = compute.max(sfu_cycles).max(1);

    // Activations spill to DRAM only when the streaming working set cannot
    // be double-buffered on chip (producer/consumer fusion keeps chained
    // layers on chip — the scheduler removes inter-layer traffic).
    let act_in = batch * u64::from(in_dim) * 2;
    let act_out = batch * u64::from(out_dim) * 2;
    let buffered = config.global_buffer_bytes / 4;
    let dram_read = weight_bytes + if act_in > buffered { act_in } else { 0 };
    let dram_write = if act_out > buffered { act_out } else { 0 };

    DataflowCosts {
        compute_cycles: compute,
        dram_read_bytes: dram_read,
        dram_write_bytes: dram_write,
        network_bytes: act_in + act_out + weight_bytes * weight_passes,
        utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::paper()
    }

    fn gemm(batch: u64, in_dim: u32, out_dim: u32, weight_bytes: u64) -> Invocation {
        Invocation::new(
            "g",
            Workload::Gemm {
                batch,
                in_dim,
                out_dim,
                weight_bytes,
            },
        )
    }

    #[test]
    fn large_batch_reaches_high_utilization() {
        let c = cost(&gemm(1 << 20, 64, 64, 64 * 64 * 2), &cfg());
        assert!(c.utilization > 0.9, "utilization {}", c.utilization);
        // Near-peak: ~macs/1024 cycles with the buffer penalty.
        let macs = (1u64 << 20) * 64 * 64;
        let ideal = macs / 1024;
        assert!(c.compute_cycles >= ideal, "penalty applies");
        assert!(c.compute_cycles < ideal * 2, "within 2x of peak");
    }

    #[test]
    fn tiny_batch_underutilizes() {
        let small = cost(&gemm(16, 64, 64, 64 * 64 * 2), &cfg());
        let large = cost(&gemm(1 << 16, 64, 64, 64 * 64 * 2), &cfg());
        assert!(small.utilization < large.utilization);
    }

    #[test]
    fn buffer_penalty_slows_throughput() {
        let mut fast_cfg = cfg();
        fast_cfg.gemm_buffer_penalty = 1.0;
        let with_penalty = cost(&gemm(1 << 20, 64, 64, 8192), &cfg());
        let without = cost(&gemm(1 << 20, 64, 64, 8192), &fast_cfg);
        assert!(with_penalty.compute_cycles > without.compute_cycles);
    }

    #[test]
    fn compute_scales_linearly_with_batch() {
        let a = cost(&gemm(1 << 16, 32, 32, 2048), &cfg()).compute_cycles;
        let b = cost(&gemm(1 << 18, 32, 32, 2048), &cfg()).compute_cycles;
        let ratio = b as f64 / a as f64;
        assert!(
            (3.5..=4.5).contains(&ratio),
            "4x batch -> ~4x cycles: {ratio}"
        );
    }

    #[test]
    fn small_streaming_batches_stay_on_chip() {
        let c = cost(&gemm(1000, 8, 8, 128), &cfg());
        assert_eq!(c.dram_read_bytes, 128, "only weights");
        assert_eq!(c.dram_write_bytes, 0);
    }

    #[test]
    fn huge_activations_spill() {
        let c = cost(&gemm(10_000_000, 32, 4, 256), &cfg());
        assert!(c.dram_read_bytes > 256);
        assert!(c.dram_write_bytes > 0);
    }

    #[test]
    fn oversized_weights_add_reload_passes() {
        let small = cost(&gemm(1 << 20, 64, 64, 1 << 10), &cfg()).compute_cycles;
        let huge = cost(&gemm(1 << 20, 64, 64, 8 << 20), &cfg()).compute_cycles;
        assert!(
            huge > small,
            "weight reloads cost cycles: {huge} vs {small}"
        );
    }
}
