//! Per-micro-operator dataflow timing models (Sec. VI, Figs. 10-14).
//!
//! Each dataflow maps one [`Invocation`] onto the configured PE array and
//! returns [`DataflowCosts`]: compute cycles on the array (with the
//! mapping's achievable utilization), effective DRAM traffic after on-chip
//! capacity effects, and network traffic for the energy model. The frame
//! scheduler overlaps compute with double-buffered DRAM transfers and adds
//! reconfiguration overhead between micro-operator families.

pub mod gemm;
pub mod geometric;
pub mod grid;
pub mod sorting;

use crate::config::AcceleratorConfig;
use serde::{Deserialize, Serialize};
use uni_microops::{Invocation, Workload};

/// The mapped cost of one invocation on the array.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DataflowCosts {
    /// Cycles the PE array is busy computing (network-limited streaming
    /// included).
    pub compute_cycles: u64,
    /// Effective DRAM read bytes (after capacity-driven refetch).
    pub dram_read_bytes: u64,
    /// Effective DRAM write bytes.
    pub dram_write_bytes: u64,
    /// Bytes moved across the input/reduction networks (energy accounting).
    pub network_bytes: u64,
    /// Achieved compute-lane utilization in `(0, 1]`.
    pub utilization: f64,
}

impl DataflowCosts {
    /// Cycles needed to move this invocation's DRAM traffic at full
    /// bandwidth.
    pub fn dram_cycles(&self, config: &AcceleratorConfig) -> u64 {
        let bytes = self.dram_read_bytes + self.dram_write_bytes;
        (bytes as f64 / config.dram_bytes_per_cycle()).ceil() as u64
    }
}

/// Maps an invocation to its dataflow and returns the array cost.
pub fn map_invocation(inv: &Invocation, config: &AcceleratorConfig) -> DataflowCosts {
    match inv.workload() {
        Workload::Geometric { .. } => geometric::cost(inv, config),
        Workload::GridIndex { .. } => grid::cost(inv, config),
        Workload::Sort { .. } => sorting::cost(inv, config),
        Workload::Gemm { .. } => gemm::cost(inv, config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uni_microops::{Dims, IndexFunction, PrimitiveKind};

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::paper()
    }

    #[test]
    fn dispatch_reaches_every_dataflow() {
        let invs = [
            Invocation::new(
                "g",
                Workload::Geometric {
                    kind: PrimitiveKind::Triangle,
                    primitives: 1000,
                    candidate_pairs: 10_000,
                    hits: 1_000,
                    prim_bytes: 64,
                    output_pixels: 10_000,
                },
            ),
            Invocation::new(
                "h",
                Workload::GridIndex {
                    points: 10_000,
                    levels: 16,
                    corners: 8,
                    feature_dim: 4,
                    table_bytes: 1 << 20,
                    function: IndexFunction::RandomHash,
                    dims: Dims::D3,
                    decomposed: false,
                },
            ),
            Invocation::new(
                "s",
                Workload::Sort {
                    patches: 100,
                    keys_per_patch: 128.0,
                    entry_bytes: 8,
                },
            ),
            Invocation::new(
                "m",
                Workload::Gemm {
                    batch: 10_000,
                    in_dim: 32,
                    out_dim: 32,
                    weight_bytes: 2048,
                },
            ),
        ];
        for inv in &invs {
            let c = map_invocation(inv, &cfg());
            assert!(c.compute_cycles > 0, "{}", inv.stage());
            assert!(c.utilization > 0.0 && c.utilization <= 1.0);
        }
    }

    #[test]
    fn dram_cycles_follow_bandwidth() {
        let costs = DataflowCosts {
            compute_cycles: 0,
            dram_read_bytes: 59_700,
            dram_write_bytes: 0,
            network_bytes: 0,
            utilization: 1.0,
        };
        // 59 700 bytes at 59.7 B/cycle = 1000 cycles.
        assert_eq!(costs.dram_cycles(&cfg()), 1000);
    }
}
