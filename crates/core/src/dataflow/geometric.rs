//! Geometric Processing dataflow (Fig. 10): rasterization and splatting in
//! Mode 2 with networks gated.
//!
//! Each PE owns a pixel region; geometry records stream through the input
//! bus and are pre-loaded into the PEs whose regions intersect the
//! primitive's bounding box. The ALU in vector mode evaluates the edge
//! functions / conic tests; the PS scratchpad holds the Z-buffer with the
//! min-depth-hold reduction.

use super::DataflowCosts;
use crate::config::AcceleratorConfig;
use uni_microops::{Invocation, PrimitiveKind, Workload};

/// Load-imbalance utilization across pixel regions: primitives cluster on
/// few regions while others idle (measured rasterizer distributions sit
/// near 0.45 for triangles and 0.5 for the larger splat footprints).
pub const TRIANGLE_UTILIZATION: f64 = 0.45;
/// Splat utilization (footprints cover several regions, smoothing load).
pub const SPLAT_UTILIZATION: f64 = 0.5;

/// Maps a geometric-processing invocation onto the array.
pub fn cost(inv: &Invocation, config: &AcceleratorConfig) -> DataflowCosts {
    let Workload::Geometric {
        kind,
        primitives,
        candidate_pairs,
        hits,
        prim_bytes,
        output_pixels,
    } = *inv.workload()
    else {
        panic!("geometric dataflow requires a Geometric workload");
    };
    let (pair_int, pair_fp, pair_sfu, setup_int, setup_fp, util, duplication) = match kind {
        // Triangles span ~1.3 pixel-region bins on average; splats are
        // larger and land in ~1.6 bins (measured from the reference
        // rasterizers' bin statistics).
        PrimitiveKind::Triangle => (6u64, 3u64, 0u64, 9u64, 0u64, TRIANGLE_UTILIZATION, 1.3),
        PrimitiveKind::GaussianSplat => (0, 8, 1, 0, 30, SPLAT_UTILIZATION, 1.6),
    };

    let int_ops = candidate_pairs * pair_int + primitives * setup_int + hits;
    let fp_ops = candidate_pairs * pair_fp + primitives * setup_fp;
    let sfu_ops = candidate_pairs * pair_sfu;
    let int_cycles = int_ops / config.peak_int_macs_per_cycle().max(1);
    let fp_cycles = fp_ops / config.peak_bf16_macs_per_cycle().max(1);
    let sfu_cycles = sfu_ops / config.peak_sfu_ops_per_cycle().max(1);
    let test_cycles = ((int_cycles + fp_cycles).max(sfu_cycles) as f64 / util) as u64;

    // Geometry streaming over the input bus: records are binned per pixel
    // region, so each record streams once plus the bin-boundary
    // duplication factor — Z-buffer region passes replay only their own
    // bins, not the whole stream.
    let stream_bytes = (primitives as f64 * f64::from(prim_bytes) * duplication) as u64;
    let stream_cycles = stream_bytes / u64::from(config.network_bytes_per_cycle).max(1);

    let compute = test_cycles.max(stream_cycles).max(1);
    // Triangle records stream from DRAM once (bins hold ids); splat
    // records are re-fetched per covered tile — 3DGS's dominant traffic,
    // and precisely what GSCore's architecture attacks (Sec. VIII-A).
    let dram_dup = match kind {
        PrimitiveKind::Triangle => 1.0,
        PrimitiveKind::GaussianSplat => 2.75,
    };
    let prim_traffic = (primitives as f64 * f64::from(prim_bytes) * dram_dup) as u64;

    DataflowCosts {
        compute_cycles: compute,
        dram_read_bytes: prim_traffic,
        dram_write_bytes: output_pixels * 8,
        network_bytes: stream_bytes + output_pixels * 8,
        utilization: util,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::paper()
    }

    fn raster(primitives: u64, pairs: u64, pixels: u64) -> Invocation {
        Invocation::new(
            "raster",
            Workload::Geometric {
                kind: PrimitiveKind::Triangle,
                primitives,
                candidate_pairs: pairs,
                hits: pairs / 3,
                prim_bytes: 64,
                output_pixels: pixels,
            },
        )
    }

    fn splat(primitives: u64, pairs: u64, pixels: u64) -> Invocation {
        Invocation::new(
            "splat",
            Workload::Geometric {
                kind: PrimitiveKind::GaussianSplat,
                primitives,
                candidate_pairs: pairs,
                hits: pairs / 3,
                prim_bytes: 240,
                output_pixels: pixels,
            },
        )
    }

    #[test]
    fn pair_tests_dominate_large_rasterization() {
        // Few output pixels: a single Z-buffer pass, so pair testing is
        // the bottleneck.
        let few = cost(&raster(10_000, 1 << 20, 30_000), &cfg()).compute_cycles;
        let many = cost(&raster(10_000, 1 << 24, 30_000), &cfg()).compute_cycles;
        assert!(many > few * 8, "16x pairs dominate: {many} vs {few}");
    }

    #[test]
    fn splats_burn_sfu_and_fp_instead_of_int() {
        let t = cost(&raster(100_000, 1 << 22, 1 << 20), &cfg());
        let s = cost(&splat(100_000, 1 << 22, 1 << 20), &cfg());
        // Both complete; the splat path is the more expensive per pair
        // (8 FP + exp vs 6 INT + 3 FP overlapped).
        assert!(s.compute_cycles > 0 && t.compute_cycles > 0);
    }

    #[test]
    fn primitive_streaming_floors_small_workloads() {
        // Many primitives but almost no coverage: stream-bound.
        let c = cost(&raster(1 << 20, 1 << 10, 1 << 10), &cfg());
        let stream = ((1u64 << 20) as f64 * 64.0 * 1.3) as u64 / 64;
        assert!(c.compute_cycles >= stream, "stream bound");
    }

    #[test]
    fn dram_reads_each_record_once() {
        let c = cost(&raster(1 << 18, 1 << 18, 2_000_000), &cfg());
        assert_eq!(c.dram_read_bytes, (1u64 << 18) * 64);
        // Bin duplication shows up on the on-chip network, not DRAM.
        assert!(c.network_bytes > c.dram_read_bytes);
    }

    #[test]
    fn utilization_reflects_imbalance() {
        let c = cost(&raster(1000, 1 << 20, 1 << 20), &cfg());
        assert!((c.utilization - TRIANGLE_UTILIZATION).abs() < 1e-9);
    }

    #[test]
    fn output_writeback_counts_as_dram_writes() {
        let c = cost(&raster(1000, 1 << 16, 1 << 20), &cfg());
        assert_eq!(c.dram_write_bytes, (1u64 << 20) * 8);
    }
}
