//! Grid-indexing dataflows (Figs. 11-12): Combined and Decomposed Grid
//! Indexing in Mode 2.
//!
//! Each PE line serves one grid level (Combined) or one feature plane
//! (Decomposed); PEs within a line hold the interpolation candidates. The
//! reduction network computes the weighted adder tree within a line, and —
//! for decomposed grids — aggregates across lines with the fully-activated
//! network.
//!
//! The memory model is the load-bearing part for the Tab. V scaling study:
//! the touched table bytes are re-fetched from DRAM in proportion to how
//! far the working set exceeds on-chip SRAM (`refetch =
//! max(1, working_set / (sram × locality))`). This linear capacity model
//! is exactly what makes balanced 1:1 PE:SRAM scaling optimal in Tab. V.

use super::DataflowCosts;
use crate::config::AcceleratorConfig;
use uni_microops::{Dims, IndexFunction, Invocation, Workload};

/// Locality factor for randomly-hashed tables: neighboring samples share
/// cells but their corner slots scatter across the table, so reuse before
/// eviction is low. Fitted so the hash-grid pipeline sits just below the
/// compute roof at the paper design point — the operating condition
/// Tab. V's scaling matrix implies.
pub const HASH_LOCALITY: f64 = 1.1;

/// Locality factor for linearly-indexed dense grids/planes: ray-coherent
/// accesses walk contiguous rows, so tiles are reused many times before
/// eviction.
pub const LINEAR_LOCALITY: f64 = 8.0;

/// DRAM burst/line granularity in bytes.
pub const DRAM_LINE_BYTES: u64 = 64;

/// Maps a grid-indexing invocation onto the array.
pub fn cost(inv: &Invocation, config: &AcceleratorConfig) -> DataflowCosts {
    let Workload::GridIndex {
        points,
        levels,
        corners,
        feature_dim,
        table_bytes,
        function,
        dims,
        decomposed,
    } = *inv.workload()
    else {
        panic!("grid dataflow requires a GridIndex workload");
    };
    let d = match dims {
        Dims::D1 => 1u64,
        Dims::D2 => 2,
        Dims::D3 => 3,
    };
    let pl = points.max(1) * u64::from(levels.max(1));

    // Per-(point, level) arithmetic.
    let int_ops = pl * u64::from(corners) * d;
    let fp_ops = pl * u64::from(corners) * (1 + u64::from(feature_dim))
        + if decomposed {
            pl * u64::from(feature_dim)
        } else {
            0
        };

    // Line mapping utilization: levels map to PE lines; fewer levels than
    // lines leaves lines idle unless points batch across them (they do,
    // at a modest efficiency loss for the cross-line switch).
    let lines = u64::from(config.pe_rows);
    let line_occ = if u64::from(levels) >= lines {
        1.0
    } else {
        0.6 + 0.4 * (f64::from(levels) / lines as f64)
    };
    // Scratchpad port limits: each corner fetch reads `feature_dim` 16-bit
    // words from single-port cells (4 cells per PE read in parallel).
    let fetch_cycles = pl
        * u64::from(corners)
        * u64::from(feature_dim).div_ceil(u64::from(config.ff_cells_per_pe))
        / config.pe_count();

    let int_cycles = int_ops / config.peak_int_macs_per_cycle().max(1);
    let fp_cycles = fp_ops / config.peak_bf16_macs_per_cycle().max(1);
    // Input network streams 12-byte coordinates per point.
    let stream_cycles = points * 12 / u64::from(config.network_bytes_per_cycle).max(1);
    let utilization = line_occ.clamp(0.05, 1.0);
    let compute = ((int_cycles.max(fp_cycles).max(fetch_cycles) as f64 / utilization) as u64)
        .max(stream_cycles)
        .max(1);

    // Capacity-driven DRAM refetch of the touched table bytes. Gathers are
    // DRAM-line granular: each corner fetch drags a whole line (64 B) even
    // though it consumes only `feature_dim × 2` bytes, so sparse touches
    // inflate toward line traffic, capped by the table itself.
    //
    // Refetch growth differs by index function: random hashes have no
    // reuse structure, so refetch grows *linearly* once the working set
    // exceeds SRAM (this linear term is what makes balanced PE:SRAM
    // scaling optimal in Tab. V); coherent linear walks have row-sized
    // reuse distances, so their refetch grows with the square root.
    let touched = table_bytes.min(pl * u64::from(corners) * DRAM_LINE_BYTES);
    let sram = config.total_sram_bytes().max(1);
    let refetch = match function {
        IndexFunction::RandomHash => (touched as f64 / (sram as f64 * HASH_LOCALITY)).max(1.0),
        IndexFunction::LinearIndexing | IndexFunction::AutomaticCounter => (touched as f64
            / (sram as f64 * LINEAR_LOCALITY))
            .sqrt()
            .max(1.0),
    };
    let dram_read = (touched as f64 * refetch) as u64 + points * 12;

    DataflowCosts {
        compute_cycles: compute,
        dram_read_bytes: dram_read,
        dram_write_bytes: 0,
        network_bytes: points * 12 + pl * u64::from(feature_dim) * 2,
        utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uni_microops::IndexFunction;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::paper()
    }

    fn hash_inv(points: u64, table_bytes: u64) -> Invocation {
        Invocation::new(
            "hash",
            Workload::GridIndex {
                points,
                levels: 16,
                corners: 8,
                feature_dim: 4,
                table_bytes,
                function: IndexFunction::RandomHash,
                dims: Dims::D3,
                decomposed: false,
            },
        )
    }

    #[test]
    fn full_level_mapping_is_fully_utilized() {
        let c = cost(&hash_inv(1 << 20, 1 << 20), &cfg());
        assert!((c.utilization - 1.0).abs() < 1e-9, "16 levels on 16 lines");
    }

    #[test]
    fn few_levels_lose_some_utilization() {
        let inv = Invocation::new(
            "planes",
            Workload::GridIndex {
                points: 1 << 20,
                levels: 3,
                corners: 4,
                feature_dim: 8,
                table_bytes: 1 << 24,
                function: IndexFunction::LinearIndexing,
                dims: Dims::D2,
                decomposed: true,
            },
        );
        let c = cost(&inv, &cfg());
        assert!(c.utilization < 1.0 && c.utilization > 0.5);
    }

    /// The linear capacity model behind Tab. V: doubling SRAM halves the
    /// refetch traffic for working sets larger than SRAM.
    #[test]
    fn dram_refetch_scales_inversely_with_sram() {
        let table = 64u64 << 20; // 64 MB, far exceeding on-chip SRAM.
        let points = 4u64 << 20;
        let base = cost(&hash_inv(points, table), &cfg());
        let big_sram = cfg().scaled(1, 4);
        let scaled = cost(&hash_inv(points, table), &big_sram);
        let coord_bytes = points * 12;
        let base_refetch = base.dram_read_bytes - coord_bytes;
        let scaled_refetch = scaled.dram_read_bytes - coord_bytes;
        let ratio = base_refetch as f64 / scaled_refetch as f64;
        assert!(
            (3.5..=4.5).contains(&ratio),
            "4x SRAM -> ~4x less traffic: {ratio}"
        );
    }

    #[test]
    fn small_tables_fit_without_refetch() {
        let c = cost(&hash_inv(1 << 16, 256 << 10), &cfg());
        // Touched <= table (256 KB) < 1.5 MB SRAM: refetch = 1.
        let coord = (1u64 << 16) * 12;
        assert!(c.dram_read_bytes <= (256 << 10) + coord);
    }

    #[test]
    fn compute_scales_with_points_and_pes() {
        let a = cost(&hash_inv(1 << 18, 1 << 20), &cfg()).compute_cycles;
        let b = cost(&hash_inv(1 << 20, 1 << 20), &cfg()).compute_cycles;
        assert!(b > a * 3, "4x points -> ~4x cycles");
        let big = cfg().scaled(4, 4);
        let c = cost(&hash_inv(1 << 20, 1 << 20), &big).compute_cycles;
        assert!(
            (b as f64 / c as f64) > 3.0,
            "4x PEs -> ~4x faster: {b} vs {c}"
        );
    }

    #[test]
    fn decomposed_aggregation_adds_cycles() {
        let make = |decomposed| {
            Invocation::new(
                "p",
                Workload::GridIndex {
                    points: 1 << 22,
                    levels: 16,
                    corners: 8,
                    feature_dim: 8,
                    table_bytes: 1 << 20,
                    function: IndexFunction::LinearIndexing,
                    dims: Dims::D3,
                    decomposed,
                },
            )
        };
        let plain = cost(&make(false), &cfg()).compute_cycles;
        let agg = cost(&make(true), &cfg()).compute_cycles;
        assert!(agg >= plain);
    }
}
