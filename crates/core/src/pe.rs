//! Reconfigurable PE module states — a direct transcription of Tab. III.
//!
//! Each PE contains four configurable modules (Sec. V-C): the PE
//! controller, the Filter/Feature scratchpad, the ALU (4 INT16 MACs +
//! 4 BF16 MACs + 4 SFUs in reconfigurable layouts), and the Partial-Sum
//! scratchpad. The per-micro-operator status of every module — plus the
//! input/reduction data network states of Sec. V-B — is what
//! [`ModuleStatus::for_op`] returns, and what the energy model's
//! clock/power gating consults for idle modules.

use serde::{Deserialize, Serialize};
use std::fmt;
use uni_microops::MicroOp;

/// PE controller mode (Tab. III, "PE Controller" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControllerMode {
    /// Rasterization control (auto-counter over primitives, Z-buffer FSM).
    RasterizationControl,
    /// Grid indexing control (address generation from the ALU).
    GridControl,
    /// Merge-sort control.
    SortingControl,
    /// Weight-stationary GEMM control.
    GemmControl,
}

/// Contents of the FF scratchpad (Tab. III, "FF Scratch Pad" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FfContents {
    /// Geometry records (vertex coordinates, primitive ids).
    GeometryRepresentation,
    /// Grid feature slices.
    GridFeatures,
    /// Sort keys and intermediate merge runs.
    SortingElements,
    /// Resident model weights.
    ModelWeights,
}

/// ALU layout (Tab. III, "ALU" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluLayout {
    /// Vector mode: cross products / barycentric tests.
    VectorMode,
    /// Index-function mode: address computation for grid fetches.
    IndexFunction,
    /// Comparator mode for merge sort.
    Comparator,
    /// Adder-tree mode for GEMM accumulation.
    AdderTreeMode,
}

/// PS scratchpad role (Tab. III, "PS Scratch Pad" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PsMode {
    /// Z-buffer (min-depth hold per pixel).
    ZBuffer,
    /// Output feature accumulators.
    OutputFeatures,
    /// Clock-gated off.
    Off,
}

/// Input / reduction data-network state (Sec. V-B and Tab. III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetState {
    /// Paths and routers clock-gated.
    Off,
    /// Active (input paths; systolic or pipeline per [`NetworkMode`]).
    On,
    /// Reduction network active along PE rows only (weighted adder tree
    /// within each line, Fig. 11).
    Horizontal,
    /// Reduction network fully active: horizontal interpolation then
    /// vertical cross-line aggregation (Fig. 12).
    Full,
}

/// The two array-level operating modes of Sec. V-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkMode {
    /// Mode 1: systolic-array-like data passing (GEMM).
    Systolic,
    /// Mode 2: pipelined reduction networks (all reduction-task ops).
    Pipeline,
}

/// The complete module configuration for one micro-operator — one row of
/// Tab. III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModuleStatus {
    /// Input data paths & routers.
    pub input_network: NetState,
    /// Reduction data paths & routers.
    pub reduction_network: NetState,
    /// Array operating mode.
    pub mode: NetworkMode,
    /// PE controller mode.
    pub controller: ControllerMode,
    /// FF scratchpad contents.
    pub ff: FfContents,
    /// ALU layout.
    pub alu: AluLayout,
    /// PS scratchpad role.
    pub ps: PsMode,
}

impl ModuleStatus {
    /// The Tab. III row for a micro-operator.
    pub fn for_op(op: MicroOp) -> Self {
        match op {
            MicroOp::GeometricProcessing => Self {
                input_network: NetState::Off,
                reduction_network: NetState::Off,
                mode: NetworkMode::Pipeline,
                controller: ControllerMode::RasterizationControl,
                ff: FfContents::GeometryRepresentation,
                alu: AluLayout::VectorMode,
                ps: PsMode::ZBuffer,
            },
            MicroOp::CombinedGridIndexing => Self {
                input_network: NetState::On,
                reduction_network: NetState::Horizontal,
                mode: NetworkMode::Pipeline,
                controller: ControllerMode::GridControl,
                ff: FfContents::GridFeatures,
                alu: AluLayout::IndexFunction,
                ps: PsMode::Off,
            },
            MicroOp::DecomposedGridIndexing => Self {
                input_network: NetState::On,
                reduction_network: NetState::Full,
                mode: NetworkMode::Pipeline,
                controller: ControllerMode::GridControl,
                ff: FfContents::GridFeatures,
                alu: AluLayout::IndexFunction,
                ps: PsMode::Off,
            },
            MicroOp::Sorting => Self {
                input_network: NetState::Off,
                reduction_network: NetState::Off,
                mode: NetworkMode::Pipeline,
                controller: ControllerMode::SortingControl,
                ff: FfContents::SortingElements,
                alu: AluLayout::Comparator,
                ps: PsMode::Off,
            },
            MicroOp::Gemm => Self {
                input_network: NetState::On,
                reduction_network: NetState::Off,
                mode: NetworkMode::Systolic,
                controller: ControllerMode::GemmControl,
                ff: FfContents::ModelWeights,
                alu: AluLayout::AdderTreeMode,
                ps: PsMode::OutputFeatures,
            },
        }
    }

    /// Whether the PS scratchpad is active (not gated).
    pub fn ps_active(&self) -> bool {
        self.ps != PsMode::Off
    }

    /// Whether the reduction network is active in any form.
    pub fn reduction_active(&self) -> bool {
        self.reduction_network != NetState::Off
    }

    /// Number of gated (idle) module groups out of the four PE modules
    /// plus two networks — feeds the gating term of the energy model
    /// (Sec. VII-E, "Module Utilization").
    pub fn gated_module_count(&self) -> u32 {
        let mut gated = 0;
        if self.input_network == NetState::Off {
            gated += 1;
        }
        if self.reduction_network == NetState::Off {
            gated += 1;
        }
        if self.ps == PsMode::Off {
            gated += 1;
        }
        gated
    }
}

impl fmt::Display for ModuleStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "input {:?} / reduce {:?} / {:?} / ctrl {:?} / ff {:?} / alu {:?} / ps {:?}",
            self.input_network,
            self.reduction_network,
            self.mode,
            self.controller,
            self.ff,
            self.alu,
            self.ps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tab. III transcription, row by row.
    #[test]
    fn tab3_geometric_processing_row() {
        let s = ModuleStatus::for_op(MicroOp::GeometricProcessing);
        assert_eq!(s.input_network, NetState::Off);
        assert_eq!(s.reduction_network, NetState::Off);
        assert_eq!(s.controller, ControllerMode::RasterizationControl);
        assert_eq!(s.ff, FfContents::GeometryRepresentation);
        assert_eq!(s.alu, AluLayout::VectorMode);
        assert_eq!(s.ps, PsMode::ZBuffer);
    }

    #[test]
    fn tab3_combined_grid_indexing_row() {
        let s = ModuleStatus::for_op(MicroOp::CombinedGridIndexing);
        assert_eq!(s.input_network, NetState::On);
        assert_eq!(s.reduction_network, NetState::Horizontal);
        assert_eq!(s.controller, ControllerMode::GridControl);
        assert_eq!(s.alu, AluLayout::IndexFunction);
        assert_eq!(s.ps, PsMode::Off);
    }

    #[test]
    fn tab3_decomposed_grid_indexing_row() {
        let s = ModuleStatus::for_op(MicroOp::DecomposedGridIndexing);
        assert_eq!(s.reduction_network, NetState::Full);
        assert_eq!(s.ff, FfContents::GridFeatures);
        assert_eq!(s.ps, PsMode::Off);
    }

    #[test]
    fn tab3_sorting_row() {
        let s = ModuleStatus::for_op(MicroOp::Sorting);
        assert_eq!(s.input_network, NetState::Off);
        assert_eq!(s.reduction_network, NetState::Off);
        assert_eq!(s.controller, ControllerMode::SortingControl);
        assert_eq!(s.alu, AluLayout::Comparator);
        assert_eq!(s.ps, PsMode::Off);
    }

    #[test]
    fn tab3_gemm_row() {
        let s = ModuleStatus::for_op(MicroOp::Gemm);
        assert_eq!(s.input_network, NetState::On);
        assert_eq!(s.reduction_network, NetState::Off);
        assert_eq!(s.mode, NetworkMode::Systolic);
        assert_eq!(s.ff, FfContents::ModelWeights);
        assert_eq!(s.alu, AluLayout::AdderTreeMode);
        assert_eq!(s.ps, PsMode::OutputFeatures);
    }

    #[test]
    fn only_gemm_uses_systolic_mode() {
        for op in MicroOp::ALL {
            let s = ModuleStatus::for_op(op);
            assert_eq!(s.mode == NetworkMode::Systolic, op == MicroOp::Gemm, "{op}");
        }
    }

    #[test]
    fn gating_counts_are_consistent() {
        // GEMM gates the reduction network; Sorting gates everything
        // networked; grid indexing keeps networks busy.
        assert_eq!(ModuleStatus::for_op(MicroOp::Gemm).gated_module_count(), 1);
        assert_eq!(
            ModuleStatus::for_op(MicroOp::Sorting).gated_module_count(),
            3
        );
        assert_eq!(
            ModuleStatus::for_op(MicroOp::CombinedGridIndexing).gated_module_count(),
            1
        );
    }

    #[test]
    fn display_mentions_all_modules() {
        let s = ModuleStatus::for_op(MicroOp::Gemm).to_string();
        assert!(s.contains("ctrl") && s.contains("alu") && s.contains("ff"));
    }
}
