//! Accelerator configuration (Sec. V architecture parameters + the Tab. V
//! scaling knobs).

use serde::{Deserialize, Serialize};

/// Full configuration of a Uni-Render accelerator instance.
///
/// The [`AcceleratorConfig::paper`] constructor reproduces the evaluated
/// design point: a 16×16 PE array with a 2D mesh interconnect, 1.25 MB of
/// local (in-array) memory, a 256 KB global SRAM buffer, 1 GHz at 0.9 V in
/// 28 nm, and 59.7 GB/s of LPDDR4 DRAM bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// PE rows.
    pub pe_rows: u32,
    /// PE columns.
    pub pe_cols: u32,
    /// INT16 MACs per PE (index computations).
    pub int_macs_per_pe: u32,
    /// BF16 MACs per PE (feature computations).
    pub bf16_macs_per_pe: u32,
    /// Special function units per PE.
    pub sfus_per_pe: u32,
    /// Filter/Feature scratchpad per PE: number of SRAM cells.
    pub ff_cells_per_pe: u32,
    /// Words per FF SRAM cell (×16-bit).
    pub ff_words_per_cell: u32,
    /// Partial-sum scratchpad words per PE (×16-bit).
    pub ps_words_per_pe: u32,
    /// Global SRAM buffer bytes (input + 2×output + private).
    pub global_buffer_bytes: u64,
    /// Clock frequency in Hz.
    pub frequency_hz: f64,
    /// DRAM bandwidth in bytes/second.
    pub dram_bandwidth: f64,
    /// Input/output data network width in bytes per cycle (per edge).
    pub network_bytes_per_cycle: u32,
    /// Cycles to reconfigure between micro-operator families
    /// (drain + control reload, Sec. VII-E).
    pub reconfig_cycles: u64,
    /// Extra pipeline stage penalty on GEMM throughput from routing data
    /// through the input buffer before the ALUs (Sec. VII-E: "data must
    /// pass through a buffer before reaching ALUs").
    pub gemm_buffer_penalty: f64,
}

impl AcceleratorConfig {
    /// The design point evaluated in the paper.
    pub fn paper() -> Self {
        Self {
            pe_rows: 16,
            pe_cols: 16,
            int_macs_per_pe: 4,
            bf16_macs_per_pe: 4,
            sfus_per_pe: 4,
            ff_cells_per_pe: 4,
            ff_words_per_cell: 512,
            ps_words_per_pe: 512,
            global_buffer_bytes: 256 * 1024,
            frequency_hz: 1.0e9,
            dram_bandwidth: 59.7e9,
            // Banked global-buffer bus: 4 × 16 B lanes so on-chip
            // streaming keeps up with DRAM (59.7 B/cycle).
            network_bytes_per_cycle: 64,
            reconfig_cycles: 2_000,
            gemm_buffer_penalty: 1.15,
        }
    }

    /// Scales the PE array by `pe_scale` (total PE count) and the SRAM
    /// capacities by `sram_scale` — the two axes of Tab. V.
    ///
    /// PE scaling grows the array along columns first, then rows, keeping
    /// the 2D mesh. SRAM scaling grows both the per-PE scratchpads and the
    /// global buffer (the paper scales them together as "SRAM size").
    /// Scratchpad capacity is shared by the array, so per-PE scratchpad
    /// words shrink when PEs grow without SRAM.
    ///
    /// # Panics
    ///
    /// Panics unless both scales are powers of two in `1..=16`.
    pub fn scaled(&self, pe_scale: u32, sram_scale: u32) -> Self {
        for s in [pe_scale, sram_scale] {
            assert!(
                s.is_power_of_two() && (1..=16).contains(&s),
                "scale factors must be powers of two in 1..=16"
            );
        }
        let mut c = *self;
        // Grow columns then rows: 2× -> 16×32, 4× -> 32×32. The mesh edges
        // grow with the array, so edge bandwidth scales with the PE count.
        let mut pe = pe_scale;
        while pe > 1 {
            if c.pe_cols <= c.pe_rows {
                c.pe_cols *= 2;
            } else {
                c.pe_rows *= 2;
            }
            pe /= 2;
        }
        c.network_bytes_per_cycle = self.network_bytes_per_cycle * pe_scale;
        // Total SRAM scales by sram_scale; per-PE share adjusts for the new
        // PE count.
        let total_ff_words = u64::from(self.pe_rows)
            * u64::from(self.pe_cols)
            * u64::from(self.ff_cells_per_pe)
            * u64::from(self.ff_words_per_cell)
            * u64::from(sram_scale);
        let total_ps_words = u64::from(self.pe_rows)
            * u64::from(self.pe_cols)
            * u64::from(self.ps_words_per_pe)
            * u64::from(sram_scale);
        let new_pes = u64::from(c.pe_rows) * u64::from(c.pe_cols);
        c.ff_words_per_cell =
            ((total_ff_words / new_pes / u64::from(self.ff_cells_per_pe)).max(16)) as u32;
        c.ps_words_per_pe = ((total_ps_words / new_pes).max(16)) as u32;
        c.global_buffer_bytes = self.global_buffer_bytes * u64::from(sram_scale);
        c
    }

    /// Total number of PEs.
    pub fn pe_count(&self) -> u64 {
        u64::from(self.pe_rows) * u64::from(self.pe_cols)
    }

    /// FF scratchpad bytes per PE.
    pub fn ff_bytes_per_pe(&self) -> u64 {
        u64::from(self.ff_cells_per_pe) * u64::from(self.ff_words_per_cell) * 2
    }

    /// PS scratchpad bytes per PE.
    pub fn ps_bytes_per_pe(&self) -> u64 {
        u64::from(self.ps_words_per_pe) * 2
    }

    /// Total in-array local memory in bytes (the paper's "1.25 MB Local
    /// Memory" for the 16×16 array).
    pub fn local_memory_bytes(&self) -> u64 {
        self.pe_count() * (self.ff_bytes_per_pe() + self.ps_bytes_per_pe())
    }

    /// Total on-chip SRAM (local + global) in bytes.
    pub fn total_sram_bytes(&self) -> u64 {
        self.local_memory_bytes() + self.global_buffer_bytes
    }

    /// Peak INT16 MACs per cycle across the array.
    pub fn peak_int_macs_per_cycle(&self) -> u64 {
        self.pe_count() * u64::from(self.int_macs_per_pe)
    }

    /// Peak BF16 MACs per cycle across the array.
    pub fn peak_bf16_macs_per_cycle(&self) -> u64 {
        self.pe_count() * u64::from(self.bf16_macs_per_pe)
    }

    /// Peak SFU ops per cycle across the array.
    pub fn peak_sfu_ops_per_cycle(&self) -> u64 {
        self.pe_count() * u64::from(self.sfus_per_pe)
    }

    /// DRAM bytes transferable per cycle.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_bandwidth / self.frequency_hz
    }

    /// Converts cycles to seconds.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.frequency_hz
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_sec5() {
        let c = AcceleratorConfig::paper();
        assert_eq!(c.pe_count(), 256, "16x16 PE array");
        // FF scratchpad: 4 cells x 512 x 16 bit = 4 KB/PE; PS 1 KB/PE.
        assert_eq!(c.ff_bytes_per_pe(), 4096);
        assert_eq!(c.ps_bytes_per_pe(), 1024);
        // 256 PEs x 5 KB = 1.25 MB local memory (Fig. 9a).
        assert_eq!(c.local_memory_bytes(), 1_310_720);
        assert_eq!(c.global_buffer_bytes, 262_144, "256 KB global buffer");
        assert_eq!(c.frequency_hz, 1.0e9, "1 GHz");
        assert!((c.dram_bandwidth - 59.7e9).abs() < 1e6, "LPDDR4-1866");
    }

    #[test]
    fn peak_throughputs() {
        let c = AcceleratorConfig::paper();
        assert_eq!(c.peak_int_macs_per_cycle(), 1024);
        assert_eq!(c.peak_bf16_macs_per_cycle(), 1024);
        assert_eq!(c.peak_sfu_ops_per_cycle(), 1024);
        assert!((c.dram_bytes_per_cycle() - 59.7).abs() < 1e-9);
    }

    #[test]
    fn pe_scaling_grows_array_keeps_total_sram() {
        let base = AcceleratorConfig::paper();
        let scaled = base.scaled(2, 1);
        assert_eq!(scaled.pe_count(), 512);
        // Total SRAM unchanged: per-PE scratchpads halve.
        assert_eq!(scaled.local_memory_bytes(), base.local_memory_bytes());
        assert_eq!(scaled.global_buffer_bytes, base.global_buffer_bytes);
        // Compute doubles.
        assert_eq!(
            scaled.peak_bf16_macs_per_cycle(),
            2 * base.peak_bf16_macs_per_cycle()
        );
    }

    #[test]
    fn sram_scaling_grows_capacity_keeps_compute() {
        let base = AcceleratorConfig::paper();
        let scaled = base.scaled(1, 4);
        assert_eq!(scaled.pe_count(), base.pe_count());
        assert_eq!(scaled.local_memory_bytes(), 4 * base.local_memory_bytes());
        assert_eq!(scaled.global_buffer_bytes, 4 * base.global_buffer_bytes);
        assert_eq!(
            scaled.peak_bf16_macs_per_cycle(),
            base.peak_bf16_macs_per_cycle()
        );
    }

    #[test]
    fn joint_scaling_multiplies_both() {
        let base = AcceleratorConfig::paper();
        let scaled = base.scaled(4, 4);
        assert_eq!(scaled.pe_count(), 1024);
        assert_eq!(scaled.total_sram_bytes(), 4 * base.total_sram_bytes());
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn invalid_scale_panics() {
        AcceleratorConfig::paper().scaled(3, 1);
    }

    #[test]
    fn cycles_to_seconds_at_one_ghz() {
        let c = AcceleratorConfig::paper();
        assert!((c.cycles_to_seconds(1_000_000) - 1e-3).abs() < 1e-12);
    }
}
