//! The Uni-Render accelerator — the paper's primary contribution as a
//! cycle-level simulator.
//!
//! The architecture (Sec. V): a reconfigurable 16×16 PE array with a 2D
//! mesh interconnect, per-PE Filter/Feature and Partial-Sum scratchpads, a
//! 256 KB global SRAM buffer, and input/reduction data networks that
//! operate in a systolic mode (Mode 1, GEMM) or a pipelined reduction mode
//! (Mode 2, everything else). Each of the five common micro-operators maps
//! onto the array with its own dataflow (Sec. VI, Figs. 10-14).
//!
//! Simulation proceeds at tile granularity with closed-form per-dataflow
//! timing, validated against the cycle-exact micro-engines in
//! [`cyclesim`]; DRAM transfers are double-buffered against compute;
//! reconfiguration between micro-operator families costs explicit cycles
//! (Sec. VII-E); and a 28 nm energy/area model reproduces the paper's
//! 14.96 mm² / 5.78 W design point with the Fig. 15 breakdowns.
//!
//! # Example
//!
//! ```
//! use uni_core::{Accelerator, AcceleratorConfig};
//! use uni_microops::{Invocation, Pipeline, Trace, Workload};
//!
//! let mut trace = Trace::new(Pipeline::Mlp, 640, 480);
//! trace.push(Invocation::new(
//!     "mlp layer",
//!     Workload::Gemm { batch: 1 << 20, in_dim: 32, out_dim: 32, weight_bytes: 2048 },
//! ));
//! let accel = Accelerator::new(AcceleratorConfig::paper());
//! let report = accel.simulate(&trace);
//! assert!(report.fps() > 0.0);
//! assert!(report.area.total_mm2() > 14.0);
//! ```

pub mod config;
pub mod cyclesim;
pub mod dataflow;
pub mod energy;
pub mod pe;
pub mod report;
pub mod sched;

pub use config::AcceleratorConfig;
pub use energy::{area, AreaBreakdown, EnergyBreakdown, EnergyModel};
pub use pe::{AluLayout, ControllerMode, FfContents, ModuleStatus, NetState, NetworkMode, PsMode};
pub use report::SimReport;
pub use sched::{Accelerator, ReplayScratch};
