//! The typical neural rendering pipelines of Sec. II, plus the MixRT hybrid.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A neural rendering pipeline family.
///
/// These are the five typical pipelines of Tab. I plus the hybrid
/// (mesh + hash-grid) pipeline of Sec. VII-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Pipeline {
    /// Mesh-based rendering (rasterization), e.g. MobileNeRF.
    Mesh,
    /// MLP-based rendering (volume rendering), e.g. NeRF / KiloNeRF.
    Mlp,
    /// Low-rank-decomposed-grid-based rendering, e.g. TensoRF / MeRF.
    LowRankGrid,
    /// Hash-grid-based rendering, e.g. Instant-NGP.
    HashGrid,
    /// 3D-Gaussian-based rendering (splat rasterization), e.g. 3DGS.
    Gaussian3d,
    /// Hybrid mesh + hash-grid rendering, e.g. MixRT.
    HybridMixRt,
}

impl Pipeline {
    /// The five *typical* pipelines of Tab. I, in the paper's column order.
    pub const TYPICAL: [Pipeline; 5] = [
        Pipeline::Mesh,
        Pipeline::Mlp,
        Pipeline::LowRankGrid,
        Pipeline::HashGrid,
        Pipeline::Gaussian3d,
    ];

    /// All pipelines including the hybrid.
    pub const ALL: [Pipeline; 6] = [
        Pipeline::Mesh,
        Pipeline::Mlp,
        Pipeline::LowRankGrid,
        Pipeline::HashGrid,
        Pipeline::Gaussian3d,
        Pipeline::HybridMixRt,
    ];

    /// The representative implementation the paper benchmarks for this
    /// pipeline (Sec. III-A).
    pub fn representative_work(self) -> &'static str {
        match self {
            Pipeline::Mesh => "MobileNeRF",
            Pipeline::Mlp => "KiloNeRF",
            Pipeline::LowRankGrid => "MeRF",
            Pipeline::HashGrid => "Instant-NGP",
            Pipeline::Gaussian3d => "3DGS",
            Pipeline::HybridMixRt => "MixRT",
        }
    }

    /// The dominant scene representation (Tab. I, first column).
    pub fn dominant_representation(self) -> &'static str {
        match self {
            Pipeline::Mesh => "Mesh",
            Pipeline::Mlp => "MLP",
            Pipeline::LowRankGrid => "Low-Rank Decomposed Grid",
            Pipeline::HashGrid => "Hash Grid",
            Pipeline::Gaussian3d => "3D Gaussian",
            Pipeline::HybridMixRt => "Mesh + Hash Grid",
        }
    }

    /// The rendering technique (Tab. I, second column).
    pub fn rendering_technique(self) -> &'static str {
        match self {
            Pipeline::Mesh => "Rasterization",
            Pipeline::Mlp | Pipeline::LowRankGrid | Pipeline::HashGrid => "Volume Rendering",
            Pipeline::Gaussian3d => "Splat-Based Rasterization",
            Pipeline::HybridMixRt => "Rasterization + Volume Rendering",
        }
    }
}

impl fmt::Display for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Pipeline::Mesh => "Mesh",
            Pipeline::Mlp => "MLP",
            Pipeline::LowRankGrid => "Low-Rank-Decomposed-Grid",
            Pipeline::HashGrid => "Hash-Grid",
            Pipeline::Gaussian3d => "3D-Gaussian",
            Pipeline::HybridMixRt => "Hybrid (MixRT)",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_has_five_members_in_paper_order() {
        assert_eq!(Pipeline::TYPICAL.len(), 5);
        assert_eq!(Pipeline::TYPICAL[0], Pipeline::Mesh);
        assert_eq!(Pipeline::TYPICAL[4], Pipeline::Gaussian3d);
    }

    #[test]
    fn all_extends_typical_with_hybrid() {
        assert_eq!(Pipeline::ALL.len(), 6);
        assert_eq!(Pipeline::ALL[5], Pipeline::HybridMixRt);
        for (a, b) in Pipeline::TYPICAL.iter().zip(Pipeline::ALL.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn display_and_metadata_are_nonempty() {
        for p in Pipeline::ALL {
            assert!(!p.to_string().is_empty());
            assert!(!p.representative_work().is_empty());
            assert!(!p.dominant_representation().is_empty());
            assert!(!p.rendering_technique().is_empty());
        }
    }

    #[test]
    fn volume_rendering_pipelines_share_technique() {
        assert_eq!(
            Pipeline::Mlp.rendering_technique(),
            Pipeline::HashGrid.rendering_technique()
        );
        assert_eq!(
            Pipeline::Mlp.rendering_technique(),
            Pipeline::LowRankGrid.rendering_technique()
        );
    }
}
