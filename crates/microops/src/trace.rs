//! Frame traces: the ordered micro-operator sequence one rendered frame
//! executes, as emitted by a pipeline's decomposition (Fig. 8's "cluster →
//! map" arrows made concrete).

use crate::cost::CostVector;
use crate::invoke::Invocation;
use crate::op::MicroOp;
use crate::pipeline::Pipeline;
use crate::stats::TraceStats;
use serde::{Deserialize, Serialize};

/// The micro-operator trace of one rendered frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    pipeline: Pipeline,
    width: u32,
    height: u32,
    invocations: Vec<Invocation>,
}

impl Trace {
    /// Creates an empty trace for one frame of `width × height` pixels.
    pub fn new(pipeline: Pipeline, width: u32, height: u32) -> Self {
        Self {
            pipeline,
            width,
            height,
            invocations: Vec::new(),
        }
    }

    /// The pipeline that emitted this trace.
    pub fn pipeline(&self) -> Pipeline {
        self.pipeline
    }

    /// Frame width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Pixels per frame.
    pub fn pixel_count(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height)
    }

    /// Appends an invocation.
    pub fn push(&mut self, invocation: Invocation) {
        self.invocations.push(invocation);
    }

    /// The ordered invocations.
    pub fn invocations(&self) -> &[Invocation] {
        &self.invocations
    }

    /// Iterates over invocations.
    pub fn iter(&self) -> std::slice::Iter<'_, Invocation> {
        self.invocations.iter()
    }

    /// Number of invocations.
    pub fn len(&self) -> usize {
        self.invocations.len()
    }

    /// Whether the trace contains no invocations.
    pub fn is_empty(&self) -> bool {
        self.invocations.is_empty()
    }

    /// Sum of all invocation costs.
    pub fn total_cost(&self) -> CostVector {
        self.invocations.iter().map(Invocation::cost).sum()
    }

    /// Aggregated statistics (per-op totals, micro-op mix, …).
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_trace(self)
    }

    /// The distinct micro-operators used, in first-appearance order.
    pub fn micro_ops_used(&self) -> Vec<MicroOp> {
        let mut seen = Vec::new();
        for inv in &self.invocations {
            let op = inv.op();
            if !seen.contains(&op) {
                seen.push(op);
            }
        }
        seen
    }

    /// The first invocation's micro-op family, if any — the PE-array mode
    /// the frame starts in. Together with [`Trace::last_op`] this lets a
    /// frame *stream* decide whether consecutive frames share a mode at
    /// the boundary (no reconfiguration) or switch (one more).
    pub fn first_op(&self) -> Option<MicroOp> {
        self.invocations.first().map(Invocation::op)
    }

    /// The last invocation's micro-op family, if any — the PE-array mode
    /// the frame ends in. See [`Trace::first_op`].
    pub fn last_op(&self) -> Option<MicroOp> {
        self.invocations.last().map(Invocation::op)
    }

    /// Number of micro-op *family switches* while walking the trace in
    /// order — each switch costs a reconfiguration on the Uni-Render
    /// accelerator (Sec. VII-E).
    pub fn reconfiguration_count(&self) -> u64 {
        self.invocations
            .windows(2)
            .filter(|w| w[0].op() != w[1].op())
            .count() as u64
    }
}

impl Extend<Invocation> for Trace {
    fn extend<T: IntoIterator<Item = Invocation>>(&mut self, iter: T) {
        self.invocations.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Invocation;
    type IntoIter = std::slice::Iter<'a, Invocation>;
    fn into_iter(self) -> Self::IntoIter {
        self.invocations.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invoke::Workload;

    fn gemm(batch: u64) -> Invocation {
        Invocation::new(
            "mlp",
            Workload::Gemm {
                batch,
                in_dim: 8,
                out_dim: 8,
                weight_bytes: 128,
            },
        )
    }

    fn sort() -> Invocation {
        Invocation::new(
            "sort",
            Workload::Sort {
                patches: 10,
                keys_per_patch: 32.0,
                entry_bytes: 8,
            },
        )
    }

    #[test]
    fn new_trace_is_empty() {
        let t = Trace::new(Pipeline::Mesh, 1280, 720);
        assert!(t.is_empty());
        assert_eq!(t.pixel_count(), 1280 * 720);
        assert_eq!(t.total_cost(), CostVector::ZERO);
    }

    #[test]
    fn total_cost_sums_invocations() {
        let mut t = Trace::new(Pipeline::Mlp, 64, 64);
        t.push(gemm(100));
        t.push(gemm(200));
        assert_eq!(t.total_cost().fp_macs, (100 + 200) * 8 * 8);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn micro_ops_used_preserves_first_appearance_order() {
        let mut t = Trace::new(Pipeline::Gaussian3d, 64, 64);
        t.push(sort());
        t.push(gemm(10));
        t.push(sort());
        assert_eq!(t.micro_ops_used(), vec![MicroOp::Sorting, MicroOp::Gemm]);
    }

    #[test]
    fn reconfiguration_counts_op_switches() {
        let mut t = Trace::new(Pipeline::Gaussian3d, 64, 64);
        assert_eq!(t.reconfiguration_count(), 0);
        t.push(gemm(1));
        t.push(gemm(1));
        assert_eq!(t.reconfiguration_count(), 0, "same family: no switch");
        t.push(sort());
        t.push(gemm(1));
        assert_eq!(t.reconfiguration_count(), 2);
    }

    #[test]
    fn first_and_last_op_track_the_boundary_modes() {
        let mut t = Trace::new(Pipeline::Gaussian3d, 64, 64);
        assert_eq!(t.first_op(), None);
        assert_eq!(t.last_op(), None);
        t.push(sort());
        t.push(gemm(1));
        assert_eq!(t.first_op(), Some(MicroOp::Sorting));
        assert_eq!(t.last_op(), Some(MicroOp::Gemm));
    }

    #[test]
    fn extend_appends() {
        let mut t = Trace::new(Pipeline::Mlp, 8, 8);
        t.extend([gemm(1), gemm(2)]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn iteration_visits_in_order() {
        let mut t = Trace::new(Pipeline::Mlp, 8, 8);
        t.push(gemm(1));
        t.push(sort());
        let stages: Vec<&str> = t.iter().map(|i| i.stage()).collect();
        assert_eq!(stages, vec!["mlp", "sort"]);
        let count = (&t).into_iter().count();
        assert_eq!(count, 2);
    }
}
