//! Serving statistics: boundary-switch metering and per-session /
//! aggregate summaries for multi-stream schedules.
//!
//! Uni-Render's accelerator is *one* device: when it serves several frame
//! streams (or several renderers) interleaved, a PE-array reconfiguration
//! is paid whenever two *consecutively scheduled* frames start and end in
//! different micro-operator families — regardless of which stream they
//! belong to. This module carries the device-independent bookkeeping for
//! that claim:
//!
//! - [`BoundaryMeter`] — walks a schedule of frame traces (via their
//!   [`Trace::first_op`] / [`Trace::last_op`] families) and counts the
//!   boundary switches paid vs. amortized away;
//! - [`SessionStats`] — one stream's share of a served schedule;
//! - [`ServerSummary`] — the aggregate over every session a server
//!   scheduled, with the invariant that aggregate counters equal the sum
//!   of the per-session ones.
//!
//! [`Trace::first_op`]: crate::Trace::first_op
//! [`Trace::last_op`]: crate::Trace::last_op

use crate::op::MicroOp;
use crate::pipeline::Pipeline;
use serde::{Deserialize, Serialize};

/// Nearest-rank percentile over an ascending-sorted sample: the value at
/// 1-indexed rank `ceil(p/100 · n)`, with the rank clamped into
/// `[1, n]` so out-of-range `p` (≤ 0 or ≥ 100) degrades to the sample
/// minimum / maximum instead of indexing out of bounds. Deterministic —
/// no interpolation, no ambient state — and shared by every latency
/// summary in the workspace ([`SessionStats::latency_p50`] /
/// [`SessionStats::latency_p99`] and the session-stream percentiles), so
/// the serving stack has exactly one definition of "p99" to trust.
///
/// # Panics
///
/// Panics on an empty sample — a percentile of nothing is a caller bug,
/// not a value.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One pipeline-aware schedule boundary a [`BoundaryMeter`] crossed: the
/// ordered pipeline pair and whether entering `to` reconfigured.
///
/// Recorded by [`BoundaryMeter::observe_for`] for **every** real
/// boundary — paid *and* amortized — because switch-cost estimation
/// ([`crate::SwitchCostModel`]) needs the pair either way: an amortized
/// same-renderer boundary is evidence the pair is cheap, exactly as a
/// paid one is evidence it is expensive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundaryEvent {
    /// Pipeline of the previously scheduled (non-empty) frame.
    pub from: Pipeline,
    /// Pipeline of the frame just entered.
    pub to: Pipeline,
    /// Whether entering `to` paid a PE-array reconfiguration.
    pub switched: bool,
}

/// Counts PE-array mode switches across a sequence of scheduled frames.
///
/// Feed it each scheduled frame's boundary micro-operator families in
/// schedule order; it reports whether *entering* that frame required a
/// reconfiguration (the previous frame ended in a different family) and
/// keeps running totals of switches paid and avoided. The first observed
/// frame is free — there is no previous mode to switch from.
///
/// Empty traces (no invocations, `None` boundary ops) neither pay nor
/// avoid a switch and leave the remembered mode untouched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundaryMeter {
    last: Option<MicroOp>,
    /// Pipeline of the most recent non-empty frame, when the caller
    /// meters pipeline-aware boundaries ([`BoundaryMeter::observe_for`]).
    last_pipeline: Option<Pipeline>,
    /// The most recent pipeline-aware boundary crossed, pair and verdict
    /// ([`BoundaryMeter::last_boundary`]) — the history switch-cost
    /// estimation consumes.
    last_event: Option<BoundaryEvent>,
    switches: u64,
    avoided: u64,
}

impl BoundaryMeter {
    /// A meter that has observed nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes the next scheduled frame's boundary families and returns
    /// whether entering it required a mode switch.
    ///
    /// Pipeline-agnostic: two frames chain for free whenever their
    /// boundary families match, whichever renderers produced them. This
    /// is the single-stream model ([`crate::Trace`]s of one renderer) —
    /// multi-renderer schedules should use
    /// [`BoundaryMeter::observe_for`], which also charges the pipeline
    /// switch itself.
    pub fn observe(&mut self, first: Option<MicroOp>, last: Option<MicroOp>) -> bool {
        let switched = match (self.last, first) {
            (Some(prev), Some(first)) if prev == first => {
                self.avoided += 1;
                false
            }
            (Some(_), Some(_)) => {
                self.switches += 1;
                true
            }
            _ => false,
        };
        if first.is_some() || last.is_some() {
            // A pipeline-agnostic observation invalidates the pipeline
            // memory: the frame's renderer is unknown, so a later
            // `observe_for` must not amortize against (or attribute a
            // pair to) a stale pipeline from before this frame.
            self.last_pipeline = None;
            self.last_event = None;
        }
        self.last = last.or(self.last);
        switched
    }

    /// Observes the next scheduled frame's boundary families *and its
    /// pipeline*, returning whether entering it required a
    /// reconfiguration.
    ///
    /// The accelerator is configured per renderer: crossing from one
    /// pipeline family to another at a schedule boundary always pays a
    /// reconfiguration (dataflow and parameter layout change even when
    /// the two traces happen to touch the same micro-operator at the
    /// seam). A boundary between two frames of the *same* pipeline pays
    /// only when the micro-operator families differ — which is exactly
    /// what switch-coalescing schedules amortize by batching
    /// same-pipeline frames. The first observed frame is free; empty
    /// traces neither pay nor avoid and leave both memories untouched.
    pub fn observe_for(
        &mut self,
        pipeline: Pipeline,
        first: Option<MicroOp>,
        last: Option<MicroOp>,
    ) -> bool {
        let switched = match (self.last, first) {
            (Some(prev), Some(first)) => {
                let paid = !(prev == first && self.last_pipeline == Some(pipeline));
                if paid {
                    self.switches += 1;
                } else {
                    self.avoided += 1;
                }
                // Record the boundary with its ordered pipeline pair —
                // amortized same-renderer boundaries included, since the
                // cost model learns from both outcomes. The pair is
                // unknowable (and not recorded) when the previous frame
                // was metered pipeline-agnostically.
                self.last_event = self.last_pipeline.map(|from| BoundaryEvent {
                    from,
                    to: pipeline,
                    switched: paid,
                });
                paid
            }
            _ => {
                self.last_event = None;
                false
            }
        };
        if first.is_some() || last.is_some() {
            self.last_pipeline = Some(pipeline);
        }
        self.last = last.or(self.last);
        switched
    }

    /// The most recent pipeline-aware boundary crossed by
    /// [`BoundaryMeter::observe_for`]: its ordered pipeline pair and
    /// whether it reconfigured. `None` when the last observation was not
    /// a real boundary (first frame, empty trace, or a pipeline-agnostic
    /// [`BoundaryMeter::observe`]). Feed it to
    /// [`crate::SwitchCostModel::observe`] to learn per-pair switch
    /// costs from the schedule as served.
    pub fn last_boundary(&self) -> Option<BoundaryEvent> {
        self.last_event
    }

    /// The micro-operator family the most recent non-empty frame ended in.
    pub fn last_op(&self) -> Option<MicroOp> {
        self.last
    }

    /// Boundary switches paid so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Boundaries where the families matched (switch amortized away).
    pub fn avoided(&self) -> u64 {
        self.avoided
    }

    /// All boundaries observed between non-empty frames.
    pub fn boundaries(&self) -> u64 {
        self.switches + self.avoided
    }
}

/// One session's (one camera stream's) share of a served schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionStats {
    /// Server-assigned session id (index in admission order).
    pub session: usize,
    /// The pipeline family this session renders with.
    pub pipeline: Pipeline,
    /// Fair-share weight the session was admitted with (≥ 1; consumed by
    /// weighted-fair scheduling policies).
    pub weight: u32,
    /// Priority level the session was admitted with (higher wins under
    /// priority scheduling policies).
    pub priority: u8,
    /// Optional human-readable label from the session request.
    pub label: Option<String>,
    /// Whether the session was closed early (cancelled before its path
    /// finished); its counters then cover only the delivered prefix.
    pub closed_early: bool,
    /// Per-frame deadline rate the session was admitted with (frames per
    /// simulated second); `None` for best-effort sessions. Deadlines are
    /// **sim-time** facts: frame `i` of the session is due `(i + 1) /
    /// deadline_hz` simulated seconds after the session's deadline epoch
    /// (serve start; for mid-serve admissions, the delivered sim-time at
    /// which the session's first frame starts service).
    pub deadline_hz: Option<f64>,
    /// Delivered frames whose schedule-order completion (cumulative sim
    /// seconds at delivery) exceeded their deadline. Always 0 for
    /// best-effort sessions and on accelerator-less servers (nothing is
    /// simulated, so sim-time never advances).
    pub deadline_misses: u64,
    /// The smallest sim-time slack (deadline minus completion, seconds)
    /// any delivered frame of this session had; negative iff a deadline
    /// was missed. `None` for best-effort sessions or before the first
    /// delivery.
    pub worst_slack: Option<f64>,
    /// Median per-frame sim latency (seconds charged to one delivered
    /// frame: its simulated execution plus any boundary reconfiguration
    /// paid entering it). 0 until something is simulated.
    pub latency_p50: f64,
    /// 99th-percentile per-frame sim latency (nearest-rank over the
    /// session's delivered frames). 0 until something is simulated.
    pub latency_p99: f64,
    /// Frames of this session the server has delivered.
    pub frames: usize,
    /// Frames of this session's path the server *skipped* under
    /// overload (explicit frame-skipping degradation): their indices
    /// were consumed without rendering, simulating, or delivering
    /// anything, so they appear in neither [`SessionStats::frames`] nor
    /// the deadline-miss denominator — shed load is accounted here, not
    /// silently dropped.
    pub frames_skipped: u64,
    /// Delivered frames rendered below the path's native resolution
    /// (dynamic resolution-scaling degradation was active when they were
    /// scheduled).
    pub degraded_frames: u64,
    /// The session's resolution downscale shift at the end of the run
    /// (each frame axis is halved `resolution_shift` times; 0 = native
    /// resolution).
    pub resolution_shift: u32,
    /// Whether the server shed this session under overload
    /// (priority-weighted shedding closed it early to protect
    /// higher-priority deadline sessions). Implies
    /// [`SessionStats::closed_early`] once the staged close applies.
    pub shed: bool,
    /// Simulated cycles attributed to this session, including the
    /// boundary reconfigurations charged when its frames were scheduled.
    pub cycles: u64,
    /// Simulated seconds attributed to this session.
    pub seconds: f64,
    /// Mode switches *inside* this session's frame traces.
    pub in_frame_reconfigurations: u64,
    /// Mode switches paid when the accelerator entered this session's
    /// frames from whatever it ran before them in the schedule.
    pub boundary_reconfigurations: u64,
    /// Schedule boundaries into this session's frames that needed no
    /// switch.
    pub boundary_switches_avoided: u64,
    /// Fresh framebuffer allocations this session's pool performed
    /// (stays at 1 for a recycled fixed-resolution stream).
    pub framebuffer_allocations: u64,
}

impl SessionStats {
    /// A zeroed record for session `session` rendering `pipeline`, with
    /// default scheduling attributes (weight 1, priority 0, no label).
    pub fn new(session: usize, pipeline: Pipeline) -> Self {
        Self {
            session,
            pipeline,
            weight: 1,
            priority: 0,
            label: None,
            closed_early: false,
            deadline_hz: None,
            deadline_misses: 0,
            worst_slack: None,
            latency_p50: 0.0,
            latency_p99: 0.0,
            frames: 0,
            frames_skipped: 0,
            degraded_frames: 0,
            resolution_shift: 0,
            shed: false,
            cycles: 0,
            seconds: 0.0,
            in_frame_reconfigurations: 0,
            boundary_reconfigurations: 0,
            boundary_switches_avoided: 0,
            framebuffer_allocations: 0,
        }
    }

    /// All reconfigurations charged to this session.
    pub fn total_reconfigurations(&self) -> u64 {
        self.in_frame_reconfigurations + self.boundary_reconfigurations
    }

    /// Simulated throughput of this session's frames (frames per
    /// simulated second); 0 when nothing was simulated.
    pub fn mean_fps(&self) -> f64 {
        if self.seconds > 0.0 {
            self.frames as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// Aggregate statistics over everything a server scheduled.
///
/// The scalar counters are sums over [`ServerSummary::per_session`]
/// (checked by [`ServerSummary::is_consistent`]); they exist separately
/// so consumers can read schedule-level totals without re-summing.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServerSummary {
    /// Per-session statistics, in session-id order.
    pub per_session: Vec<SessionStats>,
    /// Machine-readable name of the scheduling policy that produced the
    /// schedule (e.g. `"round_robin"`, `"weighted_fair"`, `"priority"`;
    /// empty when unknown).
    pub policy: String,
    /// Sessions admitted after serving started (mid-serve admission
    /// events — registrations before the first frame don't count).
    pub admissions: u64,
    /// Sessions closed early (cancelled before their paths finished).
    pub closes: u64,
    /// Session requests the admission controller refused outright
    /// (predicted infeasible even after the current load drains). A
    /// refused request never becomes a session: it has no
    /// [`SessionStats`] entry and no share of any counter below.
    pub refusals: u64,
    /// Session requests admitted *queued*: predicted infeasible against
    /// the current load but feasible once part of it drains, so they
    /// were staged to join the schedule at a deterministic later slot
    /// instead of being refused.
    pub queued_admissions: u64,
    /// Frames skipped across all sessions under frame-skipping
    /// degradation (sum of [`SessionStats::frames_skipped`]). Skipped
    /// frames are not delivered and not in
    /// [`ServerSummary::scheduled_frames`].
    pub frames_skipped: u64,
    /// Delivered frames rendered below native resolution, across all
    /// sessions (sum of [`SessionStats::degraded_frames`]).
    pub degraded_frames: u64,
    /// Sessions the server shed under overload (count of
    /// [`SessionStats::shed`]).
    pub shed_sessions: u64,
    /// Deadline misses summed over every deadline-bound session.
    /// Misses are *schedule-order* facts (cumulative sim-time at
    /// delivery vs. the frame's sim-time deadline), never lane-timing
    /// facts — the count is identical at any `UNI_RENDER_THREADS`.
    pub deadline_misses: u64,
    /// Frames delivered across all sessions, in schedule order.
    pub scheduled_frames: usize,
    /// Simulated cycles across the whole schedule.
    pub total_cycles: u64,
    /// Simulated seconds across the whole schedule.
    pub total_seconds: f64,
    /// Mode switches inside frame traces, summed over the schedule.
    pub in_frame_reconfigurations: u64,
    /// Mode switches paid at scheduled-frame boundaries (including the
    /// cross-session ones a standalone stream would never pay).
    pub boundary_reconfigurations: u64,
    /// Scheduled-frame boundaries that needed no switch.
    pub boundary_switches_avoided: u64,
}

impl ServerSummary {
    /// Statistics for one session, if it exists.
    pub fn session(&self, session: usize) -> Option<&SessionStats> {
        self.per_session.iter().find(|s| s.session == session)
    }

    /// All reconfigurations the schedule paid: in-frame plus boundary.
    pub fn total_reconfigurations(&self) -> u64 {
        self.in_frame_reconfigurations + self.boundary_reconfigurations
    }

    /// Reconfigurations per delivered frame, amortized over the schedule.
    pub fn reconfigurations_per_frame(&self) -> f64 {
        if self.scheduled_frames == 0 {
            0.0
        } else {
            self.total_reconfigurations() as f64 / self.scheduled_frames as f64
        }
    }

    /// The fraction of total simulated time consumed by `session`
    /// (including boundary reconfigurations charged to it); 0 when the
    /// session is unknown or nothing was simulated. This is the quantity
    /// fair-share policies equalize per unit weight.
    pub fn sim_time_share(&self, session: usize) -> f64 {
        if self.total_seconds <= 0.0 {
            return 0.0;
        }
        self.session(session)
            .map_or(0.0, |s| s.seconds / self.total_seconds)
    }

    /// Per-session sim-time shares, in `per_session` order (all zeros
    /// when nothing was simulated).
    pub fn sim_time_shares(&self) -> Vec<f64> {
        self.per_session
            .iter()
            .map(|s| {
                if self.total_seconds > 0.0 {
                    s.seconds / self.total_seconds
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Deadline misses per delivered frame of the *deadline-bound*
    /// sessions (best-effort sessions are excluded from the
    /// denominator); 0 when no session carries a deadline.
    pub fn deadline_miss_rate(&self) -> f64 {
        let bound: usize = self
            .per_session
            .iter()
            .filter(|s| s.deadline_hz.is_some())
            .map(|s| s.frames)
            .sum();
        if bound == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / bound as f64
        }
    }

    /// The worst (smallest) sim-time slack any deadline-bound session's
    /// frame was delivered with; `None` when no deadline-bound frame has
    /// been delivered. Negative iff some deadline was missed.
    pub fn worst_slack(&self) -> Option<f64> {
        self.per_session
            .iter()
            .filter_map(|s| s.worst_slack)
            .min_by(f64::total_cmp)
    }

    /// The largest per-session p99 sim latency — the schedule's tail
    /// latency across sessions; 0 when nothing was simulated.
    pub fn p99_sim_latency(&self) -> f64 {
        self.per_session
            .iter()
            .map(|s| s.latency_p99)
            .fold(0.0, f64::max)
    }

    /// The largest per-session p50 (median) sim latency; 0 when nothing
    /// was simulated. Reported next to [`ServerSummary::p99_sim_latency`]
    /// so a tail/median gap is visible where the sample distribution
    /// has one.
    pub fn p50_sim_latency(&self) -> f64 {
        self.per_session
            .iter()
            .map(|s| s.latency_p50)
            .fold(0.0, f64::max)
    }

    /// Simulated schedule throughput (frames per simulated second); 0
    /// when nothing was simulated.
    pub fn mean_fps(&self) -> f64 {
        if self.total_seconds > 0.0 {
            self.scheduled_frames as f64 / self.total_seconds
        } else {
            0.0
        }
    }

    /// Whether every aggregate counter equals the sum of its per-session
    /// counterparts — the invariant a correct server maintains — and the
    /// per-session counters are cross-consistent with their delivered
    /// totals:
    ///
    /// - a session cannot miss more deadlines or degrade more frames
    ///   than it delivered (both are counted at delivery);
    /// - skipped frames and recorded slack only exist for deadline-bound
    ///   sessions;
    /// - a session with misses must have recorded a negative worst
    ///   slack.
    ///
    /// Fleet-level roll-ups ([`crate::FleetSummary`]) inherit this check
    /// per constituent summary, so a shard that double-counts misses is
    /// caught here rather than surviving aggregation.
    pub fn is_consistent(&self) -> bool {
        let frames: usize = self.per_session.iter().map(|s| s.frames).sum();
        let cycles: u64 = self.per_session.iter().map(|s| s.cycles).sum();
        let in_frame: u64 = self
            .per_session
            .iter()
            .map(|s| s.in_frame_reconfigurations)
            .sum();
        let boundary: u64 = self
            .per_session
            .iter()
            .map(|s| s.boundary_reconfigurations)
            .sum();
        let avoided: u64 = self
            .per_session
            .iter()
            .map(|s| s.boundary_switches_avoided)
            .sum();
        let seconds: f64 = self.per_session.iter().map(|s| s.seconds).sum();
        let misses: u64 = self.per_session.iter().map(|s| s.deadline_misses).sum();
        let skipped: u64 = self.per_session.iter().map(|s| s.frames_skipped).sum();
        let degraded: u64 = self.per_session.iter().map(|s| s.degraded_frames).sum();
        let shed = self.per_session.iter().filter(|s| s.shed).count() as u64;
        let cross_consistent = self.per_session.iter().all(|s| {
            s.deadline_misses <= s.frames as u64
                && s.degraded_frames <= s.frames as u64
                && (s.frames_skipped == 0 || s.deadline_hz.is_some())
                && (s.worst_slack.is_none() || s.deadline_hz.is_some())
                && (s.deadline_misses == 0 || s.worst_slack.is_some_and(|w| w < 0.0))
        });
        cross_consistent
            && frames == self.scheduled_frames
            && misses == self.deadline_misses
            && cycles == self.total_cycles
            && in_frame == self.in_frame_reconfigurations
            && boundary == self.boundary_reconfigurations
            && avoided == self.boundary_switches_avoided
            && skipped == self.frames_skipped
            && degraded == self.degraded_frames
            && shed == self.shed_sessions
            && (seconds - self.total_seconds).abs() <= 1e-9 * self.total_seconds.abs().max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_counts_switches_and_amortizations() {
        let mut m = BoundaryMeter::new();
        // First frame is free.
        assert!(!m.observe(Some(MicroOp::Gemm), Some(MicroOp::Gemm)));
        // Same family: amortized.
        assert!(!m.observe(Some(MicroOp::Gemm), Some(MicroOp::Sorting)));
        // Sorting -> Gemm: switch.
        assert!(m.observe(Some(MicroOp::Gemm), Some(MicroOp::Gemm)));
        assert_eq!(m.switches(), 1);
        assert_eq!(m.avoided(), 1);
        assert_eq!(m.boundaries(), 2);
        assert_eq!(m.last_op(), Some(MicroOp::Gemm));
    }

    #[test]
    fn pipeline_aware_meter_charges_renderer_switches() {
        let mut m = BoundaryMeter::new();
        // First frame free.
        assert!(!m.observe_for(Pipeline::Mesh, Some(MicroOp::Gemm), Some(MicroOp::Gemm)));
        // Same pipeline, matching families: amortized.
        assert!(!m.observe_for(Pipeline::Mesh, Some(MicroOp::Gemm), Some(MicroOp::Gemm)));
        // Different pipeline, even with matching families at the seam:
        // the device swaps renderer configuration — charged.
        assert!(m.observe_for(Pipeline::Mlp, Some(MicroOp::Gemm), Some(MicroOp::Gemm)));
        // Same pipeline but mismatched families: still a mode switch.
        assert!(m.observe_for(Pipeline::Mlp, Some(MicroOp::Sorting), Some(MicroOp::Gemm)));
        assert_eq!(m.switches(), 2);
        assert_eq!(m.avoided(), 1);
        // Empty frames leave the pipeline memory untouched too.
        assert!(!m.observe_for(Pipeline::Mesh, None, None));
        assert!(!m.observe_for(Pipeline::Mlp, Some(MicroOp::Gemm), Some(MicroOp::Gemm)));
        assert_eq!(m.avoided(), 2, "mlp -> mlp across the empty frame");
    }

    #[test]
    fn pipeline_aware_boundaries_record_their_pair_either_way() {
        let mut m = BoundaryMeter::new();
        // First frame: no boundary, no event.
        m.observe_for(Pipeline::Mesh, Some(MicroOp::Gemm), Some(MicroOp::Gemm));
        assert_eq!(m.last_boundary(), None);
        // Amortized same-renderer boundary: the pair is recorded too —
        // the cost model needs the cheap evidence as much as the
        // expensive (this history previously went nowhere).
        m.observe_for(Pipeline::Mesh, Some(MicroOp::Gemm), Some(MicroOp::Gemm));
        assert_eq!(
            m.last_boundary(),
            Some(BoundaryEvent {
                from: Pipeline::Mesh,
                to: Pipeline::Mesh,
                switched: false,
            })
        );
        // Paid cross-renderer boundary.
        m.observe_for(Pipeline::Mlp, Some(MicroOp::Gemm), Some(MicroOp::Gemm));
        assert_eq!(
            m.last_boundary(),
            Some(BoundaryEvent {
                from: Pipeline::Mesh,
                to: Pipeline::Mlp,
                switched: true,
            })
        );
        // An empty trace is not a boundary: the event clears but the
        // pipeline memory survives for the next real boundary.
        m.observe_for(Pipeline::Mesh, None, None);
        assert_eq!(m.last_boundary(), None);
        m.observe_for(Pipeline::Mlp, Some(MicroOp::Gemm), Some(MicroOp::Gemm));
        assert_eq!(
            m.last_boundary(),
            Some(BoundaryEvent {
                from: Pipeline::Mlp,
                to: Pipeline::Mlp,
                switched: false,
            })
        );
    }

    #[test]
    fn pipeline_agnostic_observation_invalidates_the_pipeline_memory() {
        // Regression for the mixed-semantics latent bug: after a
        // pipeline-agnostic `observe`, the meter must not amortize a
        // later `observe_for` against the pipeline remembered from
        // *before* that frame — the interleaved frame's renderer is
        // unknown, so the pair across it is unknowable.
        let mut m = BoundaryMeter::new();
        m.observe_for(Pipeline::Mesh, Some(MicroOp::Gemm), Some(MicroOp::Gemm));
        m.observe(Some(MicroOp::Gemm), Some(MicroOp::Gemm));
        assert_eq!(m.last_boundary(), None, "agnostic frames clear the event");
        let switched = m.observe_for(Pipeline::Mesh, Some(MicroOp::Gemm), Some(MicroOp::Gemm));
        assert!(
            switched,
            "unknown prior pipeline must pay the switch, not amortize \
             against stale memory"
        );
        assert_eq!(
            m.last_boundary(),
            None,
            "no pair is attributable across an agnostic frame"
        );
        // And the two semantics still agree on a homogeneous stream
        // driven purely through either entry point (the accounting mixes
        // pinned by tests/server_accounting.rs rely on this).
        let mut agnostic = BoundaryMeter::new();
        let mut aware = BoundaryMeter::new();
        for _ in 0..4 {
            agnostic.observe(Some(MicroOp::Gemm), Some(MicroOp::Gemm));
            aware.observe_for(Pipeline::Mesh, Some(MicroOp::Gemm), Some(MicroOp::Gemm));
        }
        assert_eq!(agnostic.switches(), aware.switches());
        assert_eq!(agnostic.avoided(), aware.avoided());
    }

    #[test]
    fn meter_skips_empty_frames_without_forgetting_the_mode() {
        let mut m = BoundaryMeter::new();
        m.observe(Some(MicroOp::Sorting), Some(MicroOp::Sorting));
        // An empty trace neither pays nor avoids, and the mode survives.
        assert!(!m.observe(None, None));
        assert_eq!(m.boundaries(), 0, "first frame free, empty frame skipped");
        assert_eq!(m.last_op(), Some(MicroOp::Sorting));
        // The remembered mode still drives the next boundary.
        assert!(m.observe(Some(MicroOp::Gemm), Some(MicroOp::Gemm)));
        assert_eq!(m.boundaries(), 1);
    }

    #[test]
    fn summary_consistency_checks_sums() {
        let mut a = SessionStats::new(0, Pipeline::Mesh);
        a.frames = 2;
        a.cycles = 100;
        a.seconds = 1.0;
        a.boundary_reconfigurations = 1;
        let mut b = SessionStats::new(1, Pipeline::Gaussian3d);
        b.frames = 3;
        b.cycles = 50;
        b.seconds = 0.5;
        b.boundary_switches_avoided = 2;
        let summary = ServerSummary {
            per_session: vec![a, b],
            policy: "round_robin".to_string(),
            admissions: 1,
            closes: 0,
            refusals: 0,
            queued_admissions: 0,
            frames_skipped: 0,
            degraded_frames: 0,
            shed_sessions: 0,
            deadline_misses: 0,
            scheduled_frames: 5,
            total_cycles: 150,
            total_seconds: 1.5,
            in_frame_reconfigurations: 0,
            boundary_reconfigurations: 1,
            boundary_switches_avoided: 2,
        };
        assert!(summary.is_consistent());
        assert_eq!(summary.total_reconfigurations(), 1);
        assert!((summary.reconfigurations_per_frame() - 0.2).abs() < 1e-12);
        assert!((summary.mean_fps() - 5.0 / 1.5).abs() < 1e-12);
        assert_eq!(summary.session(1).unwrap().pipeline, Pipeline::Gaussian3d);
        assert!((summary.sim_time_share(0) - 1.0 / 1.5).abs() < 1e-12);
        assert!((summary.sim_time_share(1) - 0.5 / 1.5).abs() < 1e-12);
        assert_eq!(summary.sim_time_share(9), 0.0, "unknown session");
        let shares = summary.sim_time_shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);

        let mut broken = summary.clone();
        broken.total_cycles = 151;
        assert!(!broken.is_consistent());

        // Degradation accounting participates in the same invariant.
        let mut skew = summary.clone();
        skew.frames_skipped = 1;
        assert!(
            !skew.is_consistent(),
            "aggregate skips without session skips"
        );
        let mut skew = summary.clone();
        skew.degraded_frames = 1;
        assert!(!skew.is_consistent());
        let mut skew = summary;
        skew.shed_sessions = 1;
        assert!(!skew.is_consistent(), "shed count disagrees with flags");
    }

    #[test]
    fn summary_consistency_cross_checks_per_session_delivery_totals() {
        // A deadline-bound session whose counters agree with its
        // delivered total.
        let mut s = SessionStats::new(0, Pipeline::Mesh);
        s.frames = 4;
        s.deadline_hz = Some(30.0);
        s.deadline_misses = 1;
        s.worst_slack = Some(-0.25);
        s.frames_skipped = 2;
        s.degraded_frames = 3;
        let summary = ServerSummary {
            per_session: vec![s],
            policy: "edf".to_string(),
            admissions: 1,
            closes: 0,
            refusals: 0,
            queued_admissions: 0,
            frames_skipped: 2,
            degraded_frames: 3,
            shed_sessions: 0,
            deadline_misses: 1,
            scheduled_frames: 4,
            total_cycles: 0,
            total_seconds: 0.0,
            in_frame_reconfigurations: 0,
            boundary_reconfigurations: 0,
            boundary_switches_avoided: 0,
        };
        assert!(summary.is_consistent());

        // More misses than delivered frames: misses are counted at
        // delivery, so this cannot happen in a correct server even
        // though the aggregate sums still match.
        let mut skew = summary.clone();
        skew.per_session[0].deadline_misses = 5;
        skew.deadline_misses = 5;
        assert!(!skew.is_consistent(), "misses exceed delivered frames");

        // More degraded frames than delivered frames.
        let mut skew = summary.clone();
        skew.per_session[0].degraded_frames = 5;
        skew.degraded_frames = 5;
        assert!(!skew.is_consistent(), "degraded exceed delivered frames");

        // Skips on a best-effort session: skipping is deadline-driven.
        let mut skew = summary.clone();
        skew.per_session[0].deadline_hz = None;
        skew.per_session[0].deadline_misses = 0;
        skew.deadline_misses = 0;
        skew.per_session[0].worst_slack = None;
        assert!(!skew.is_consistent(), "skips require a deadline");

        // Misses without a recorded negative worst slack.
        let mut skew = summary.clone();
        skew.per_session[0].worst_slack = Some(0.5);
        assert!(!skew.is_consistent(), "a miss implies negative slack");

        // Recorded slack on a best-effort session.
        let mut skew = summary;
        skew.per_session[0].deadline_hz = None;
        skew.per_session[0].deadline_misses = 0;
        skew.deadline_misses = 0;
        skew.per_session[0].frames_skipped = 0;
        skew.frames_skipped = 0;
        assert!(!skew.is_consistent(), "slack requires a deadline");
    }

    #[test]
    fn percentile_is_nearest_rank_with_distinct_p50_and_p99() {
        // n = 1: every percentile is the only sample.
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        // n = 2: p50 takes rank ceil(0.5 * 2) = 1, p99 rank ceil(1.98) = 2.
        assert_eq!(percentile(&[1.0, 9.0], 50.0), 1.0);
        assert_eq!(percentile(&[1.0, 9.0], 99.0), 9.0);
        // n = 3: p50 is the true median (rank 2), p99 the maximum.
        assert_eq!(percentile(&[1.0, 2.0, 30.0], 50.0), 2.0);
        assert_eq!(percentile(&[1.0, 2.0, 30.0], 99.0), 30.0);
        // n = 100 with a heavy tail: p50 = rank 50, p99 = rank 99 — the
        // tail sample, not the median and not the maximum.
        let sample: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sample, 50.0), 50.0);
        assert_eq!(percentile(&sample, 99.0), 99.0);
        assert_eq!(percentile(&sample, 100.0), 100.0);
        // Out-of-range percentiles clamp to the sample instead of
        // indexing past it.
        assert_eq!(percentile(&sample, 0.0), 1.0);
        assert_eq!(percentile(&sample, 150.0), 100.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_rejects_an_empty_sample() {
        percentile(&[], 50.0);
    }
}
