//! Micro-operator invocations: one executed micro-op with its workload
//! shape, and the cost-derivation formulas shared by every device model.

use crate::cost::CostVector;
use crate::op::{Dims, IndexFunction, MicroOp};
use serde::{Deserialize, Serialize};

/// The geometric primitive processed by the Geometric Processing micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrimitiveKind {
    /// Polygonal mesh triangles (rasterization, Fig. 2).
    Triangle,
    /// 3D Gaussian splats (splatting, Fig. 6).
    GaussianSplat,
}

/// Workload shape of one micro-operator invocation.
///
/// Each variant corresponds to one micro-operator; the enum carries the
/// semantic parameters a renderer knows (primitive counts, query points,
/// layer shapes) from which [`Invocation::cost`] derives device-independent
/// operation counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// Geometric Processing: rasterization or splatting.
    Geometric {
        /// Primitive type being tested.
        kind: PrimitiveKind,
        /// Primitives streamed through the PEs (post-culling).
        primitives: u64,
        /// Primitive-pixel coverage tests performed.
        candidate_pairs: u64,
        /// Tests that pass (z-buffer updates / splat contributions).
        hits: u64,
        /// Bytes per primitive record (vertices+ids or mean+conic+…).
        prim_bytes: u32,
        /// Pixels whose result is written to the PS scratchpad (Z-buffer).
        output_pixels: u64,
    },
    /// Combined or Decomposed Grid Indexing: feature fetch + interpolation.
    GridIndex {
        /// Query points.
        points: u64,
        /// Grid levels (hash) or planes+grids (decomposed).
        levels: u32,
        /// Interpolation candidates per level (4 bilinear, 8 trilinear).
        corners: u32,
        /// Feature channels per corner.
        feature_dim: u32,
        /// Total bytes of the backing table/planes in memory.
        table_bytes: u64,
        /// Index-retrieval function (Tab. II `{Function}`).
        function: IndexFunction,
        /// Tensor dimensionality of the indexed structure.
        dims: Dims,
        /// `true` → Decomposed Grid Indexing (cross-plane aggregation);
        /// `false` → Combined Grid Indexing.
        decomposed: bool,
    },
    /// Patch-parallel merge sort of splat depths.
    Sort {
        /// Image patches sorted independently (16×16 pixels each in 3DGS).
        patches: u64,
        /// Mean keys per patch.
        keys_per_patch: f64,
        /// Bytes per (key, payload) entry.
        entry_bytes: u32,
    },
    /// General matrix multiply (MLP layers, SH evaluation, blending).
    Gemm {
        /// Rows (samples / pixels in the batch).
        batch: u64,
        /// Input features per row.
        in_dim: u32,
        /// Output features per row.
        out_dim: u32,
        /// Bytes of resident weights.
        weight_bytes: u64,
    },
}

impl Workload {
    /// The micro-operator this workload belongs to.
    pub fn op(&self) -> MicroOp {
        match self {
            Workload::Geometric { .. } => MicroOp::GeometricProcessing,
            Workload::GridIndex { decomposed, .. } => {
                if *decomposed {
                    MicroOp::DecomposedGridIndexing
                } else {
                    MicroOp::CombinedGridIndexing
                }
            }
            Workload::Sort { .. } => MicroOp::Sorting,
            Workload::Gemm { .. } => MicroOp::Gemm,
        }
    }
}

/// One executed micro-operator with its workload and any extra
/// special-function work (positional encodings, activation functions,
/// alpha-compositing exponentials) attached by the emitting pipeline stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Invocation {
    stage: String,
    workload: Workload,
    extra_sfu_ops: u64,
}

/// Batch size beyond which weight-stationary GEMM must re-read its weights
/// from the scratchpad (one re-read per 512-row tile — the PS scratchpad
/// depth of the paper's PE).
const GEMM_BATCH_TILE: u64 = 512;

impl Invocation {
    /// Creates an invocation for a pipeline `stage` (a human-readable label
    /// such as `"rasterization"` or `"hash indexing"`).
    pub fn new(stage: impl Into<String>, workload: Workload) -> Self {
        Self {
            stage: stage.into(),
            workload,
            extra_sfu_ops: 0,
        }
    }

    /// Attaches extra special-function-unit operations (exp/sin/sigmoid)
    /// performed by this stage beyond the structural counts.
    pub fn with_sfu_ops(mut self, ops: u64) -> Self {
        self.extra_sfu_ops = ops;
        self
    }

    /// The stage label.
    pub fn stage(&self) -> &str {
        &self.stage
    }

    /// The workload shape.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The micro-operator executed.
    pub fn op(&self) -> MicroOp {
        self.workload.op()
    }

    /// Derives the device-independent cost vector for this invocation.
    ///
    /// The per-op formulas (constants document the arithmetic structure):
    ///
    /// - **Geometric / Triangle**: edge setup 9 INT MACs per primitive;
    ///   per candidate pair 6 INT MACs (three 2D edge functions) + 3 BF16
    ///   MACs (depth interpolation); per hit one compare-and-hold.
    /// - **Geometric / GaussianSplat**: conic setup 30 BF16 MACs per
    ///   primitive (2D covariance projection); per candidate pair 8 BF16
    ///   MACs (conic evaluation) + 1 SFU exp; per hit an alpha-weighted
    ///   accumulate (4 BF16 MACs).
    /// - **GridIndex**: per (point, level): `corners × d` INT MACs of index
    ///   arithmetic (`d` = dimensionality; hashing and linear indexing have
    ///   the same MAC count, hashing adds XORs that ride along), `corners`
    ///   BF16 MACs of weight computation, `corners × feature_dim` BF16 MACs
    ///   of interpolation; decomposed grids add `feature_dim` BF16 MACs per
    ///   level of cross-plane aggregation. DRAM reads are bounded by the
    ///   unique table bytes.
    /// - **Sort**: merge sort — `keys × ceil(log2 keys_per_patch)` INT
    ///   compares, each pass streaming every entry through the FF
    ///   scratchpad.
    /// - **GEMM**: `batch × in × out` BF16 MACs; weights re-read per
    ///   512-row batch tile (weight-stationary, Fig. 14).
    pub fn cost(&self) -> CostVector {
        let mut c = match self.workload {
            Workload::Geometric {
                kind,
                primitives,
                candidate_pairs,
                hits,
                prim_bytes,
                output_pixels,
            } => {
                let (setup_int, setup_fp, pair_int, pair_fp, pair_sfu, hit_fp) = match kind {
                    PrimitiveKind::Triangle => (9, 0, 6, 3, 0, 0),
                    PrimitiveKind::GaussianSplat => (0, 30, 0, 8, 1, 4),
                };
                CostVector {
                    int_macs: primitives * setup_int + candidate_pairs * pair_int + hits,
                    fp_macs: primitives * setup_fp + candidate_pairs * pair_fp + hits * hit_fp,
                    sfu_ops: candidate_pairs * pair_sfu,
                    sram_read_bytes: candidate_pairs * u64::from(prim_bytes),
                    sram_write_bytes: output_pixels * 8,
                    dram_read_bytes: primitives * u64::from(prim_bytes),
                    dram_write_bytes: output_pixels * 8,
                    items: primitives,
                }
            }
            Workload::GridIndex {
                points,
                levels,
                corners,
                feature_dim,
                table_bytes,
                function: _,
                dims,
                decomposed,
            } => {
                let d = match dims {
                    Dims::D1 => 1,
                    Dims::D2 => 2,
                    Dims::D3 => 3,
                };
                let pl = points * u64::from(levels);
                let corner_fetch_bytes = pl * u64::from(corners) * u64::from(feature_dim) * 2;
                let aggregation = if decomposed {
                    pl * u64::from(feature_dim)
                } else {
                    0
                };
                CostVector {
                    int_macs: pl * u64::from(corners) * d,
                    fp_macs: pl * u64::from(corners) * (1 + u64::from(feature_dim)) + aggregation,
                    sfu_ops: 0,
                    sram_read_bytes: corner_fetch_bytes,
                    sram_write_bytes: points * u64::from(levels) * u64::from(feature_dim) * 2,
                    dram_read_bytes: table_bytes.min(corner_fetch_bytes) + points * 12,
                    dram_write_bytes: 0,
                    items: points,
                }
            }
            Workload::Sort {
                patches,
                keys_per_patch,
                entry_bytes,
            } => {
                let keys = (patches as f64 * keys_per_patch).round() as u64;
                let passes = (keys_per_patch.max(2.0)).log2().ceil() as u64;
                let stream = keys * u64::from(entry_bytes);
                CostVector {
                    int_macs: keys * passes,
                    fp_macs: 0,
                    sfu_ops: 0,
                    sram_read_bytes: stream * passes,
                    sram_write_bytes: stream * passes,
                    dram_read_bytes: stream,
                    dram_write_bytes: stream,
                    items: keys,
                }
            }
            Workload::Gemm {
                batch,
                in_dim,
                out_dim,
                weight_bytes,
            } => {
                let macs = batch * u64::from(in_dim) * u64::from(out_dim);
                // Weights re-read once per batch tile, capped: beyond ~64
                // tiles the schedule reorders rows so resident weights are
                // reused (KiloNeRF-style many-network layers would
                // otherwise charge unphysical scratchpad traffic).
                let weight_rereads = batch.div_ceil(GEMM_BATCH_TILE).clamp(1, 64);
                let act_in = batch * u64::from(in_dim) * 2;
                let act_out = batch * u64::from(out_dim) * 2;
                CostVector {
                    int_macs: 0,
                    fp_macs: macs,
                    sfu_ops: 0,
                    sram_read_bytes: act_in + weight_bytes * weight_rereads,
                    sram_write_bytes: act_out,
                    dram_read_bytes: weight_bytes + act_in,
                    dram_write_bytes: act_out,
                    items: batch,
                }
            }
        };
        c.sfu_ops += self.extra_sfu_ops;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn workload_op_mapping() {
        let g = Workload::Geometric {
            kind: PrimitiveKind::Triangle,
            primitives: 1,
            candidate_pairs: 1,
            hits: 1,
            prim_bytes: 48,
            output_pixels: 1,
        };
        assert_eq!(g.op(), MicroOp::GeometricProcessing);
        let combined = Workload::GridIndex {
            points: 1,
            levels: 1,
            corners: 8,
            feature_dim: 2,
            table_bytes: 64,
            function: IndexFunction::RandomHash,
            dims: Dims::D3,
            decomposed: false,
        };
        assert_eq!(combined.op(), MicroOp::CombinedGridIndexing);
        let decomposed = Workload::GridIndex {
            points: 1,
            levels: 1,
            corners: 8,
            feature_dim: 2,
            table_bytes: 64,
            function: IndexFunction::RandomHash,
            dims: Dims::D3,
            decomposed: true,
        };
        assert_eq!(decomposed.op(), MicroOp::DecomposedGridIndexing);
        assert_eq!(
            Workload::Sort {
                patches: 1,
                keys_per_patch: 2.0,
                entry_bytes: 8
            }
            .op(),
            MicroOp::Sorting
        );
        assert_eq!(
            Workload::Gemm {
                batch: 1,
                in_dim: 1,
                out_dim: 1,
                weight_bytes: 2
            }
            .op(),
            MicroOp::Gemm
        );
    }

    #[test]
    fn gemm_cost_counts_macs_exactly() {
        let inv = Invocation::new(
            "layer",
            Workload::Gemm {
                batch: 100,
                in_dim: 32,
                out_dim: 16,
                weight_bytes: 32 * 16 * 2,
            },
        );
        let c = inv.cost();
        assert_eq!(c.fp_macs, 100 * 32 * 16);
        assert_eq!(c.int_macs, 0);
        assert_eq!(c.items, 100);
        // Weights fit a single batch tile: read once.
        assert_eq!(c.sram_read_bytes, 100 * 32 * 2 + 32 * 16 * 2);
    }

    #[test]
    fn gemm_weight_rereads_grow_with_batch() {
        let small = Invocation::new(
            "l",
            Workload::Gemm {
                batch: 512,
                in_dim: 8,
                out_dim: 8,
                weight_bytes: 1000,
            },
        )
        .cost();
        let large = Invocation::new(
            "l",
            Workload::Gemm {
                batch: 2048,
                in_dim: 8,
                out_dim: 8,
                weight_bytes: 1000,
            },
        )
        .cost();
        let small_weight_reads = small.sram_read_bytes - 512 * 8 * 2;
        let large_weight_reads = large.sram_read_bytes - 2048 * 8 * 2;
        assert_eq!(small_weight_reads, 1000);
        assert_eq!(large_weight_reads, 4000);
    }

    #[test]
    fn triangle_and_gaussian_use_different_unit_mix() {
        let tri = Invocation::new(
            "raster",
            Workload::Geometric {
                kind: PrimitiveKind::Triangle,
                primitives: 10,
                candidate_pairs: 100,
                hits: 20,
                prim_bytes: 48,
                output_pixels: 20,
            },
        )
        .cost();
        let gs = Invocation::new(
            "splat",
            Workload::Geometric {
                kind: PrimitiveKind::GaussianSplat,
                primitives: 10,
                candidate_pairs: 100,
                hits: 20,
                prim_bytes: 48,
                output_pixels: 20,
            },
        )
        .cost();
        // Triangles dominate INT (edge functions); splats dominate FP + SFU.
        assert!(tri.int_macs > gs.int_macs);
        assert!(gs.fp_macs > tri.fp_macs);
        assert_eq!(gs.sfu_ops, 100);
        assert_eq!(tri.sfu_ops, 0);
    }

    #[test]
    fn grid_index_dram_bounded_by_table_size() {
        let small_table = Invocation::new(
            "hash",
            Workload::GridIndex {
                points: 1_000_000,
                levels: 16,
                corners: 8,
                feature_dim: 2,
                table_bytes: 1 << 20,
                function: IndexFunction::RandomHash,
                dims: Dims::D3,
                decomposed: false,
            },
        )
        .cost();
        // 1M points * 16 levels * 8 corners * 4 B would be ~512 MB; the
        // unique-table bound caps reads at table + coordinate stream.
        assert_eq!(small_table.dram_read_bytes, (1 << 20) + 1_000_000 * 12);
    }

    #[test]
    fn decomposed_adds_aggregation_macs() {
        let make = |decomposed| {
            Invocation::new(
                "p",
                Workload::GridIndex {
                    points: 1000,
                    levels: 3,
                    corners: 4,
                    feature_dim: 8,
                    table_bytes: 1 << 24,
                    function: IndexFunction::LinearIndexing,
                    dims: Dims::D2,
                    decomposed,
                },
            )
            .cost()
        };
        let combined = make(false);
        let decomposed = make(true);
        assert_eq!(decomposed.fp_macs - combined.fp_macs, 1000 * 3 * 8);
    }

    #[test]
    fn sort_cost_scales_n_log_n() {
        let cost = |keys: f64| {
            Invocation::new(
                "sort",
                Workload::Sort {
                    patches: 100,
                    keys_per_patch: keys,
                    entry_bytes: 8,
                },
            )
            .cost()
        };
        let c64 = cost(64.0);
        let c256 = cost(256.0);
        assert_eq!(c64.int_macs, 100 * 64 * 6);
        assert_eq!(c256.int_macs, 100 * 256 * 8);
    }

    #[test]
    fn extra_sfu_ops_accumulate() {
        let inv = Invocation::new(
            "encoding",
            Workload::Gemm {
                batch: 10,
                in_dim: 3,
                out_dim: 6,
                weight_bytes: 36,
            },
        )
        .with_sfu_ops(120);
        assert_eq!(inv.cost().sfu_ops, 120);
    }

    #[test]
    fn serde_round_trip() {
        let inv = Invocation::new(
            "hash indexing",
            Workload::GridIndex {
                points: 42,
                levels: 16,
                corners: 8,
                feature_dim: 2,
                table_bytes: 4096,
                function: IndexFunction::RandomHash,
                dims: Dims::D3,
                decomposed: false,
            },
        )
        .with_sfu_ops(7);
        let json = serde_json_like(&inv);
        assert!(json.contains("hash indexing"));
    }

    /// serde_json is not in the dependency set; exercise Serialize through
    /// the debug representation plus a bincode-like manual check instead.
    fn serde_json_like(inv: &Invocation) -> String {
        format!("{inv:?}")
    }

    proptest! {
        #[test]
        fn prop_costs_are_monotone_in_points(
            p1 in 1u64..10_000, extra in 1u64..10_000,
        ) {
            let make = |points| Invocation::new(
                "g",
                Workload::GridIndex {
                    points,
                    levels: 4,
                    corners: 8,
                    feature_dim: 2,
                    table_bytes: 1 << 22,
                    function: IndexFunction::RandomHash,
                    dims: Dims::D3,
                    decomposed: false,
                },
            ).cost();
            let a = make(p1);
            let b = make(p1 + extra);
            prop_assert!(b.fp_macs > a.fp_macs);
            prop_assert!(b.int_macs > a.int_macs);
            prop_assert!(b.dram_read_bytes >= a.dram_read_bytes);
        }

        #[test]
        fn prop_gemm_cost_linear_in_batch(batch in 1u64..512, in_dim in 1u32..64, out_dim in 1u32..64) {
            let make = |b| Invocation::new(
                "l",
                Workload::Gemm { batch: b, in_dim, out_dim, weight_bytes: 128 },
            ).cost().fp_macs;
            prop_assert_eq!(make(batch) * 2, make(batch * 2));
        }
    }
}
