//! The five common micro-operators and their indexing/reduction task
//! decomposition — a direct transcription of Tab. II.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the five unique micro-operators shared by all typical rendering
/// pipelines (Sec. IV, Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MicroOp {
    /// Rasterization and splatting steps.
    GeometricProcessing,
    /// Texture indexing and hash indexing steps.
    CombinedGridIndexing,
    /// Low-rank decomposed (tri-plane) indexing steps.
    DecomposedGridIndexing,
    /// Patch-wise depth sorting (3D-Gaussian pipelines).
    Sorting,
    /// General matrix multiply (MLP layers, SH color evaluation).
    Gemm,
}

/// Tensor dimensionality of an indexing task (`{Dimension}` in Tab. II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dims {
    /// 1D tensors.
    D1,
    /// 2D tensors.
    D2,
    /// 3D tensors.
    D3,
}

/// The index-retrieval function of an indexing task (`{Function}` in
/// Tab. II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexFunction {
    /// A counter that increments on every call — regular streaming access.
    AutomaticCounter,
    /// The spatial-hash function of Instant-NGP-style hash grids.
    RandomHash,
    /// Linear (row-major) index arithmetic into dense grids.
    LinearIndexing,
}

/// Memory access pattern of a reduction task (`{Mem. Access Pattern}` in
/// Tab. II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemAccessPattern {
    /// Reduction over contiguous addresses.
    Continuous,
    /// Reduction over scattered (gathered) addresses.
    Discrete,
}

/// The indexing task of a micro-operator: *"indexing `{Item}` from a
/// `{Dimension}` tensor, with the index retrieved by `{Function}`"*.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IndexingTask {
    /// What is being indexed (Tab. II `{Item}`).
    pub item: &'static str,
    /// Admissible tensor dimensionalities.
    pub dims: &'static [Dims],
    /// Admissible index functions.
    pub functions: &'static [IndexFunction],
}

/// The reduction task of a micro-operator: *"performing reduction within a
/// set of `{Mem. Access Pattern}` memory addresses"*.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ReductionTask {
    /// Admissible memory access patterns.
    pub patterns: &'static [MemAccessPattern],
}

impl MicroOp {
    /// All five micro-operators, in Tab. II row order.
    pub const ALL: [MicroOp; 5] = [
        MicroOp::GeometricProcessing,
        MicroOp::CombinedGridIndexing,
        MicroOp::DecomposedGridIndexing,
        MicroOp::Sorting,
        MicroOp::Gemm,
    ];

    /// The pipeline steps this micro-operator absorbs (Tab. II,
    /// "Steps in Typical Pipelines").
    pub fn absorbed_steps(self) -> &'static str {
        match self {
            MicroOp::GeometricProcessing => "Rasterization and Splatting",
            MicroOp::CombinedGridIndexing => "Texture and Hash Indexing",
            MicroOp::DecomposedGridIndexing => "Low-Rank Decomp. Indexing",
            MicroOp::Sorting => "Sorting",
            MicroOp::Gemm => "Others (MLP, SH evaluation)",
        }
    }

    /// The Tab. II task decomposition: `(indexing, reduction)`.
    pub fn tasks(self) -> (IndexingTask, ReductionTask) {
        use IndexFunction::*;
        use MemAccessPattern::*;
        match self {
            MicroOp::GeometricProcessing => (
                IndexingTask {
                    item: "Mesh/Gaussian",
                    dims: &[Dims::D1],
                    functions: &[AutomaticCounter],
                },
                ReductionTask {
                    patterns: &[Continuous],
                },
            ),
            MicroOp::CombinedGridIndexing => (
                IndexingTask {
                    item: "Features",
                    dims: &[Dims::D1, Dims::D2, Dims::D3],
                    functions: &[RandomHash, LinearIndexing],
                },
                ReductionTask {
                    patterns: &[Discrete],
                },
            ),
            MicroOp::DecomposedGridIndexing => (
                IndexingTask {
                    item: "Features",
                    dims: &[Dims::D2, Dims::D3],
                    functions: &[LinearIndexing],
                },
                ReductionTask {
                    patterns: &[Discrete],
                },
            ),
            MicroOp::Sorting => (
                IndexingTask {
                    item: "Sorting Keys",
                    dims: &[Dims::D1],
                    functions: &[AutomaticCounter],
                },
                ReductionTask {
                    patterns: &[Continuous],
                },
            ),
            MicroOp::Gemm => (
                IndexingTask {
                    item: "Scalars",
                    dims: &[Dims::D1, Dims::D2],
                    functions: &[AutomaticCounter],
                },
                ReductionTask {
                    patterns: &[Continuous, Discrete],
                },
            ),
        }
    }
}

impl fmt::Display for MicroOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MicroOp::GeometricProcessing => "Geometric Processing",
            MicroOp::CombinedGridIndexing => "Combined Grid Indexing",
            MicroOp::DecomposedGridIndexing => "Decomposed Grid Indexing",
            MicroOp::Sorting => "Sorting",
            MicroOp::Gemm => "GEMM",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_five_micro_operators() {
        assert_eq!(MicroOp::ALL.len(), 5);
    }

    /// The full Tab. II transcription, row by row.
    #[test]
    fn tab2_geometric_processing_row() {
        let (idx, red) = MicroOp::GeometricProcessing.tasks();
        assert_eq!(idx.item, "Mesh/Gaussian");
        assert_eq!(idx.dims, &[Dims::D1]);
        assert_eq!(idx.functions, &[IndexFunction::AutomaticCounter]);
        assert_eq!(red.patterns, &[MemAccessPattern::Continuous]);
    }

    #[test]
    fn tab2_combined_grid_indexing_row() {
        let (idx, red) = MicroOp::CombinedGridIndexing.tasks();
        assert_eq!(idx.item, "Features");
        assert_eq!(idx.dims, &[Dims::D1, Dims::D2, Dims::D3]);
        assert_eq!(
            idx.functions,
            &[IndexFunction::RandomHash, IndexFunction::LinearIndexing]
        );
        assert_eq!(red.patterns, &[MemAccessPattern::Discrete]);
    }

    #[test]
    fn tab2_decomposed_grid_indexing_row() {
        let (idx, red) = MicroOp::DecomposedGridIndexing.tasks();
        assert_eq!(idx.item, "Features");
        assert_eq!(idx.dims, &[Dims::D2, Dims::D3]);
        assert_eq!(idx.functions, &[IndexFunction::LinearIndexing]);
        assert_eq!(red.patterns, &[MemAccessPattern::Discrete]);
    }

    #[test]
    fn tab2_sorting_row() {
        let (idx, red) = MicroOp::Sorting.tasks();
        assert_eq!(idx.item, "Sorting Keys");
        assert_eq!(idx.dims, &[Dims::D1]);
        assert_eq!(idx.functions, &[IndexFunction::AutomaticCounter]);
        assert_eq!(red.patterns, &[MemAccessPattern::Continuous]);
    }

    #[test]
    fn tab2_gemm_row() {
        let (idx, red) = MicroOp::Gemm.tasks();
        assert_eq!(idx.item, "Scalars");
        assert_eq!(idx.dims, &[Dims::D1, Dims::D2]);
        assert_eq!(idx.functions, &[IndexFunction::AutomaticCounter]);
        assert_eq!(
            red.patterns,
            &[MemAccessPattern::Continuous, MemAccessPattern::Discrete]
        );
    }

    #[test]
    fn display_is_nonempty_and_distinct() {
        let names: Vec<String> = MicroOp::ALL.iter().map(|op| op.to_string()).collect();
        for n in &names {
            assert!(!n.is_empty());
        }
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn only_combined_grid_indexing_uses_random_hash() {
        for op in MicroOp::ALL {
            let (idx, _) = op.tasks();
            let has_hash = idx.functions.contains(&IndexFunction::RandomHash);
            assert_eq!(has_hash, op == MicroOp::CombinedGridIndexing, "{op}");
        }
    }
}
