//! Renderer-switch cost estimation for cost-aware scheduling.
//!
//! Uni-Render pays a PE-array reconfiguration whenever two consecutively
//! scheduled frames straddle renderer (or micro-operator-family)
//! boundaries — but not every boundary costs the same *in expectation*:
//! two frames of one pipeline usually chain for free (their seam
//! families match), while crossing renderers always reconfigures. A
//! schedule that wants to trade reconfiguration savings against latency
//! slack therefore needs a *quantitative* estimate of what scheduling
//! pipeline `B` after pipeline `A` will cost, learned from the
//! boundaries the serving schedule has actually paid.
//!
//! [`SwitchCostModel`] is that estimator: one exponentially weighted
//! moving average (EWMA) of observed boundary cost per **ordered**
//! pipeline pair `(from, to)`, fed from [`BoundaryMeter`] history (each
//! boundary's pair plus whether it reconfigured — see
//! [`BoundaryMeter::last_boundary`]) and seedable from a static prior
//! table so estimates are useful before anything is observed. The model
//! is deterministic: per-pair state means observations of *independent*
//! pairs commute, and no ambient state (clocks, RNGs) is consulted —
//! identical observation sequences produce bit-identical estimates.
//!
//! [`BoundaryMeter`]: crate::BoundaryMeter
//! [`BoundaryMeter::last_boundary`]: crate::BoundaryMeter::last_boundary

use crate::pipeline::Pipeline;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default EWMA smoothing factor: each new observation carries a quarter
/// of the estimate, so the model converges within a handful of
/// boundaries while staying robust to one-off outliers.
pub const DEFAULT_EWMA_ALPHA: f64 = 0.25;

/// Per-ordered-pair learned state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct PairEstimate {
    /// EWMA of the observed boundary cost in simulated seconds.
    ewma_seconds: f64,
    /// Boundaries observed for this pair.
    observations: u64,
}

/// EWMA estimator of the simulated-time cost of scheduling one pipeline
/// directly after another.
///
/// Feed it every schedule boundary via [`SwitchCostModel::observe`]
/// (typically straight from [`BoundaryMeter::last_boundary`]): the cost
/// is the simulated seconds the boundary charged — the reconfiguration
/// window when it switched, `0.0` when the seam was amortized away.
/// [`SwitchCostModel::estimate`] then answers "what will scheduling `to`
/// right after `from` cost?" — the learned EWMA when the pair has been
/// observed, the static prior otherwise.
///
/// # Determinism
///
/// Estimates are pure functions of the per-pair observation sequences:
/// interleaving observations of *different* pairs in any order yields
/// bit-identical state (each pair owns its EWMA), and the model never
/// consults wall-clock time or randomness. Scheduling policies may
/// therefore condition on it without breaking the serving contract.
///
/// [`BoundaryMeter::last_boundary`]: crate::BoundaryMeter::last_boundary
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchCostModel {
    alpha: f64,
    /// Static prior for unobserved cross-pipeline pairs (seconds).
    prior_cross_seconds: f64,
    /// Static prior for unobserved same-pipeline pairs (seconds).
    prior_same_seconds: f64,
    pairs: BTreeMap<(Pipeline, Pipeline), PairEstimate>,
}

impl Default for SwitchCostModel {
    fn default() -> Self {
        Self::new()
    }
}

impl SwitchCostModel {
    /// An unseeded model: every unobserved pair estimates `0.0` until
    /// boundaries are observed. Prefer
    /// [`SwitchCostModel::seeded`] when the device's reconfiguration
    /// window is known — cold estimates of zero make cost-aware
    /// schedules behave as if switching were free.
    pub fn new() -> Self {
        Self {
            alpha: DEFAULT_EWMA_ALPHA,
            prior_cross_seconds: 0.0,
            prior_same_seconds: 0.0,
            pairs: BTreeMap::new(),
        }
    }

    /// A model seeded from the static table the hardware implies:
    /// crossing pipelines is presumed to cost one full reconfiguration
    /// window (`reconfig_seconds`), staying on a pipeline is presumed
    /// free (seam families usually match). Observations then pull each
    /// pair toward its true expected cost — e.g. a pipeline whose traces
    /// start and end in different families *does* pay same-pipeline
    /// boundaries, and its diagonal estimate rises accordingly.
    pub fn seeded(reconfig_seconds: f64) -> Self {
        Self {
            alpha: DEFAULT_EWMA_ALPHA,
            prior_cross_seconds: reconfig_seconds.max(0.0),
            prior_same_seconds: 0.0,
            pairs: BTreeMap::new(),
        }
    }

    /// Overrides the EWMA smoothing factor (clamped to `(0, 1]`).
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = if alpha.is_finite() {
            alpha.clamp(f64::MIN_POSITIVE, 1.0)
        } else {
            DEFAULT_EWMA_ALPHA
        };
        self
    }

    /// Pins one ordered pair's estimate (as if it had been observed
    /// once) — the escape hatch for callers with better priors than the
    /// uniform table, e.g. calibrated per-renderer switch costs.
    pub fn seed_pair(&mut self, from: Pipeline, to: Pipeline, seconds: f64) {
        self.pairs.insert(
            (from, to),
            PairEstimate {
                ewma_seconds: seconds.max(0.0),
                observations: 1,
            },
        );
    }

    /// Records one observed schedule boundary: scheduling `to` directly
    /// after `from` charged `seconds` of simulated time (`0.0` when the
    /// boundary was amortized away). Updates the ordered pair's EWMA.
    pub fn observe(&mut self, from: Pipeline, to: Pipeline, seconds: f64) {
        let seconds = seconds.max(0.0);
        let entry = self.pairs.entry((from, to));
        match entry {
            std::collections::btree_map::Entry::Occupied(mut slot) => {
                let est = slot.get_mut();
                est.ewma_seconds += self.alpha * (seconds - est.ewma_seconds);
                est.observations += 1;
            }
            std::collections::btree_map::Entry::Vacant(slot) => {
                // The first observation *replaces* the static prior
                // rather than blending with it: the prior is a table
                // default, not evidence.
                slot.insert(PairEstimate {
                    ewma_seconds: seconds,
                    observations: 1,
                });
            }
        }
    }

    /// Expected simulated seconds a schedule pays to run `to` directly
    /// after `from`: the learned EWMA when the pair has been observed,
    /// the static prior (cross vs. same pipeline) otherwise.
    pub fn estimate(&self, from: Pipeline, to: Pipeline) -> f64 {
        match self.pairs.get(&(from, to)) {
            Some(est) => est.ewma_seconds,
            None if from == to => self.prior_same_seconds,
            None => self.prior_cross_seconds,
        }
    }

    /// Expected *saving* from scheduling `keep` (staying in the current
    /// mode `from`) instead of `instead`: how much cheaper the kept
    /// boundary is expected to be. Never negative — a schedule cannot
    /// save by paying more.
    pub fn saving(&self, from: Pipeline, keep: Pipeline, instead: Pipeline) -> f64 {
        (self.estimate(from, instead) - self.estimate(from, keep)).max(0.0)
    }

    /// Expected simulated seconds one full scheduling round over
    /// `pipelines` (in the given order) pays in switch costs: the sum of
    /// the ordered consecutive-pair estimates plus the wrap-around pair
    /// from the last pipeline back to the first — a round-robin visit of
    /// every session pays exactly these boundaries. A single pipeline
    /// pays its diagonal (its frames still chain through its own seam);
    /// an empty round pays nothing. Admission control uses this to
    /// predict the switch overhead a candidate mix of sessions adds on
    /// top of their per-frame render costs.
    pub fn round_cost(&self, pipelines: &[Pipeline]) -> f64 {
        match pipelines {
            [] => 0.0,
            [only] => self.estimate(*only, *only),
            _ => pipelines
                .iter()
                .zip(pipelines.iter().cycle().skip(1))
                .map(|(&from, &to)| self.estimate(from, to))
                .sum(),
        }
    }

    /// Boundaries observed for one ordered pair.
    pub fn observations(&self, from: Pipeline, to: Pipeline) -> u64 {
        self.pairs.get(&(from, to)).map_or(0, |e| e.observations)
    }

    /// Total boundaries observed across all pairs.
    pub fn total_observations(&self) -> u64 {
        self.pairs.values().map(|e| e.observations).sum()
    }

    /// Ordered pairs with at least one observation, in `(from, to)`
    /// order (deterministic).
    pub fn observed_pairs(&self) -> impl Iterator<Item = (Pipeline, Pipeline)> + '_ {
        self.pairs.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unseen_pairs_fall_back_to_the_static_table() {
        let model = SwitchCostModel::seeded(2e-6);
        assert_eq!(model.estimate(Pipeline::Mesh, Pipeline::Mlp), 2e-6);
        assert_eq!(model.estimate(Pipeline::Mesh, Pipeline::Mesh), 0.0);
        assert_eq!(model.total_observations(), 0);
        // Unseeded model estimates zero everywhere.
        let cold = SwitchCostModel::new();
        assert_eq!(cold.estimate(Pipeline::Mesh, Pipeline::Mlp), 0.0);
    }

    #[test]
    fn ewma_converges_to_a_constant_observation() {
        let mut model = SwitchCostModel::seeded(1.0);
        for _ in 0..64 {
            model.observe(Pipeline::HashGrid, Pipeline::HashGrid, 0.5);
        }
        let est = model.estimate(Pipeline::HashGrid, Pipeline::HashGrid);
        assert!(
            (est - 0.5).abs() < 1e-9,
            "EWMA must converge to the constant signal, got {est}"
        );
        assert_eq!(
            model.observations(Pipeline::HashGrid, Pipeline::HashGrid),
            64
        );
        // The first observation replaces the prior outright.
        let mut one = SwitchCostModel::seeded(1.0);
        one.observe(Pipeline::Mesh, Pipeline::Mlp, 0.25);
        assert_eq!(one.estimate(Pipeline::Mesh, Pipeline::Mlp), 0.25);
    }

    #[test]
    fn ewma_tracks_a_shifting_signal_monotonically() {
        let mut model = SwitchCostModel::new();
        model.observe(Pipeline::Mesh, Pipeline::Gaussian3d, 0.0);
        let mut last = model.estimate(Pipeline::Mesh, Pipeline::Gaussian3d);
        for _ in 0..16 {
            model.observe(Pipeline::Mesh, Pipeline::Gaussian3d, 1.0);
            let now = model.estimate(Pipeline::Mesh, Pipeline::Gaussian3d);
            assert!(now > last, "estimate must climb toward the new level");
            assert!(now <= 1.0);
            last = now;
        }
    }

    #[test]
    fn independent_pair_observations_commute() {
        // Two interleavings of the same per-pair sequences must produce
        // bit-identical models: pairs are independent.
        let a_obs = [
            (Pipeline::Mesh, Pipeline::Mlp, 1.0e-6),
            (Pipeline::Mesh, Pipeline::Mlp, 3.0e-6),
        ];
        let b_obs = [
            (Pipeline::Gaussian3d, Pipeline::HashGrid, 2.0e-6),
            (Pipeline::Gaussian3d, Pipeline::HashGrid, 4.0e-6),
        ];
        let feed = |order: &[(Pipeline, Pipeline, f64)]| {
            let mut model = SwitchCostModel::seeded(9.0e-6);
            for &(from, to, s) in order {
                model.observe(from, to, s);
            }
            model
        };
        let interleaved = feed(&[a_obs[0], b_obs[0], a_obs[1], b_obs[1]]);
        let blocked = feed(&[b_obs[0], b_obs[1], a_obs[0], a_obs[1]]);
        assert_eq!(interleaved, blocked);
        assert_eq!(
            interleaved
                .estimate(Pipeline::Mesh, Pipeline::Mlp)
                .to_bits(),
            blocked.estimate(Pipeline::Mesh, Pipeline::Mlp).to_bits(),
            "estimates must match bit for bit"
        );
        // Order *within* one pair matters (it is an EWMA) — that is the
        // boundary of the determinism claim, not a violation of it.
        let forward = feed(&a_obs);
        let mut reversed_obs = a_obs;
        reversed_obs.reverse();
        let reversed = feed(&reversed_obs);
        assert_ne!(
            forward.estimate(Pipeline::Mesh, Pipeline::Mlp),
            reversed.estimate(Pipeline::Mesh, Pipeline::Mlp)
        );
    }

    #[test]
    fn saving_is_the_clamped_estimate_difference() {
        let mut model = SwitchCostModel::seeded(5.0e-6);
        // Staying on Mesh is free, leaving costs the prior.
        assert_eq!(
            model.saving(Pipeline::Mesh, Pipeline::Mesh, Pipeline::Mlp),
            5.0e-6
        );
        // Once the diagonal is learned to be expensive, the saving of
        // staying shrinks — and is clamped at zero when staying costs
        // *more* than leaving.
        model.seed_pair(Pipeline::Mesh, Pipeline::Mesh, 8.0e-6);
        assert_eq!(
            model.saving(Pipeline::Mesh, Pipeline::Mesh, Pipeline::Mlp),
            0.0
        );
    }

    #[test]
    fn round_cost_sums_consecutive_pairs_with_wraparound() {
        let model = SwitchCostModel::seeded(3.0e-6);
        assert_eq!(model.round_cost(&[]), 0.0);
        // A lone pipeline pays only its (free-by-prior) diagonal.
        assert_eq!(model.round_cost(&[Pipeline::Mesh]), 0.0);
        // Two distinct pipelines pay both crossings.
        assert_eq!(model.round_cost(&[Pipeline::Mesh, Pipeline::Mlp]), 6.0e-6);
        // Learned pairs participate: Mesh->Mlp learned cheap, the other
        // two boundaries of the 3-round stay at the prior.
        let mut learned = SwitchCostModel::seeded(3.0e-6);
        learned.seed_pair(Pipeline::Mesh, Pipeline::Mlp, 1.0e-6);
        let round = learned.round_cost(&[Pipeline::Mesh, Pipeline::Mlp, Pipeline::HashGrid]);
        assert!((round - 7.0e-6).abs() < 1e-18);
    }

    #[test]
    fn seed_pair_and_alpha_overrides_apply() {
        let mut model = SwitchCostModel::new().with_alpha(0.5);
        model.seed_pair(Pipeline::Mlp, Pipeline::Mesh, 4.0);
        assert_eq!(model.estimate(Pipeline::Mlp, Pipeline::Mesh), 4.0);
        assert_eq!(model.observations(Pipeline::Mlp, Pipeline::Mesh), 1);
        model.observe(Pipeline::Mlp, Pipeline::Mesh, 0.0);
        assert_eq!(model.estimate(Pipeline::Mlp, Pipeline::Mesh), 2.0);
        let pairs: Vec<_> = model.observed_pairs().collect();
        assert_eq!(pairs, vec![(Pipeline::Mlp, Pipeline::Mesh)]);
    }
}
