//! Device-independent cost vectors.
//!
//! A [`CostVector`] counts the *algorithmic* work of a micro-operator
//! invocation: arithmetic by unit type (the PE's INT16 MACs, BF16 MACs, and
//! special function units — Sec. V-C), on-chip operand traffic, off-chip
//! traffic, and logical work items. Both the Uni-Render accelerator
//! simulator and the baseline device models consume the same cost vectors,
//! which guarantees every speedup ratio in the reproduced figures compares
//! identical workloads.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Operation and byte counts for a unit of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CostVector {
    /// Integer multiply-accumulates (index arithmetic, comparisons).
    pub int_macs: u64,
    /// Floating-point (BF16-class) multiply-accumulates.
    pub fp_macs: u64,
    /// Special-function-unit operations (exp, sin/cos, rsqrt, sigmoid).
    pub sfu_ops: u64,
    /// Bytes read from on-chip scratchpads/buffers.
    pub sram_read_bytes: u64,
    /// Bytes written to on-chip scratchpads/buffers.
    pub sram_write_bytes: u64,
    /// Bytes read from external DRAM (unique-traffic lower bound).
    pub dram_read_bytes: u64,
    /// Bytes written to external DRAM.
    pub dram_write_bytes: u64,
    /// Logical work items (primitives, query points, sort keys, GEMM rows).
    pub items: u64,
}

impl CostVector {
    /// The zero cost vector (identity for [`Add`]).
    pub const ZERO: Self = Self {
        int_macs: 0,
        fp_macs: 0,
        sfu_ops: 0,
        sram_read_bytes: 0,
        sram_write_bytes: 0,
        dram_read_bytes: 0,
        dram_write_bytes: 0,
        items: 0,
    };

    /// Total MAC operations of both types.
    #[inline]
    pub fn total_macs(&self) -> u64 {
        self.int_macs + self.fp_macs
    }

    /// Total arithmetic operations including SFU ops.
    #[inline]
    pub fn total_ops(&self) -> u64 {
        self.total_macs() + self.sfu_ops
    }

    /// Total DRAM traffic in bytes.
    #[inline]
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Total on-chip traffic in bytes.
    #[inline]
    pub fn sram_bytes(&self) -> u64 {
        self.sram_read_bytes + self.sram_write_bytes
    }

    /// Arithmetic intensity: operations per DRAM byte (`f64::INFINITY` when
    /// there is no DRAM traffic).
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.dram_bytes();
        if bytes == 0 {
            f64::INFINITY
        } else {
            self.total_ops() as f64 / bytes as f64
        }
    }

    /// Scales every count by an integer factor (e.g. frames).
    pub fn scaled(&self, factor: u64) -> Self {
        Self {
            int_macs: self.int_macs * factor,
            fp_macs: self.fp_macs * factor,
            sfu_ops: self.sfu_ops * factor,
            sram_read_bytes: self.sram_read_bytes * factor,
            sram_write_bytes: self.sram_write_bytes * factor,
            dram_read_bytes: self.dram_read_bytes * factor,
            dram_write_bytes: self.dram_write_bytes * factor,
            items: self.items * factor,
        }
    }
}

impl Add for CostVector {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            int_macs: self.int_macs + rhs.int_macs,
            fp_macs: self.fp_macs + rhs.fp_macs,
            sfu_ops: self.sfu_ops + rhs.sfu_ops,
            sram_read_bytes: self.sram_read_bytes + rhs.sram_read_bytes,
            sram_write_bytes: self.sram_write_bytes + rhs.sram_write_bytes,
            dram_read_bytes: self.dram_read_bytes + rhs.dram_read_bytes,
            dram_write_bytes: self.dram_write_bytes + rhs.dram_write_bytes,
            items: self.items + rhs.items,
        }
    }
}

impl AddAssign for CostVector {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sum for CostVector {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> CostVector {
        CostVector {
            int_macs: 10,
            fp_macs: 20,
            sfu_ops: 3,
            sram_read_bytes: 100,
            sram_write_bytes: 50,
            dram_read_bytes: 40,
            dram_write_bytes: 10,
            items: 5,
        }
    }

    #[test]
    fn totals() {
        let c = sample();
        assert_eq!(c.total_macs(), 30);
        assert_eq!(c.total_ops(), 33);
        assert_eq!(c.dram_bytes(), 50);
        assert_eq!(c.sram_bytes(), 150);
    }

    #[test]
    fn zero_is_additive_identity() {
        let c = sample();
        assert_eq!(c + CostVector::ZERO, c);
    }

    #[test]
    fn arithmetic_intensity_infinite_without_dram() {
        let mut c = sample();
        c.dram_read_bytes = 0;
        c.dram_write_bytes = 0;
        assert!(c.arithmetic_intensity().is_infinite());
        assert!((sample().arithmetic_intensity() - 33.0 / 50.0).abs() < 1e-12);
    }

    #[test]
    fn sum_matches_fold() {
        let total: CostVector = (0..4).map(|_| sample()).sum();
        assert_eq!(total, sample().scaled(4));
    }

    proptest! {
        #[test]
        fn prop_add_is_commutative(
            a in 0u64..1_000_000, b in 0u64..1_000_000,
            c in 0u64..1_000_000, d in 0u64..1_000_000,
        ) {
            let x = CostVector { int_macs: a, fp_macs: b, ..CostVector::ZERO };
            let y = CostVector { int_macs: c, dram_read_bytes: d, ..CostVector::ZERO };
            prop_assert_eq!(x + y, y + x);
        }

        #[test]
        fn prop_scaled_distributes_over_add(
            a in 0u64..100_000, b in 0u64..100_000, k in 0u64..1000,
        ) {
            let x = CostVector { fp_macs: a, items: 1, ..CostVector::ZERO };
            let y = CostVector { fp_macs: b, items: 2, ..CostVector::ZERO };
            prop_assert_eq!((x + y).scaled(k), x.scaled(k) + y.scaled(k));
        }
    }
}
