//! Fleet-level serving accounts: per-shard [`ServerSummary`] roll-ups
//! plus scene-cache and migration counters.
//!
//! A fleet serves many scenes by routing sessions to per-scene server
//! shards; scene residency is a managed resource (bakes, rebakes,
//! evictions all cost something and are all counted here). Like
//! [`ServerSummary`], every number in a [`FleetSummary`] is a
//! *schedule-order* fact — populated from delivery counts and cache
//! decisions keyed to the fleet's delivered-slot clock, never from wall
//! time — so summaries are bit-identical at any `UNI_RENDER_THREADS`.

use crate::serve::{percentile, ServerSummary, SessionStats};
use serde::{Deserialize, Serialize};

/// Scene-cache counters: how often residency was reused, how often it
/// had to be (re)built, and what the builds cost.
///
/// `baked_bytes` is the bake-cost account: the cumulative resident size
/// of every bake performed, a deterministic proxy for the work spent
/// building scene residency (rebakes pay it again in full).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetCacheStats {
    /// Total bake operations (first-time bakes plus rebakes).
    pub bakes: u64,
    /// Bakes of a scene that had been resident before — eviction made
    /// this work happen twice. Always `<= bakes`.
    pub rebakes: u64,
    /// Scenes evicted to stay inside the residency budget.
    pub evictions: u64,
    /// Residency requests answered without baking.
    pub hits: u64,
    /// Cumulative bytes baked across all bake operations.
    pub baked_bytes: u64,
    /// Scenes resident when the summary was taken.
    pub resident_scenes: usize,
    /// Bytes resident when the summary was taken.
    pub resident_bytes: u64,
}

/// One scene shard's account: the scene's stable key, its routing hash,
/// and one [`ServerSummary`] per residency generation (a shard whose
/// scene was evicted and rebaked serves each generation with a fresh
/// server; generations are ordered oldest first).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSummary {
    /// Canonical scene key this shard serves.
    pub scene: String,
    /// FNV-1a routing hash of the scene key.
    pub route_hash: u64,
    /// Per-residency-generation server summaries, oldest first.
    pub servers: Vec<ServerSummary>,
}

impl ShardSummary {
    /// Frames delivered by this shard across all generations.
    pub fn scheduled_frames(&self) -> usize {
        self.servers.iter().map(|s| s.scheduled_frames).sum()
    }

    /// Deadline misses across all generations.
    pub fn deadline_misses(&self) -> u64 {
        self.servers.iter().map(|s| s.deadline_misses).sum()
    }

    /// Number of residency generations this shard has served.
    pub fn generations(&self) -> usize {
        self.servers.len()
    }

    /// Every per-session stats row across all generations.
    pub fn sessions(&self) -> impl Iterator<Item = &SessionStats> {
        self.servers.iter().flat_map(|s| s.per_session.iter())
    }
}

/// A fleet-wide serving account: per-shard roll-ups, the fleet's
/// delivered-slot clock, cache counters, and migration outcomes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSummary {
    /// Per-scene shard summaries, in shard registration order.
    pub shards: Vec<ShardSummary>,
    /// Frames delivered by the fleet (the delivered-slot clock).
    pub delivered_frames: usize,
    /// Deadline misses across every shard.
    pub deadline_misses: u64,
    /// Scene-cache counters.
    pub cache: FleetCacheStats,
    /// Migrations staged via `ServerFleet::migrate`.
    pub migrations: u64,
    /// Migrations whose session finished its hand-off (including those
    /// whose source segment drained the whole path, leaving nothing to
    /// re-admit).
    pub migrations_completed: u64,
    /// Migrations cancelled because the session closed while staged.
    pub migrations_cancelled: u64,
    /// Migrations refused by the target shard's admission control.
    pub migrations_refused: u64,
}

impl FleetSummary {
    /// Deadline misses per delivered frame of the deadline-bound
    /// sessions across every shard and generation; 0 when no session
    /// carries a deadline.
    pub fn deadline_miss_rate(&self) -> f64 {
        let bound: usize = self
            .shards
            .iter()
            .flat_map(|shard| shard.sessions())
            .filter(|s| s.deadline_hz.is_some())
            .map(|s| s.frames)
            .sum();
        if bound == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / bound as f64
        }
    }

    /// The worst (smallest) sim-time slack any deadline-bound frame was
    /// delivered with, across the fleet.
    pub fn worst_slack(&self) -> Option<f64> {
        self.shards
            .iter()
            .flat_map(|shard| shard.sessions())
            .filter_map(|s| s.worst_slack)
            .min_by(f64::total_cmp)
    }

    /// Sessions served across every shard and generation.
    pub fn session_count(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.sessions().count())
            .sum()
    }

    /// The p99 of the per-session p99 sim latencies across the fleet —
    /// the tail of the session tails, via the shared nearest-rank
    /// [`percentile`]; 0 when nothing was delivered.
    pub fn p99_sim_latency(&self) -> f64 {
        self.latency_percentile(|s| s.latency_p99, 99.0)
    }

    /// The p50 of the per-session p50 (median) sim latencies across the
    /// fleet; 0 when nothing was delivered.
    pub fn p50_sim_latency(&self) -> f64 {
        self.latency_percentile(|s| s.latency_p50, 50.0)
    }

    fn latency_percentile(&self, pick: impl Fn(&SessionStats) -> f64, p: f64) -> f64 {
        let mut sample: Vec<f64> = self
            .shards
            .iter()
            .flat_map(|shard| shard.sessions())
            .filter(|s| s.frames > 0)
            .map(pick)
            .collect();
        if sample.is_empty() {
            return 0.0;
        }
        sample.sort_by(f64::total_cmp);
        percentile(&sample, p)
    }

    /// Whether the fleet-level aggregates agree with their per-shard
    /// roll-ups, every constituent [`ServerSummary`] is itself
    /// consistent, and the cache/migration counters are arithmetically
    /// sane. Thread-invariant by construction.
    pub fn is_consistent(&self) -> bool {
        let frames: usize = self.shards.iter().map(|s| s.scheduled_frames()).sum();
        let misses: u64 = self.shards.iter().map(|s| s.deadline_misses()).sum();
        self.shards
            .iter()
            .all(|shard| shard.servers.iter().all(|s| s.is_consistent()))
            && frames == self.delivered_frames
            && misses == self.deadline_misses
            && self.cache.rebakes <= self.cache.bakes
            && self.migrations_completed + self.migrations_cancelled + self.migrations_refused
                <= self.migrations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;

    fn server_summary(frames: usize, misses: u64) -> ServerSummary {
        let mut s = SessionStats::new(0, Pipeline::Mesh);
        s.frames = frames;
        s.deadline_misses = misses;
        s.deadline_hz = if misses > 0 { Some(30.0) } else { None };
        s.worst_slack = if misses > 0 { Some(-0.5) } else { None };
        s.latency_p50 = 1.0;
        s.latency_p99 = 2.0;
        ServerSummary {
            per_session: vec![s],
            policy: "round_robin".to_string(),
            admissions: 1,
            closes: 0,
            refusals: 0,
            queued_admissions: 0,
            frames_skipped: 0,
            degraded_frames: 0,
            shed_sessions: 0,
            deadline_misses: misses,
            scheduled_frames: frames,
            total_cycles: 0,
            total_seconds: 0.0,
            in_frame_reconfigurations: 0,
            boundary_reconfigurations: 0,
            boundary_switches_avoided: 0,
        }
    }

    fn fleet_summary() -> FleetSummary {
        FleetSummary {
            shards: vec![
                ShardSummary {
                    scene: "a".to_string(),
                    route_hash: 1,
                    servers: vec![server_summary(4, 1), server_summary(2, 0)],
                },
                ShardSummary {
                    scene: "b".to_string(),
                    route_hash: 2,
                    servers: vec![server_summary(3, 0)],
                },
            ],
            delivered_frames: 9,
            deadline_misses: 1,
            cache: FleetCacheStats {
                bakes: 3,
                rebakes: 1,
                evictions: 1,
                hits: 0,
                baked_bytes: 300,
                resident_scenes: 2,
                resident_bytes: 200,
            },
            migrations: 2,
            migrations_completed: 1,
            migrations_cancelled: 1,
            migrations_refused: 0,
        }
    }

    #[test]
    fn fleet_summary_rolls_up_shards() {
        let summary = fleet_summary();
        assert!(summary.is_consistent());
        assert_eq!(summary.session_count(), 3);
        assert_eq!(summary.shards[0].scheduled_frames(), 6);
        assert_eq!(summary.shards[0].generations(), 2);
        // Miss rate over deadline-bound frames only: one bound session
        // with 4 frames, 1 miss.
        assert!((summary.deadline_miss_rate() - 0.25).abs() < 1e-12);
        assert_eq!(summary.worst_slack(), Some(-0.5));
        // All sessions share the same per-session percentiles here, so
        // the fleet-level aggregation lands on them exactly.
        assert_eq!(summary.p50_sim_latency(), 1.0);
        assert_eq!(summary.p99_sim_latency(), 2.0);
    }

    #[test]
    fn fleet_consistency_rejects_skewed_aggregates() {
        let mut skew = fleet_summary();
        skew.delivered_frames += 1;
        assert!(!skew.is_consistent(), "delivered != sum of shard frames");

        let mut skew = fleet_summary();
        skew.deadline_misses += 1;
        assert!(!skew.is_consistent(), "misses != sum of shard misses");

        let mut skew = fleet_summary();
        skew.cache.rebakes = skew.cache.bakes + 1;
        assert!(!skew.is_consistent(), "more rebakes than bakes");

        let mut skew = fleet_summary();
        skew.migrations = 0;
        assert!(!skew.is_consistent(), "migration outcomes exceed stagings");

        // A broken constituent server summary poisons the roll-up.
        let mut skew = fleet_summary();
        skew.shards[1].servers[0].total_cycles += 1;
        assert!(!skew.is_consistent(), "inconsistent shard server summary");
    }
}
