//! The Uni-Render micro-operator IR.
//!
//! Sec. IV of the paper observes that the numerous steps of all typical
//! neural rendering pipelines cluster into **five unique micro-operators**,
//! each mapping to the same two task types — one *indexing* task and one
//! *reduction* task (Tab. II). This crate is that abstraction as a data
//! model:
//!
//! - [`MicroOp`] — the five micro-operators;
//! - [`IndexingTask`] / [`ReductionTask`] — the task decomposition of
//!   Tab. II, exposed via [`MicroOp::tasks`];
//! - [`Invocation`] — one executed micro-operator instance with its workload
//!   shape (what a renderer emits when decomposing a frame);
//! - [`Trace`] — the ordered sequence of invocations for one frame;
//! - [`CostVector`] — device-independent operation/byte counts derived from
//!   a workload, consumed by both the Uni-Render accelerator simulator and
//!   the baseline device models.
//!
//! # Example
//!
//! ```
//! use uni_microops::{Invocation, MicroOp, Workload};
//!
//! let inv = Invocation::new(
//!     "mlp head",
//!     Workload::Gemm { batch: 1024, in_dim: 32, out_dim: 16, weight_bytes: 1024 },
//! );
//! assert_eq!(inv.op(), MicroOp::Gemm);
//! assert_eq!(inv.cost().fp_macs, 1024 * 32 * 16);
//! ```

pub mod cost;
pub mod fleet;
pub mod invoke;
pub mod op;
pub mod pipeline;
pub mod serve;
pub mod stats;
pub mod switch;
pub mod trace;

pub use cost::CostVector;
pub use fleet::{FleetCacheStats, FleetSummary, ShardSummary};
pub use invoke::{Invocation, PrimitiveKind, Workload};
pub use op::{Dims, IndexFunction, IndexingTask, MemAccessPattern, MicroOp, ReductionTask};
pub use pipeline::Pipeline;
pub use serve::{percentile, BoundaryEvent, BoundaryMeter, ServerSummary, SessionStats};
pub use stats::TraceStats;
pub use switch::SwitchCostModel;
pub use trace::Trace;
