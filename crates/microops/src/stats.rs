//! Aggregated trace statistics: per-micro-op cost totals and shares.

use crate::cost::CostVector;
use crate::op::MicroOp;
use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Per-micro-op cost aggregation over a [`Trace`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceStats {
    per_op: BTreeMap<MicroOp, CostVector>,
    invocation_counts: BTreeMap<MicroOp, u64>,
    total: CostVector,
}

impl TraceStats {
    /// Builds statistics from a trace.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut stats = Self::default();
        for inv in trace.iter() {
            let cost = inv.cost();
            *stats.per_op.entry(inv.op()).or_default() += cost;
            *stats.invocation_counts.entry(inv.op()).or_insert(0) += 1;
            stats.total += cost;
        }
        stats
    }

    /// Total cost across all invocations.
    pub fn total(&self) -> CostVector {
        self.total
    }

    /// Cost attributed to one micro-operator (zero if absent).
    pub fn cost_of(&self, op: MicroOp) -> CostVector {
        self.per_op.get(&op).copied().unwrap_or(CostVector::ZERO)
    }

    /// Number of invocations of one micro-operator.
    pub fn invocations_of(&self, op: MicroOp) -> u64 {
        self.invocation_counts.get(&op).copied().unwrap_or(0)
    }

    /// The fraction of total MACs attributed to one micro-operator, in
    /// `[0, 1]`; 0 when the trace does no MAC work.
    pub fn mac_share(&self, op: MicroOp) -> f64 {
        let total = self.total.total_macs();
        if total == 0 {
            0.0
        } else {
            self.cost_of(op).total_macs() as f64 / total as f64
        }
    }

    /// Iterates over `(micro-op, cost)` pairs in enum order.
    pub fn iter(&self) -> impl Iterator<Item = (MicroOp, &CostVector)> {
        self.per_op.iter().map(|(k, v)| (*k, v))
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<26} {:>6} {:>14} {:>14} {:>10} {:>12}",
            "micro-op", "invs", "int MACs", "fp MACs", "sfu", "dram bytes"
        )?;
        for (op, cost) in self.iter() {
            writeln!(
                f,
                "{:<26} {:>6} {:>14} {:>14} {:>10} {:>12}",
                op.to_string(),
                self.invocations_of(op),
                cost.int_macs,
                cost.fp_macs,
                cost.sfu_ops,
                cost.dram_bytes(),
            )?;
        }
        write!(
            f,
            "{:<26} {:>6} {:>14} {:>14} {:>10} {:>12}",
            "total",
            self.invocation_counts.values().sum::<u64>(),
            self.total.int_macs,
            self.total.fp_macs,
            self.total.sfu_ops,
            self.total.dram_bytes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invoke::{Invocation, Workload};
    use crate::pipeline::Pipeline;

    fn sample_trace() -> Trace {
        let mut t = Trace::new(Pipeline::Gaussian3d, 32, 32);
        t.push(Invocation::new(
            "mlp",
            Workload::Gemm {
                batch: 64,
                in_dim: 4,
                out_dim: 4,
                weight_bytes: 32,
            },
        ));
        t.push(Invocation::new(
            "mlp2",
            Workload::Gemm {
                batch: 64,
                in_dim: 4,
                out_dim: 4,
                weight_bytes: 32,
            },
        ));
        t.push(Invocation::new(
            "sort",
            Workload::Sort {
                patches: 4,
                keys_per_patch: 16.0,
                entry_bytes: 8,
            },
        ));
        t
    }

    #[test]
    fn per_op_totals_and_counts() {
        let stats = sample_trace().stats();
        assert_eq!(stats.invocations_of(MicroOp::Gemm), 2);
        assert_eq!(stats.invocations_of(MicroOp::Sorting), 1);
        assert_eq!(stats.invocations_of(MicroOp::GeometricProcessing), 0);
        assert_eq!(stats.cost_of(MicroOp::Gemm).fp_macs, 2 * 64 * 16);
    }

    #[test]
    fn total_equals_sum_of_parts() {
        let stats = sample_trace().stats();
        let sum: CostVector = stats.iter().map(|(_, c)| *c).sum();
        assert_eq!(sum, stats.total());
    }

    #[test]
    fn mac_shares_sum_to_one() {
        let stats = sample_trace().stats();
        let s: f64 = MicroOp::ALL.iter().map(|&op| stats.mac_share(op)).sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_has_zero_shares() {
        let stats = Trace::new(Pipeline::Mesh, 8, 8).stats();
        assert_eq!(stats.mac_share(MicroOp::Gemm), 0.0);
        assert_eq!(stats.total(), CostVector::ZERO);
    }

    #[test]
    fn display_mentions_every_present_op() {
        let s = sample_trace().stats().to_string();
        assert!(s.contains("GEMM"));
        assert!(s.contains("Sorting"));
        assert!(s.contains("total"));
    }
}
