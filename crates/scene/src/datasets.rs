//! Dataset catalogs mirroring the paper's benchmarks.
//!
//! The paper evaluates on the **Unbounded-360** dataset [8] (Mip-NeRF 360
//! captures, rendered at 1280×720 following [51], [88]) and the
//! **NeRF-Synthetic** dataset [67] (800×800, Tab. IV following [48], [50]).
//! We cannot ship those captures, so each catalog entry is a procedural
//! [`SceneSpec`] whose name, flavor, and representation sizing mirror the
//! published scene; rendering *speed* depends on these workload shapes, not
//! on the captured pixels (see DESIGN.md's substitution table).

use crate::synthetic::{ReprParams, SceneFlavor, SceneSpec};
use serde::{Deserialize, Serialize};

/// The benchmark rendering resolution for Unbounded-360 scenes
/// (1280×720, following MixRT [51] and MeRF [88]).
pub const UNBOUNDED360_RESOLUTION: (u32, u32) = (1280, 720);

/// The benchmark rendering resolution for NeRF-Synthetic scenes (800×800).
pub const NERF_SYNTHETIC_RESOLUTION: (u32, u32) = (800, 800);

/// A catalog entry: a named scene spec plus its benchmark resolution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetScene {
    /// The procedural spec standing in for the captured scene.
    pub spec: SceneSpec,
    /// Benchmark rendering resolution `(width, height)`.
    pub resolution: (u32, u32),
}

impl DatasetScene {
    /// The scene name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }
}

fn unbounded_entry(name: &str, seed: u64, indoor: bool, objects: u32, detail: f32) -> DatasetScene {
    let flavor = if indoor {
        SceneFlavor::Indoor
    } else {
        SceneFlavor::Outdoor
    };
    let mut spec = SceneSpec {
        name: name.to_string(),
        seed,
        flavor,
        object_count: objects,
        extent: if indoor { 4.0 } else { 10.0 },
        detail: 1.0,
        repr: ReprParams::unbounded_scale(),
    };
    spec = spec.with_detail(detail);
    DatasetScene {
        spec,
        resolution: UNBOUNDED360_RESOLUTION,
    }
}

/// The Unbounded-360 catalog: the seven publicly accessible Mip-NeRF 360
/// scenes plus the two held-back ones, in the dataset's usual order.
///
/// `detail` scales representation sizes (1.0 = full benchmark scale; tests
/// should pass something small).
pub fn unbounded360(detail: f32) -> Vec<DatasetScene> {
    vec![
        unbounded_entry("bicycle", 360_001, false, 9, detail),
        unbounded_entry("flowers", 360_002, false, 12, detail),
        unbounded_entry("garden", 360_003, false, 8, detail),
        unbounded_entry("stump", 360_004, false, 6, detail),
        unbounded_entry("treehill", 360_005, false, 7, detail),
        unbounded_entry("room", 360_006, true, 8, detail),
        unbounded_entry("counter", 360_007, true, 10, detail),
        unbounded_entry("kitchen", 360_008, true, 9, detail),
        unbounded_entry("bonsai", 360_009, true, 7, detail),
    ]
}

/// The four indoor Unbounded-360 scenes used by the hybrid-pipeline
/// evaluation (Fig. 17: Room, Counter, Kitchen, Bonsai).
pub fn unbounded360_indoor(detail: f32) -> Vec<DatasetScene> {
    unbounded360(detail)
        .into_iter()
        .filter(|s| matches!(s.name(), "room" | "counter" | "kitchen" | "bonsai"))
        .collect()
}

/// The NeRF-Synthetic catalog: the eight Blender object scenes.
pub fn nerf_synthetic(detail: f32) -> Vec<DatasetScene> {
    let names: [(&str, u64, u32); 8] = [
        ("chair", 800_001, 5),
        ("drums", 800_002, 8),
        ("ficus", 800_003, 7),
        ("hotdog", 800_004, 4),
        ("lego", 800_005, 9),
        ("materials", 800_006, 10),
        ("mic", 800_007, 5),
        ("ship", 800_008, 8),
    ];
    names
        .into_iter()
        .map(|(name, seed, objects)| {
            let mut spec = SceneSpec {
                name: name.to_string(),
                seed,
                flavor: SceneFlavor::Object,
                object_count: objects,
                extent: 1.5,
                detail: 1.0,
                repr: ReprParams::object_scale(),
            };
            spec = spec.with_detail(detail);
            DatasetScene {
                spec,
                resolution: NERF_SYNTHETIC_RESOLUTION,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_has_nine_scenes_with_four_indoor() {
        let all = unbounded360(1.0);
        assert_eq!(all.len(), 9);
        let indoor = unbounded360_indoor(1.0);
        assert_eq!(indoor.len(), 4);
        let names: Vec<&str> = indoor.iter().map(DatasetScene::name).collect();
        assert_eq!(names, vec!["room", "counter", "kitchen", "bonsai"]);
    }

    #[test]
    fn nerf_synthetic_has_eight_object_scenes() {
        let scenes = nerf_synthetic(1.0);
        assert_eq!(scenes.len(), 8);
        for s in &scenes {
            assert_eq!(s.spec.flavor, SceneFlavor::Object);
            assert_eq!(s.resolution, (800, 800));
        }
    }

    #[test]
    fn unbounded_resolution_matches_paper() {
        assert_eq!(UNBOUNDED360_RESOLUTION, (1280, 720));
        for s in unbounded360(1.0) {
            assert_eq!(s.resolution, (1280, 720));
        }
    }

    #[test]
    fn scene_names_are_unique() {
        let mut names: Vec<String> = unbounded360(1.0)
            .iter()
            .chain(nerf_synthetic(1.0).iter())
            .map(|s| s.name().to_string())
            .collect();
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn detail_flows_into_specs() {
        let small = unbounded360(0.1);
        assert!((small[0].spec.detail - 0.1).abs() < 1e-6);
    }

    #[test]
    fn indoor_scenes_differ_in_content_from_each_other() {
        let indoor = unbounded360_indoor(0.5);
        let f0 = indoor[0].spec.build_field();
        let f1 = indoor[1].spec.build_field();
        assert_ne!(f0.primitives().len(), 0);
        // Seeds differ, so primitive placement differs.
        let p = uni_geometry::Vec3::new(0.5, 0.5, 0.5);
        assert_ne!(f0.sdf(p), f1.sdf(p));
    }
}
