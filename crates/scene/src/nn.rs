//! Dense MLPs with forward, backprop, and Adam training.
//!
//! Neural rendering "learns the physical parameters through gradient
//! descents" (Fig. 1a). This module provides the genuinely neural part of
//! the reproduction: the MLPs used by every pipeline's decode/shading head
//! and the KiloNeRF-style tiny scene MLPs, trainable against the analytic
//! field with Adam.
//!
//! Weights are `f32`; the accelerator executes them as BF16 GEMMs — the
//! workload shape (layer dims, batch) is what the traces carry.
//!
//! All weight blocks, gradient blocks, and training batches live in
//! contiguous row-major [`FlatMat`] buffers, and the hot forward path
//! ([`Mlp::forward_scratch`]) writes into a caller-owned [`MlpScratch`] so
//! per-sample decoding allocates nothing.

use serde::{Deserialize, Serialize};
use std::sync::OnceLock;
use uni_geometry::sampling::XorShift64;
use uni_geometry::{F32x8, FlatMat, Vec3};

/// Activation function applied after a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Identity.
    Linear,
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid (SFU op on the accelerator).
    Sigmoid,
}

impl Activation {
    // uni-lint: hot
    fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Linear => x,
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative expressed in terms of the *activated* output `y`.
    fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Linear => 1.0,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
        }
    }

    /// Whether this activation runs on the PE's special function units.
    pub fn uses_sfu(self) -> bool {
        matches!(self, Activation::Sigmoid)
    }
}

/// Layer weights repacked into 8-output column panels for the wide GEMM
/// microkernel.
///
/// Panel `p` covers outputs `8p..8p+8` and stores, for each input `i`,
/// the eight weights `W[8p + lane][i]` contiguously — so one broadcast
/// of `x[i]` multiplies against one aligned 8-lane load and eight output
/// neurons accumulate per inner-loop step. Outputs past `out_dim` are
/// zero-padded; the tail store masks them off.
#[derive(Debug, Clone, Default)]
struct PackedPanels {
    /// `panels * in_dim * 8` weights, panel-major then input-major.
    weights: Vec<f32>,
    /// Biases padded to `panels * 8`.
    biases: Vec<f32>,
}

impl PackedPanels {
    fn pack(weights: &FlatMat, biases: &[f32]) -> Self {
        let (out_dim, in_dim) = (weights.rows(), weights.cols());
        let panels = out_dim.div_ceil(8);
        // uni-lint: allow(R8, one-time get_or_init panel packing, amortized across every frame — steady_state_alloc confirms 0/frame)
        let mut packed = vec![0.0f32; panels * in_dim * 8];
        for (o, _) in biases.iter().enumerate() {
            let row = weights.row(o);
            let (panel, lane) = (o / 8, o % 8);
            let base = panel * in_dim * 8;
            for (i, &w) in row.iter().enumerate() {
                packed[base + i * 8 + lane] = w;
            }
        }
        // uni-lint: allow(R8, one-time get_or_init bias padding, amortized across every frame — steady_state_alloc confirms 0/frame)
        let mut padded = vec![0.0f32; panels * 8];
        padded[..out_dim].copy_from_slice(biases);
        Self {
            weights: packed,
            biases: padded,
        }
    }
}

/// One dense layer: `y = act(W x + b)` with `W` a row-major
/// `out_dim × in_dim` [`FlatMat`] (row `o` holds the weights into output
/// `o`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Layer {
    weights: FlatMat,
    biases: Vec<f32>,
    activation: Activation,
    /// Lazily packed panel cache for the wide kernel; invalidated by
    /// [`Layer::weights_mut`]. Derived from `weights`/`biases`, so it is
    /// excluded from equality.
    packed: OnceLock<PackedPanels>,
}

impl PartialEq for Layer {
    fn eq(&self, other: &Self) -> bool {
        self.weights == other.weights
            && self.biases == other.biases
            && self.activation == other.activation
    }
}

impl Layer {
    /// He-style random initialization.
    pub fn random(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut XorShift64,
    ) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "layer dims must be positive");
        let scale = (2.0 / in_dim as f32).sqrt();
        let weights =
            FlatMat::from_fn(out_dim, in_dim, |_, _| (rng.next_f32() * 2.0 - 1.0) * scale);
        Self {
            weights,
            biases: vec![0.0; out_dim],
            activation,
            packed: OnceLock::new(),
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.weights.rows()
    }

    /// The activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Number of parameters (weights + biases).
    pub fn param_count(&self) -> usize {
        self.weights.len() + self.biases.len()
    }

    /// The weight block (`out_dim × in_dim`, row-major).
    pub fn weights(&self) -> &FlatMat {
        &self.weights
    }

    /// Mutable weight access for constructed (hand-baked) decoders.
    ///
    /// Invalidates the packed panel cache: the next wide forward repacks
    /// from the updated weights.
    pub fn weights_mut(&mut self) -> (&mut [f32], &mut [f32]) {
        self.packed.take();
        (self.weights.as_mut_slice(), &mut self.biases)
    }

    /// Computes the layer into a preallocated slice of width `out_dim`
    /// with the production kernel (8-wide GEMM panels under the `simd`
    /// feature, the seed-era row-dot otherwise).
    pub fn forward_into(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.in_dim(), "input width mismatch");
        assert_eq!(out.len(), self.out_dim(), "output width mismatch");
        self.forward_slice(x, out);
    }

    /// Computes the layer with the seed-era scalar row-dot kernel — the
    /// reference the wide kernel is parity-tested against, and the
    /// baseline the `render_scalar` paths keep for honest speedups.
    pub fn forward_into_scalar(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.in_dim(), "input width mismatch");
        assert_eq!(out.len(), self.out_dim(), "output width mismatch");
        self.forward_slice_scalar(x, out);
    }

    #[cfg(feature = "simd")]
    fn forward_slice(&self, x: &[f32], out: &mut [f32]) {
        self.forward_slice_packed(x, out);
    }

    #[cfg(not(feature = "simd"))]
    fn forward_slice(&self, x: &[f32], out: &mut [f32]) {
        self.forward_slice_scalar(x, out);
    }

    /// 8-wide GEMM microkernel: eight output neurons accumulate per
    /// inner-loop step from one broadcast input against one packed panel
    /// column, on four independent accumulator registers (the mul→add
    /// chain latency hides behind four in-flight columns per iteration);
    /// the activation is applied vector-wide. The reduction order is
    /// fixed (accumulators combined pairwise once at the end), so
    /// results are bit-stable across runs and across
    /// `UNI_RENDER_THREADS`.
    // uni-lint: hot
    #[cfg_attr(not(feature = "simd"), allow(dead_code))]
    fn forward_slice_packed(&self, x: &[f32], out: &mut [f32]) {
        debug_assert_eq!(x.len(), self.in_dim());
        debug_assert_eq!(out.len(), self.out_dim());
        let packed = self
            .packed
            .get_or_init(|| PackedPanels::pack(&self.weights, &self.biases));
        let in_dim = x.len();
        let panels = packed.biases.len() / 8;
        for p in 0..panels {
            let panel = &packed.weights[p * in_dim * 8..(p + 1) * in_dim * 8];
            let mut acc0 = F32x8::ZERO;
            let mut acc1 = F32x8::ZERO;
            let mut acc2 = F32x8::ZERO;
            let mut acc3 = F32x8::ZERO;
            // Zipped chunks keep the input broadcast bounds-check-free,
            // so the loop body is pure vector loads and arithmetic.
            let mut quads = panel.chunks_exact(32);
            let mut inputs = x.chunks_exact(4);
            for (quad, x4) in (&mut quads).zip(&mut inputs) {
                acc0 = F32x8::load(&quad[..8]).mul_add(F32x8::splat(x4[0]), acc0);
                acc1 = F32x8::load(&quad[8..16]).mul_add(F32x8::splat(x4[1]), acc1);
                acc2 = F32x8::load(&quad[16..24]).mul_add(F32x8::splat(x4[2]), acc2);
                acc3 = F32x8::load(&quad[24..32]).mul_add(F32x8::splat(x4[3]), acc3);
            }
            // Up to three tail columns; straight-line reassignments keep
            // the accumulators in registers (no `&mut` through a match).
            let tail = quads.remainder();
            let xt = inputs.remainder();
            if !xt.is_empty() {
                acc0 = F32x8::load(&tail[..8]).mul_add(F32x8::splat(xt[0]), acc0);
            }
            if xt.len() >= 2 {
                acc1 = F32x8::load(&tail[8..16]).mul_add(F32x8::splat(xt[1]), acc1);
            }
            if xt.len() >= 3 {
                acc2 = F32x8::load(&tail[16..24]).mul_add(F32x8::splat(xt[2]), acc2);
            }
            let pre = F32x8::load(&packed.biases[p * 8..]) + ((acc0 + acc1) + (acc2 + acc3));
            let act = match self.activation {
                Activation::Linear => pre,
                Activation::Relu => pre.relu(),
                Activation::Sigmoid => pre.map(|v| 1.0 / (1.0 + (-v).exp())),
            };
            act.store_prefix(&mut out[p * 8..]);
        }
    }

    /// The seed-era kernel: one row-dot per output on four independent
    /// accumulators.
    // uni-lint: hot
    fn forward_slice_scalar(&self, x: &[f32], out: &mut [f32]) {
        debug_assert_eq!(x.len(), self.in_dim());
        debug_assert_eq!(out.len(), self.out_dim());
        let head = x.len() & !3;
        for (o, out_v) in out.iter_mut().enumerate() {
            let row = self.weights.row(o);
            let mut acc = [0f32; 4];
            for (r4, x4) in row[..head].chunks_exact(4).zip(x[..head].chunks_exact(4)) {
                acc[0] += r4[0] * x4[0];
                acc[1] += r4[1] * x4[1];
                acc[2] += r4[2] * x4[2];
                acc[3] += r4[3] * x4[3];
            }
            let mut sum = self.biases[o] + ((acc[0] + acc[1]) + (acc[2] + acc[3]));
            for (w, xi) in row[head..].iter().zip(&x[head..]) {
                sum += w * xi;
            }
            *out_v = self.activation.apply(sum);
        }
    }
}

/// Reusable forward-pass buffers for [`Mlp::forward_scratch`].
///
/// The volume pipelines decode features through an MLP once per sample;
/// holding one scratch per worker thread keeps that path allocation-free.
#[derive(Debug, Clone, Default)]
pub struct MlpScratch {
    cur: Vec<f32>,
    next: Vec<f32>,
}

/// A multi-layer perceptron.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Layer>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths.
    ///
    /// `dims = [in, h1, ..., out]`; hidden layers use `hidden`, the final
    /// layer uses `output`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given.
    pub fn new(
        dims: &[usize],
        hidden: Activation,
        output: Activation,
        rng: &mut XorShift64,
    ) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 2 == dims.len() { output } else { hidden };
                Layer::random(w[0], w[1], act, rng)
            })
            .collect();
        Self { layers }
    }

    /// The layers.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable layer access for constructed decoders.
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("nonempty").out_dim()
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Bytes of BF16 weights as stored on the accelerator.
    pub fn weight_bytes(&self) -> u64 {
        self.param_count() as u64 * 2
    }

    /// Forward pass.
    ///
    /// Allocates a fresh output; hot paths should prefer
    /// [`Mlp::forward_scratch`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input width.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut scratch = MlpScratch::default();
        self.forward_scratch(x, &mut scratch).to_vec()
    }

    /// Forward pass into caller-owned scratch; returns the output slice.
    ///
    /// Repeated calls reuse the scratch capacity, so steady-state decoding
    /// performs no allocations.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input width.
    pub fn forward_scratch<'s>(&self, x: &[f32], scratch: &'s mut MlpScratch) -> &'s [f32] {
        assert_eq!(x.len(), self.in_dim(), "input width mismatch");
        scratch.cur.clear();
        scratch.cur.extend_from_slice(x);
        for layer in &self.layers {
            scratch.next.clear();
            scratch.next.resize(layer.out_dim(), 0.0);
            layer.forward_slice(&scratch.cur, &mut scratch.next);
            std::mem::swap(&mut scratch.cur, &mut scratch.next);
        }
        &scratch.cur
    }

    /// Forward pass through the seed-era scalar kernel.
    ///
    /// The `render_scalar` reference paths use this so the committed
    /// speedup baselines keep measuring the seed's row-dot code, and the
    /// parity suite compares the wide kernel against it.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input width.
    pub fn forward_scalar(&self, x: &[f32]) -> Vec<f32> {
        let mut scratch = MlpScratch::default();
        self.forward_scratch_scalar(x, &mut scratch).to_vec()
    }

    /// Scalar-kernel twin of [`Mlp::forward_scratch`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input width.
    pub fn forward_scratch_scalar<'s>(&self, x: &[f32], scratch: &'s mut MlpScratch) -> &'s [f32] {
        assert_eq!(x.len(), self.in_dim(), "input width mismatch");
        scratch.cur.clear();
        scratch.cur.extend_from_slice(x);
        for layer in &self.layers {
            scratch.next.clear();
            scratch.next.resize(layer.out_dim(), 0.0);
            layer.forward_slice_scalar(&scratch.cur, &mut scratch.next);
            std::mem::swap(&mut scratch.cur, &mut scratch.next);
        }
        &scratch.cur
    }

    /// Forward pass retaining every layer's activated output (for
    /// backprop) in one contiguous arena. Segment 0 holds the input.
    fn forward_cached_into(&self, x: &[f32], arena: &mut ActivationArena) {
        arena.data.clear();
        arena.offsets.clear();
        arena.offsets.push(0);
        arena.data.extend_from_slice(x);
        arena.offsets.push(arena.data.len());
        for layer in &self.layers {
            let in_start = arena.offsets[arena.offsets.len() - 2];
            let in_end = arena.offsets[arena.offsets.len() - 1];
            arena.data.resize(in_end + layer.out_dim(), 0.0);
            let (head, tail) = arena.data.split_at_mut(in_end);
            layer.forward_slice(&head[in_start..], tail);
            arena.offsets.push(arena.data.len());
        }
    }
}

/// Per-example activations stored as one flat buffer with segment
/// offsets — the allocation-free replacement for the seed's
/// `Vec<Vec<f32>>` activation cache.
#[derive(Debug, Clone, Default)]
struct ActivationArena {
    data: Vec<f32>,
    /// `offsets[i]..offsets[i + 1]` is segment `i`; segment 0 is the
    /// input, segment `i + 1` is layer `i`'s activated output.
    offsets: Vec<usize>,
}

impl ActivationArena {
    fn segment(&self, i: usize) -> &[f32] {
        &self.data[self.offsets[i]..self.offsets[i + 1]]
    }
}

/// Per-layer bias-shaped `f32` segments in **one** flat allocation —
/// the jagged companion to the `FlatMat` weight blocks (layers have
/// different widths, so this is offsets-into-a-buffer rather than a
/// dense matrix; nested `Vec<Vec<f32>>` is barred from the hot crates).
#[derive(Debug, Clone, Default)]
struct LayerSegments {
    data: Vec<f32>,
    /// `offsets[i]..offsets[i + 1]` is layer `i`'s segment.
    offsets: Vec<usize>,
}

impl LayerSegments {
    /// One zeroed segment of `out_dim` floats per layer of `mlp`.
    fn bias_shaped(mlp: &Mlp) -> Self {
        let mut offsets = Vec::with_capacity(mlp.layers.len() + 1);
        offsets.push(0usize);
        for l in &mlp.layers {
            offsets.push(offsets.last().copied().unwrap_or(0) + l.out_dim());
        }
        Self {
            data: vec![0.0; offsets.last().copied().unwrap_or(0)],
            offsets,
        }
    }

    fn seg(&self, i: usize) -> &[f32] {
        &self.data[self.offsets[i]..self.offsets[i + 1]]
    }

    fn seg_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[self.offsets[i]..self.offsets[i + 1]]
    }

    fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }
}

/// Per-layer gradients matching an [`Mlp`]'s parameters.
#[derive(Debug, Clone, Default)]
struct Gradients {
    weights: Vec<FlatMat>,
    biases: LayerSegments,
}

impl Gradients {
    fn zeros_like(mlp: &Mlp) -> Self {
        Self {
            weights: mlp
                .layers
                .iter()
                .map(|l| FlatMat::zeros(l.out_dim(), l.in_dim()))
                .collect(),
            biases: LayerSegments::bias_shaped(mlp),
        }
    }

    fn zero(&mut self) {
        for w in &mut self.weights {
            w.fill(0.0);
        }
        self.biases.fill(0.0);
    }
}

/// Adam optimizer state for one MLP.
#[derive(Debug, Clone)]
pub struct AdamTrainer {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step: u64,
    m_w: Vec<FlatMat>,
    v_w: Vec<FlatMat>,
    m_b: LayerSegments,
    v_b: LayerSegments,
    // Reused across steps so steady-state training is allocation-free.
    grads: Gradients,
    arena: ActivationArena,
    delta: Vec<f32>,
    prev_delta: Vec<f32>,
}

impl AdamTrainer {
    /// Creates a trainer for `mlp` with learning rate `lr`.
    pub fn new(mlp: &Mlp, lr: f32) -> Self {
        let weight_shaped = || -> Vec<FlatMat> {
            mlp.layers
                .iter()
                .map(|l| FlatMat::zeros(l.out_dim(), l.in_dim()))
                .collect()
        };
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step: 0,
            m_w: weight_shaped(),
            v_w: weight_shaped(),
            m_b: LayerSegments::bias_shaped(mlp),
            v_b: LayerSegments::bias_shaped(mlp),
            grads: Gradients::zeros_like(mlp),
            arena: ActivationArena::default(),
            delta: Vec::new(),
            prev_delta: Vec::new(),
        }
    }

    /// Runs one minibatch step of MSE regression; returns the batch loss.
    ///
    /// `inputs` is `batch × in_dim`, `targets` is `batch × out_dim` (one
    /// example per row).
    ///
    /// # Panics
    ///
    /// Panics if batch sizes differ, the batch is empty, or row widths
    /// mismatch the network dims.
    pub fn train_step(&mut self, mlp: &mut Mlp, inputs: &FlatMat, targets: &FlatMat) -> f32 {
        assert_eq!(inputs.rows(), targets.rows(), "batch size mismatch");
        assert!(inputs.rows() > 0, "empty batch");
        assert_eq!(inputs.cols(), mlp.in_dim(), "input width mismatch");
        assert_eq!(targets.cols(), mlp.out_dim(), "target width mismatch");
        self.grads.zero();
        let mut loss = 0.0f32;
        let inv_n = 1.0 / inputs.rows() as f32;

        for b in 0..inputs.rows() {
            let (x, t) = (inputs.row(b), targets.row(b));
            mlp.forward_cached_into(x, &mut self.arena);
            let y = self.arena.segment(mlp.layers.len());
            // dL/dy for MSE (factor 2 folded into the learning rate
            // convention: L = mean((y - t)^2)).
            self.delta.clear();
            self.delta.extend(y.iter().zip(t).map(|(yi, ti)| {
                let d = yi - ti;
                loss += d * d * inv_n / y.len() as f32;
                2.0 * d * inv_n / y.len() as f32
            }));

            for (li, layer) in mlp.layers.iter().enumerate().rev() {
                let out = self.arena.segment(li + 1);
                let input = self.arena.segment(li);
                // Through the activation.
                for (d, &o) in self.delta.iter_mut().zip(out) {
                    *d *= layer.activation.derivative_from_output(o);
                }
                // Accumulate parameter grads and propagate.
                let gw = &mut self.grads.weights[li];
                let gb = self.grads.biases.seg_mut(li);
                self.prev_delta.clear();
                self.prev_delta.resize(layer.in_dim(), 0.0);
                for (o, gb_o) in gb.iter_mut().enumerate() {
                    let d = self.delta[o];
                    *gb_o += d;
                    let row = layer.weights.row(o);
                    let grow = gw.row_mut(o);
                    for i in 0..layer.in_dim() {
                        grow[i] += d * input[i];
                        self.prev_delta[i] += d * row[i];
                    }
                }
                std::mem::swap(&mut self.delta, &mut self.prev_delta);
            }
        }

        // Adam update.
        self.step += 1;
        let t = self.step as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for (li, layer) in mlp.layers.iter_mut().enumerate() {
            let (w, b) = layer.weights_mut();
            for (i, wi) in w.iter_mut().enumerate() {
                let g = self.grads.weights[li].as_slice()[i];
                let m = &mut self.m_w[li].as_mut_slice()[i];
                *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                let v = &mut self.v_w[li].as_mut_slice()[i];
                *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
                let m_hat = self.m_w[li].as_slice()[i] / bc1;
                let v_hat = self.v_w[li].as_slice()[i] / bc2;
                *wi -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            let gb = self.grads.biases.seg(li);
            let mb = self.m_b.seg_mut(li);
            let vb = self.v_b.seg_mut(li);
            for (i, bi) in b.iter_mut().enumerate() {
                let g = gb[i];
                let m = &mut mb[i];
                let v = &mut vb[i];
                *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
                *bi -= self.lr * (*m / bc1) / ((*v / bc2).sqrt() + self.eps);
            }
        }
        loss
    }
}

/// NeRF-style sinusoidal positional encoding of a 3D point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PositionalEncoding {
    /// Number of frequency octaves.
    pub num_freqs: u32,
    /// Whether the raw coordinates are included.
    pub include_input: bool,
}

impl PositionalEncoding {
    /// Creates an encoding with `num_freqs` octaves, including the input.
    pub fn new(num_freqs: u32) -> Self {
        Self {
            num_freqs,
            include_input: true,
        }
    }

    /// Output width for a 3D input.
    pub fn out_dim(&self) -> usize {
        (if self.include_input { 3 } else { 0 }) + 6 * self.num_freqs as usize
    }

    /// SFU operations per encoded point (one sin and one cos per axis and
    /// octave).
    pub fn sfu_ops_per_point(&self) -> u64 {
        6 * u64::from(self.num_freqs)
    }

    /// Encodes a point.
    pub fn encode(&self, p: Vec3) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.out_dim());
        self.encode_into(p, &mut out);
        out
    }

    /// Encodes a point into a reused buffer (allocation-free hot path).
    pub fn encode_into(&self, p: Vec3, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.out_dim());
        if self.include_input {
            out.extend_from_slice(&[p.x, p.y, p.z]);
        }
        let mut freq = 1.0f32;
        for _ in 0..self.num_freqs {
            for c in [p.x, p.y, p.z] {
                out.push((c * freq * std::f32::consts::PI).sin());
            }
            for c in [p.x, p.y, p.z] {
                out.push((c * freq * std::f32::consts::PI).cos());
            }
            freq *= 2.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> XorShift64 {
        XorShift64::new(1234)
    }

    fn batch_of(rows: &[&[f32]]) -> FlatMat {
        let mut m = FlatMat::with_row_capacity(rows.len(), rows[0].len());
        for r in rows {
            m.push_row(r);
        }
        m
    }

    #[test]
    fn forward_shapes() {
        let mlp = Mlp::new(&[3, 8, 2], Activation::Relu, Activation::Linear, &mut rng());
        assert_eq!(mlp.in_dim(), 3);
        assert_eq!(mlp.out_dim(), 2);
        assert_eq!(mlp.param_count(), 3 * 8 + 8 + 8 * 2 + 2);
        let y = mlp.forward(&[0.1, 0.2, 0.3]);
        assert_eq!(y.len(), 2);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn forward_scratch_matches_forward_and_reuses_buffers() {
        let mlp = Mlp::new(
            &[3, 16, 4],
            Activation::Relu,
            Activation::Sigmoid,
            &mut rng(),
        );
        let mut scratch = MlpScratch::default();
        for i in 0..8 {
            let x = [0.1 * i as f32, -0.2, 0.3];
            let expected = mlp.forward(&x);
            let got = mlp.forward_scratch(&x, &mut scratch);
            assert_eq!(got, expected.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn forward_rejects_wrong_width() {
        let mlp = Mlp::new(&[3, 2], Activation::Relu, Activation::Linear, &mut rng());
        mlp.forward(&[1.0]);
    }

    #[test]
    fn sigmoid_output_is_bounded() {
        let mlp = Mlp::new(
            &[2, 8, 1],
            Activation::Relu,
            Activation::Sigmoid,
            &mut rng(),
        );
        for i in 0..20 {
            let y = mlp.forward(&[i as f32, -(i as f32)]);
            assert!(y[0] > 0.0 && y[0] < 1.0);
        }
    }

    /// Finite-difference gradient check on a tiny network.
    #[test]
    fn backprop_matches_finite_differences() {
        let mut mlp = Mlp::new(
            &[2, 3, 1],
            Activation::Sigmoid,
            Activation::Linear,
            &mut rng(),
        );
        let x = [0.3f32, -0.7];
        let t = [0.25f32];

        // Analytic gradient for one parameter via a training step with SGD
        // semantics: capture the gradient by instrumenting through Adam is
        // messy, so compute loss directly at w±h instead and compare to the
        // parameter delta direction after one very small Adam step.
        let loss_of = |m: &Mlp| {
            let y = m.forward(&x);
            (y[0] - t[0]) * (y[0] - t[0])
        };

        let base_loss = loss_of(&mlp);
        let mut trainer = AdamTrainer::new(&mlp, 1e-3);
        let reported = trainer.train_step(&mut mlp, &batch_of(&[&x]), &batch_of(&[&t]));
        assert!(
            (reported - base_loss).abs() < 1e-4,
            "{reported} vs {base_loss}"
        );
        // One step must reduce the loss for a smooth problem at small lr.
        assert!(loss_of(&mlp) < base_loss);
    }

    #[test]
    fn training_fits_a_smooth_function() {
        let mut r = rng();
        let mut mlp = Mlp::new(
            &[2, 16, 16, 1],
            Activation::Relu,
            Activation::Linear,
            &mut r,
        );
        let mut trainer = AdamTrainer::new(&mlp, 5e-3);
        let f = |x: f32, y: f32| (x * 2.0).sin() * 0.5 + y * y * 0.3;
        let mut first_loss = None;
        let mut last_loss = 0.0;
        let mut inputs = FlatMat::with_row_capacity(32, 2);
        let mut targets = FlatMat::with_row_capacity(32, 1);
        for _ in 0..300 {
            inputs.clear_rows();
            targets.clear_rows();
            for _ in 0..32 {
                let p = [r.range_f32(-1.0, 1.0), r.range_f32(-1.0, 1.0)];
                inputs.push_row(&p);
                targets.push_row(&[f(p[0], p[1])]);
            }
            last_loss = trainer.train_step(&mut mlp, &inputs, &targets);
            first_loss.get_or_insert(last_loss);
        }
        let first = first_loss.expect("ran");
        assert!(
            last_loss < first * 0.2,
            "loss should drop substantially: {first} -> {last_loss}"
        );
        // Spot-check prediction quality.
        let y = mlp.forward(&[0.5, 0.5]);
        assert!(
            (y[0] - f(0.5, 0.5)).abs() < 0.25,
            "{} vs {}",
            y[0],
            f(0.5, 0.5)
        );
    }

    #[test]
    fn training_is_deterministic_for_fixed_seed() {
        let build = || {
            let mut r = XorShift64::new(99);
            let mut mlp = Mlp::new(&[2, 8, 1], Activation::Relu, Activation::Linear, &mut r);
            let mut tr = AdamTrainer::new(&mlp, 1e-2);
            for _ in 0..10 {
                tr.train_step(&mut mlp, &batch_of(&[&[0.1, 0.2]]), &batch_of(&[&[0.3]]));
            }
            mlp.forward(&[0.5, -0.5])
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn positional_encoding_dims_and_values() {
        let pe = PositionalEncoding::new(4);
        assert_eq!(pe.out_dim(), 3 + 24);
        assert_eq!(pe.sfu_ops_per_point(), 24);
        let e = pe.encode(Vec3::new(0.5, 0.0, -0.5));
        assert_eq!(e.len(), pe.out_dim());
        assert_eq!(e[0], 0.5);
        // sin(0.5 * pi) = 1 at the first octave, x axis.
        assert!((e[3] - 1.0).abs() < 1e-5);
        // cos(0 * pi) = 1 for y axis.
        assert!((e[7] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn weight_bytes_are_two_per_param() {
        let mlp = Mlp::new(&[4, 4], Activation::Relu, Activation::Linear, &mut rng());
        assert_eq!(mlp.weight_bytes(), (4 * 4 + 4) as u64 * 2);
    }

    /// The 8-wide packed kernel agrees with the seed-era row-dot within
    /// 1e-5 and is bit-stable across repeated runs, at widths that are
    /// not multiples of 8 (odd in_dim exercises the broadcast tail, odd
    /// out_dim the masked panel store).
    #[test]
    fn packed_kernel_matches_scalar_for_awkward_shapes() {
        let mut r = rng();
        for &(in_dim, out_dim) in &[
            (1usize, 1usize),
            (3, 7),
            (8, 8),
            (5, 9),
            (39, 16),
            (13, 24),
            (64, 4),
            (17, 31),
        ] {
            for act in [Activation::Linear, Activation::Relu, Activation::Sigmoid] {
                let layer = Layer::random(in_dim, out_dim, act, &mut r);
                let x: Vec<f32> = (0..in_dim).map(|k| (k as f32 * 0.37 - 1.1).sin()).collect();
                let mut wide = vec![0.0f32; out_dim];
                let mut again = vec![0.0f32; out_dim];
                let mut scalar = vec![0.0f32; out_dim];
                layer.forward_slice_packed(&x, &mut wide);
                layer.forward_slice_packed(&x, &mut again);
                layer.forward_slice_scalar(&x, &mut scalar);
                for (o, (w, s)) in wide.iter().zip(&scalar).enumerate() {
                    assert!(
                        (w - s).abs() < 1e-5,
                        "{in_dim}x{out_dim} {act:?} output {o}: wide {w} vs scalar {s}"
                    );
                    assert_eq!(
                        w.to_bits(),
                        again[o].to_bits(),
                        "{in_dim}x{out_dim} {act:?} output {o}: wide kernel must be bit-stable"
                    );
                }
            }
        }
    }

    /// Editing weights through `weights_mut` drops the packed panels, so
    /// the next wide forward sees the new parameters.
    #[test]
    fn weights_mut_invalidates_the_packed_panels() {
        let mut layer = Layer::random(4, 9, Activation::Linear, &mut rng());
        let x = [0.5f32, -1.0, 0.25, 2.0];
        let mut before = vec![0.0f32; 9];
        layer.forward_slice_packed(&x, &mut before);
        {
            let (w, b) = layer.weights_mut();
            for wi in w.iter_mut() {
                *wi += 1.0;
            }
            b[0] = 3.0;
        }
        let mut after = vec![0.0f32; 9];
        let mut expected = vec![0.0f32; 9];
        layer.forward_slice_packed(&x, &mut after);
        layer.forward_slice_scalar(&x, &mut expected);
        assert_ne!(before, after, "stale panels would reproduce the old output");
        for (o, (a, e)) in after.iter().zip(&expected).enumerate() {
            assert!((a - e).abs() < 1e-5, "output {o}: {a} vs {e} after repack");
        }
    }

    /// The scalar twin of `forward_scratch` runs the seed-era kernel end
    /// to end and stays within parity tolerance of the production path.
    #[test]
    fn forward_scratch_scalar_matches_production_within_tolerance() {
        let mlp = Mlp::new(
            &[7, 19, 5],
            Activation::Relu,
            Activation::Sigmoid,
            &mut rng(),
        );
        let x: Vec<f32> = (0..7).map(|k| 0.2 * k as f32 - 0.6).collect();
        let mut scratch = MlpScratch::default();
        let prod = mlp.forward_scratch(&x, &mut scratch).to_vec();
        let mut scratch2 = MlpScratch::default();
        let scalar = mlp.forward_scratch_scalar(&x, &mut scratch2).to_vec();
        assert_eq!(scalar, mlp.forward_scalar(&x));
        for (p, s) in prod.iter().zip(&scalar) {
            assert!((p - s).abs() < 1e-5, "{p} vs {s}");
        }
    }
}
