//! The analytic density + appearance field every representation is baked
//! from.
//!
//! The paper evaluates on captured datasets with *trained* checkpoints per
//! pipeline. We cannot ship those, so each procedural scene defines a smooth
//! signed-distance-based field — density and view-dependent color at any 3D
//! point — and every representation (mesh, MLP grid, tri-plane, hash grid,
//! Gaussians) is *baked* against this single ground truth. All five
//! pipelines therefore render the same underlying content, exactly like the
//! five checkpoints of one captured scene do in the paper.

use serde::{Deserialize, Serialize};
use uni_geometry::{Aabb, Rgb, Vec3};

/// A primitive shape contributing to the field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Shape {
    /// Sphere with center and radius.
    Sphere {
        /// Center.
        center: Vec3,
        /// Radius.
        radius: f32,
    },
    /// Axis-aligned box.
    Box {
        /// Center.
        center: Vec3,
        /// Half-extents per axis.
        half: Vec3,
    },
    /// Horizontal ground plane `y = level` (solid below).
    Ground {
        /// Height of the plane.
        level: f32,
    },
    /// Vertical capped cylinder.
    Cylinder {
        /// Center of the axis segment.
        center: Vec3,
        /// Radius.
        radius: f32,
        /// Half height.
        half_height: f32,
    },
}

impl Shape {
    /// Signed distance from `p` to the shape surface (negative inside).
    pub fn sdf(&self, p: Vec3) -> f32 {
        match *self {
            Shape::Sphere { center, radius } => (p - center).length() - radius,
            Shape::Box { center, half } => {
                let q = (p - center).abs() - half;
                let outside = q.max_elem(Vec3::ZERO).length();
                let inside = q.max_component().min(0.0);
                outside + inside
            }
            Shape::Ground { level } => p.y - level,
            Shape::Cylinder {
                center,
                radius,
                half_height,
            } => {
                let d = p - center;
                let radial = Vec3::new(d.x, 0.0, d.z).length() - radius;
                let axial = d.y.abs() - half_height;
                let outside = Vec3::new(radial.max(0.0), axial.max(0.0), 0.0).length();
                let inside = radial.max(axial).min(0.0);
                outside + inside
            }
        }
    }

    /// A conservative bounding box of the `iso = 0` surface.
    pub fn bounds(&self) -> Aabb {
        match *self {
            Shape::Sphere { center, radius } => {
                Aabb::new(center - Vec3::splat(radius), center + Vec3::splat(radius))
            }
            Shape::Box { center, half } => Aabb::new(center - half, center + half),
            Shape::Ground { level } => Aabb::new(
                Vec3::new(-50.0, level - 0.5, -50.0),
                Vec3::new(50.0, level, 50.0),
            ),
            Shape::Cylinder {
                center,
                radius,
                half_height,
            } => Aabb::new(
                center - Vec3::new(radius, half_height, radius),
                center + Vec3::new(radius, half_height, radius),
            ),
        }
    }
}

/// One colored primitive of the analytic field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FieldPrimitive {
    /// Geometry.
    pub shape: Shape,
    /// Base albedo.
    pub albedo: Rgb,
    /// Specular tint strength in `[0, 1]` — drives view-dependent color,
    /// the content SH coefficients and deferred MLPs must capture.
    pub specular: f32,
}

/// The analytic density + appearance field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyticField {
    primitives: Vec<FieldPrimitive>,
    /// Density falloff sharpness (1 / world-space shell width).
    sharpness: f32,
    /// Peak volumetric density inside surfaces.
    peak_density: f32,
    background: Rgb,
}

/// A field sample: density plus view-dependent radiance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FieldSample {
    /// Volumetric density (1/m).
    pub density: f32,
    /// Emitted radiance toward the query direction.
    pub color: Rgb,
}

/// View-independent surface attributes at a point — what the baking passes
/// write into textures, grids, and Gaussian DC terms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurfaceAttrs {
    /// Pre-lit diffuse color (albedo under the fixed key light).
    pub diffuse: Rgb,
    /// Specular tint strength of the nearest primitive.
    pub specular: f32,
    /// Surface normal (SDF gradient).
    pub normal: Vec3,
}

/// The fixed key-light direction shared by shading and baked targets.
pub const LIGHT_DIR: Vec3 = Vec3::new(0.45, 0.8, 0.35);

/// The peak volumetric density inside surfaces (1/m); baked density
/// channels are normalized by this value.
pub const PEAK_DENSITY: f32 = 40.0;

impl AnalyticField {
    /// Creates a field over the given primitives.
    pub fn new(primitives: Vec<FieldPrimitive>) -> Self {
        Self {
            primitives,
            sharpness: 24.0,
            peak_density: PEAK_DENSITY,
            background: Rgb::new(0.62, 0.75, 0.93),
        }
    }

    /// View-independent surface attributes at `p` (diffuse shading, specular
    /// strength, and normal). Returns background-colored attributes when the
    /// field is empty.
    pub fn attributes(&self, p: Vec3) -> SurfaceAttrs {
        if self.primitives.is_empty() {
            return SurfaceAttrs {
                diffuse: self.background,
                specular: 0.0,
                normal: Vec3::Y,
            };
        }
        let (_, idx) = self.sdf(p);
        let prim = &self.primitives[idx];
        let n = self.normal(p);
        let diffuse = prim.albedo * (0.35 + 0.65 * n.dot(LIGHT_DIR.normalized()).max(0.0));
        SurfaceAttrs {
            diffuse: diffuse.saturate(),
            specular: prim.specular,
            normal: n,
        }
    }

    /// The peak density constant used to normalize baked density channels.
    pub fn peak_density(&self) -> f32 {
        self.peak_density
    }

    /// The primitives composing the field.
    pub fn primitives(&self) -> &[FieldPrimitive] {
        &self.primitives
    }

    /// Background (sky) color for escaped rays.
    pub fn background(&self) -> Rgb {
        self.background
    }

    /// Overrides the background color.
    pub fn with_background(mut self, c: Rgb) -> Self {
        self.background = c;
        self
    }

    /// The tight bounds of all solid content (excluding the infinite
    /// ground extent beyond ±50).
    pub fn content_bounds(&self) -> Aabb {
        let mut b = self
            .primitives
            .iter()
            .fold(Aabb::EMPTY, |acc, p| acc.union(&p.shape.bounds()));
        if b.is_empty() {
            b = Aabb::cube(1.0);
        }
        b
    }

    /// Signed distance to the nearest surface and the index of the nearest
    /// primitive.
    pub fn sdf(&self, p: Vec3) -> (f32, usize) {
        let mut best = (f32::INFINITY, 0usize);
        for (i, prim) in self.primitives.iter().enumerate() {
            let d = prim.shape.sdf(p);
            if d < best.0 {
                best = (d, i);
            }
        }
        best
    }

    /// Surface normal by central differences of the SDF.
    pub fn normal(&self, p: Vec3) -> Vec3 {
        const H: f32 = 1e-3;
        let d = |q: Vec3| self.sdf(q).0;
        Vec3::new(
            d(p + Vec3::X * H) - d(p - Vec3::X * H),
            d(p + Vec3::Y * H) - d(p - Vec3::Y * H),
            d(p + Vec3::Z * H) - d(p - Vec3::Z * H),
        )
        .normalized()
    }

    /// Volumetric density at `p` (soft shell around the SDF zero set).
    pub fn density(&self, p: Vec3) -> f32 {
        let (d, _) = self.sdf(p);
        // Logistic falloff: ~peak inside, ~0 one shell-width outside.
        self.peak_density / (1.0 + (d * self.sharpness).exp())
    }

    /// Samples density and view-dependent radiance at `p` looking along
    /// `view_dir` (pointing *away* from the camera).
    pub fn sample(&self, p: Vec3, view_dir: Vec3) -> FieldSample {
        let (d, idx) = self.sdf(p);
        let density = self.peak_density / (1.0 + (d * self.sharpness).exp());
        if density < 1e-4 || self.primitives.is_empty() {
            return FieldSample {
                density,
                color: self.background,
            };
        }
        let prim = &self.primitives[idx];
        let n = self.normal(p);
        // Fixed key light plus ambient; Blinn-style specular lobe driven by
        // the primitive's specular tint gives genuine view dependence.
        let light_dir = LIGHT_DIR.normalized();
        let diffuse = n.dot(light_dir).max(0.0);
        let half = (light_dir - view_dir).normalized();
        let spec = n.dot(half).max(0.0).powi(16) * prim.specular;
        let lit = prim.albedo * (0.35 + 0.65 * diffuse) + Rgb::WHITE * spec;
        FieldSample {
            density,
            color: lit.saturate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_sphere_field() -> AnalyticField {
        AnalyticField::new(vec![
            FieldPrimitive {
                shape: Shape::Sphere {
                    center: Vec3::ZERO,
                    radius: 1.0,
                },
                albedo: Rgb::new(0.8, 0.2, 0.2),
                specular: 0.5,
            },
            FieldPrimitive {
                shape: Shape::Sphere {
                    center: Vec3::new(3.0, 0.0, 0.0),
                    radius: 0.5,
                },
                albedo: Rgb::new(0.2, 0.8, 0.2),
                specular: 0.0,
            },
        ])
    }

    #[test]
    fn sphere_sdf_signs() {
        let s = Shape::Sphere {
            center: Vec3::ZERO,
            radius: 1.0,
        };
        assert!(s.sdf(Vec3::ZERO) < 0.0);
        assert!((s.sdf(Vec3::X) - 0.0).abs() < 1e-6);
        assert!((s.sdf(Vec3::X * 3.0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn box_sdf_is_zero_on_faces_negative_inside() {
        let b = Shape::Box {
            center: Vec3::ZERO,
            half: Vec3::new(1.0, 2.0, 3.0),
        };
        assert!(b.sdf(Vec3::ZERO) < 0.0);
        assert!(b.sdf(Vec3::new(1.0, 0.0, 0.0)).abs() < 1e-6);
        assert!((b.sdf(Vec3::new(2.0, 0.0, 0.0)) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cylinder_sdf_radial_and_axial() {
        let c = Shape::Cylinder {
            center: Vec3::ZERO,
            radius: 1.0,
            half_height: 2.0,
        };
        assert!(c.sdf(Vec3::ZERO) < 0.0);
        assert!(c.sdf(Vec3::new(1.0, 0.0, 0.0)).abs() < 1e-6);
        assert!((c.sdf(Vec3::new(0.0, 3.0, 0.0)) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ground_sdf_is_height() {
        let g = Shape::Ground { level: -1.0 };
        assert!((g.sdf(Vec3::ZERO) - 1.0).abs() < 1e-6);
        assert!(g.sdf(Vec3::new(0.0, -2.0, 0.0)) < 0.0);
    }

    #[test]
    fn density_high_inside_low_outside() {
        let f = two_sphere_field();
        assert!(f.density(Vec3::ZERO) > 30.0);
        assert!(f.density(Vec3::new(0.0, 10.0, 0.0)) < 0.01);
    }

    #[test]
    fn density_transitions_smoothly_across_surface() {
        let f = two_sphere_field();
        let inside = f.density(Vec3::X * 0.9);
        let surface = f.density(Vec3::X * 1.0);
        let outside = f.density(Vec3::X * 1.1);
        assert!(inside > surface && surface > outside);
        assert!((surface - 20.0).abs() < 1.0, "half peak at surface");
    }

    #[test]
    fn nearest_primitive_colors_the_sample() {
        let f = two_sphere_field();
        let near_red = f.sample(Vec3::new(0.95, 0.0, 0.0), Vec3::Z);
        let near_green = f.sample(Vec3::new(3.0, 0.0, 0.45), Vec3::Z);
        assert!(near_red.color.r > near_red.color.g);
        assert!(near_green.color.g > near_green.color.r);
    }

    #[test]
    fn specular_component_is_view_dependent() {
        let f = two_sphere_field();
        let p = Vec3::new(0.35, 0.75, 0.35).normalized() * 0.99;
        // Looking along the reflection direction vs. away from it.
        let toward = f.sample(p, (-Vec3::new(0.45, 0.8, 0.35)).normalized());
        let away = f.sample(p, Vec3::new(0.45, 0.8, 0.35).normalized());
        assert!(toward.color.luminance() > away.color.luminance());
    }

    #[test]
    fn normal_points_outward_on_sphere() {
        let f = two_sphere_field();
        let p = Vec3::new(0.0, 1.0, 0.0);
        let n = f.normal(p);
        assert!((n - Vec3::Y).length() < 1e-2, "{n:?}");
    }

    #[test]
    fn content_bounds_cover_all_primitives() {
        let f = two_sphere_field();
        let b = f.content_bounds();
        assert!(b.contains(Vec3::new(-1.0, 0.0, 0.0)));
        assert!(b.contains(Vec3::new(3.5, 0.0, 0.0)));
    }

    #[test]
    fn empty_field_renders_background() {
        let f = AnalyticField::new(vec![]);
        let s = f.sample(Vec3::ZERO, Vec3::Z);
        assert_eq!(s.color, f.background());
        assert!(!f.content_bounds().is_empty());
    }
}
