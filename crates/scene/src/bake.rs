//! Baking: turning a [`SceneSpec`]'s analytic field into every scene
//! representation the five pipelines consume.
//!
//! The paper's scenes exist as five trained checkpoints per capture
//! (MobileNeRF mesh+texture, KiloNeRF MLP grid, MeRF planes+grid,
//! Instant-NGP hash tables, 3DGS point cloud). Baking is our substitute for
//! training against captured photos: each representation is fitted against
//! the *same* analytic field — tessellation for meshes, SH projection for
//! Gaussians, vertex writes for grids, and genuine Adam training for every
//! MLP component.

use crate::field::{AnalyticField, LIGHT_DIR, PEAK_DENSITY};
use crate::gaussians::{Gaussian, GaussianCloud};
use crate::hashgrid::HashGrid;
use crate::kilonerf::KiloNerfGrid;
use crate::mesh::{Texture2d, TriangleMesh};
use crate::nn::{Activation, AdamTrainer, Mlp};
use crate::synthetic::SceneSpec;
use crate::triplane::{PlaneAxis, Triplane};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use uni_geometry::camera::Orbit;
use uni_geometry::sampling::XorShift64;
use uni_geometry::{sh, Aabb, Vec2, Vec3};

/// Number of feature channels baked everywhere:
/// `[diffuse r, g, b, specular, nx, ny, nz, occupancy]`.
pub const FEATURE_CHANNELS: u32 = 8;

/// A fully baked scene: the analytic field plus all five representations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BakedScene {
    spec: SceneSpec,
    field: AnalyticField,
    bounds: Aabb,
    mesh: TriangleMesh,
    texture: Texture2d,
    gaussians: GaussianCloud,
    hashgrid: HashGrid,
    hash_decoder: Mlp,
    triplane: Triplane,
    deferred_mlp: Mlp,
    kilonerf: KiloNerfGrid,
}

impl SceneSpec {
    /// Bakes the spec into all five representations.
    ///
    /// Deterministic in the spec's seed. Cost scales with
    /// [`SceneSpec::with_detail`]; tests should use small detail factors.
    pub fn bake(&self) -> BakedScene {
        let field = self.build_field();
        let repr = self.scaled_repr();
        let mut rng = XorShift64::new(self.seed.wrapping_mul(0xA5A5).wrapping_add(3));

        let bounds = field.content_bounds().padded(0.25);
        let mesh = tessellate(&field, bounds, repr.target_triangles);
        let texture = bake_texture(&mesh, &field, repr.texture_resolution);
        let gaussians = bake_gaussians(&mesh, &field, repr.gaussian_count, 3, &mut rng);
        let hashgrid = bake_hashgrid(&mesh, &field, repr.hash, bounds, &mut rng);
        let hash_decoder = train_hash_decoder(&hashgrid, &field, &mesh, repr.train_steps, &mut rng);
        let triplane = bake_triplane(&mesh, &field, repr.triplane, bounds, &mut rng);
        let deferred_mlp = train_deferred_mlp(repr.train_steps, &mut rng);
        let kilonerf = KiloNerfGrid::bake(
            &field,
            bounds,
            repr.kilonerf_grid,
            repr.mlp_count,
            repr.mlp_hidden,
            repr.train_steps,
            &mut rng,
        );

        BakedScene {
            spec: self.clone(),
            field,
            bounds,
            mesh,
            texture,
            gaussians,
            hashgrid,
            hash_decoder,
            triplane,
            deferred_mlp,
            kilonerf,
        }
    }
}

impl BakedScene {
    /// The originating spec.
    pub fn spec(&self) -> &SceneSpec {
        &self.spec
    }

    /// The ground-truth analytic field.
    pub fn field(&self) -> &AnalyticField {
        &self.field
    }

    /// The padded content bounds all grids are defined over.
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// The baked triangle mesh.
    pub fn mesh(&self) -> &TriangleMesh {
        &self.mesh
    }

    /// The baked texture atlas (8 feature channels).
    pub fn texture(&self) -> &Texture2d {
        &self.texture
    }

    /// The baked Gaussian cloud.
    pub fn gaussians(&self) -> &GaussianCloud {
        &self.gaussians
    }

    /// The baked multi-level hash grid.
    pub fn hashgrid(&self) -> &HashGrid {
        &self.hashgrid
    }

    /// The trained hash-feature decoder MLP (`L×F → [σ, r, g, b]`).
    pub fn hash_decoder(&self) -> &Mlp {
        &self.hash_decoder
    }

    /// The baked low-rank decomposed grid.
    pub fn triplane(&self) -> &Triplane {
        &self.triplane
    }

    /// The trained deferred shading MLP
    /// (`[s·n, s, view] → specular RGB`), shared by the mesh, low-rank, and
    /// hybrid pipelines.
    pub fn deferred_mlp(&self) -> &Mlp {
        &self.deferred_mlp
    }

    /// The baked KiloNeRF grid of tiny MLPs.
    pub fn kilonerf(&self) -> &KiloNerfGrid {
        &self.kilonerf
    }

    /// Total bytes this baked scene keeps resident across every
    /// representation — the unit a capacity-bounded scene cache budgets
    /// and the bake-cost account charges. Deterministic for a given
    /// spec: baking is seeded purely from [`SceneSpec::seed`], so the
    /// same spec always bakes to the same resident size.
    pub fn resident_bytes(&self) -> u64 {
        self.mesh.storage_bytes()
            + self.texture.storage_bytes()
            + self.gaussians.storage_bytes()
            + self.hashgrid.config().storage_bytes()
            + self.hash_decoder.weight_bytes()
            + self.triplane.config().storage_bytes()
            + self.deferred_mlp.weight_bytes()
            + self.kilonerf.storage_bytes()
    }

    /// The default test-view orbit at a dataset-appropriate resolution.
    pub fn orbit(&self) -> Orbit {
        use crate::synthetic::SceneFlavor;
        let (w, h) = match self.spec.flavor {
            SceneFlavor::Object => (800, 800),
            _ => (1280, 720),
        };
        self.spec.orbit(w, h)
    }
}

/// Tessellates every field primitive into one mesh with atlas-packed UVs.
fn tessellate(field: &AnalyticField, bounds: Aabb, target_triangles: u32) -> TriangleMesh {
    use crate::field::Shape;
    let prims = field.primitives();
    if prims.is_empty() {
        return TriangleMesh::new();
    }
    // Budget triangles proportional to surface area.
    let ground_extent = (bounds.extent().x.max(bounds.extent().z) * 0.75).max(1.0);
    let area = |s: &Shape| -> f32 {
        match *s {
            Shape::Sphere { radius, .. } => 4.0 * std::f32::consts::PI * radius * radius,
            Shape::Box { half, .. } => 8.0 * (half.x * half.y + half.y * half.z + half.x * half.z),
            Shape::Ground { .. } => (2.0 * ground_extent).powi(2),
            Shape::Cylinder {
                radius,
                half_height,
                ..
            } => {
                2.0 * std::f32::consts::PI * radius * (2.0 * half_height)
                    + 2.0 * std::f32::consts::PI * radius * radius
            }
        }
    };
    let total_area: f32 = prims.iter().map(|p| area(&p.shape)).sum();
    let tiles = (prims.len() as f32).sqrt().ceil() as u32;
    let mut mesh = TriangleMesh::new();
    for (i, prim) in prims.iter().enumerate() {
        let budget = ((target_triangles as f32) * area(&prim.shape) / total_area).max(8.0) as u32;
        let mut part = match prim.shape {
            Shape::Sphere { center, radius } => {
                let rings = ((budget as f32 / 4.0).sqrt().round() as u32).max(3);
                TriangleMesh::uv_sphere(center, radius, rings, rings * 2)
            }
            Shape::Box { center, half } => {
                let sub = ((budget as f32 / 12.0).sqrt().round() as u32).max(1);
                TriangleMesh::cuboid(center, half, sub)
            }
            Shape::Ground { level } => {
                let cells = ((budget as f32 / 2.0).sqrt().round() as u32).max(2);
                TriangleMesh::ground_plane(level, ground_extent, cells)
            }
            Shape::Cylinder {
                center,
                radius,
                half_height,
            } => {
                let segs = (budget / 4).max(6);
                TriangleMesh::cylinder(center, radius, half_height, segs)
            }
        };
        // Atlas tile remap with a small margin against tile bleeding.
        let tile_x = (i as u32 % tiles) as f32;
        let tile_y = (i as u32 / tiles) as f32;
        let inv = 1.0 / tiles as f32;
        for uv in &mut part.uvs {
            let margin = 0.02;
            let u = uv.x.clamp(0.0, 1.0) * (1.0 - 2.0 * margin) + margin;
            let v = uv.y.clamp(0.0, 1.0) * (1.0 - 2.0 * margin) + margin;
            *uv = Vec2::new((tile_x + u) * inv, (tile_y + v) * inv);
        }
        mesh.append(&part);
    }
    mesh
}

/// Writes one feature record at a surface point.
fn surface_features(field: &AnalyticField, p: Vec3) -> [f32; FEATURE_CHANNELS as usize] {
    let a = field.attributes(p);
    [
        a.diffuse.r,
        a.diffuse.g,
        a.diffuse.b,
        a.specular,
        a.normal.x,
        a.normal.y,
        a.normal.z,
        1.0,
    ]
}

/// Bakes the texture atlas by forward-splatting triangle samples.
fn bake_texture(mesh: &TriangleMesh, field: &AnalyticField, resolution: u32) -> Texture2d {
    let mut tex = Texture2d::new(resolution, resolution, FEATURE_CHANNELS);
    if mesh.triangle_count() == 0 {
        return tex;
    }
    let res = resolution as f32;
    for t in 0..mesh.triangle_count() {
        let [a, b, c] = mesh.triangle(t);
        let [ua, ub, uc] = mesh.triangle_uvs(t);
        // Sample density: ~2 samples per covered texel.
        let uv_area = ((ub - ua).cross(uc - ua)).abs() * 0.5 * res * res;
        let samples = (uv_area * 2.0).ceil().clamp(1.0, 4096.0) as u32;
        for s in 0..samples {
            // Deterministic low-discrepancy barycentrics.
            let r1 = ((s as f32 + 0.5) / samples as f32).fract();
            let r2 = ((s as f32) * 0.618_034 + 0.37).fract();
            let su = r1.sqrt();
            let (w0, w1, w2) = (1.0 - su, su * (1.0 - r2), su * r2);
            let p = a * w0 + b * w1 + c * w2;
            let uv = ua * w0 + ub * w1 + uc * w2;
            let x = ((uv.x * res) as u32).min(resolution - 1);
            let y = ((uv.y * res) as u32).min(resolution - 1);
            tex.set_texel(x, y, &surface_features(field, p));
        }
    }
    dilate(&mut tex);
    tex
}

/// One dilation pass: fills unoccupied texels (channel 7 == 0) from any
/// occupied 4-neighbor, so bilinear fetches near seams stay meaningful.
fn dilate(tex: &mut Texture2d) {
    let (w, h, c) = (tex.width(), tex.height(), tex.channels() as usize);
    for _ in 0..2 {
        let snapshot = tex.clone();
        for y in 0..h {
            for x in 0..w {
                if snapshot.texel(x, y)[c - 1] > 0.0 {
                    continue;
                }
                let neighbors = [
                    (x.wrapping_sub(1), y),
                    (x + 1, y),
                    (x, y.wrapping_sub(1)),
                    (x, y + 1),
                ];
                for (nx, ny) in neighbors {
                    if nx < w && ny < h && snapshot.texel(nx, ny)[c - 1] > 0.0 {
                        let v = snapshot.texel(nx, ny).to_vec();
                        tex.set_texel(x, y, &v);
                        break;
                    }
                }
            }
        }
    }
}

/// Samples a point uniformly over the mesh surface: returns
/// `(point, normal)`. `areas` must hold the cumulative triangle areas.
fn sample_surface(mesh: &TriangleMesh, areas: &[f32], rng: &mut XorShift64) -> (Vec3, Vec3) {
    let total = *areas.last().expect("nonempty mesh");
    let target = rng.next_f32() * total;
    let t = areas.partition_point(|&a| a < target).min(areas.len() - 1);
    let [a, b, c] = mesh.triangle(t);
    let (r1, r2) = (rng.next_f32(), rng.next_f32());
    let su = r1.sqrt();
    let (w0, w1, w2) = (1.0 - su, su * (1.0 - r2), su * r2);
    (a * w0 + b * w1 + c * w2, mesh.triangle_normal(t))
}

fn cumulative_areas(mesh: &TriangleMesh) -> Vec<f32> {
    let mut acc = 0.0;
    (0..mesh.triangle_count())
        .map(|t| {
            acc += mesh.triangle_area(t);
            acc
        })
        .collect()
}

/// Quaternion rotating +Z onto `dir` (unit).
fn quat_from_z_to(dir: Vec3) -> uni_geometry::Vec4 {
    let z = Vec3::Z;
    let d = z.dot(dir);
    if d > 0.9999 {
        return uni_geometry::Vec4::new(0.0, 0.0, 0.0, 1.0);
    }
    if d < -0.9999 {
        return uni_geometry::Vec4::new(1.0, 0.0, 0.0, 0.0); // 180° about X.
    }
    let axis = z.cross(dir).normalized();
    let angle = d.clamp(-1.0, 1.0).acos();
    let (s, c) = (angle * 0.5).sin_cos();
    uni_geometry::Vec4::new(axis.x * s, axis.y * s, axis.z * s, c)
}

/// Bakes the Gaussian cloud: surface sampling + SH projection of the
/// field's view-dependent radiance.
fn bake_gaussians(
    mesh: &TriangleMesh,
    field: &AnalyticField,
    count: u32,
    sh_degree: u8,
    rng: &mut XorShift64,
) -> GaussianCloud {
    let mut cloud = GaussianCloud::new(sh_degree);
    if mesh.triangle_count() == 0 || count == 0 {
        return cloud;
    }
    let areas = cumulative_areas(mesh);
    let total_area = *areas.last().expect("nonempty");
    let spacing = (total_area / count as f32).sqrt();
    let n_coeffs = cloud.coeffs_per_channel();

    // Deterministic projection directions (spherical Fibonacci).
    let n_dirs = 32usize;
    let dirs: Vec<Vec3> = (0..n_dirs)
        .map(|i| {
            let golden = std::f32::consts::PI * (3.0 - 5f32.sqrt());
            let y = 1.0 - 2.0 * (i as f32 + 0.5) / n_dirs as f32;
            let r = (1.0 - y * y).max(0.0).sqrt();
            let phi = golden * i as f32;
            Vec3::new(r * phi.cos(), y, r * phi.sin())
        })
        .collect();
    let mut basis = vec![0f32; n_coeffs];

    for _ in 0..count {
        let (p, normal) = sample_surface(mesh, &areas, rng);
        // SH-project radiance: c_i = (4π/N) Σ_d (L(d) - 0.5) b_i(d).
        let mut coeffs = vec![0f32; 3 * n_coeffs];
        for d in &dirs {
            let color = field.sample(p, *d).color;
            sh::eval_basis(*d, &mut basis);
            let w = 4.0 * std::f32::consts::PI / n_dirs as f32;
            for i in 0..n_coeffs {
                coeffs[i] += (color.r - 0.5) * basis[i] * w;
                coeffs[n_coeffs + i] += (color.g - 0.5) * basis[i] * w;
                coeffs[2 * n_coeffs + i] += (color.b - 0.5) * basis[i] * w;
            }
        }
        cloud.gaussians.push(Gaussian {
            mean: p,
            scale: Vec3::new(spacing * 0.9, spacing * 0.9, spacing * 0.15),
            rotation: quat_from_z_to(normal),
            opacity: 0.85,
            sh_coeffs: coeffs,
        });
    }
    cloud
}

/// Bakes the multi-level hash grid from surface + volume samples, writing
/// field attributes at every touched vertex (deduplicated).
fn bake_hashgrid(
    mesh: &TriangleMesh,
    field: &AnalyticField,
    config: crate::hashgrid::HashGridConfig,
    bounds: Aabb,
    rng: &mut XorShift64,
) -> HashGrid {
    let mut grid = HashGrid::new(config, bounds);
    if mesh.triangle_count() == 0 {
        return grid;
    }
    let areas = cumulative_areas(mesh);
    let samples = (mesh.triangle_count() as u32 * 3).clamp(1_024, 400_000);
    let mut seen: HashSet<(u32, u32, u32, u32)> = HashSet::new();
    let shell = bounds.diagonal() * 0.01;

    for s in 0..samples {
        // 85% surface-biased (jittered off the surface), 15% uniform volume.
        let p = if s % 7 == 0 {
            bounds.denormalize_point(Vec3::new(rng.next_f32(), rng.next_f32(), rng.next_f32()))
        } else {
            let (p, n) = sample_surface(mesh, &areas, rng);
            p + n * rng.range_f32(-shell, shell)
        };
        let u = bounds.normalize_point(p).clamp(0.0, 1.0);
        for l in 0..config.levels {
            let res = config.level_resolution(l) + 1;
            let cx = uni_geometry::interp::cell_coord(u.x, res);
            let cy = uni_geometry::interp::cell_coord(u.y, res);
            let cz = uni_geometry::interp::cell_coord(u.z, res);
            for corner in 0..8u32 {
                let x = cx.base as u32 + (corner & 1);
                let y = cy.base as u32 + ((corner >> 1) & 1);
                let z = cz.base as u32 + ((corner >> 2) & 1);
                if !seen.insert((l, x, y, z)) {
                    continue;
                }
                let vw = bounds.denormalize_point(Vec3::new(
                    x as f32 / (res - 1) as f32,
                    y as f32 / (res - 1) as f32,
                    z as f32 / (res - 1) as f32,
                ));
                let a = field.attributes(vw);
                let density = field.density(vw) / PEAK_DENSITY;
                grid.write_vertex(
                    l,
                    x,
                    y,
                    z,
                    &[density, a.diffuse.r, a.diffuse.g, a.diffuse.b],
                );
            }
        }
    }
    grid
}

/// Trains the hash-feature decoder MLP (`L×F → [σ/peak, r, g, b]`).
fn train_hash_decoder(
    grid: &HashGrid,
    field: &AnalyticField,
    mesh: &TriangleMesh,
    steps: u32,
    rng: &mut XorShift64,
) -> Mlp {
    let in_dim = grid.config().feature_dim() as usize;
    let mut mlp = Mlp::new(
        &[in_dim, 64, 64, 4],
        Activation::Relu,
        Activation::Linear,
        rng,
    );
    if mesh.triangle_count() == 0 {
        return mlp;
    }
    let areas = cumulative_areas(mesh);
    let bounds = grid.bounds();
    let shell = bounds.diagonal() * 0.015;
    let mut trainer = AdamTrainer::new(&mlp, 3e-3);
    let mut feats = vec![0f32; in_dim];
    let batch = 48;
    let mut inputs = uni_geometry::FlatMat::with_row_capacity(batch, in_dim);
    let mut targets = uni_geometry::FlatMat::with_row_capacity(batch, 4);
    for _ in 0..steps {
        inputs.clear_rows();
        targets.clear_rows();
        for b in 0..batch {
            let p = if b % 5 == 0 {
                bounds.denormalize_point(Vec3::new(rng.next_f32(), rng.next_f32(), rng.next_f32()))
            } else {
                let (p, n) = sample_surface(mesh, &areas, rng);
                p + n * rng.range_f32(-shell, shell)
            };
            grid.fetch(p, &mut feats);
            let a = field.attributes(p);
            inputs.push_row(&feats);
            targets.push_row(&[
                field.density(p) / PEAK_DENSITY,
                a.diffuse.r,
                a.diffuse.g,
                a.diffuse.b,
            ]);
        }
        trainer.train_step(&mut mlp, &inputs, &targets);
    }
    mlp
}

/// Bakes the low-rank decomposed grid: dense low-res 3D grid from direct
/// sampling, planes from surface-sample splatting.
fn bake_triplane(
    mesh: &TriangleMesh,
    field: &AnalyticField,
    config: crate::triplane::TriplaneConfig,
    bounds: Aabb,
    rng: &mut XorShift64,
) -> Triplane {
    let mut tp = Triplane::new(config, bounds);
    let c = config.channels as usize;
    assert!(c >= 8, "triplane bake expects >= 8 channels");

    // Grid half: direct field sampling at vertices (weight 0.5).
    let r = config.grid_resolution;
    let mut v = vec![0f32; c];
    for z in 0..r {
        for y in 0..r {
            for x in 0..r {
                let p = bounds.denormalize_point(Vec3::new(
                    x as f32 / (r - 1).max(1) as f32,
                    y as f32 / (r - 1).max(1) as f32,
                    z as f32 / (r - 1).max(1) as f32,
                ));
                let a = field.attributes(p);
                let density = field.density(p) / PEAK_DENSITY;
                v.fill(0.0);
                v[0] = 0.5 * density;
                v[1] = 0.5 * a.diffuse.r;
                v[2] = 0.5 * a.diffuse.g;
                v[3] = 0.5 * a.diffuse.b;
                v[4] = 0.5 * a.specular * a.normal.x;
                v[5] = 0.5 * a.specular * a.normal.y;
                v[6] = 0.5 * a.specular * a.normal.z;
                v[7] = 0.5 * a.specular;
                tp.write_grid_vertex(x, y, z, &v);
            }
        }
    }

    // Plane halves: splat surface samples onto each projection (weight 0.5
    // split across the three planes).
    if mesh.triangle_count() > 0 {
        let areas = cumulative_areas(mesh);
        let res = config.plane_resolution;
        let samples = (u64::from(res) * u64::from(res) / 2).clamp(1_024, 2_000_000) as u32;
        for _ in 0..samples {
            let (p, _) = sample_surface(mesh, &areas, rng);
            let u = bounds.normalize_point(p).clamp(0.0, 1.0);
            let a = field.attributes(p);
            let density = field.density(p) / PEAK_DENSITY;
            v.fill(0.0);
            let third = 0.5 / 3.0;
            v[0] = third * density;
            v[1] = third * a.diffuse.r;
            v[2] = third * a.diffuse.g;
            v[3] = third * a.diffuse.b;
            v[4] = third * a.specular * a.normal.x;
            v[5] = third * a.specular * a.normal.y;
            v[6] = third * a.specular * a.normal.z;
            v[7] = third * a.specular;
            for axis in PlaneAxis::ALL {
                let uv = axis.project(u);
                let x = ((uv.x * res as f32) as u32).min(res - 1);
                let y = ((uv.y * res as f32) as u32).min(res - 1);
                tp.plane_mut(axis).set_texel(x, y, &v);
            }
        }
    }
    tp
}

/// Trains the deferred shading MLP against the analytic Blinn specular
/// model: input `[s·nx, s·ny, s·nz, s, view_xyz]` → specular RGB.
fn train_deferred_mlp(steps: u32, rng: &mut XorShift64) -> Mlp {
    let mut mlp = Mlp::new(&[7, 16, 16, 3], Activation::Relu, Activation::Linear, rng);
    let light = LIGHT_DIR.normalized();
    let mut trainer = AdamTrainer::new(&mlp, 4e-3);
    let batch = 64;
    let mut inputs = uni_geometry::FlatMat::with_row_capacity(batch, 7);
    let mut targets = uni_geometry::FlatMat::with_row_capacity(batch, 3);
    for _ in 0..steps.max(32) {
        inputs.clear_rows();
        targets.clear_rows();
        for _ in 0..batch {
            let n = Vec3::new(
                rng.range_f32(-1.0, 1.0),
                rng.range_f32(-1.0, 1.0),
                rng.range_f32(-1.0, 1.0),
            )
            .normalized();
            let view = Vec3::new(
                rng.range_f32(-1.0, 1.0),
                rng.range_f32(-1.0, 1.0),
                rng.range_f32(-1.0, 1.0),
            )
            .normalized();
            let s = rng.next_f32();
            let half = (light - view).normalized();
            let spec = n.dot(half).max(0.0).powi(16) * s;
            inputs.push_row(&[s * n.x, s * n.y, s * n.z, s, view.x, view.y, view.z]);
            targets.push_row(&[spec, spec, spec]);
        }
        trainer.train_step(&mut mlp, &inputs, &targets);
    }
    mlp
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// One shared tiny baked scene for all tests in this module (baking is
    /// the expensive part).
    fn scene() -> &'static BakedScene {
        static SCENE: OnceLock<BakedScene> = OnceLock::new();
        SCENE.get_or_init(|| SceneSpec::demo("bake-test", 11).with_detail(0.03).bake())
    }

    #[test]
    fn bake_produces_all_representations() {
        let s = scene();
        assert!(s.mesh().triangle_count() > 50);
        assert!(!s.gaussians().is_empty());
        assert!(s.kilonerf().occupied_cells() > 0);
        assert_eq!(s.texture().channels(), FEATURE_CHANNELS);
    }

    #[test]
    fn mesh_fits_bounds() {
        let s = scene();
        let mb = s.mesh().bounds();
        let sb = s.bounds().padded(1e-3);
        assert!(
            sb.contains(mb.min) && sb.contains(mb.max),
            "{mb:?} vs {sb:?}"
        );
    }

    #[test]
    fn texture_has_occupied_texels_with_colors() {
        let s = scene();
        let tex = s.texture();
        let mut occupied = 0;
        for y in 0..tex.height() {
            for x in 0..tex.width() {
                if tex.texel(x, y)[7] > 0.0 {
                    occupied += 1;
                }
            }
        }
        let frac = occupied as f64 / (tex.width() * tex.height()) as f64;
        assert!(frac > 0.2, "texture mostly occupied after dilation: {frac}");
    }

    #[test]
    fn gaussians_sit_on_surfaces() {
        let s = scene();
        let mut near_surface = 0;
        for g in &s.gaussians().gaussians {
            let (d, _) = s.field().sdf(g.mean);
            if d.abs() < 0.1 {
                near_surface += 1;
            }
        }
        let frac = near_surface as f64 / s.gaussians().len() as f64;
        assert!(frac > 0.9, "gaussians on surfaces: {frac}");
    }

    #[test]
    fn gaussian_dc_color_matches_field_diffuse_roughly() {
        let s = scene();
        let n = s.gaussians().coeffs_per_channel();
        let mut total_err = 0.0f64;
        let count = s.gaussians().len().min(50);
        for g in s.gaussians().gaussians.iter().take(count) {
            let view = Vec3::new(0.3, -0.2, 0.9).normalized();
            let predicted = g.color(view, n);
            let actual = s.field().sample(g.mean, view).color;
            total_err += f64::from((predicted.r - actual.r).abs())
                + f64::from((predicted.g - actual.g).abs())
                + f64::from((predicted.b - actual.b).abs());
        }
        let mean_err = total_err / (count as f64 * 3.0);
        assert!(mean_err < 0.2, "SH projection tracks radiance: {mean_err}");
    }

    #[test]
    fn hashgrid_decodes_density_inside_objects() {
        let s = scene();
        // Find a surface point from the mesh.
        let [a, b, c] = s.mesh().triangle(0);
        let p = (a + b + c) / 3.0;
        let mut feats = vec![0f32; s.hashgrid().config().feature_dim() as usize];
        s.hashgrid().fetch(p, &mut feats);
        assert!(
            feats.iter().any(|&f| f.abs() > 1e-3),
            "baked features nonzero near surface"
        );
        let out = s.hash_decoder().forward(&feats);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn triplane_density_tracks_field() {
        let s = scene();
        let [a, b, c] = s.mesh().triangle(0);
        let on_surface = (a + b + c) / 3.0;
        let far = s.bounds().max - Vec3::splat(1e-3);
        let mut f_on = vec![0f32; 8];
        let mut f_far = vec![0f32; 8];
        s.triplane().fetch(on_surface, &mut f_on);
        s.triplane().fetch(far, &mut f_far);
        assert!(
            f_on[0] > f_far[0],
            "density channel higher on surface: {} vs {}",
            f_on[0],
            f_far[0]
        );
    }

    #[test]
    fn deferred_mlp_predicts_zero_spec_for_zero_strength() {
        let s = scene();
        let out = s
            .deferred_mlp()
            .forward(&[0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
        for v in out {
            assert!(v.abs() < 0.15, "no specular without strength: {v}");
        }
    }

    #[test]
    fn bake_is_deterministic() {
        let a = SceneSpec::demo("det", 3).with_detail(0.02).bake();
        let b = SceneSpec::demo("det", 3).with_detail(0.02).bake();
        assert_eq!(a.mesh().triangle_count(), b.mesh().triangle_count());
        assert_eq!(a.gaussians().len(), b.gaussians().len());
        assert_eq!(
            a.gaussians().gaussians[0].mean,
            b.gaussians().gaussians[0].mean
        );
    }

    #[test]
    fn quat_from_z_handles_all_directions() {
        for dir in [
            Vec3::Z,
            -Vec3::Z,
            Vec3::X,
            Vec3::Y,
            Vec3::new(0.5, -0.5, 0.7).normalized(),
        ] {
            let q = quat_from_z_to(dir);
            let m = uni_geometry::Mat3::from_quaternion(q);
            let rotated = m.mul_vec3(Vec3::Z);
            assert!((rotated - dir).length() < 1e-4, "{dir:?} -> {rotated:?}");
        }
    }
}
